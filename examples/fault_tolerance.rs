//! Fault-tolerance demonstration on the deterministic simulator: a mixed
//! workload runs while servers crash one by one, down to a single
//! survivor; every client operation still completes and the recorded
//! history is checked for linearizability at the end.
//!
//! ```text
//! cargo run --example fault_tolerance
//! ```

use std::cell::RefCell;
use std::rc::Rc;

use hts::core::{Config, OpMix, SimClient, SimServer, WorkloadConfig};
use hts::lincheck::{check_conditions, History};
use hts::sim::packet::{NetworkConfig, PacketSim};
use hts::sim::Nanos;
use hts::types::{ClientId, NodeId, ServerId};

fn main() {
    let n: u16 = 4;
    let mut sim = PacketSim::new(2026);
    let ring_net = sim.add_network(NetworkConfig::fast_ethernet());
    let client_net = sim.add_network(NetworkConfig::fast_ethernet());
    for i in 0..n {
        let id = NodeId::Server(ServerId(i));
        sim.add_node(
            id,
            Box::new(SimServer::new(
                ServerId(i),
                n,
                Config::default(),
                ring_net,
                client_net,
            )),
        );
        sim.attach(id, ring_net);
        sim.attach(id, client_net);
    }

    let history = Rc::new(RefCell::new(History::new()));
    let mut stats = Vec::new();
    for c in 0..8u32 {
        let id = ClientId(c);
        let (client, s) = SimClient::new(
            id,
            n,
            ServerId((c % u32::from(n)) as u16),
            WorkloadConfig {
                mix: OpMix::Mixed { read_percent: 50 },
                value_size: 4 * 1024,
                op_limit: Some(40),
                start_delay: Nanos::ZERO,
                timeout: Nanos::from_millis(40),
                window: 1,
            },
            client_net,
            Some(Rc::clone(&history)),
        );
        sim.add_node(NodeId::Client(id), Box::new(client));
        sim.attach(NodeId::Client(id), client_net);
        stats.push(s);
    }

    // Crash 3 of 4 servers while the workload runs.
    for (who, at_ms) in [(1u16, 100u64), (3, 220), (0, 340)] {
        sim.crash_at(NodeId::Server(ServerId(who)), Nanos::from_millis(at_ms));
        println!("scheduled crash of s{who} at {at_ms} ms");
    }

    sim.run_to_quiescence();

    let (mut writes, mut reads, mut retries) = (0u64, 0u64, 0u64);
    for s in &stats {
        let s = s.borrow();
        writes += s.writes_done;
        reads += s.reads_done;
        retries += s.retries;
    }
    println!();
    println!("virtual time elapsed : {}", sim.now());
    println!(
        "operations completed : {writes} writes + {reads} reads = {}",
        writes + reads
    );
    println!("client retries       : {retries} (crashed-server requests re-issued)");
    assert_eq!(writes + reads, 8 * 40, "every operation completed");

    let h = history.borrow();
    let violations = check_conditions(&h);
    assert!(violations.is_empty(), "atomicity violated: {violations:?}");
    println!(
        "linearizability      : {} operations checked, no violations",
        h.len()
    );
    println!("the register survived down to a single server, as the paper promises.");
}
