//! The paper's **Figure 2** illustration run, executed step by step on the
//! deterministic protocol cores, narrating each panel:
//!
//! 1. a write `W(v2)` starts at s1 and its `pre_write` circulates; a read
//!    at s3 (which forwarded the pre-write) must wait, while s5 still
//!    answers `v1` immediately;
//! 2. the pre-write completes its turn, s1 starts the `write` phase; s3's
//!    reader unblocks with `v2` as the commit passes; now s5 must wait;
//! 3. the commit finishes its turn: s1 acknowledges the writer, everyone
//!    answers `v2`.
//!
//! (The paper numbers servers s1..s5; indices 0..4 here.)
//!
//! ```text
//! cargo run --example figure2_walkthrough
//! ```

use hts::core::{Action, Config, ServerCore};
use hts::types::{ClientId, ObjectId, RequestId, RingFrame, ServerId, Value};

struct Ring {
    servers: Vec<ServerCore>,
}

impl Ring {
    fn new(n: u16) -> Ring {
        Ring {
            servers: (0..n)
                .map(|i| ServerCore::new(ServerId(i), n, ObjectId::SINGLE, Config::default()))
                .collect(),
        }
    }

    /// Moves one frame from `from` to its successor, narrating it.
    fn hop(&mut self, from: u16) -> Vec<(u16, Action)> {
        let successor = self.servers[usize::from(from)]
            .successor()
            .expect("ring of five");
        let Some(frame) = self.servers[usize::from(from)].next_frame() else {
            return Vec::new();
        };
        println!(
            "    s{} → s{}: {}",
            from + 1,
            successor.0 + 1,
            describe(&frame)
        );
        self.servers[successor.index()]
            .on_frame(frame)
            .into_iter()
            .map(|a| (successor.0, a))
            .collect()
    }
}

fn describe(frame: &RingFrame) -> String {
    let mut parts = Vec::new();
    if let Some(pw) = &frame.pre_write {
        parts.push(format!("pre_write(v2) {}", pw.tag));
    }
    if let Some(w) = &frame.write {
        parts.push(format!("write(v2) {}", w.tag));
    }
    parts.join(" + ")
}

fn main() {
    let mut ring = Ring::new(5);

    println!("panel 1 ─ W(v2) reaches s1; pre_write(v2) starts its turn");
    ring.servers[0].on_client_write(ClientId(0), RequestId(1), Value::from_static(b"v2"));
    for hop in 0..3 {
        ring.hop(hop);
    }
    // s3 (index 2) forwarded the pre-write: its reader must wait.
    let blocked = ring.servers[2].on_client_read(ClientId(10), RequestId(100));
    assert!(blocked.is_empty());
    println!("    s3: read received → must WAIT (pre_write(v2) pending)");
    // s5 (index 4) has not seen it: replies v1 (here: the initial value).
    let replies = ring.servers[4].on_client_read(ClientId(11), RequestId(101));
    let value1 = match &replies[0] {
        Action::ReadReply { value, .. } => value.clone(),
        other => unreachable!("unexpected action {other:?}"),
    };
    println!(
        "    s5: read received → replies immediately with v1 ({:?})",
        String::from_utf8_lossy(value1.as_bytes())
    );

    println!("panel 2 ─ pre_write(v2) returns to s1; write(v2) starts its turn");
    ring.hop(3); // s4 forwards pre_write
    ring.hop(4); // s5 forwards pre_write back to s1
    let unblocked = [ring.hop(0), ring.hop(1)].concat(); // write(v2) reaches s2, s3
    for (server, action) in unblocked {
        if let Action::ReadReply { value, .. } = action {
            println!(
                "    s{}: blocked read UNBLOCKS with v2 ({:?})",
                server + 1,
                String::from_utf8_lossy(value.as_bytes())
            );
        }
    }

    println!("panel 3 ─ write(v2) completes its turn; s1 acks the writer");
    let mut acked = false;
    for hop in [2u16, 3, 4] {
        for (server, action) in ring.hop(hop) {
            if let Action::WriteAck { .. } = action {
                println!("    s{}: own write(v2) returned → W(v2): ok", server + 1);
                acked = true;
            }
        }
    }
    assert!(acked, "the write must complete");
    let replies = ring.servers[4].on_client_read(ClientId(11), RequestId(102));
    if let Action::ReadReply { value, .. } = &replies[0] {
        println!(
            "    s5: new read replies v2 ({:?}) — everyone converged",
            String::from_utf8_lossy(value.as_bytes())
        );
    }
    println!("done: the run matches the paper's Figure 2 exactly.");
}
