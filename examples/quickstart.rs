//! Quickstart: a real 3-server TCP cluster on localhost.
//!
//! ```text
//! cargo run --example quickstart
//! ```
//!
//! Boots three storage servers in one process (threads + sockets, no
//! simulation), writes and reads through the public client API, then
//! crashes a server and keeps going — the ring splices itself and clients
//! retry transparently.

use std::time::Duration;

use hts::net::{Client, Cluster};
use hts::types::{ServerId, Value};

fn main() -> std::io::Result<()> {
    println!("booting a 3-server ring on localhost…");
    let mut cluster = Cluster::launch(3)?;
    println!("servers listening on {:?}", cluster.addrs());

    let mut client = Client::connect(1, cluster.addrs())?;
    client.set_timeout(Duration::from_millis(300));

    client.write(Value::from_static(b"v1: hello, ring"))?;
    println!("wrote v1; read back: {:?}", text(&client.read()?));

    client.write(Value::from_static(b"v2: atomic and ordered"))?;
    println!("wrote v2; read back: {:?}", text(&client.read()?));

    println!("crashing server s0 (the one this client prefers)…");
    cluster.crash(ServerId(0)).expect("crash");
    std::thread::sleep(Duration::from_millis(150)); // ring splices

    client.write(Value::from_static(b"v3: still here after the crash"))?;
    println!(
        "wrote v3 through the spliced ring; read back: {:?}",
        text(&client.read()?)
    );
    println!(
        "{} of 3 servers remain; storage is available down to 1.",
        cluster.alive()
    );

    cluster.shutdown();
    println!("done.");
    Ok(())
}

fn text(v: &Value) -> String {
    String::from_utf8_lossy(v.as_bytes()).into_owned()
}
