//! A sharded key-value store built from atomic registers — the use case
//! the paper's introduction motivates ("distributed storage systems
//! combine multiple of these read/write objects").
//!
//! ```text
//! cargo run --example kv_store
//! ```

use hts::store::ShardedStore;
use hts::types::ServerId;

fn main() {
    let mut store = ShardedStore::builder().servers(4).seed(1).build();

    println!("populating a user table over a 4-server ring…");
    for i in 0..10u32 {
        store.put(
            format!("user:{i}").as_bytes(),
            format!("name-{i}").into_bytes(),
        );
    }
    println!("10 keys written across register shards");

    let alice = store.get(b"user:3").expect("present");
    println!("get user:3 -> {:?}", String::from_utf8_lossy(&alice));

    store.delete(b"user:3");
    println!("delete user:3 -> {:?}", store.get(b"user:3"));

    println!("crashing two servers; the store keeps answering…");
    store.crash_server(ServerId(1));
    store.crash_server(ServerId(2));
    for i in [0u32, 5, 9] {
        let v = store.get(format!("user:{i}").as_bytes()).expect("survives");
        println!("get user:{i} -> {:?}", String::from_utf8_lossy(&v));
    }
    store.put(b"user:42", b"written post-crash".to_vec());
    println!(
        "put/get after crashes -> {:?}",
        store
            .get(b"user:42")
            .map(|v| String::from_utf8_lossy(&v).into_owned())
    );

    let stats = store.stats();
    println!(
        "totals: {} puts, {} gets, {} retries, {} of virtual time",
        stats.puts,
        stats.gets,
        stats.retries,
        store.elapsed()
    );
}
