//! Property-based whole-system test: for random cluster sizes, workloads,
//! network seeds and crash schedules, every completed client operation
//! must fit a linearizable history.
//!
//! This is the strongest correctness statement in the repository: the
//! protocol cores, the fairness rule, recovery retransmission and orphan
//! adoption all sit under the randomized schedule, and the independent
//! checker (`hts-lincheck`) judges the outcome. Failures print the seed.

use std::cell::RefCell;
use std::rc::Rc;

use hts::core::{Config, OpMix, SimClient, SimServer, WorkloadConfig};
use hts::lincheck::{check_conditions, History};
use hts::sim::packet::{NetworkConfig, PacketSim};
use hts::sim::Nanos;
use hts::types::{ClientId, NodeId, ServerId};
use proptest::prelude::*;

#[derive(Debug, Clone)]
struct Scenario {
    seed: u64,
    n: u16,
    clients: u32,
    ops_per_client: u64,
    read_percent: u8,
    value_size: usize,
    /// (server index, crash time µs) — at least one server survives.
    crashes: Vec<(u16, u64)>,
    fast_path: bool,
}

fn arb_scenario() -> impl Strategy<Value = Scenario> {
    (2u16..=4, any::<u64>()).prop_flat_map(|(n, seed)| {
        let crashes = prop::collection::vec(
            ((0..n), 200u64..4_000),
            0..usize::from(n - 1), // leave at least one alive
        )
        .prop_map(|mut v| {
            v.sort();
            v.dedup_by_key(|(s, _)| *s);
            v
        });
        (
            Just(seed),
            Just(n),
            2u32..=6,
            2u64..=6,
            0u8..=100,
            prop_oneof![Just(64usize), Just(700), Just(4096)],
            crashes,
            any::<bool>(),
        )
            .prop_map(
                |(
                    seed,
                    n,
                    clients,
                    ops_per_client,
                    read_percent,
                    value_size,
                    crashes,
                    fast_path,
                )| {
                    Scenario {
                        seed,
                        n,
                        clients,
                        ops_per_client,
                        read_percent,
                        value_size,
                        crashes,
                        fast_path,
                    }
                },
            )
    })
}

fn run_scenario(s: &Scenario) -> (u64, History) {
    let mut sim = PacketSim::new(s.seed);
    let ring_net = sim.add_network(NetworkConfig::fast_ethernet());
    let client_net = sim.add_network(NetworkConfig::fast_ethernet());
    let config = Config {
        read_fast_path: s.fast_path,
        ..Config::default()
    };
    for i in 0..s.n {
        let id = NodeId::Server(ServerId(i));
        sim.add_node(
            id,
            Box::new(SimServer::new(
                ServerId(i),
                s.n,
                config.clone(),
                ring_net,
                client_net,
            )),
        );
        sim.attach(id, ring_net);
        sim.attach(id, client_net);
    }
    let history = Rc::new(RefCell::new(History::new()));
    let mut stats = Vec::new();
    for c in 0..s.clients {
        let id = ClientId(c);
        let (client, st) = SimClient::new(
            id,
            s.n,
            ServerId((c % u32::from(s.n)) as u16),
            WorkloadConfig {
                mix: OpMix::Mixed {
                    read_percent: s.read_percent,
                },
                value_size: s.value_size,
                op_limit: Some(s.ops_per_client),
                start_delay: Nanos::ZERO,
                timeout: Nanos::from_millis(8),
                window: 1,
            },
            client_net,
            Some(Rc::clone(&history)),
        );
        sim.add_node(NodeId::Client(id), Box::new(client));
        sim.attach(NodeId::Client(id), client_net);
        stats.push(st);
    }
    for (server, at_us) in &s.crashes {
        sim.crash_at(
            NodeId::Server(ServerId(*server)),
            Nanos::from_micros(*at_us),
        );
    }
    sim.run_to_quiescence();
    let done = stats
        .iter()
        .map(|st| {
            let st = st.borrow();
            st.writes_done + st.reads_done
        })
        .sum();
    let history = Rc::try_unwrap(history)
        .map(RefCell::into_inner)
        .unwrap_or_else(|rc| rc.borrow().clone());
    (done, history)
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 48,
        .. ProptestConfig::default()
    })]

    #[test]
    fn random_schedules_and_crashes_stay_linearizable(s in arb_scenario()) {
        let (done, history) = run_scenario(&s);
        // Liveness: every client op completed (at least one server lives).
        prop_assert_eq!(
            done,
            u64::from(s.clients) * s.ops_per_client,
            "lost operations under {:?}",
            s
        );
        // Safety: the observed history is atomic.
        let violations = check_conditions(&history);
        prop_assert!(
            violations.is_empty(),
            "violations {:?} under {:?}\n{}",
            violations,
            s,
            history
        );
    }
}
