//! Smoke test for the workspace wiring itself: every facade module
//! resolves to its `hts-*` crate and re-exports its headline types, and
//! the smallest possible real deployment — a one-server ring over TCP —
//! round-trips a write and a read.
//!
//! This test exists to fail loudly if a future refactor breaks a
//! manifest, a facade re-export, or a crate's `pub use` surface, before
//! anything subtler gets a chance to.

use std::time::Duration;

use hts::net::{Client, Cluster};
use hts::types::Value;

/// Every facade module is wired to its crate: name one load-bearing item
/// from each of the seven runtime crates so a dropped re-export is a
/// compile error here.
#[test]
fn facade_reexports_resolve() {
    // hts::types
    let tag = hts::types::Tag::new(1, hts::types::ServerId(0));
    assert!(tag > hts::types::Tag::ZERO);
    // hts::core
    let config = hts::core::Config::default();
    let _server = hts::core::MultiObjectServer::new(hts::types::ServerId(0), 1, config);
    // hts::sim
    let sim = hts::sim::PacketSim::<hts::types::Message>::new(7);
    assert_eq!(sim.now(), hts::sim::Nanos::ZERO);
    // hts::lincheck
    let history = hts::lincheck::History::new();
    assert_eq!(
        hts::lincheck::check_exhaustive(&history),
        hts::lincheck::Outcome::Linearizable
    );
    // hts::baselines
    let _abd = hts::baselines::abd::AbdServer::new(hts::sim::NetworkId(0));
    // hts::store
    let stats = hts::store::ShardedStore::builder()
        .servers(1)
        .build()
        .stats();
    assert_eq!(stats.puts, 0);
    // hts::net — exercised for real below; here just name the types.
    let _launch: fn(u16) -> std::io::Result<Cluster> = Cluster::launch;
}

/// The minimal end-to-end deployment: one server, one client, one write,
/// one read, over real TCP.
#[test]
fn single_server_ring_roundtrips_over_tcp() {
    let cluster = Cluster::launch(1).expect("launch single-server ring");
    assert_eq!(cluster.alive(), 1);

    let mut client = Client::connect(1, cluster.addrs()).expect("connect");
    client.set_timeout(Duration::from_millis(500));

    client
        .write(Value::from_static(b"smoke"))
        .expect("write over TCP");
    assert_eq!(
        client.read().expect("read over TCP"),
        Value::from_static(b"smoke")
    );
    cluster.shutdown();
}
