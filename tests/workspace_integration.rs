//! Cross-crate integration tests exercised through the `hts` facade.

use std::cell::RefCell;
use std::rc::Rc;
use std::time::Duration;

use hts::core::{Config, OpMix, SimClient, SimServer, WorkloadConfig};
use hts::lincheck::{check_conditions, check_exhaustive_bounded, History, Outcome};
use hts::net::{Client, Cluster};
use hts::sim::packet::{NetworkConfig, PacketSim};
use hts::sim::Nanos;
use hts::store::ShardedStore;
use hts::types::{ClientId, NodeId, ServerId, Value};

/// The headline behaviour end to end on real TCP: atomic writes/reads,
/// crash tolerance down to one server.
#[test]
fn tcp_cluster_survives_to_a_single_server() {
    let mut cluster = Cluster::launch(3).expect("launch");
    let mut client = Client::connect(7, cluster.addrs()).expect("client");
    client.set_timeout(Duration::from_millis(300));

    client.write(Value::from_u64(1)).expect("write 1");
    cluster.crash(ServerId(0)).expect("crash");
    std::thread::sleep(Duration::from_millis(100));
    client.write(Value::from_u64(2)).expect("write 2");
    cluster.crash(ServerId(1)).expect("crash");
    std::thread::sleep(Duration::from_millis(100));
    client.write(Value::from_u64(3)).expect("write 3");
    assert_eq!(client.read().expect("read"), Value::from_u64(3));
    assert_eq!(cluster.alive(), 1);
    cluster.shutdown();
}

/// Sim + core + lincheck: a contended mixed workload with a mid-run crash
/// stays linearizable (checked both fast and exhaustively).
#[test]
fn simulated_contention_with_crash_is_linearizable() {
    let n = 3;
    let mut sim = PacketSim::new(99);
    let ring_net = sim.add_network(NetworkConfig::fast_ethernet());
    let client_net = sim.add_network(NetworkConfig::fast_ethernet());
    for i in 0..n {
        let id = NodeId::Server(ServerId(i));
        sim.add_node(
            id,
            Box::new(SimServer::new(
                ServerId(i),
                n,
                Config::default(),
                ring_net,
                client_net,
            )),
        );
        sim.attach(id, ring_net);
        sim.attach(id, client_net);
    }
    let history = Rc::new(RefCell::new(History::new()));
    let mut stats = Vec::new();
    for c in 0..6u32 {
        let id = ClientId(c);
        let (client, s) = SimClient::new(
            id,
            n,
            ServerId((c % u32::from(n)) as u16),
            WorkloadConfig {
                mix: OpMix::Mixed { read_percent: 50 },
                value_size: 512,
                op_limit: Some(6),
                start_delay: Nanos::ZERO,
                timeout: Nanos::from_millis(10),
                window: 1,
            },
            client_net,
            Some(Rc::clone(&history)),
        );
        sim.add_node(NodeId::Client(id), Box::new(client));
        sim.attach(NodeId::Client(id), client_net);
        stats.push(s);
    }
    sim.crash_at(NodeId::Server(ServerId(2)), Nanos::from_millis(3));
    sim.run_to_quiescence();

    let done: u64 = stats
        .iter()
        .map(|s| {
            let s = s.borrow();
            s.writes_done + s.reads_done
        })
        .sum();
    assert_eq!(done, 36);

    let h = history.borrow();
    let violations = check_conditions(&h);
    assert!(violations.is_empty(), "{violations:?}\n{h}");
    let outcome = check_exhaustive_bounded(&h, 3_000_000);
    assert!(
        !matches!(outcome, Outcome::NotLinearizable(_)),
        "exhaustive checker rejected: {outcome:?}"
    );
}

/// Store + core + sim: the motivating KV use case stays correct across a
/// crash.
#[test]
fn kv_store_roundtrip_across_crash() {
    let mut store = ShardedStore::builder().servers(3).seed(4).build();
    for i in 0..12u32 {
        store.put(format!("k{i}").as_bytes(), vec![i as u8; 100]);
    }
    store.crash_server(ServerId(1));
    for i in 0..12u32 {
        assert_eq!(
            store.get(format!("k{i}").as_bytes()),
            Some(vec![i as u8; 100]),
            "k{i} after crash"
        );
    }
}

/// The paper's headline scaling claim, asserted end to end through the
/// facade: read throughput grows ~linearly, write throughput stays flat.
#[test]
fn headline_scaling_claims_hold() {
    use hts_bench::{run_ring, Params};
    let quick = |n: u16, readers: u32, writers: u32| Params {
        n,
        readers_per_server: readers,
        writers_per_server: writers,
        value_size: 16 * 1024,
        warmup: Nanos::from_millis(100),
        measure: Nanos::from_millis(400),
        ..Params::default()
    };
    let r2 = run_ring(&quick(2, 2, 0));
    let r8 = run_ring(&quick(8, 2, 0));
    let read_scaling = r8.read_mbps / r2.read_mbps;
    assert!(
        (3.5..=4.5).contains(&read_scaling),
        "4x servers should give ~4x reads, got {read_scaling:.2}"
    );
    let w2 = run_ring(&quick(2, 0, 4));
    let w8 = run_ring(&quick(8, 0, 4));
    let write_scaling = w8.write_mbps / w2.write_mbps;
    assert!(
        (0.75..=1.35).contains(&write_scaling),
        "write throughput should stay flat, got {write_scaling:.2}"
    );
}
