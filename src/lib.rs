//! # hts — A High Throughput Atomic Storage Algorithm
//!
//! A complete Rust implementation and experimental reproduction of
//! *"A High Throughput Atomic Storage Algorithm"* (Guerraoui, Kostić,
//! Levy, Quéma — ICDCS 2007): a multi-writer multi-reader **atomic
//! register** served by a ring of cluster servers that tolerates the crash
//! of all but one server, serves reads **locally** (throughput scales
//! linearly with servers) and pays for atomicity on the write path with a
//! pre-write/write double ring circulation.
//!
//! This crate is a facade re-exporting the workspace:
//!
//! | module | crate | contents |
//! |---|---|---|
//! | [`types`] | `hts-types` | ids, tags, values, messages, wire codec |
//! | [`core`] | `hts-core` | the algorithm (server/client state machines, fairness, recovery) |
//! | [`sim`] | `hts-sim` | deterministic packet-level + round-model simulators |
//! | [`lincheck`] | `hts-lincheck` | linearizability checkers for register histories |
//! | [`baselines`] | `hts-baselines` | ABD quorum, chain replication, TOB register, Fig. 1 toys |
//! | [`net`] | `hts-net` | real TCP runtime with failure detection |
//! | [`store`] | `hts-store` | sharded key-value store over many registers |
//! | [`wal`] | `hts-wal` | write-ahead log, snapshots and crash recovery for servers |
//!
//! Start with `examples/quickstart.rs` (a real TCP cluster on localhost)
//! or `examples/figure2_walkthrough.rs` (the paper's illustration run,
//! traced on the simulator). The benchmark binaries regenerating every
//! figure of the paper live in `hts-bench`; see README.md and
//! EXPERIMENTS.md.
//!
//! # Examples
//!
//! ```
//! use hts::net::{Client, Cluster};
//! use hts::types::Value;
//!
//! let cluster = Cluster::launch(3)?;
//! let mut client = Client::connect(1, cluster.addrs())?;
//! client.write(Value::from_static(b"hello, ring"))?;
//! assert_eq!(client.read()?.as_bytes(), b"hello, ring");
//! cluster.shutdown();
//! # Ok::<(), std::io::Error>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use hts_baselines as baselines;
pub use hts_core as core;
pub use hts_lincheck as lincheck;
pub use hts_net as net;
pub use hts_sim as sim;
pub use hts_store as store;
pub use hts_types as types;
pub use hts_wal as wal;
