//! Offline stand-in for the `bytes` crate (see `vendor/README.md`).
//!
//! Implements the subset the `hts` workspace uses: [`Bytes`] (an
//! immutable, cheaply-cloneable byte string whose clones share one
//! allocation), [`BytesMut`] (a growable buffer that freezes into
//! [`Bytes`]), the [`Buf`] reader trait for `&[u8]` and the [`BufMut`]
//! writer trait for [`BytesMut`]. Integers are big-endian, as in the
//! real crate.

use std::fmt;
use std::hash::{Hash, Hasher};
use std::ops::{Bound, Deref, RangeBounds};
use std::sync::Arc;

/// An immutable byte string; cloning is a reference-count bump.
#[derive(Clone)]
pub struct Bytes(Repr);

#[derive(Clone)]
enum Repr {
    Static(&'static [u8]),
    /// A window `[off, off + len)` over one shared allocation; slicing
    /// produces further windows over the same allocation.
    Shared {
        buf: Arc<Vec<u8>>,
        off: usize,
        len: usize,
    },
}

impl Bytes {
    /// The empty byte string (no allocation).
    pub fn new() -> Self {
        Bytes(Repr::Static(&[]))
    }

    /// Wraps static data without copying.
    pub fn from_static(data: &'static [u8]) -> Self {
        Bytes(Repr::Static(data))
    }

    /// Copies `data` into a new shared allocation.
    pub fn copy_from_slice(data: &[u8]) -> Self {
        Bytes::from(data.to_vec())
    }

    /// A view of `range` sharing this value's allocation: no copy, the
    /// clone of the backing reference count is the whole cost.
    ///
    /// # Panics
    ///
    /// Panics when `range` is out of bounds or inverted, as in the real
    /// crate.
    pub fn slice(&self, range: impl RangeBounds<usize>) -> Bytes {
        let start = match range.start_bound() {
            Bound::Included(&s) => s,
            Bound::Excluded(&s) => s + 1,
            Bound::Unbounded => 0,
        };
        let end = match range.end_bound() {
            Bound::Included(&e) => e + 1,
            Bound::Excluded(&e) => e,
            Bound::Unbounded => self.len(),
        };
        assert!(
            start <= end && end <= self.len(),
            "slice [{start}, {end}) out of bounds of {} bytes",
            self.len()
        );
        match &self.0 {
            Repr::Static(s) => Bytes(Repr::Static(&s[start..end])),
            Repr::Shared { buf, off, .. } => Bytes(Repr::Shared {
                buf: Arc::clone(buf),
                off: off + start,
                len: end - start,
            }),
        }
    }

    /// Recovers the backing allocation for reuse when this is the only
    /// handle to it (and a full-range view of it). Otherwise hands the
    /// value back untouched — some other `Bytes` still aliases the
    /// buffer.
    pub fn try_into_mut(self) -> Result<BytesMut, Bytes> {
        match self.0 {
            Repr::Shared { buf, off: 0, len } if len == buf.len() => match Arc::try_unwrap(buf) {
                Ok(v) => Ok(BytesMut(v)),
                Err(buf) => Err(Bytes(Repr::Shared { buf, off: 0, len })),
            },
            repr => Err(Bytes(repr)),
        }
    }
}

impl Deref for Bytes {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        match &self.0 {
            Repr::Static(s) => s,
            Repr::Shared { buf, off, len } => &buf[*off..off + len],
        }
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self
    }
}

impl Default for Bytes {
    fn default() -> Self {
        Bytes::new()
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        let len = v.len();
        Bytes(Repr::Shared {
            buf: Arc::new(v),
            off: 0,
            len,
        })
    }
}

impl From<&'static [u8]> for Bytes {
    fn from(s: &'static [u8]) -> Self {
        Bytes::from_static(s)
    }
}

impl From<BytesMut> for Bytes {
    fn from(b: BytesMut) -> Self {
        b.freeze()
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self[..] == other[..]
    }
}

impl Eq for Bytes {}

impl Hash for Bytes {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self[..].hash(state);
    }
}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b\"")?;
        for &b in self.iter() {
            for esc in std::ascii::escape_default(b) {
                write!(f, "{}", esc as char)?;
            }
        }
        write!(f, "\"")
    }
}

/// A growable byte buffer; freeze it into an immutable [`Bytes`].
#[derive(Default, Clone, PartialEq, Eq)]
pub struct BytesMut(Vec<u8>);

impl BytesMut {
    /// An empty buffer.
    pub fn new() -> Self {
        BytesMut(Vec::new())
    }

    /// An empty buffer that can hold `cap` bytes without reallocating.
    pub fn with_capacity(cap: usize) -> Self {
        BytesMut(Vec::with_capacity(cap))
    }

    /// Appends `data` to the buffer.
    pub fn extend_from_slice(&mut self, data: &[u8]) {
        self.0.extend_from_slice(data);
    }

    /// Reserves capacity for at least `additional` more bytes.
    pub fn reserve(&mut self, additional: usize) {
        self.0.reserve(additional);
    }

    /// Bytes the buffer can hold without reallocating.
    pub fn capacity(&self) -> usize {
        self.0.capacity()
    }

    /// Empties the buffer.
    pub fn clear(&mut self) {
        self.0.clear();
    }

    /// Converts into an immutable [`Bytes`] without copying.
    pub fn freeze(self) -> Bytes {
        Bytes::from(self.0)
    }

    /// Grows to exactly `len` bytes, filling with zeroes (for
    /// `read_exact` targets).
    pub fn resize(&mut self, len: usize, fill: u8) {
        self.0.resize(len, fill);
    }
}

impl From<Vec<u8>> for BytesMut {
    fn from(v: Vec<u8>) -> Self {
        BytesMut(v)
    }
}

impl Deref for BytesMut {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.0
    }
}

impl std::ops::DerefMut for BytesMut {
    fn deref_mut(&mut self) -> &mut [u8] {
        &mut self.0
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        &self.0
    }
}

impl fmt::Debug for BytesMut {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(&Bytes::copy_from_slice(&self.0), f)
    }
}

/// Sequential big-endian reader; implemented for `&[u8]`.
///
/// The getters panic when the source is exhausted, as in the real crate;
/// callers bounds-check with [`Buf::remaining`] first.
pub trait Buf {
    /// Bytes left to read.
    fn remaining(&self) -> usize;
    /// Skips `n` bytes.
    fn advance(&mut self, n: usize);
    /// Reads one byte.
    fn get_u8(&mut self) -> u8;
    /// Reads a big-endian `u16`.
    fn get_u16(&mut self) -> u16;
    /// Reads a big-endian `u32`.
    fn get_u32(&mut self) -> u32;
    /// Reads a big-endian `u64`.
    fn get_u64(&mut self) -> u64;
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn advance(&mut self, n: usize) {
        *self = &self[n..];
    }

    fn get_u8(&mut self) -> u8 {
        let v = self[0];
        self.advance(1);
        v
    }

    fn get_u16(&mut self) -> u16 {
        let v = u16::from_be_bytes(self[..2].try_into().unwrap());
        self.advance(2);
        v
    }

    fn get_u32(&mut self) -> u32 {
        let v = u32::from_be_bytes(self[..4].try_into().unwrap());
        self.advance(4);
        v
    }

    fn get_u64(&mut self) -> u64 {
        let v = u64::from_be_bytes(self[..8].try_into().unwrap());
        self.advance(8);
        v
    }
}

/// Sequential big-endian writer; implemented for [`BytesMut`].
pub trait BufMut {
    /// Appends raw bytes.
    fn put_slice(&mut self, data: &[u8]);
    /// Appends one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }
    /// Appends a big-endian `u16`.
    fn put_u16(&mut self, v: u16) {
        self.put_slice(&v.to_be_bytes());
    }
    /// Appends a big-endian `u32`.
    fn put_u32(&mut self, v: u32) {
        self.put_slice(&v.to_be_bytes());
    }
    /// Appends a big-endian `u64`.
    fn put_u64(&mut self, v: u64) {
        self.put_slice(&v.to_be_bytes());
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, data: &[u8]) {
        self.extend_from_slice(data);
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, data: &[u8]) {
        self.extend_from_slice(data);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bytes_clone_shares_allocation() {
        let a = Bytes::from(vec![1u8, 2, 3]);
        let b = a.clone();
        assert_eq!(a.as_ptr(), b.as_ptr());
        assert_eq!(a, b);
    }

    #[test]
    fn slice_shares_the_allocation() {
        let a = Bytes::from(vec![0u8, 1, 2, 3, 4, 5]);
        let s = a.slice(2..5);
        assert_eq!(&s[..], &[2, 3, 4]);
        assert_eq!(s.as_ptr(), unsafe { a.as_ptr().add(2) });
        // Slicing a slice stays within the same allocation.
        let t = s.slice(1..);
        assert_eq!(&t[..], &[3, 4]);
        assert_eq!(t.as_ptr(), unsafe { a.as_ptr().add(3) });
        // Static data slices without allocating.
        let st = Bytes::from_static(b"hello").slice(1..3);
        assert_eq!(&st[..], b"el");
    }

    #[test]
    #[should_panic]
    fn slice_out_of_bounds_panics() {
        let _ = Bytes::from(vec![1u8, 2]).slice(1..3);
    }

    #[test]
    fn try_into_mut_reclaims_only_unique_full_views() {
        let a = Bytes::from(vec![1u8, 2, 3]);
        let ptr = a.as_ptr();
        let m = a.try_into_mut().expect("unique full view reclaims");
        assert_eq!(m.as_ptr(), ptr);

        let b = Bytes::from(vec![1u8, 2, 3]);
        let alias = b.slice(0..1);
        let b = b
            .try_into_mut()
            .expect_err("aliased buffer must not reclaim");
        drop(alias);
        assert!(b.slice(1..).try_into_mut().is_err(), "partial view");
        assert!(b.try_into_mut().is_ok(), "last full view reclaims");
    }

    #[test]
    fn round_trip_ints() {
        let mut buf = BytesMut::with_capacity(16);
        buf.put_u8(7);
        buf.put_u16(300);
        buf.put_u32(70_000);
        buf.put_u64(u64::MAX - 1);
        let frozen = buf.freeze();
        let mut cursor = &frozen[..];
        assert_eq!(cursor.get_u8(), 7);
        assert_eq!(cursor.get_u16(), 300);
        assert_eq!(cursor.get_u32(), 70_000);
        assert_eq!(cursor.get_u64(), u64::MAX - 1);
        assert_eq!(cursor.remaining(), 0);
    }
}
