//! Offline stand-in for the `rand` crate (see `vendor/README.md`).
//!
//! Provides [`Rng::gen_range`]/[`Rng::gen_bool`], [`SeedableRng`] and
//! [`rngs::SmallRng`] (a SplitMix64 generator: small state, excellent
//! distribution for simulation jitter, fully deterministic per seed —
//! which is all the deterministic simulator needs).

use std::ops::{Range, RangeInclusive};

/// Low-level generator interface: a stream of `u64`s.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// Construction from a `u64` seed.
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is a pure function of `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// User-facing sampling helpers, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// Uniform sample from `range`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p={p} out of [0,1]");
        // 53 high bits give a uniform float in [0, 1).
        let unit = (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        unit < p
    }
}

impl<T: RngCore> Rng for T {}

/// A range that can be sampled uniformly.
pub trait SampleRange<T> {
    /// Draws one sample using `rng`.
    fn sample<R: RngCore>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample<R: RngCore>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as u128) - (self.start as u128);
                // Modulo bias is < 2^-64 per unit of span; irrelevant for
                // simulation jitter and test-case generation.
                let off = (rng.next_u64() as u128) % span;
                (self.start as u128 + off) as $t
            }
        }

        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample<R: RngCore>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end as u128) - (start as u128) + 1;
                let off = (rng.next_u64() as u128) % span;
                (start as u128 + off) as $t
            }
        }
    )*};
}

impl_sample_range!(u8, u16, u32, u64, usize);

pub mod rngs {
    //! Concrete generators.

    use super::{RngCore, SeedableRng};

    /// A small, fast, deterministic generator (SplitMix64).
    #[derive(Clone, Debug)]
    pub struct SmallRng {
        state: u64,
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            SmallRng { state: seed }
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            // SplitMix64 (Steele, Lea, Flood 2014). Passes BigCrush when
            // used as a stream; one add + two xor-shift-multiplies.
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0u64..1_000_000), b.gen_range(0u64..1_000_000));
        }
    }

    #[test]
    fn ranges_respected() {
        let mut rng = SmallRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = rng.gen_range(10u32..20);
            assert!((10..20).contains(&v));
            let w = rng.gen_range(3u16..=5);
            assert!((3..=5).contains(&w));
        }
        // Full-width range must not overflow.
        let _ = rng.gen_range(0u64..=u64::MAX);
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = SmallRng::seed_from_u64(1);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }
}
