//! No-op stand-ins for serde's derive macros (offline vendor stub).
//!
//! The `hts` workspace hand-rolls its wire format (`hts_types::codec`);
//! the serde derives on its types exist for downstream interop when the
//! real serde is swapped in. Here they expand to nothing.

use proc_macro::TokenStream;

/// Expands to nothing; accepts anything `#[derive(Serialize)]` accepts.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// Expands to nothing; accepts anything `#[derive(Deserialize)]` accepts.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
