//! Offline stand-in for `serde` (see `vendor/README.md`).
//!
//! Provides the `Serialize`/`Deserialize` names in both the type and
//! macro namespaces so `use serde::{Deserialize, Serialize}` plus
//! `#[derive(Serialize, Deserialize)]` compile. The derives are no-ops:
//! nothing in this workspace serializes through serde (the wire format
//! is `hts_types::codec`).

pub use serde_derive::{Deserialize, Serialize};

/// Marker trait mirroring `serde::Serialize`. Never implemented by the
/// no-op derive; present only so bounds and imports resolve.
pub trait Serialize {}

/// Marker trait mirroring `serde::Deserialize`. Never implemented by the
/// no-op derive; present only so bounds and imports resolve.
pub trait Deserialize<'de> {}
