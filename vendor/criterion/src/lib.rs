//! Offline stand-in for the `criterion` crate (see `vendor/README.md`).
//!
//! Supports the `criterion_group!`/`criterion_main!` + benchmark-group
//! shape used by `hts-bench`'s `figures` bench. Each benchmark runs a
//! handful of timed iterations and prints the mean wall-clock time — no
//! statistical analysis, warm-up calibration or reports.

use std::time::Instant;

/// Entry point handed to every benchmark function.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        println!("group {name}");
        BenchmarkGroup {
            _criterion: self,
            sample_size: 10,
        }
    }

    /// Registers a stand-alone benchmark.
    pub fn bench_function<F>(&mut self, id: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_bench(id, 10, f);
        self
    }
}

/// A named set of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets how many timed samples each benchmark takes.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n;
        self
    }

    /// Runs one benchmark in the group.
    pub fn bench_function<F>(&mut self, id: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_bench(id, self.sample_size, f);
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

fn run_bench<F: FnMut(&mut Bencher)>(id: &str, sample_size: usize, mut f: F) {
    let mut bencher = Bencher {
        iters: sample_size.max(1) as u64,
        elapsed_ns: 0,
        done: 0,
    };
    f(&mut bencher);
    match bencher.elapsed_ns.checked_div(bencher.done) {
        Some(mean_ns) => println!("  {id}: {} iters, mean {mean_ns} ns/iter", bencher.done),
        None => println!("  {id}: routine never called iter()"),
    }
}

/// Times the closure passed to [`Bencher::iter`].
pub struct Bencher {
    iters: u64,
    elapsed_ns: u64,
    done: u64,
}

impl Bencher {
    /// Runs `routine` for the configured number of iterations, timing
    /// each; results are kept alive so the optimizer cannot delete the
    /// work (callers additionally use `std::hint::black_box`).
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        for _ in 0..self.iters {
            let start = Instant::now();
            let out = routine();
            self.elapsed_ns += u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX);
            drop(out);
            self.done += 1;
        }
    }
}

/// Declares a function that runs the listed benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_runs_and_counts_iterations() {
        let mut c = Criterion::default();
        let mut calls = 0u64;
        {
            let mut g = c.benchmark_group("g");
            g.sample_size(3);
            g.bench_function("b", |b| b.iter(|| calls += 1));
            g.finish();
        }
        assert_eq!(calls, 3);
    }
}
