//! Offline stand-in for the `crossbeam` crate (see `vendor/README.md`).
//!
//! Only [`channel`] is provided, layered over `std::sync::mpsc`: the
//! `hts-net` runtime needs multi-producer channels with a cloneable
//! sender, blocking bounded sends (its ring-writer backpressure), and
//! receiver iteration — all of which std's channels supply.

pub mod channel {
    //! MPSC channels with a cloneable [`Sender`].

    use std::fmt;
    use std::sync::mpsc;
    use std::time::Duration;

    /// Creates an unbounded channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::channel();
        (Sender(Flavor::Unbounded(tx)), Receiver(rx))
    }

    /// Creates a bounded channel; sends block while `cap` messages are
    /// queued (`cap = 0` gives a rendezvous channel).
    pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::sync_channel(cap);
        (Sender(Flavor::Bounded(tx)), Receiver(rx))
    }

    /// The sending half; cloneable, one clone per producer.
    pub struct Sender<T>(Flavor<T>);

    enum Flavor<T> {
        Unbounded(mpsc::Sender<T>),
        Bounded(mpsc::SyncSender<T>),
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            Sender(match &self.0 {
                Flavor::Unbounded(tx) => Flavor::Unbounded(tx.clone()),
                Flavor::Bounded(tx) => Flavor::Bounded(tx.clone()),
            })
        }
    }

    impl<T> Sender<T> {
        /// Sends `msg`, blocking if the channel is bounded and full.
        ///
        /// # Errors
        ///
        /// Returns the message back if all receivers are gone.
        pub fn send(&self, msg: T) -> Result<(), SendError<T>> {
            match &self.0 {
                Flavor::Unbounded(tx) => tx.send(msg).map_err(|e| SendError(e.0)),
                Flavor::Bounded(tx) => tx.send(msg).map_err(|e| SendError(e.0)),
            }
        }
    }

    /// The receiving half.
    pub struct Receiver<T>(mpsc::Receiver<T>);

    impl<T> Receiver<T> {
        /// Blocks until a message arrives.
        ///
        /// # Errors
        ///
        /// Fails once the channel is empty and all senders are gone.
        pub fn recv(&self) -> Result<T, RecvError> {
            self.0.recv().map_err(|_| RecvError)
        }

        /// Non-blocking receive.
        ///
        /// # Errors
        ///
        /// `Empty` when no message is queued, `Disconnected` when all
        /// senders are gone.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            self.0.try_recv().map_err(|e| match e {
                mpsc::TryRecvError::Empty => TryRecvError::Empty,
                mpsc::TryRecvError::Disconnected => TryRecvError::Disconnected,
            })
        }

        /// Receive with a deadline.
        ///
        /// # Errors
        ///
        /// `Timeout` if nothing arrived within `timeout`, `Disconnected`
        /// when all senders are gone.
        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            self.0.recv_timeout(timeout).map_err(|e| match e {
                mpsc::RecvTimeoutError::Timeout => RecvTimeoutError::Timeout,
                mpsc::RecvTimeoutError::Disconnected => RecvTimeoutError::Disconnected,
            })
        }

        /// A blocking iterator that ends when all senders are gone.
        pub fn iter(&self) -> Iter<'_, T> {
            Iter { rx: self }
        }
    }

    impl<'a, T> IntoIterator for &'a Receiver<T> {
        type Item = T;
        type IntoIter = Iter<'a, T>;

        fn into_iter(self) -> Iter<'a, T> {
            self.iter()
        }
    }

    impl<T> IntoIterator for Receiver<T> {
        type Item = T;
        type IntoIter = IntoIter<T>;

        fn into_iter(self) -> IntoIter<T> {
            IntoIter { rx: self }
        }
    }

    /// Borrowing blocking iterator over received messages.
    pub struct Iter<'a, T> {
        rx: &'a Receiver<T>,
    }

    impl<T> Iterator for Iter<'_, T> {
        type Item = T;

        fn next(&mut self) -> Option<T> {
            self.rx.recv().ok()
        }
    }

    /// Owning blocking iterator over received messages.
    pub struct IntoIter<T> {
        rx: Receiver<T>,
    }

    impl<T> Iterator for IntoIter<T> {
        type Item = T;

        fn next(&mut self) -> Option<T> {
            self.rx.recv().ok()
        }
    }

    /// All receivers disconnected; the unsent message is returned.
    pub struct SendError<T>(pub T);

    impl<T> fmt::Debug for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("SendError(..)")
        }
    }

    /// All senders disconnected and the channel is drained.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    /// Outcome of [`Receiver::try_recv`] failure.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum TryRecvError {
        /// Nothing queued right now.
        Empty,
        /// All senders gone.
        Disconnected,
    }

    /// Outcome of [`Receiver::recv_timeout`] failure.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum RecvTimeoutError {
        /// Deadline passed with nothing received.
        Timeout,
        /// All senders gone.
        Disconnected,
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn unbounded_roundtrip_multi_producer() {
            let (tx, rx) = unbounded::<u32>();
            let tx2 = tx.clone();
            std::thread::spawn(move || tx2.send(1).unwrap());
            tx.send(2).unwrap();
            drop(tx);
            let mut got: Vec<u32> = rx.iter().collect();
            got.sort_unstable();
            assert_eq!(got, [1, 2]);
        }

        #[test]
        fn bounded_one_provides_backpressure() {
            let (tx, rx) = bounded::<u32>(1);
            tx.send(1).unwrap(); // fills the slot; a second send would block
            assert_eq!(rx.try_recv(), Ok(1));
            assert_eq!(rx.try_recv(), Err(TryRecvError::Empty));
        }
    }
}
