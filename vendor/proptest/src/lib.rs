//! Offline stand-in for the `proptest` crate (see `vendor/README.md`).
//!
//! Random-input property testing with the proptest surface the `hts`
//! workspace uses: the [`proptest!`] macro, [`Strategy`] combinators
//! (`prop_map`, `prop_flat_map`, tuples, ranges, [`Just`],
//! [`prop_oneof!`]), [`any`], `prop::collection::vec`,
//! `prop::option::of`, `prop::sample::Index`, and
//! [`ProptestConfig`](test_runner::ProptestConfig).
//!
//! Differences from real proptest, by design:
//!
//! * **no shrinking** — a failing case reports the generated inputs
//!   (`{:?}`) and its case number instead of a minimized counterexample;
//! * **deterministic seeding** — the RNG stream is a pure function of
//!   the test's `module_path!()::name`, so failures reproduce exactly
//!   under plain `cargo test`;
//! * uniform value distributions (no edge-case biasing).
//!
//! [`Strategy`]: strategy::Strategy
//! [`Just`]: strategy::Just
//! [`any`]: arbitrary::any

pub mod test_runner {
    //! Test configuration and the deterministic RNG behind generation.

    /// Subset of proptest's run configuration.
    #[derive(Clone, Debug)]
    pub struct ProptestConfig {
        /// Number of random cases each property runs.
        pub cases: u32,
        /// Accepted for compatibility with the real crate; this stub
        /// never shrinks, so the bound is ignored.
        pub max_shrink_iters: u32,
    }

    impl ProptestConfig {
        /// A config running `cases` cases, other options default.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig {
                cases,
                ..ProptestConfig::default()
            }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig {
                cases: 256,
                max_shrink_iters: 1024,
            }
        }
    }

    /// SplitMix64 stream seeded from the test's qualified name.
    #[derive(Clone, Debug)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Deterministic RNG for the named test.
        pub fn for_test(qualified_name: &str) -> Self {
            // FNV-1a over the name gives a stable, well-mixed seed.
            let mut seed = 0xCBF2_9CE4_8422_2325u64;
            for b in qualified_name.bytes() {
                seed ^= u64::from(b);
                seed = seed.wrapping_mul(0x0000_0100_0000_01B3);
            }
            TestRng { state: seed }
        }

        /// The next 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform sample in `0..bound` (`bound` must be nonzero).
        pub fn below(&mut self, bound: u64) -> u64 {
            assert!(bound > 0, "cannot sample empty range");
            self.next_u64() % bound
        }
    }
}

pub mod strategy {
    //! The [`Strategy`] trait and its combinators.

    use std::fmt;
    use std::ops::{Range, RangeInclusive};

    use crate::test_runner::TestRng;

    /// A recipe for generating values of one type.
    pub trait Strategy {
        /// The generated type; `Debug` so failing inputs can be printed.
        type Value: fmt::Debug;

        /// Draws one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Transforms generated values with `f`.
        fn prop_map<U, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            U: fmt::Debug,
            F: Fn(Self::Value) -> U,
        {
            Map { source: self, f }
        }

        /// Builds a second strategy from each generated value and draws
        /// from it — for strategies whose shape depends on earlier draws.
        fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
            S: Strategy,
            F: Fn(Self::Value) -> S,
        {
            FlatMap { source: self, f }
        }
    }

    /// See [`Strategy::prop_map`].
    pub struct Map<S, F> {
        source: S,
        f: F,
    }

    impl<S, U, F> Strategy for Map<S, F>
    where
        S: Strategy,
        U: fmt::Debug,
        F: Fn(S::Value) -> U,
    {
        type Value = U;

        fn generate(&self, rng: &mut TestRng) -> U {
            (self.f)(self.source.generate(rng))
        }
    }

    /// See [`Strategy::prop_flat_map`].
    pub struct FlatMap<S, F> {
        source: S,
        f: F,
    }

    impl<S, S2, F> Strategy for FlatMap<S, F>
    where
        S: Strategy,
        S2: Strategy,
        F: Fn(S::Value) -> S2,
    {
        type Value = S2::Value;

        fn generate(&self, rng: &mut TestRng) -> S2::Value {
            (self.f)(self.source.generate(rng)).generate(rng)
        }
    }

    /// Always generates a clone of the given value.
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone + fmt::Debug>(pub T);

    impl<T: Clone + fmt::Debug> Strategy for Just<T> {
        type Value = T;

        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// Uniform choice between heterogeneous strategies generating one
    /// type; built by [`prop_oneof!`](crate::prop_oneof).
    pub struct Union<T: fmt::Debug>(Vec<Box<dyn Strategy<Value = T>>>);

    impl<T: fmt::Debug> Union<T> {
        /// A union over the given alternatives (must be non-empty).
        pub fn new(options: Vec<Box<dyn Strategy<Value = T>>>) -> Self {
            assert!(!options.is_empty(), "prop_oneof! needs an alternative");
            Union(options)
        }
    }

    impl<T: fmt::Debug> Strategy for Union<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            let i = rng.below(self.0.len() as u64) as usize;
            self.0[i].generate(rng)
        }
    }

    /// Type-erases a strategy for [`Union`].
    pub fn boxed<S>(s: S) -> Box<dyn Strategy<Value = S::Value>>
    where
        S: Strategy + 'static,
    {
        Box::new(s)
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "cannot sample empty range");
                    let span = (self.end as u128) - (self.start as u128);
                    (self.start as u128 + u128::from(rng.next_u64()) % span) as $t
                }
            }

            impl Strategy for RangeInclusive<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (start, end) = (*self.start(), *self.end());
                    assert!(start <= end, "cannot sample empty range");
                    let span = (end as u128) - (start as u128) + 1;
                    (start as u128 + u128::from(rng.next_u64()) % span) as $t
                }
            }
        )*};
    }

    impl_range_strategy!(u8, u16, u32, u64, usize);

    macro_rules! impl_tuple_strategy {
        ($($s:ident),+) => {
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);

                #[allow(non_snake_case)]
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($s,)+) = self;
                    ($($s.generate(rng),)+)
                }
            }
        };
    }

    impl_tuple_strategy!(A, B);
    impl_tuple_strategy!(A, B, C);
    impl_tuple_strategy!(A, B, C, D);
    impl_tuple_strategy!(A, B, C, D, E);
    impl_tuple_strategy!(A, B, C, D, E, F);
    impl_tuple_strategy!(A, B, C, D, E, F, G);
    impl_tuple_strategy!(A, B, C, D, E, F, G, H);
}

pub mod arbitrary {
    //! Default strategies per type ([`any`]).

    use std::fmt;
    use std::marker::PhantomData;

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Types with a canonical generation recipe.
    pub trait Arbitrary: Sized + fmt::Debug {
        /// Draws one value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! impl_arbitrary_uint {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }

    impl_arbitrary_uint!(u8, u16, u32, u64, usize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    /// The canonical strategy for `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }

    /// See [`any`].
    #[derive(Clone, Copy, Debug)]
    pub struct Any<T>(PhantomData<T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }
}

pub mod collection {
    //! Collection strategies (`prop::collection::vec`).

    use std::ops::Range;

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Vectors of `element` with a length drawn from `size`.
    ///
    /// An empty `size` range (`n..n`) always yields length `n`, matching
    /// proptest's treatment of degenerate size ranges closely enough for
    /// the guards used in this workspace.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    /// See [`vec`].
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = if self.size.start >= self.size.end {
                self.size.start
            } else {
                let span = (self.size.end - self.size.start) as u64;
                self.size.start + rng.below(span) as usize
            };
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod option {
    //! Option strategies (`prop::option::of`).

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// `Some` of the inner strategy ~80% of the time, else `None`.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy { inner }
    }

    /// See [`of`].
    pub struct OptionStrategy<S> {
        inner: S,
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
            if rng.below(5) == 0 {
                None
            } else {
                Some(self.inner.generate(rng))
            }
        }
    }
}

pub mod sample {
    //! Sampling helpers (`prop::sample::Index`).

    use crate::arbitrary::Arbitrary;
    use crate::test_runner::TestRng;

    /// A position into a collection whose size is unknown at generation
    /// time; resolve it with [`Index::index`].
    #[derive(Clone, Copy, Debug)]
    pub struct Index(usize);

    impl Index {
        /// Maps this sample onto `0..len`.
        ///
        /// # Panics
        ///
        /// Panics if `len` is zero.
        pub fn index(&self, len: usize) -> usize {
            assert!(len > 0, "Index::index on an empty collection");
            self.0 % len
        }
    }

    impl Arbitrary for Index {
        fn arbitrary(rng: &mut TestRng) -> Self {
            Index(rng.next_u64() as usize)
        }
    }
}

pub mod prelude {
    //! Glob-import surface: `use proptest::prelude::*;`.

    pub use crate as prop;
    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };
}

/// Asserts a condition inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

/// Asserts equality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

/// Asserts inequality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($args:tt)*) => { assert_ne!($($args)*) };
}

/// Skips the current case unless the precondition holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(, $($fmt:tt)*)?) => {
        if !$cond {
            return;
        }
    };
}

/// Uniform choice among strategies that generate the same type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![$($crate::strategy::boxed($strategy)),+])
    };
}

/// Defines property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` running `ProptestConfig::cases` random cases.
///
/// On failure the generated inputs are printed (no shrinking; see the
/// crate docs).
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!(($cfg) $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!(($crate::test_runner::ProptestConfig::default()) $($rest)*);
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (($cfg:expr) $($(#[$meta:meta])* fn $name:ident($($arg:ident in $strategy:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __config: $crate::test_runner::ProptestConfig = $cfg;
                let mut __rng = $crate::test_runner::TestRng::for_test(
                    concat!(module_path!(), "::", stringify!($name)),
                );
                for __case in 0..__config.cases {
                    $(
                        let $arg = $crate::strategy::Strategy::generate(&($strategy), &mut __rng);
                    )+
                    let __outcome = ::std::panic::catch_unwind(
                        ::std::panic::AssertUnwindSafe(|| { $body }),
                    );
                    if let ::std::result::Result::Err(__panic) = __outcome {
                        // Only format inputs on failure; Debug-printing
                        // every generated value on passing cases would
                        // dominate the runtime of cheap properties.
                        let mut __inputs = ::std::string::String::new();
                        $(
                            __inputs.push_str(&::std::format!(
                                "  {} = {:?}\n", stringify!($arg), &$arg,
                            ));
                        )+
                        ::std::eprintln!(
                            "proptest: case {}/{} of `{}` failed; inputs:\n{}",
                            __case + 1,
                            __config.cases,
                            stringify!($name),
                            __inputs,
                        );
                        ::std::panic::resume_unwind(__panic);
                    }
                }
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn tuples_ranges_and_maps_compose(
            pair in (0u16..10, 5u64..=6).prop_map(|(a, b)| (a, b)),
            flag in any::<bool>(),
            v in prop::collection::vec(any::<u8>(), 0..8),
            choice in prop_oneof![Just(1u32), Just(2), 10u32..20],
            opt in prop::option::of(3u8..5),
            ix in any::<prop::sample::Index>(),
        ) {
            prop_assert!(pair.0 < 10);
            prop_assert!(pair.1 == 5 || pair.1 == 6);
            let _ = flag;
            prop_assert!(v.len() < 8);
            prop_assert!(choice == 1 || choice == 2 || (10..20).contains(&choice));
            if let Some(x) = opt {
                prop_assert!((3..5).contains(&x));
            }
            prop_assert!(ix.index(7) < 7);
        }

        #[test]
        fn flat_map_dependent_shapes(v in (1usize..4).prop_flat_map(|n| {
            prop::collection::vec(0u8..10, n..n + 1)
        })) {
            prop_assert!(!v.is_empty() && v.len() < 4);
        }

        #[test]
        fn assume_skips(n in 0u32..10) {
            prop_assume!(n != 3);
            prop_assert_ne!(n, 3);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(17))]

        #[test]
        fn config_override_accepted(n in 0u64..100) {
            prop_assert!(n < 100);
        }
    }

    #[test]
    fn rng_is_deterministic_per_name() {
        use crate::test_runner::TestRng;
        let mut a = TestRng::for_test("x::y");
        let mut b = TestRng::for_test("x::y");
        assert_eq!(a.next_u64(), b.next_u64());
        let mut c = TestRng::for_test("x::z");
        let _ = c.next_u64(); // different name, (almost surely) different stream
    }
}
