//! The per-op flight recorder: a fixed-size lock-free ring of structured
//! trace events.
//!
//! Writers claim a slot with one `fetch_add` ticket and publish through a
//! per-slot sequence word (a seqlock), so recording from any number of
//! threads is wait-free and allocation-free; the ring simply wraps,
//! keeping the most recent [`SLOTS`] events. Readers ([`snapshot`])
//! detect torn or in-progress slots via the sequence word plus a field
//! checksum and skip them — a snapshot is best-effort by design, which is
//! exactly right for its job: when a linearizability check fails or a
//! server reaches a crash verdict, [`dump_to_stderr`] prints the recent
//! event tail so the failure is diagnosable after the fact.
//!
//! Events are four `u64`s of caller payload with a kind tag; the protocol
//! layers record op begin / phase / retry / complete keyed by
//! `(ClientId, RequestId)`. With the `metrics` feature off, recording is
//! a no-op and snapshots are empty.
//!
//! The ring itself is the generic [`FlightRing`] — the process-global
//! recorder is one `FlightRing<4096>` behind the free functions, and the
//! `hts-mc` models in `crates/mc` explore tiny instances (`FlightRing<2>`)
//! whose full interleaving space is exhaustively checkable.

#[cfg(feature = "metrics")]
use crate::mc_shim::AtomicU64;
#[cfg(feature = "metrics")]
use std::sync::atomic::Ordering;

/// Ring capacity: the recorder keeps the most recent this-many events.
pub const SLOTS: usize = 4096;

/// A write operation was initiated at its origin server
/// (`a` = client, `b` = request, `c` = object).
pub const KIND_OP_BEGIN: u8 = 1;
/// An op finished a protocol phase (`c` = phase code: 1 pre-write).
pub const KIND_OP_PHASE: u8 = 2;
/// A client re-sent an op after a timeout (`c` = attempt count).
pub const KIND_OP_RETRY: u8 = 3;
/// An op completed (`a` = client, `b` = request, `c` = object).
pub const KIND_OP_COMPLETE: u8 = 4;
/// A server reached a crash verdict on a peer (`a` = suspect server,
/// `b` = strike count, `c` = lane).
pub const KIND_CRASH_VERDICT: u8 = 5;
/// A client routing transition (`a` = server, `b` = 1 up / 0 down).
pub const KIND_ALIVE_TRANSITION: u8 = 6;

/// Human-readable name of a kind code (for dumps).
pub fn kind_name(kind: u8) -> &'static str {
    match kind {
        KIND_OP_BEGIN => "op_begin",
        KIND_OP_PHASE => "op_phase",
        KIND_OP_RETRY => "op_retry",
        KIND_OP_COMPLETE => "op_complete",
        KIND_CRASH_VERDICT => "crash_verdict",
        KIND_ALIVE_TRANSITION => "alive_transition",
        _ => "unknown",
    }
}

/// One recovered trace event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FlightEvent {
    /// Global recording order (ticket number; later events have larger
    /// sequence numbers, including across wraparounds).
    pub seq: u64,
    /// [`crate::now_nanos`] at recording time.
    pub at_nanos: u64,
    /// Event kind — one of the `KIND_*` codes.
    pub kind: u8,
    /// First payload word (conventionally the client id).
    pub a: u64,
    /// Second payload word (conventionally the request id).
    pub b: u64,
    /// Third payload word (kind-specific).
    pub c: u64,
}

#[cfg(feature = "metrics")]
struct Slot {
    /// Publication word: `2·ticket + 1` while the slot is being written,
    /// `2·ticket + 2` once published. Odd ⇒ in progress.
    seq: AtomicU64,
    /// Timestamp with the kind tag packed in the top byte (monotonic
    /// nanos fit 56 bits for ~2 years of process uptime).
    at_kind: AtomicU64,
    a: AtomicU64,
    b: AtomicU64,
    c: AtomicU64,
    /// XOR checksum over (seq, at_kind, a, b, c): catches the rare
    /// cross-wraparound write race the seqlock alone cannot (a writer
    /// descheduled for a whole ring lap).
    check: AtomicU64,
}

#[cfg(feature = "metrics")]
impl Slot {
    const fn new() -> Slot {
        Slot {
            seq: AtomicU64::new(0),
            at_kind: AtomicU64::new(0),
            a: AtomicU64::new(0),
            b: AtomicU64::new(0),
            c: AtomicU64::new(0),
            check: AtomicU64::new(0),
        }
    }
}

/// A lock-free event ring of `N` slots — the engine behind the global
/// recorder (one `FlightRing<{SLOTS}>`). `N` is generic so the `hts-mc`
/// models can exhaustively explore tiny instances where every writer
/// collision and wraparound is reachable within the schedule budget.
#[cfg(feature = "metrics")]
pub struct FlightRing<const N: usize> {
    slots: [Slot; N],
    head: AtomicU64,
}

#[cfg(feature = "metrics")]
impl<const N: usize> Default for FlightRing<N> {
    fn default() -> Self {
        FlightRing::new()
    }
}

#[cfg(feature = "metrics")]
impl<const N: usize> FlightRing<N> {
    /// A fresh, empty ring.
    pub const fn new() -> FlightRing<N> {
        FlightRing {
            slots: [const { Slot::new() }; N],
            head: AtomicU64::new(0),
        }
    }

    /// Records one event (wait-free, allocation-free).
    #[inline]
    pub fn record(&self, kind: u8, a: u64, b: u64, c: u64) {
        // ordering: Relaxed — the ticket is a pure allocation counter;
        // publication ordering is carried by the per-slot seq word.
        let ticket = self.head.fetch_add(1, Ordering::Relaxed);
        let slot = &self.slots[(ticket % N as u64) as usize];
        let at_kind = (crate::now_nanos() & ((1 << 56) - 1)) | (u64::from(kind) << 56);
        let published = 2 * ticket + 2;
        slot.seq.store(2 * ticket + 1, Ordering::Release);
        let payload = [
            (&slot.at_kind, at_kind),
            (&slot.a, a),
            (&slot.b, b),
            (&slot.c, c),
            (&slot.check, published ^ at_kind ^ a ^ b ^ c),
        ];
        for (cell, v) in payload {
            // ordering: Relaxed — fenced by the seq Release stores around
            // them; readers validate via seq + checksum, dropping torn slots.
            cell.store(v, Ordering::Relaxed);
        }
        slot.seq.store(published, Ordering::Release);
    }

    /// Collects the currently readable events, oldest first. Slots being
    /// concurrently rewritten (or torn by a wraparound race) are skipped.
    pub fn snapshot(&self) -> Vec<FlightEvent> {
        let mut out = Vec::new();
        for slot in self.slots.iter() {
            let seq1 = slot.seq.load(Ordering::Acquire);
            if seq1 == 0 || seq1 % 2 != 0 {
                continue; // never written, or write in progress
            }
            let cells = [&slot.at_kind, &slot.a, &slot.b, &slot.c, &slot.check];
            // ordering: Relaxed — validated after the fact: the Acquire
            // re-load of seq plus the checksum reject any torn read.
            let [at_kind, a, b, c, check] = cells.map(|cell| cell.load(Ordering::Relaxed));
            let seq2 = slot.seq.load(Ordering::Acquire);
            if seq1 != seq2 || check != (seq1 ^ at_kind ^ a ^ b ^ c) {
                continue; // torn read
            }
            out.push(FlightEvent {
                seq: seq1 / 2 - 1,
                at_nanos: at_kind & ((1 << 56) - 1),
                kind: (at_kind >> 56) as u8,
                a,
                b,
                c,
            });
        }
        out.sort_by_key(|e| e.seq);
        out
    }

    /// Dumps this ring's readable tail to stderr with a reason header.
    /// Silent when empty.
    pub fn dump_to_stderr(&self, reason: &str) {
        dump_events(&self.snapshot(), reason);
    }
}

#[cfg(feature = "metrics")]
static RING: FlightRing<SLOTS> = FlightRing::new();

/// Records one event into the global ring (wait-free, allocation-free;
/// no-op with the `metrics` feature off).
#[inline]
pub fn record(kind: u8, a: u64, b: u64, c: u64) {
    #[cfg(feature = "metrics")]
    RING.record(kind, a, b, c);
    #[cfg(not(feature = "metrics"))]
    let _ = (kind, a, b, c);
}

/// Collects the currently readable events, oldest first. Slots being
/// concurrently rewritten (or torn by a wraparound race) are skipped —
/// the snapshot is a best-effort recent tail, not a transaction.
pub fn snapshot() -> Vec<FlightEvent> {
    #[cfg(feature = "metrics")]
    {
        RING.snapshot()
    }
    #[cfg(not(feature = "metrics"))]
    Vec::new()
}

fn dump_events(events: &[FlightEvent], reason: &str) {
    if events.is_empty() {
        return;
    }
    eprintln!(
        "=== flight recorder: {} event(s), reason: {reason} ===",
        events.len()
    );
    for e in events {
        eprintln!(
            "  [{:>12} ns] #{:<8} {:<16} a={} b={} c={}",
            e.at_nanos,
            e.seq,
            kind_name(e.kind),
            e.a,
            e.b,
            e.c
        );
    }
    eprintln!("=== end flight recorder dump ===");
}

/// Dumps the recorded tail to stderr with a reason header — called on
/// lincheck failures and crash verdicts so a failing run leaves its
/// recent per-op trace behind. Silent when the recorder is empty (e.g.
/// the `metrics` feature is off, or nothing instrumented ran).
pub fn dump_to_stderr(reason: &str) {
    dump_events(&snapshot(), reason);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[cfg(feature = "metrics")]
    #[test]
    fn events_come_back_in_order_with_payload() {
        record(KIND_OP_BEGIN, 1, 100, 7);
        record(KIND_OP_COMPLETE, 1, 100, 7);
        let events = snapshot();
        assert!(events.len() >= 2);
        for pair in events.windows(2) {
            assert!(pair[0].seq < pair[1].seq);
        }
        // Our two events are in the tail (other tests share the ring).
        let begin = events
            .iter()
            .find(|e| e.kind == KIND_OP_BEGIN && e.b == 100)
            .expect("begin event recorded");
        assert_eq!((begin.a, begin.c), (1, 7));
    }

    #[cfg(feature = "metrics")]
    #[test]
    fn tiny_ring_wraps_keeping_the_tail() {
        let ring: FlightRing<2> = FlightRing::new();
        for i in 0..5u64 {
            ring.record(KIND_OP_BEGIN, i, 0, 0);
        }
        let events = ring.snapshot();
        assert_eq!(events.len(), 2, "a 2-slot ring holds 2 events");
        assert_eq!(
            events.iter().map(|e| e.a).collect::<Vec<_>>(),
            vec![3, 4],
            "the ring keeps the most recent events"
        );
    }

    #[cfg(not(feature = "metrics"))]
    #[test]
    fn disabled_recorder_is_empty() {
        record(KIND_OP_BEGIN, 1, 2, 3);
        assert!(snapshot().is_empty());
    }

    #[test]
    fn kind_names_cover_all_codes() {
        for kind in 1..=6u8 {
            assert_ne!(kind_name(kind), "unknown");
        }
        assert_eq!(kind_name(0), "unknown");
    }
}
