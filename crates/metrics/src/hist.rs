//! Log-bucketed lock-free latency/size histograms.
//!
//! The bucketing is logarithmic with 4 linear sub-buckets per power of
//! two: values 0–15 get exact buckets, every later octave is split in
//! four, for [`BUCKETS`] = 256 buckets covering all of `u64`. The widest
//! bucket spans ×1.25 of its lower bound, so any quantile read from the
//! histogram is within ~19 % of the exact order statistic — plenty for
//! p50/p99/p99.9 latency reporting, at the cost of one relaxed
//! `fetch_add` per recording.

#[cfg(feature = "metrics")]
use crate::mc_shim::AtomicU64;
#[cfg(feature = "metrics")]
use std::sync::atomic::Ordering;

/// Number of buckets in every [`Histogram`].
pub const BUCKETS: usize = 256;

/// The bucket index for `v`: exact below 16, then 4 sub-buckets per
/// octave keyed by the two bits under the most significant bit.
#[inline]
pub fn bucket_index(v: u64) -> usize {
    if v < 16 {
        v as usize
    } else {
        let msb = 63 - v.leading_zeros() as usize; // >= 4
        let sub = ((v >> (msb - 2)) & 3) as usize;
        16 + (msb - 4) * 4 + sub
    }
}

/// The inclusive upper bound of bucket `i` (monotone in `i`; the last
/// bucket ends at `u64::MAX`).
pub fn bucket_bound(i: usize) -> u64 {
    if i < 16 {
        i as u64
    } else {
        let j = i - 16;
        let msb = 4 + j / 4;
        let sub = (j % 4) as u128;
        // Lowest value of the NEXT sub-bucket, minus one; saturates at
        // the top of the u64 range for the final bucket.
        let next = (1u128 << msb) + ((sub + 1) << (msb - 2));
        u64::try_from(next - 1).unwrap_or(u64::MAX)
    }
}

/// A fixed-size log-bucketed histogram; see the [module docs](self).
/// Zero-sized no-op with the `metrics` feature off.
#[derive(Debug)]
pub struct Histogram {
    #[cfg(feature = "metrics")]
    buckets: [AtomicU64; BUCKETS],
    #[cfg(feature = "metrics")]
    sum: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram::new()
    }
}

impl Histogram {
    /// A fresh, empty histogram.
    pub const fn new() -> Histogram {
        Histogram {
            #[cfg(feature = "metrics")]
            // `AtomicU64::new(0)` is const but not Copy; splat via the
            // inline-const array repetition.
            buckets: [const { AtomicU64::new(0) }; BUCKETS],
            #[cfg(feature = "metrics")]
            sum: AtomicU64::new(0),
        }
    }

    /// Records one observation: a single relaxed `fetch_add` into the
    /// value's bucket (plus one into the running sum).
    #[inline]
    pub fn record(&self, v: u64) {
        #[cfg(feature = "metrics")]
        {
            self.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
            // Wrapping by design: a u64 of summed nanoseconds wraps after
            // ~584 years of accumulated latency.
            self.sum.fetch_add(v, Ordering::Relaxed);
        }
        #[cfg(not(feature = "metrics"))]
        let _ = v;
    }

    /// A point-in-time copy of the bucket counts. Concurrent recordings
    /// may be torn *across* buckets (each bucket is individually
    /// coherent) — fine for exposition and quantiles.
    pub fn snapshot(&self) -> HistogramSnapshot {
        #[cfg(feature = "metrics")]
        {
            let mut counts = [0u64; BUCKETS];
            for (c, b) in counts.iter_mut().zip(self.buckets.iter()) {
                *c = b.load(Ordering::Relaxed);
            }
            HistogramSnapshot {
                counts,
                sum: self.sum.load(Ordering::Relaxed),
            }
        }
        #[cfg(not(feature = "metrics"))]
        HistogramSnapshot::empty()
    }
}

/// An owned, mergeable copy of a [`Histogram`]'s state.
///
/// Snapshots support cross-instance [`merge`](Self::merge) (e.g. summing
/// per-lane histograms) and [`since`](Self::since) diffs (e.g. isolating
/// one benchmark ablation's window from process-lifetime totals).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    counts: [u64; BUCKETS],
    sum: u64,
}

impl HistogramSnapshot {
    /// An empty snapshot (what a disabled histogram reports).
    pub fn empty() -> HistogramSnapshot {
        HistogramSnapshot {
            counts: [0; BUCKETS],
            sum: 0,
        }
    }

    /// Per-bucket counts, index-aligned with [`bucket_bound`].
    pub fn counts(&self) -> &[u64; BUCKETS] {
        &self.counts
    }

    /// Total observations.
    pub fn count(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Sum of all recorded values (wrapping).
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Mean recorded value, `None` when empty.
    pub fn mean(&self) -> Option<f64> {
        let n = self.count();
        (n > 0).then(|| self.sum as f64 / n as f64)
    }

    /// Adds `other` into `self` bucket-wise: merging snapshots of two
    /// histograms equals one histogram fed both recording streams.
    pub fn merge(&mut self, other: &HistogramSnapshot) {
        for (a, b) in self.counts.iter_mut().zip(other.counts.iter()) {
            *a = a.saturating_add(*b);
        }
        self.sum = self.sum.wrapping_add(other.sum);
    }

    /// The observations recorded since `earlier` was taken (bucket-wise
    /// saturating subtraction): isolates a measurement window from
    /// process-lifetime totals.
    pub fn since(&self, earlier: &HistogramSnapshot) -> HistogramSnapshot {
        let mut counts = [0u64; BUCKETS];
        for (i, c) in counts.iter_mut().enumerate() {
            *c = self.counts[i].saturating_sub(earlier.counts[i]);
        }
        HistogramSnapshot {
            counts,
            sum: self.sum.wrapping_sub(earlier.sum),
        }
    }

    /// The value at quantile `q` in `[0, 1]`: the upper bound of the
    /// bucket holding the order statistic of rank `ceil(q · count)`
    /// (rank 1 minimum — matching a sorted-array index of
    /// `ceil(q·n) - 1`). Within one bucket width (≤ ~19 %) of the exact
    /// value; `None` when the histogram is empty.
    pub fn quantile(&self, q: f64) -> Option<u64> {
        let n = self.count();
        if n == 0 {
            return None;
        }
        let rank = ((q.clamp(0.0, 1.0) * n as f64).ceil() as u64).clamp(1, n);
        let mut cum = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            cum += c;
            if cum >= rank {
                return Some(bucket_bound(i));
            }
        }
        Some(bucket_bound(BUCKETS - 1))
    }

    /// Median (p50); `None` when empty.
    pub fn p50(&self) -> Option<u64> {
        self.quantile(0.50)
    }

    /// 99th percentile; `None` when empty.
    pub fn p99(&self) -> Option<u64> {
        self.quantile(0.99)
    }

    /// 99.9th percentile; `None` when empty.
    pub fn p999(&self) -> Option<u64> {
        self.quantile(0.999)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_values_get_exact_buckets() {
        for v in 0..16u64 {
            assert_eq!(bucket_index(v), v as usize);
            assert_eq!(bucket_bound(v as usize), v);
        }
    }

    #[test]
    fn bounds_are_monotone_and_cover_u64() {
        for i in 1..BUCKETS {
            assert!(
                bucket_bound(i) > bucket_bound(i - 1),
                "bound({i}) must exceed bound({})",
                i - 1
            );
        }
        assert_eq!(bucket_bound(BUCKETS - 1), u64::MAX);
    }

    #[test]
    fn every_value_lands_within_its_bucket_bounds() {
        for v in [
            0,
            1,
            15,
            16,
            17,
            100,
            1_000,
            123_456_789,
            u64::MAX / 2,
            u64::MAX - 1,
            u64::MAX,
        ] {
            let i = bucket_index(v);
            assert!(v <= bucket_bound(i), "v={v} above bound of bucket {i}");
            if i > 0 {
                assert!(v > bucket_bound(i - 1), "v={v} not above bucket {}", i - 1);
            }
        }
    }

    #[cfg(feature = "metrics")]
    #[test]
    fn quantiles_of_a_known_distribution() {
        let h = Histogram::new();
        for v in 1..=1000u64 {
            h.record(v);
        }
        let snap = h.snapshot();
        assert_eq!(snap.count(), 1000);
        assert_eq!(snap.sum(), 500_500);
        // p50 of 1..=1000 is 500; the histogram answer is the upper bound
        // of 500's bucket.
        assert_eq!(snap.p50(), Some(bucket_bound(bucket_index(500))));
        assert_eq!(snap.p99(), Some(bucket_bound(bucket_index(990))));
        assert_eq!(snap.quantile(0.0), Some(bucket_bound(bucket_index(1))));
        assert_eq!(snap.quantile(1.0), Some(bucket_bound(bucket_index(1000))));
    }

    #[cfg(feature = "metrics")]
    #[test]
    fn since_isolates_a_window() {
        let h = Histogram::new();
        h.record(10);
        let before = h.snapshot();
        h.record(1000);
        h.record(1000);
        let window = h.snapshot().since(&before);
        assert_eq!(window.count(), 2);
        assert_eq!(window.sum(), 2000);
        assert_eq!(window.counts()[bucket_index(10)], 0);
    }

    #[cfg(not(feature = "metrics"))]
    #[test]
    fn disabled_histogram_is_empty() {
        let h = Histogram::new();
        h.record(123);
        let snap = h.snapshot();
        assert_eq!(snap.count(), 0);
        assert_eq!(snap.quantile(0.5), None);
    }
}
