//! cfg-switched atomics for the metrics primitives.
//!
//! With the `model-check` feature on, counters, gauges, histograms and
//! the flight ring run on the `hts-mc` shim atomics so `crates/mc`
//! models can explore their interleavings; off (the default, and always
//! in release builds) the same names resolve to the plain `std` types
//! with zero overhead.

#[cfg(feature = "model-check")]
pub(crate) use hts_mc::sync::{AtomicI64, AtomicU64};

#[cfg(not(feature = "model-check"))]
pub(crate) use std::sync::atomic::{AtomicI64, AtomicU64};
