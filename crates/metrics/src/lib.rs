//! `hts-metrics`: lock-free metrics and a per-op flight recorder for the
//! hts workspace.
//!
//! The paper's headline claim is *throughput*, so the instrumentation
//! must never become the bottleneck it is measuring. Every primitive here
//! is a plain atomic:
//!
//! * [`Counter`] / [`Gauge`] — one relaxed `fetch_add` per event.
//! * [`Histogram`] — log-bucketed (4 sub-buckets per power of two, ≤ ~19 %
//!   relative quantile error): one relaxed `fetch_add` into one of 256
//!   buckets per recording. Snapshots are mergeable and diffable, with
//!   p50/p99/p99.9 extraction — see [`HistogramSnapshot`].
//! * [`flight`] — a fixed-size lock-free ring of structured trace events
//!   (op begin / phase / retry / complete), dumpable when a
//!   linearizability check fails or a crash verdict fires.
//!
//! Metrics live in a **process-global registry** keyed by name: servers,
//! clients and benchmark harnesses in one process share it, and
//! [`render`] emits the whole registry in Prometheus-style text
//! exposition (served over the wire via `Message::StatsRequest` /
//! `StatsReply` in `hts-net`). Hot call sites cache the registry lookup
//! with the [`counter!`]/[`gauge!`]/[`histogram!`] macros, so the steady
//! state is one atomic load plus one relaxed atomic RMW.
//!
//! Everything is gated behind the default-on `metrics` feature. With the
//! feature off, the same API compiles to no-ops ([`now_nanos`] returns 0,
//! [`render`] returns an empty registry) — consumers carry **no** `cfg`s.
//!
//! # Examples
//!
//! ```
//! use hts_metrics::{counter, histogram};
//!
//! counter!("hts_doc_requests_total").inc();
//! let t0 = hts_metrics::now_nanos();
//! // ... do the work being timed ...
//! histogram!("hts_doc_request_nanos").record(hts_metrics::now_nanos() - t0);
//! let text = hts_metrics::render();
//! // Empty only when built with the `metrics` feature off.
//! assert!(text.is_empty() || text.contains("hts_doc_requests_total"));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod flight;
mod hist;
#[cfg(feature = "metrics")]
mod mc_shim;

pub use hist::{bucket_bound, bucket_index, Histogram, HistogramSnapshot, BUCKETS};

#[cfg(feature = "metrics")]
use crate::mc_shim::{AtomicI64, AtomicU64};
#[cfg(feature = "metrics")]
use std::sync::atomic::Ordering;
#[cfg(feature = "metrics")]
use std::sync::Mutex;
#[cfg(feature = "metrics")]
use std::time::Instant;

/// A monotonically increasing event counter.
///
/// Recording is one relaxed `fetch_add`; reads are racy-but-coherent
/// (fine for exposition). With the `metrics` feature off this is a
/// zero-sized no-op.
#[derive(Debug, Default)]
pub struct Counter {
    #[cfg(feature = "metrics")]
    value: AtomicU64,
}

impl Counter {
    /// A fresh counter at zero.
    pub const fn new() -> Counter {
        Counter {
            #[cfg(feature = "metrics")]
            value: AtomicU64::new(0),
        }
    }

    /// Adds one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        #[cfg(feature = "metrics")]
        self.value.fetch_add(n, Ordering::Relaxed);
        #[cfg(not(feature = "metrics"))]
        let _ = n;
    }

    /// The current count (0 with the feature off).
    #[inline]
    pub fn get(&self) -> u64 {
        #[cfg(feature = "metrics")]
        return self.value.load(Ordering::Relaxed);
        #[cfg(not(feature = "metrics"))]
        0
    }
}

/// A signed instantaneous value (queue depths, in-flight windows).
#[derive(Debug, Default)]
pub struct Gauge {
    #[cfg(feature = "metrics")]
    value: AtomicI64,
}

impl Gauge {
    /// A fresh gauge at zero.
    pub const fn new() -> Gauge {
        Gauge {
            #[cfg(feature = "metrics")]
            value: AtomicI64::new(0),
        }
    }

    /// Sets the gauge.
    #[inline]
    pub fn set(&self, v: i64) {
        #[cfg(feature = "metrics")]
        self.value.store(v, Ordering::Relaxed);
        #[cfg(not(feature = "metrics"))]
        let _ = v;
    }

    /// Adds `d` (may be negative via `sub`).
    #[inline]
    pub fn add(&self, d: i64) {
        #[cfg(feature = "metrics")]
        self.value.fetch_add(d, Ordering::Relaxed);
        #[cfg(not(feature = "metrics"))]
        let _ = d;
    }

    /// Subtracts `d`.
    #[inline]
    pub fn sub(&self, d: i64) {
        self.add(-d);
    }

    /// The current value (0 with the feature off).
    #[inline]
    pub fn get(&self) -> i64 {
        #[cfg(feature = "metrics")]
        return self.value.load(Ordering::Relaxed);
        #[cfg(not(feature = "metrics"))]
        0
    }
}

/// Nanoseconds on the process-wide monotonic clock (first call is the
/// epoch). Pair with [`Histogram::record`] for latency timings. Returns 0
/// with the `metrics` feature off, so `now_nanos() - t0` stays 0 and the
/// no-op recording sites never see a bogus duration.
#[inline]
pub fn now_nanos() -> u64 {
    #[cfg(feature = "metrics")]
    {
        static EPOCH: std::sync::OnceLock<Instant> = std::sync::OnceLock::new();
        EPOCH.get_or_init(Instant::now).elapsed().as_nanos() as u64
    }
    #[cfg(not(feature = "metrics"))]
    0
}

/// Total CPU time (user + system) consumed by this process, in
/// nanoseconds — the basis of the benchmark CPU-per-op columns.
///
/// Linux only (parsed from `/proc/self/stat`; the workspace links no
/// libc for `getrusage`): returns `None` elsewhere or when the file is
/// unreadable. Available regardless of the `metrics` feature — it reads
/// kernel accounting, not this crate's registry.
pub fn process_cpu_nanos() -> Option<u64> {
    #[cfg(target_os = "linux")]
    {
        let stat = std::fs::read_to_string("/proc/self/stat").ok()?;
        // Fields after the parenthesized comm (which may itself contain
        // spaces): state is field 3, utime field 14, stime field 15.
        let rest = &stat[stat.rfind(')')? + 1..];
        let mut fields = rest.split_ascii_whitespace();
        let utime: u64 = fields.nth(11)?.parse().ok()?;
        let stime: u64 = fields.next()?.parse().ok()?;
        // USER_HZ is 100 on every Linux ABI this workspace targets
        // (sysconf(_SC_CLK_TCK) would need libc): one tick = 10 ms.
        Some((utime + stime) * 10_000_000)
    }
    #[cfg(not(target_os = "linux"))]
    None
}

#[cfg(feature = "metrics")]
enum Slot {
    Counter(&'static Counter),
    Gauge(&'static Gauge),
    Histogram(&'static Histogram),
}

/// The process-global registry: name → leaked metric. Registration is a
/// mutex + linear scan (cold: call sites cache the returned reference via
/// the [`counter!`]-family macros); recording never touches it.
#[cfg(feature = "metrics")]
static REGISTRY: Mutex<Vec<(&'static str, Slot)>> = Mutex::new(Vec::new());

#[cfg(feature = "metrics")]
fn register<T>(
    name: &'static str,
    find: impl Fn(&Slot) -> Option<&'static T>,
    make: impl FnOnce() -> (&'static T, Slot),
) -> &'static T {
    let mut reg = match REGISTRY.lock() {
        Ok(reg) => reg,
        // A poisoned registry only means some other thread panicked
        // mid-registration; the Vec itself is still coherent.
        Err(poisoned) => poisoned.into_inner(),
    };
    for (n, slot) in reg.iter() {
        if *n == name {
            if let Some(found) = find(slot) {
                return found;
            }
            // Same name registered as a different kind: registration is
            // by `&'static str` literals at call sites, so this is a
            // programming error — but metrics must never panic the data
            // path. Fall through and shadow it (render() emits the first
            // registration; the shadow still records coherently).
        }
    }
    let (made, slot) = make();
    reg.push((name, slot));
    made
}

/// Looks up (or creates) the counter `name` in the global registry.
/// Prefer the [`counter!`] macro on hot paths — it caches this lookup.
pub fn counter(name: &'static str) -> &'static Counter {
    #[cfg(feature = "metrics")]
    {
        register(
            name,
            |slot| match slot {
                Slot::Counter(c) => Some(*c),
                Slot::Gauge(_) | Slot::Histogram(_) => None,
            },
            || {
                let c: &'static Counter = Box::leak(Box::new(Counter::new()));
                (c, Slot::Counter(c))
            },
        )
    }
    #[cfg(not(feature = "metrics"))]
    {
        let _ = name;
        static NOOP: Counter = Counter::new();
        &NOOP
    }
}

/// Looks up (or creates) the gauge `name` in the global registry.
pub fn gauge(name: &'static str) -> &'static Gauge {
    #[cfg(feature = "metrics")]
    {
        register(
            name,
            |slot| match slot {
                Slot::Gauge(g) => Some(*g),
                Slot::Counter(_) | Slot::Histogram(_) => None,
            },
            || {
                let g: &'static Gauge = Box::leak(Box::new(Gauge::new()));
                (g, Slot::Gauge(g))
            },
        )
    }
    #[cfg(not(feature = "metrics"))]
    {
        let _ = name;
        static NOOP: Gauge = Gauge::new();
        &NOOP
    }
}

/// Looks up (or creates) the histogram `name` in the global registry.
pub fn histogram(name: &'static str) -> &'static Histogram {
    #[cfg(feature = "metrics")]
    {
        register(
            name,
            |slot| match slot {
                Slot::Histogram(h) => Some(*h),
                Slot::Counter(_) | Slot::Gauge(_) => None,
            },
            || {
                let h: &'static Histogram = Box::leak(Box::new(Histogram::new()));
                (h, Slot::Histogram(h))
            },
        )
    }
    #[cfg(not(feature = "metrics"))]
    {
        let _ = name;
        static NOOP: Histogram = Histogram::new();
        &NOOP
    }
}

/// Caches a [`counter`] registry lookup in a call-site static: the steady
/// state is one atomic load + one relaxed `fetch_add`.
#[macro_export]
macro_rules! counter {
    ($name:expr) => {{
        static __METRIC: ::std::sync::OnceLock<&'static $crate::Counter> =
            ::std::sync::OnceLock::new();
        *__METRIC.get_or_init(|| $crate::counter($name))
    }};
}

/// Caches a [`gauge`] registry lookup in a call-site static.
#[macro_export]
macro_rules! gauge {
    ($name:expr) => {{
        static __METRIC: ::std::sync::OnceLock<&'static $crate::Gauge> =
            ::std::sync::OnceLock::new();
        *__METRIC.get_or_init(|| $crate::gauge($name))
    }};
}

/// Caches a [`histogram`] registry lookup in a call-site static.
#[macro_export]
macro_rules! histogram {
    ($name:expr) => {{
        static __METRIC: ::std::sync::OnceLock<&'static $crate::Histogram> =
            ::std::sync::OnceLock::new();
        *__METRIC.get_or_init(|| $crate::histogram($name))
    }};
}

/// Renders the whole registry as Prometheus-style text exposition:
/// counters and gauges as `name value`, histograms as cumulative
/// `name_bucket{le="..."}` series plus `name_sum`/`name_count`. Sorted by
/// name for stable output; empty histogram buckets are elided (the
/// `+Inf` bucket always appears). Returns the empty string with the
/// `metrics` feature off.
pub fn render() -> String {
    #[cfg(feature = "metrics")]
    {
        use std::fmt::Write as _;
        let mut entries: Vec<(String, String)> = Vec::new();
        {
            let reg = match REGISTRY.lock() {
                Ok(reg) => reg,
                Err(poisoned) => poisoned.into_inner(),
            };
            let mut seen: Vec<&str> = Vec::new();
            for (name, slot) in reg.iter() {
                if seen.contains(name) {
                    continue; // shadowed kind-mismatch re-registration
                }
                seen.push(name);
                let mut body = String::new();
                match slot {
                    Slot::Counter(c) => {
                        let _ = writeln!(body, "# TYPE {name} counter");
                        let _ = writeln!(body, "{name} {}", c.get());
                    }
                    Slot::Gauge(g) => {
                        let _ = writeln!(body, "# TYPE {name} gauge");
                        let _ = writeln!(body, "{name} {}", g.get());
                    }
                    Slot::Histogram(h) => {
                        let snap = h.snapshot();
                        let _ = writeln!(body, "# TYPE {name} histogram");
                        let mut cum = 0u64;
                        for (i, &n) in snap.counts().iter().enumerate() {
                            if n == 0 {
                                continue;
                            }
                            cum += n;
                            let _ = writeln!(
                                body,
                                "{name}_bucket{{le=\"{}\"}} {cum}",
                                hist::bucket_bound(i)
                            );
                        }
                        let _ = writeln!(body, "{name}_bucket{{le=\"+Inf\"}} {}", snap.count());
                        let _ = writeln!(body, "{name}_sum {}", snap.sum());
                        let _ = writeln!(body, "{name}_count {}", snap.count());
                    }
                }
                entries.push((name.to_string(), body));
            }
        }
        entries.sort();
        let mut out = String::new();
        for (_, body) in entries {
            out.push_str(&body);
        }
        out
    }
    #[cfg(not(feature = "metrics"))]
    String::new()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_and_gauges_accumulate() {
        let c = counter("hts_test_lib_counter");
        c.inc();
        c.add(4);
        let g = gauge("hts_test_lib_gauge");
        g.set(7);
        g.add(3);
        g.sub(2);
        if cfg!(feature = "metrics") {
            assert_eq!(c.get(), 5);
            assert_eq!(g.get(), 8);
        } else {
            assert_eq!(c.get(), 0);
            assert_eq!(g.get(), 0);
        }
    }

    #[test]
    fn registry_is_keyed_by_name() {
        counter("hts_test_lib_same").inc();
        counter("hts_test_lib_same").inc();
        if cfg!(feature = "metrics") {
            assert_eq!(counter("hts_test_lib_same").get(), 2);
        }
    }

    #[test]
    fn macros_cache_the_lookup() {
        for _ in 0..3 {
            counter!("hts_test_lib_macro").inc();
        }
        histogram!("hts_test_lib_macro_hist").record(42);
        gauge!("hts_test_lib_macro_gauge").set(-3);
        if cfg!(feature = "metrics") {
            assert_eq!(counter("hts_test_lib_macro").get(), 3);
            assert_eq!(histogram("hts_test_lib_macro_hist").snapshot().count(), 1);
            assert_eq!(gauge("hts_test_lib_macro_gauge").get(), -3);
        }
    }

    #[test]
    fn render_exposes_all_kinds() {
        counter("hts_test_render_counter").add(2);
        gauge("hts_test_render_gauge").set(-5);
        histogram("hts_test_render_hist").record(100);
        let text = render();
        if cfg!(feature = "metrics") {
            assert!(text.contains("# TYPE hts_test_render_counter counter"));
            assert!(text.contains("hts_test_render_counter 2"));
            assert!(text.contains("hts_test_render_gauge -5"));
            assert!(text.contains("# TYPE hts_test_render_hist histogram"));
            assert!(text.contains("hts_test_render_hist_count 1"));
            assert!(text.contains("hts_test_render_hist_sum 100"));
            assert!(text.contains("_bucket{le=\"+Inf\"} 1"));
        } else {
            assert!(text.is_empty());
        }
    }

    #[test]
    fn kind_mismatch_shadows_instead_of_panicking() {
        counter("hts_test_kind_clash").inc();
        // Same name as a different kind: must not panic, and render must
        // stay parseable (the first registration wins).
        histogram("hts_test_kind_clash").record(1);
        let text = render();
        if cfg!(feature = "metrics") {
            assert_eq!(text.matches("# TYPE hts_test_kind_clash ").count(), 1);
        }
    }

    #[test]
    fn now_nanos_is_monotone() {
        let a = now_nanos();
        let b = now_nanos();
        assert!(b >= a);
    }

    #[cfg(target_os = "linux")]
    #[test]
    fn process_cpu_nanos_reads_proc() {
        // Burn a little CPU so the counter is visibly sane, then read it.
        let mut x = 0u64;
        for i in 0..1_000_000u64 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(i);
        }
        assert!(x != 1); // keep the loop observable
        let cpu = process_cpu_nanos().expect("linux has /proc/self/stat");
        assert!(cpu < 10_000_000_000_000); // < ~3 CPU-hours: parsed sanely
    }
}
