//! Property tests for the histogram bucketing and the flight recorder.
//!
//! The histogram invariants: bucket bounds are strictly monotone and
//! cover `u64`; merging two snapshots equals one histogram fed the
//! concatenated stream; and every quantile answer lands in the same
//! bucket as the exact order statistic of a sorted reference (i.e. the
//! log-bucketing error bound really holds). The flight recorder: under
//! wraparound and concurrent writers, every event a snapshot returns is
//! one that was actually recorded, intact.

#![cfg(feature = "metrics")]

use hts_metrics::flight;
use hts_metrics::{bucket_bound, bucket_index, Histogram, HistogramSnapshot, BUCKETS};
use proptest::prelude::*;

fn feed(values: &[u64]) -> HistogramSnapshot {
    let h = Histogram::new();
    for &v in values {
        h.record(v);
    }
    h.snapshot()
}

proptest! {
    #[test]
    fn bounds_are_monotone_and_values_land_in_their_bucket(v in any::<u64>()) {
        let i = bucket_index(v);
        prop_assert!(i < BUCKETS);
        prop_assert!(v <= bucket_bound(i));
        if i > 0 {
            prop_assert!(v > bucket_bound(i - 1));
            prop_assert!(bucket_bound(i) > bucket_bound(i - 1));
        }
    }

    #[test]
    fn merge_equals_concat(
        xs in prop::collection::vec(any::<u64>(), 0..200),
        ys in prop::collection::vec(any::<u64>(), 0..200),
    ) {
        let mut merged = feed(&xs);
        merged.merge(&feed(&ys));
        let concat: Vec<u64> = xs.iter().chain(ys.iter()).copied().collect();
        prop_assert_eq!(merged, feed(&concat));
    }

    #[test]
    fn since_inverts_merge(
        xs in prop::collection::vec(any::<u64>(), 0..100),
        ys in prop::collection::vec(any::<u64>(), 1..100),
    ) {
        let h = Histogram::new();
        for &v in &xs {
            h.record(v);
        }
        let before = h.snapshot();
        for &v in &ys {
            h.record(v);
        }
        prop_assert_eq!(h.snapshot().since(&before), feed(&ys));
    }

    #[test]
    fn quantiles_match_the_exact_reference_bucket(
        values in prop::collection::vec(any::<u64>(), 1..300),
        q_permille in 0u64..=1000,
    ) {
        let q = q_permille as f64 / 1000.0;
        let snap = feed(&values);
        let mut values = values.clone();
        values.sort_unstable();
        // The histogram's rank rule: order statistic ceil(q·n), 1-based.
        let n = values.len() as u64;
        let rank = ((q * n as f64).ceil() as u64).clamp(1, n);
        let exact = values[(rank - 1) as usize];
        let answered = snap.quantile(q).expect("non-empty");
        prop_assert_eq!(
            bucket_index(answered),
            bucket_index(exact),
            "quantile {} answered {} but exact is {}",
            q,
            answered,
            exact
        );
        // And the answer is the bound of that bucket: exact <= answer.
        prop_assert!(answered >= exact);
    }

    #[test]
    fn snapshot_count_and_sum_track_the_stream(
        values in prop::collection::vec(0u64..1_000_000, 0..200),
    ) {
        let snap = feed(&values);
        prop_assert_eq!(snap.count(), values.len() as u64);
        prop_assert_eq!(snap.sum(), values.iter().sum::<u64>());
    }
}

/// Concurrent writers hammering the (global, shared) ring through
/// wraparound: every event a snapshot returns must be internally
/// consistent — its payload checksum matches — proving readers never see
/// a torn or frankensteined slot. Uses a payload relation (c = a XOR b
/// XOR a fixed tag) as the witness.
#[test]
fn flight_recorder_survives_wraparound_and_concurrent_writers() {
    const WRITERS: u64 = 8;
    const EVENTS_PER_WRITER: u64 = 2 * flight::SLOTS as u64; // several full laps combined
    const TAG: u64 = 0xF11E_7EC0;
    let threads: Vec<_> = (0..WRITERS)
        .map(|w| {
            std::thread::spawn(move || {
                for i in 0..EVENTS_PER_WRITER {
                    flight::record(flight::KIND_OP_BEGIN, w, i, w ^ i ^ TAG);
                }
            })
        })
        .collect();
    // Snapshot concurrently with the writers: mid-flight snapshots must
    // already be consistent, not just the final one.
    for _ in 0..20 {
        for e in flight::snapshot() {
            if e.kind == flight::KIND_OP_BEGIN && (e.a ^ e.b ^ TAG) == e.c {
                continue; // one of ours, intact
            }
            // Other tests in this process may share the ring; only our
            // tagged events are checkable. An event claiming our shape
            // but failing the relation would be a torn read.
            assert!(
                e.c & 0xFFFF_FFFF != TAG & 0xFFFF_FFFF || (e.a ^ e.b ^ TAG) == e.c,
                "torn flight event surfaced: {e:?}"
            );
        }
    }
    for t in threads {
        t.join().expect("writer thread");
    }
    let final_events = flight::snapshot();
    assert!(
        final_events.len() >= flight::SLOTS / 2,
        "after {} recordings the ring should be mostly full, got {}",
        WRITERS * EVENTS_PER_WRITER,
        final_events.len()
    );
    for e in &final_events {
        if e.a < WRITERS && e.kind == flight::KIND_OP_BEGIN {
            assert_eq!(e.c, e.a ^ e.b ^ TAG, "inconsistent event {e:?}");
        }
    }
    // Sequence numbers stay strictly increasing across wraparounds.
    for pair in final_events.windows(2) {
        assert!(pair[0].seq < pair[1].seq);
    }
}
