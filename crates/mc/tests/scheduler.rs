//! Tests of the model checker itself: scheduler determinism, detection
//! power (races, deadlocks, lost wakeups, livelocks), and the
//! seed-replay contract. The models here are toys built directly on the
//! shims; the models of the real hts primitives live in `models.rs`.

use std::sync::atomic::Ordering::{Acquire, Relaxed, Release, SeqCst};
use std::sync::Arc;

use hts_mc::shim::{McAtomicU64, McCondvar, McMutex, McUnsafeCell};
use hts_mc::{check, explore, spawn, Mode, Options};
use proptest::prelude::*;

// ---------------------------------------------------------------------
// Positive models: correct code must pass exhaustively.
// ---------------------------------------------------------------------

#[test]
fn counter_increments_never_lost_exhaustive() {
    let report = check(Mode::Exhaustive, Options::named("counter"), || {
        let c = Arc::new(McAtomicU64::new(0));
        let hs: Vec<_> = (0..2)
            .map(|_| {
                let c = Arc::clone(&c);
                spawn(move || {
                    c.fetch_add(1, Relaxed);
                    c.fetch_add(1, Relaxed);
                })
            })
            .collect();
        for h in hs {
            h.join();
        }
        assert_eq!(c.load(SeqCst), 4, "fetch_add lost an increment");
    });
    // Two independent RMW threads interleave in more than one way, but
    // sleep sets prune the fully-commuting tail.
    assert!(report.schedules > 1, "explored: {report:?}");
}

#[test]
fn mutex_excludes_exhaustive() {
    check(Mode::Exhaustive, Options::named("mutex-excl"), || {
        let m = Arc::new(McMutex::new(0u64));
        let hs: Vec<_> = (0..2)
            .map(|_| {
                let m = Arc::clone(&m);
                spawn(move || {
                    let mut g = m.lock();
                    let v = *g;
                    *g = v + 1;
                })
            })
            .collect();
        for h in hs {
            h.join();
        }
        assert_eq!(*m.lock(), 2, "read-modify-write under the mutex tore");
    });
}

#[test]
fn condvar_handshake_exhaustive() {
    check(Mode::Exhaustive, Options::named("cv-handshake"), || {
        let pair = Arc::new((McMutex::new(false), McCondvar::new()));
        let p2 = Arc::clone(&pair);
        let consumer = spawn(move || {
            let (m, cv) = &*p2;
            let mut g = m.lock();
            while !*g {
                g = cv.wait(g);
            }
        });
        let (m, cv) = &*pair;
        *m.lock() = true;
        cv.notify_one();
        consumer.join();
    });
}

#[test]
fn spin_publish_exhaustive() {
    // A seqlock-shaped spin: the writer spins until the reader count
    // drains. The Spin pend must wake exactly when a store lands.
    check(Mode::Exhaustive, Options::named("spin-publish"), || {
        let readers = Arc::new(McAtomicU64::new(1));
        let r2 = Arc::clone(&readers);
        let reader = spawn(move || {
            r2.fetch_sub(1, Release);
        });
        while readers.load(Acquire) != 0 {
            hts_mc::shim::spin_loop();
        }
        reader.join();
    });
}

#[test]
fn timed_wait_can_time_out_or_be_notified() {
    // Both wake paths of wait_timeout must be explored: count them.
    let mut timed_out_seen = false;
    let mut notified_seen = false;
    for seed in 0..64u64 {
        let pair = Arc::new((McMutex::new(false), McCondvar::new()));
        let outcome = Arc::new(McAtomicU64::new(0));
        let p2 = Arc::clone(&pair);
        let o2 = Arc::clone(&outcome);
        let r = explore(
            Mode::ReplaySeed { seed },
            Options::named("timed-wait"),
            move || {
                let p = Arc::clone(&p2);
                let o = Arc::clone(&o2);
                let waiter = spawn(move || {
                    let (m, cv) = &*p;
                    let g = m.lock();
                    let (_g, timed_out) = cv.wait_timeout(g, std::time::Duration::from_millis(1));
                    o.store(if timed_out { 1 } else { 2 }, SeqCst);
                });
                let (m, cv) = &*p2;
                drop(m.lock());
                cv.notify_one();
                waiter.join();
            },
        );
        assert!(r.is_ok(), "timed-wait model must never fail: {r:?}");
        match outcome.load(SeqCst) {
            1 => timed_out_seen = true,
            2 => notified_seen = true,
            other => panic!("waiter never ran (outcome {other})"),
        }
    }
    assert!(timed_out_seen, "no schedule fired the timeout");
    assert!(notified_seen, "no schedule delivered the notify");
}

// ---------------------------------------------------------------------
// Negative models: the checker must catch seeded bugs.
// ---------------------------------------------------------------------

/// A deliberately torn seqlock: the reader checks the WRITING bit once
/// and never registers itself nor revalidates, so a writer can open its
/// write window while the reader is mid-read.
struct TornSeqlock {
    word: McAtomicU64,
    slot: McUnsafeCell<(u64, u64)>,
}

// SAFETY: deliberately unsound under concurrency — that is the point of
// the model; the checker must prove it so.
unsafe impl Sync for TornSeqlock {}

const WRITING: u64 = 1;

fn torn_seqlock_model() {
    let cell = Arc::new(TornSeqlock {
        word: McAtomicU64::new(0),
        slot: McUnsafeCell::new((0, 0)),
    });
    let c2 = Arc::clone(&cell);
    let writer = spawn(move || {
        let w = c2.word.load(Relaxed);
        c2.word.store(w | WRITING, SeqCst);
        c2.slot.with_mut(|p| unsafe { *p = (1, 1) });
        c2.word.store((w | WRITING) + 1, SeqCst);
    });
    // BUG: no reader registration, no post-read validation.
    let w = cell.word.load(SeqCst);
    if w & WRITING == 0 {
        let _pair = cell.slot.with(|p| unsafe { *p });
    }
    writer.join();
}

#[test]
fn torn_seqlock_caught_exhaustively() {
    let failure = explore(
        Mode::Exhaustive,
        Options::named("torn-seqlock"),
        torn_seqlock_model,
    )
    .expect_err("the torn seqlock must be caught");
    assert!(
        failure.message.contains("data race"),
        "unexpected failure kind: {failure}"
    );
    assert!(failure.seed.is_none(), "DFS failures carry no seed");
    assert!(!failure.trace.is_empty(), "failure carries a per-op trace");
}

#[test]
fn torn_seqlock_failure_replays_from_printed_seed() {
    // Find it with random search, then replay from the reported seed:
    // the replay must fail again with the identical schedule.
    let failure = explore(
        Mode::Random {
            seed: 0xB5EF_CAFE,
            iters: 500,
        },
        Options::named("torn-seqlock"),
        torn_seqlock_model,
    )
    .expect_err("random search must find the race within 500 iterations");
    let seed = failure.seed.expect("random failures print their seed");
    for _ in 0..2 {
        let replay = explore(
            Mode::ReplaySeed { seed },
            Options::named("torn-seqlock"),
            torn_seqlock_model,
        )
        .expect_err("replaying the failing seed must fail again");
        assert_eq!(replay.seed, Some(seed));
        assert_eq!(
            replay.schedule, failure.schedule,
            "replay diverged from the original failing schedule"
        );
        assert_eq!(replay.message, failure.message);
    }
}

#[test]
fn abba_deadlock_detected() {
    let failure = explore(Mode::Exhaustive, Options::named("abba"), || {
        let a = Arc::new(McMutex::new(()));
        let b = Arc::new(McMutex::new(()));
        let (a2, b2) = (Arc::clone(&a), Arc::clone(&b));
        let t = spawn(move || {
            let _ga = a2.lock();
            let _gb = b2.lock();
        });
        let _gb = b.lock();
        let _ga = a.lock();
        drop((_ga, _gb));
        t.join();
    })
    .expect_err("ABBA locking must deadlock under some schedule");
    assert!(
        failure.message.contains("deadlock"),
        "unexpected failure kind: {failure}"
    );
}

#[test]
fn lost_wakeup_detected() {
    // The producer flips the flag but never notifies: the untimed
    // waiter can hang forever under the schedule where it parks first.
    let failure = explore(Mode::Exhaustive, Options::named("lost-wakeup"), || {
        let pair = Arc::new((McMutex::new(false), McCondvar::new()));
        let p2 = Arc::clone(&pair);
        let waiter = spawn(move || {
            let (m, cv) = &*p2;
            let mut g = m.lock();
            while !*g {
                g = cv.wait(g); // BUG: nobody will ever notify
            }
        });
        *pair.0.lock() = true;
        waiter.join();
    })
    .expect_err("missing notify must be reported as a deadlock");
    assert!(
        failure.message.contains("deadlock"),
        "unexpected failure kind: {failure}"
    );
}

#[test]
fn unjoined_thread_detected() {
    let failure = explore(Mode::Exhaustive, Options::named("unjoined"), || {
        let c = Arc::new(McAtomicU64::new(0));
        let c2 = Arc::clone(&c);
        let _handle = spawn(move || {
            c2.store(1, SeqCst);
        });
        // BUG: handle dropped without join while the child may still run.
    })
    .expect_err("returning with live threads must fail");
    assert!(
        failure.message.contains("still live"),
        "unexpected failure kind: {failure}"
    );
}

#[test]
fn unbounded_spin_hits_step_budget() {
    let failure = explore(
        Mode::ReplaySeed { seed: 7 },
        Options {
            max_steps: 500,
            ..Options::named("spin-forever")
        },
        || {
            let flag = Arc::new(McAtomicU64::new(0));
            let f2 = Arc::clone(&flag);
            let noisy = spawn(move || {
                // Keeps storing, so the spinner keeps waking — a
                // livelock rather than a deadlock.
                for i in 0..10_000 {
                    f2.store(i, Relaxed);
                }
            });
            while flag.load(Relaxed) != u64::MAX {
                hts_mc::shim::spin_loop(); // BUG: condition never satisfied
            }
            noisy.join();
        },
    )
    .expect_err("runaway spin must blow the step budget");
    assert!(
        failure.message.contains("step budget"),
        "unexpected failure kind: {failure}"
    );
}

// ---------------------------------------------------------------------
// Seed/determinism properties.
// ---------------------------------------------------------------------

/// A benign racy model with enough scheduling freedom that distinct
/// schedules are overwhelmingly likely for distinct seeds.
fn racy_benign_model() {
    let x = Arc::new(McAtomicU64::new(0));
    let hs: Vec<_> = (0..3)
        .map(|i| {
            let x = Arc::clone(&x);
            spawn(move || {
                x.fetch_add(i + 1, Relaxed);
                x.load(Acquire);
                x.fetch_add(1, Release);
            })
        })
        .collect();
    for h in hs {
        h.join();
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Same seed ⇒ bit-identical schedule, twice over.
    #[test]
    fn same_seed_same_schedule(seed in any::<u64>()) {
        let a = check(Mode::ReplaySeed { seed }, Options::named("det"), racy_benign_model);
        let b = check(Mode::ReplaySeed { seed }, Options::named("det"), racy_benign_model);
        prop_assert_eq!(&a.last_schedule, &b.last_schedule);
        prop_assert!(!a.last_schedule.is_empty());
    }

    /// The seeded buggy two-thread model is always caught within N
    /// random iterations, whatever the base seed.
    #[test]
    fn torn_seqlock_always_caught(seed in any::<u64>()) {
        let result = explore(
            Mode::Random { seed, iters: 300 },
            Options::named("torn-seqlock"),
            torn_seqlock_model,
        );
        prop_assert!(result.is_err(), "seed {seed:#x} missed the race in 300 iters");
    }
}
