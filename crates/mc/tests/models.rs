//! Models of the **real** hts primitives, running on the shims via the
//! `model-check` features of `hts-core` and `hts-metrics` (see the
//! `mc-models.toml` manifest at the workspace root — the L7 lint checks
//! every protocol-crate atomic lives in a module modeled here or is
//! explicitly exempted).
//!
//! What exhaustive exploration proves, per model:
//!
//! * [`ReadCell`] — the seqlock invariant: `try_read` never returns a
//!   torn `(tag, value)` pair (the shim's `UnsafeCell` access windows
//!   catch any read overlapping the writer's slot update as a data
//!   race), the BLOCKED bit always forces `None`, and the WRITING bit
//!   keeps readers out of the write window.
//! * [`ReadCellRegistry`] — the snapshot-published index: a wait-free
//!   `try_read` racing a register creation sees the old or new map,
//!   never a torn pointer, and a lookup through either snapshot reaches
//!   the same live cell.
//! * [`FlightRing`] — concurrent `record`s never lose an event within
//!   capacity, and a concurrent `snapshot` never observes a torn slot
//!   (every event's payload passes the consistency checks).
//! * [`Histogram`] / [`Counter`] — concurrent recording loses nothing.
//!
//! The RingShared drain/linger/shutdown model lives next to the code it
//! checks: `crates/net/src/server.rs` (`cargo test -p hts-net
//! --features model-check`).

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use hts_core::{ReadCell, ReadCellRegistry};
use hts_mc::{check, explore, spawn, Mode, Options};
use hts_metrics::flight::{FlightRing, KIND_OP_BEGIN};
use hts_metrics::{Counter, Histogram};
use hts_types::{ObjectId, ServerId, Tag, Value};

// ---------------------------------------------------------------------
// ReadCell: the published-snapshot seqlock from crates/core/snapshot.rs.
// ---------------------------------------------------------------------

/// One publish racing one optimistic read: the reader sees `None` (cell
/// fresh ⇒ BLOCKED, or mid-write) or the exactly-published pair — never
/// a torn one. The shim turns any slot access overlapping the writer's
/// into a reported data race, so the seqlock protocol itself is what is
/// being verified, not just the value equality.
fn readcell_publish_vs_read(publishes: u64, readers: usize) {
    let cell = Arc::new(ReadCell::new());
    let writer = {
        let cell = Arc::clone(&cell);
        spawn(move || {
            for ts in 1..=publishes {
                cell.publish(Tag::new(ts, ServerId(0)), &Value::from_u64(ts), false);
            }
        })
    };
    let reader_hs: Vec<_> = (0..readers)
        .map(|_| {
            let cell = Arc::clone(&cell);
            spawn(move || {
                if let Some((tag, value)) = cell.try_read() {
                    assert_eq!(
                        value.as_u64(),
                        Some(tag.ts),
                        "torn read: tag {tag} with mismatched value"
                    );
                    assert!(tag.ts >= 1 && tag.ts <= publishes, "impossible tag");
                }
            })
        })
        .collect();
    for h in reader_hs {
        h.join();
    }
    writer.join();
    // Quiescent: the final publish must now be readable.
    let (tag, value) = cell.try_read().expect("unblocked published cell reads");
    assert_eq!(tag.ts, publishes);
    assert_eq!(value.as_u64(), Some(publishes));
}

#[test]
fn readcell_one_publish_one_reader_exhaustive() {
    let report = check(Mode::Exhaustive, Options::named("readcell-1w1r"), || {
        readcell_publish_vs_read(1, 1)
    });
    assert!(report.schedules > 1, "explored: {report:?}");
}

#[test]
fn readcell_two_publishes_one_reader_exhaustive() {
    check(Mode::Exhaustive, Options::named("readcell-2w1r"), || {
        readcell_publish_vs_read(2, 1)
    });
}

#[test]
fn readcell_multi_reader_random() {
    check(
        Mode::Random {
            seed: 0x5EA_10C4,
            iters: 400,
        },
        Options::named("readcell-multi"),
        || readcell_publish_vs_read(3, 2),
    );
}

#[test]
fn readcell_blocked_bit_forces_none_exhaustive() {
    // A blocked publish must never satisfy a reader, under any schedule:
    // the fast read path bails and the event loop serves the read.
    check(Mode::Exhaustive, Options::named("readcell-blocked"), || {
        let cell = Arc::new(ReadCell::new());
        let c2 = Arc::clone(&cell);
        let writer = spawn(move || {
            c2.publish(Tag::new(1, ServerId(0)), &Value::from_u64(1), true);
        });
        assert!(
            cell.try_read().is_none(),
            "read satisfied from a BLOCKED cell"
        );
        writer.join();
    });
}

#[test]
fn readcell_set_blocked_vs_read_exhaustive() {
    // Toggling BLOCKED on a published cell races a reader: the reader
    // gets the published pair or None, and afterwards reads stay None.
    check(
        Mode::Exhaustive,
        Options::named("readcell-setblocked"),
        || {
            let cell = Arc::new(ReadCell::new());
            cell.publish(Tag::new(1, ServerId(0)), &Value::from_u64(1), false);
            let c2 = Arc::clone(&cell);
            let blocker = spawn(move || c2.set_blocked(true));
            if let Some((tag, value)) = cell.try_read() {
                assert_eq!(value.as_u64(), Some(tag.ts), "torn read under set_blocked");
            }
            blocker.join();
            assert!(cell.try_read().is_none(), "BLOCKED bit lost");
        },
    );
}

// ---------------------------------------------------------------------
// ReadCellRegistry: the snapshot-published index from snapshot.rs.
// ---------------------------------------------------------------------

#[test]
fn registry_lookup_vs_insert_exhaustive() {
    // The writer registers object 2 (clone-insert-swap of the published
    // snapshot) while a reader looks up the pre-existing object 1 and
    // the in-flight object 2. Either snapshot generation is fine; a
    // torn pointer, a lost pre-existing entry, or a phantom hit on an
    // unregistered object are not.
    let report = check(Mode::Exhaustive, Options::named("registry-ins"), || {
        let reg = Arc::new(ReadCellRegistry::new());
        reg.cell(ObjectId(1))
            .publish(Tag::new(1, ServerId(0)), &Value::from_u64(1), false);
        let r2 = Arc::clone(&reg);
        let writer = spawn(move || {
            r2.cell(ObjectId(2))
                .publish(Tag::new(2, ServerId(0)), &Value::from_u64(2), false);
        });
        // Object 1 predates the race: visible through every snapshot.
        let (tag, value) = reg.try_read(ObjectId(1)).expect("old entry lost");
        assert_eq!((tag.ts, value.as_u64()), (1, Some(1)));
        // Object 2 is being registered: None (old snapshot or still
        // blocked) or the published pair — nothing else.
        if let Some((tag, value)) = reg.try_read(ObjectId(2)) {
            assert_eq!((tag.ts, value.as_u64()), (2, Some(2)), "torn lookup");
        }
        writer.join();
        let (tag, _) = reg.try_read(ObjectId(2)).expect("new entry published");
        assert_eq!(tag.ts, 2);
    });
    assert!(report.schedules > 1, "explored: {report:?}");
}

#[test]
fn registry_same_cell_across_snapshots_exhaustive() {
    // A publish through a cell handle obtained before a concurrent
    // snapshot swap must land in the cell the new snapshot serves:
    // snapshots share cells by Arc, they don't copy them.
    check(Mode::Exhaustive, Options::named("registry-alias"), || {
        let reg = Arc::new(ReadCellRegistry::new());
        let cell = reg.cell(ObjectId(1));
        let r2 = Arc::clone(&reg);
        let swapper = spawn(move || {
            r2.cell(ObjectId(2)); // forces a snapshot swap
        });
        cell.publish(Tag::new(9, ServerId(0)), &Value::from_u64(9), false);
        swapper.join();
        let (tag, _) = reg
            .try_read(ObjectId(1))
            .expect("publish visible through the swapped snapshot");
        assert_eq!(tag.ts, 9, "snapshot swap cloned the cell");
    });
}

// ---------------------------------------------------------------------
// FlightRing: the per-op recorder from crates/metrics/flight.rs.
// ---------------------------------------------------------------------

/// Events record `a == b` so any torn slot that slipped past the seq +
/// checksum validation is detectable in the payload itself.
fn assert_coherent<const N: usize>(ring: &FlightRing<N>) -> usize {
    let events = ring.snapshot();
    for e in &events {
        assert_eq!(e.a, e.b, "torn flight slot escaped validation: {e:?}");
        assert_eq!(e.kind, KIND_OP_BEGIN, "kind byte corrupted");
    }
    events.len()
}

#[test]
fn flight_ring_two_writers_exhaustive() {
    // Two concurrent writers into a 2-slot ring: both events must be
    // readable after the dust settles, with intact payloads.
    let report = check(Mode::Exhaustive, Options::named("flight-2w"), || {
        let ring: Arc<FlightRing<2>> = Arc::new(FlightRing::new());
        let hs: Vec<_> = (1..=2u64)
            .map(|i| {
                let ring = Arc::clone(&ring);
                spawn(move || ring.record(KIND_OP_BEGIN, i, i, 0))
            })
            .collect();
        for h in hs {
            h.join();
        }
        assert_eq!(assert_coherent(&*ring), 2, "an event was lost");
    });
    assert!(report.schedules > 1, "explored: {report:?}");
}

#[test]
fn flight_ring_wrap_vs_snapshot_random() {
    // A writer lapping the 2-slot ring while the main thread snapshots:
    // the snapshot may skip in-progress slots but must never return a
    // torn event. Exercises the wraparound checksum path.
    check(
        Mode::Random {
            seed: 0xF1_16_47,
            iters: 300,
        },
        Options::named("flight-wrap"),
        || {
            let ring: Arc<FlightRing<2>> = Arc::new(FlightRing::new());
            let r2 = Arc::clone(&ring);
            let writer = spawn(move || {
                for i in 1..=3u64 {
                    r2.record(KIND_OP_BEGIN, i, i, 0);
                }
            });
            assert_coherent(&*ring); // concurrent with the writer
            writer.join();
            let n = assert_coherent(&*ring);
            assert!(n >= 1, "quiescent 2-slot ring readable after 3 records");
        },
    );
}

/// Satellite wiring: a failing model dumps its flight ring's per-op
/// event trace alongside the seed, via `Options::failure_hook`. The ring
/// outlives the executions (diagnostics, not model state), so this runs
/// under `Mode::Random` — replay determinism is the seed's job, the dump
/// is the post-mortem's.
#[test]
fn failing_model_dumps_flight_ring() {
    let ring: Arc<FlightRing<8>> = Arc::new(FlightRing::new());
    let dumped = Arc::new(AtomicBool::new(false));
    let hook_ring = Arc::clone(&ring);
    let hook_dumped = Arc::clone(&dumped);
    let opts = Options {
        failure_hook: Some(Arc::new(move |failure| {
            hook_ring.dump_to_stderr(&format!("model '{}' failed", failure.model));
            hook_dumped.store(true, Ordering::SeqCst);
        })),
        ..Options::named("flight-dump-on-failure")
    };
    let model_ring = Arc::clone(&ring);
    let failure = explore(
        Mode::Random {
            seed: 0xDEAD_10AD,
            iters: 200,
        },
        opts,
        move || {
            // The op-begin event precedes the bug, so the post-mortem
            // dump always shows what led up to the failure.
            model_ring.record(KIND_OP_BEGIN, 7, 7, 0);
            let flag = Arc::new(hts_mc::shim::McAtomicU64::new(0));
            let f2 = Arc::clone(&flag);
            let t = spawn(move || {
                f2.store(1, Ordering::SeqCst);
            });
            // BUG under some schedules: asserts the store already landed.
            assert_eq!(flag.load(Ordering::SeqCst), 1, "raced ahead of the store");
            t.join();
        },
    )
    .expect_err("the racy assert must fail under some schedule");
    assert!(failure.seed.is_some(), "random failure reports its seed");
    assert!(dumped.load(Ordering::SeqCst), "failure hook did not run");
    assert!(
        !ring.snapshot().is_empty(),
        "the dumped ring held the recorded events"
    );
}

// ---------------------------------------------------------------------
// Histogram / Counter: crates/metrics/hist.rs and lib.rs.
// ---------------------------------------------------------------------

#[test]
fn counter_concurrent_incs_exhaustive() {
    check(Mode::Exhaustive, Options::named("counter-incs"), || {
        let c = Arc::new(Counter::new());
        let hs: Vec<_> = (0..2)
            .map(|_| {
                let c = Arc::clone(&c);
                spawn(move || c.add(3))
            })
            .collect();
        for h in hs {
            h.join();
        }
        assert_eq!(c.get(), 6, "an add was lost");
    });
}

#[test]
fn histogram_record_snapshot_merge_random() {
    // Two recorders + a concurrent snapshot: recording loses nothing,
    // and merging per-thread-window snapshots equals the total.
    check(
        Mode::Random {
            seed: 0x4157_061A,
            iters: 100,
        },
        Options {
            // A snapshot loads all 256 buckets: deeper schedules than
            // the other models.
            max_steps: 50_000,
            ..Options::named("hist-record")
        },
        || {
            let h = Arc::new(Histogram::new());
            let hs: Vec<_> = [3u64, 300]
                .iter()
                .map(|&v| {
                    let h = Arc::clone(&h);
                    spawn(move || h.record(v))
                })
                .collect();
            let mid = h.snapshot(); // concurrent with the recorders
            assert!(mid.count() <= 2, "phantom recordings");
            for t in hs {
                t.join();
            }
            let done = h.snapshot();
            assert_eq!(done.count(), 2, "a recording was lost");
            assert_eq!(done.sum(), 303);
            // The window since `mid` plus `mid` merges back to the total.
            let mut merged = done.since(&mid);
            merged.merge(&mid);
            assert_eq!(merged.count(), done.count(), "since/merge disagree");
        },
    );
}
