//! Time-boxed seeded random exploration of the in-tree models — the CI
//! `modelcheck` job's second leg (the first is the exhaustive test
//! suite). Runs every model under fresh seeds until the time budget
//! expires, logging each round's base seed so a CI failure is
//! reproducible from the log alone:
//!
//! ```text
//! HTS_MC_SOAK_SECS=60 HTS_MC_SEED=0x5eed cargo run -p hts-mc --example soak
//! ```
//!
//! On failure, prints the full report (message, effective seed, schedule,
//! per-op trace) and exits non-zero; paste the printed seed into
//! `Mode::ReplaySeed` to replay it locally.

use std::sync::Arc;
use std::time::{Duration, Instant};

use hts_core::ReadCell;
use hts_mc::{explore, spawn, Mode, Options};
use hts_metrics::flight::{FlightRing, KIND_OP_BEGIN};
use hts_types::{ServerId, Tag, Value};

fn env_u64(name: &str, default: u64) -> u64 {
    match std::env::var(name) {
        Ok(v) => {
            let v = v.trim();
            let parsed = match v.strip_prefix("0x") {
                Some(hex) => u64::from_str_radix(hex, 16),
                None => v.parse(),
            };
            parsed.unwrap_or_else(|_| panic!("{name}={v:?} is not a number"))
        }
        Err(_) => default,
    }
}

fn readcell_model() {
    let cell = Arc::new(ReadCell::new());
    let writer = {
        let cell = Arc::clone(&cell);
        spawn(move || {
            for ts in 1..=3u64 {
                cell.publish(Tag::new(ts, ServerId(0)), &Value::from_u64(ts), ts == 2);
            }
        })
    };
    let readers: Vec<_> = (0..2)
        .map(|_| {
            let cell = Arc::clone(&cell);
            spawn(move || {
                if let Some((tag, value)) = cell.try_read() {
                    assert_eq!(value.as_u64(), Some(tag.ts), "torn read: {tag}");
                }
            })
        })
        .collect();
    for r in readers {
        r.join();
    }
    writer.join();
}

fn flight_ring_model() {
    let ring: Arc<FlightRing<2>> = Arc::new(FlightRing::new());
    let hs: Vec<_> = (1..=2u64)
        .map(|i| {
            let ring = Arc::clone(&ring);
            spawn(move || {
                ring.record(KIND_OP_BEGIN, i, i, 0);
                ring.record(KIND_OP_BEGIN, i + 10, i + 10, 0);
            })
        })
        .collect();
    for e in ring.snapshot() {
        assert_eq!(e.a, e.b, "torn flight slot escaped validation: {e:?}");
    }
    for h in hs {
        h.join();
    }
}

const MODELS: &[(&str, fn())] = &[
    ("readcell-soak", readcell_model),
    ("flight-ring-soak", flight_ring_model),
];

fn main() {
    let secs = env_u64("HTS_MC_SOAK_SECS", 60);
    let base = env_u64("HTS_MC_SEED", 0x5EED);
    let deadline = Instant::now() + Duration::from_secs(secs);
    let mut round = 0u64;
    let mut executions = 0usize;
    println!(
        "soak: {secs}s budget, base seed {base:#x}, {} models",
        MODELS.len()
    );
    while Instant::now() < deadline {
        // One derived base per (round, model); each explore() call then
        // derives per-iteration seeds from it. Logged so any failure in
        // CI is replayable from the log.
        for (i, (name, model)) in MODELS.iter().enumerate() {
            let seed = base ^ (round << 8) ^ i as u64;
            println!("  round {round} model {name}: base seed {seed:#x}");
            match explore(
                Mode::Random { seed, iters: 100 },
                Options::named(name),
                model,
            ) {
                Ok(report) => executions += report.schedules,
                Err(failure) => {
                    eprintln!("{failure}");
                    std::process::exit(1);
                }
            }
        }
        round += 1;
    }
    println!("soak passed: {round} rounds, {executions} executions, no failures");
}
