//! SplitMix64: the deterministic PRNG behind seeded-random scheduling.
//!
//! Chosen because a failing schedule must replay from a single printed
//! `u64`: SplitMix64 is a pure function of its state, has no hidden
//! global state, and its finalizer doubles as a cheap seed deriver for
//! per-iteration streams.

/// SplitMix64 stream (Steele, Lea & Flood; the `java.util.SplittableRandom`
/// mixer). One instance per model-checked execution.
#[derive(Clone, Debug)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Stream seeded with `seed`. The same seed always produces the
    /// same sequence — that is the whole point.
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// The SplitMix64 finalizer as a standalone mixing function.
    pub fn mix(mut z: u64) -> u64 {
        z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Next value in the stream.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform-ish draw in `0..n` (modulo bias is irrelevant for
    /// schedule picking; `n` is a handful of threads).
    pub fn below(&mut self, n: usize) -> usize {
        debug_assert!(n > 0);
        (self.next_u64() % n as u64) as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let a: Vec<u64> = (0..32)
            .map({
                let mut r = SplitMix64::new(42);
                move |_| r.next_u64()
            })
            .collect();
        let b: Vec<u64> = (0..32)
            .map({
                let mut r = SplitMix64::new(42);
                move |_| r.next_u64()
            })
            .collect();
        assert_eq!(a, b);
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SplitMix64::new(1);
        let mut b = SplitMix64::new(2);
        assert_ne!(
            (0..8).map(|_| a.next_u64()).collect::<Vec<_>>(),
            (0..8).map(|_| b.next_u64()).collect::<Vec<_>>()
        );
    }
}
