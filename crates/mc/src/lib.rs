//! `hts-mc`: a loom/shuttle-style model checker for the hts lock-free
//! hot paths.
//!
//! A *model* is a closure that spawns threads ([`spawn`]) and exercises
//! shimmed primitives ([`shim`]); the explorer ([`explore`]/[`check`])
//! runs it under a controlled scheduler — one runnable thread at a
//! time, a scheduling choice before every shimmed operation — so the
//! set of interleavings is exactly the set of schedules:
//!
//! * [`Mode::Exhaustive`]: bounded-exhaustive DFS over all schedules
//!   with sleep-set pruning. Right for small models (a handful of
//!   threads, tens of ops); deterministic, so failures replay by
//!   rerunning.
//! * [`Mode::Random`]: seeded pseudo-random scheduling for models too
//!   big to enumerate. Every failing schedule prints the effective
//!   seed of its execution.
//! * [`Mode::ReplaySeed`]: one execution with the scheduler RNG seeded
//!   from a failure report — deterministic replay of that schedule.
//!
//! What a failure looks like: the report carries the model name, the
//!   violated property (panic message, detected deadlock, data race, or
//!   step-budget blowout), the seed when one exists, the schedule
//!   (thread id per step), and a per-op trace with each access's
//!   declared `Ordering`.
//!
//! Scope: exploration is over *sequentially consistent* interleavings;
//! the declared orderings are recorded in traces and reviewed by the L7
//! `atomic_ordering` lint, but weak-memory reorderings are not
//! simulated. Data races on `UnsafeCell` data (the way a seqlock tears)
//! are detected structurally via access-window overlap, so they are
//! caught even though execution itself never produces torn bytes.
//!
//! The protocol crates consume the shims behind their `model-check`
//! feature; with the feature off they compile to plain `std` types with
//! zero overhead, and with it on but no execution active the shims pass
//! straight through, so ordinary tests are unaffected.

mod exec;
pub mod explore;
pub mod rng;
pub mod shim;

pub use explore::{check, explore, Failure, Mode, Options, Report};
pub use shim::{spawn, McJoinHandle};

/// std-shaped aliases so consumer crates can swap imports with one
/// `cfg`: `use hts_mc::sync::{AtomicU64, UnsafeCell, spin_loop};`
/// mirrors `std::sync::atomic` / `std::cell` / `std::hint` names.
pub mod sync {
    pub use crate::shim::spin_loop;
    pub type AtomicU64 = crate::shim::McAtomicU64;
    pub type AtomicU32 = crate::shim::McAtomicU32;
    pub type AtomicUsize = crate::shim::McAtomicUsize;
    pub type AtomicI64 = crate::shim::McAtomicI64;
    pub type AtomicBool = crate::shim::McAtomicBool;
    pub type UnsafeCell<T> = crate::shim::McUnsafeCell<T>;
    pub type Mutex<T> = crate::shim::McMutex<T>;
    pub type MutexGuard<'a, T> = crate::shim::McMutexGuard<'a, T>;
    pub type Condvar = crate::shim::McCondvar;
}
