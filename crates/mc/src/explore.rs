//! Exploration driver: exhaustive sleep-set DFS for small models,
//! seeded pseudo-random scheduling for larger ones, and single-seed
//! replay for failure reproduction.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Arc;

use crate::exec::{ctx, dfs_backtrack, set_ctx, Execution, McAbort, Policy};
use crate::rng::SplitMix64;

/// Callback invoked with a [`Failure`] before `explore` returns it.
pub type FailureHook = Arc<dyn Fn(&Failure) + Send + Sync>;

/// How to drive the schedule space.
#[derive(Clone, Copy, Debug)]
pub enum Mode {
    /// Bounded-exhaustive DFS with sleep-set pruning. Deterministic: a
    /// failure reproduces by rerunning the same model exhaustively.
    Exhaustive,
    /// `iters` executions under seeded pseudo-random scheduling; the
    /// per-iteration seed is derived from `seed` and printed on failure.
    Random { seed: u64, iters: usize },
    /// Exactly one execution with the scheduler RNG seeded to `seed` —
    /// paste the seed from a failure report to replay it.
    ReplaySeed { seed: u64 },
}

/// Exploration knobs. `Default` is sized for the in-tree models.
#[derive(Clone)]
pub struct Options {
    /// Model name, echoed in failure reports.
    pub name: &'static str,
    /// Per-execution schedule-step budget; exceeding it is a failure
    /// (an unbounded spin under some interleaving is a liveness bug).
    pub max_steps: usize,
    /// Exhaustive-mode schedule budget; exceeding it is a failure
    /// telling you the model is too big for DFS — shrink it or switch
    /// to `Mode::Random`.
    pub max_schedules: usize,
    /// Called once with the failure before `explore` returns it; the
    /// metrics models use this to dump the flight recorder so the
    /// interleaving is reconstructible op by op.
    pub failure_hook: Option<FailureHook>,
}

impl Default for Options {
    fn default() -> Self {
        Options {
            name: "model",
            max_steps: 20_000,
            max_schedules: 200_000,
            failure_hook: None,
        }
    }
}

impl Options {
    pub fn named(name: &'static str) -> Self {
        Options {
            name,
            ..Options::default()
        }
    }
}

/// Successful exploration summary.
#[derive(Debug)]
pub struct Report {
    /// Executions run (distinct schedules for `Exhaustive`).
    pub schedules: usize,
    /// Steps in the longest schedule seen.
    pub deepest: usize,
    /// The last execution's schedule (thread id per step) — for
    /// `ReplaySeed` this is *the* schedule of the replayed run.
    pub last_schedule: Vec<usize>,
}

/// A failing exploration: everything needed to reproduce and read the
/// interleaving.
#[derive(Debug)]
pub struct Failure {
    pub model: &'static str,
    pub message: String,
    /// Effective scheduler seed (random modes). `None` ⇒ the failure
    /// came from deterministic DFS: rerun `Mode::Exhaustive` to replay.
    pub seed: Option<u64>,
    /// Thread id picked at each step.
    pub schedule: Vec<usize>,
    /// Human-readable per-op trace of the failing schedule.
    pub trace: Vec<String>,
}

impl std::fmt::Display for Failure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "model '{}' failed: {}", self.model, self.message)?;
        match self.seed {
            Some(s) => writeln!(
                f,
                "  seed: {s:#018x} — replay with Mode::ReplaySeed {{ seed: {s:#018x} }}"
            )?,
            None => writeln!(
                f,
                "  found by exhaustive DFS (deterministic) — rerun Mode::Exhaustive to replay"
            )?,
        }
        write!(f, "  schedule ({} steps):", self.schedule.len())?;
        for t in &self.schedule {
            write!(f, " {t}")?;
        }
        writeln!(f)?;
        writeln!(f, "  trace:")?;
        for line in &self.trace {
            writeln!(f, "    {line}")?;
        }
        Ok(())
    }
}

impl std::error::Error for Failure {}

struct RunResult {
    failure: Option<String>,
    schedule: Vec<usize>,
    trace: Vec<String>,
    steps: usize,
    policy: Policy,
}

fn payload_msg(p: Box<dyn std::any::Any + Send>) -> Option<String> {
    if p.downcast_ref::<McAbort>().is_some() {
        return None; // internal abort: verdict already recorded
    }
    Some(if let Some(s) = p.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = p.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    })
}

/// One complete execution of the model under `policy`.
fn run_one<F: Fn()>(policy: Policy, opts: &Options, model: &F) -> RunResult {
    assert!(
        ctx().is_none(),
        "hts-mc explorations do not nest: explore() called from inside a model"
    );
    let exec = Arc::new(Execution::new(policy, opts.max_steps));
    set_ctx(Some((exec.clone(), 0)));
    let caught = catch_unwind(AssertUnwindSafe(&model));
    set_ctx(None);
    let panic_msg = match caught {
        Ok(()) => None,
        Err(p) => payload_msg(p),
    };
    let (failure, _pruned, schedule, trace, steps, policy) = exec.main_done(panic_msg);
    RunResult {
        failure,
        schedule,
        trace,
        steps,
        policy,
    }
}

/// Stateless per-iteration seed derivation: O(1) per iteration and
/// reversible from the failure report (the printed seed *is* the RNG
/// seed of the failing execution).
fn derive_seed(base: u64, i: u64) -> u64 {
    SplitMix64::mix(base ^ i.wrapping_mul(0x9E37_79B9_7F4A_7C15))
}

fn make_failure(
    opts: &Options,
    message: String,
    seed: Option<u64>,
    schedule: Vec<usize>,
    trace: Vec<String>,
) -> Box<Failure> {
    let failure = Box::new(Failure {
        model: opts.name,
        message,
        seed,
        schedule,
        trace,
    });
    if let Some(hook) = &opts.failure_hook {
        hook(&failure);
    }
    failure
}

/// Run `model` under `mode`. Returns the exploration summary, or the
/// first failing schedule with everything needed to replay it.
pub fn explore<F>(mode: Mode, opts: Options, model: F) -> Result<Report, Box<Failure>>
where
    F: Fn(),
{
    match mode {
        Mode::Exhaustive => {
            let mut stack = Vec::new();
            let mut schedules = 0usize;
            let mut deepest = 0usize;
            loop {
                schedules += 1;
                if schedules > opts.max_schedules {
                    return Err(make_failure(
                        &opts,
                        format!(
                            "exhaustive exploration exceeded {} schedules — the model is \
                             too big for DFS; shrink it or use Mode::Random",
                            opts.max_schedules
                        ),
                        None,
                        Vec::new(),
                        Vec::new(),
                    ));
                }
                let r = run_one(Policy::dfs(stack), &opts, &model);
                stack = r.policy.into_dfs_stack();
                deepest = deepest.max(r.steps);
                if let Some(msg) = r.failure {
                    return Err(make_failure(&opts, msg, None, r.schedule, r.trace));
                }
                if !dfs_backtrack(&mut stack) {
                    return Ok(Report {
                        schedules,
                        deepest,
                        last_schedule: r.schedule,
                    });
                }
            }
        }
        Mode::Random { seed, iters } => {
            let mut deepest = 0usize;
            let mut last = Vec::new();
            for i in 0..iters {
                let eff = derive_seed(seed, i as u64);
                let r = run_one(Policy::random(eff), &opts, &model);
                deepest = deepest.max(r.steps);
                if let Some(msg) = r.failure {
                    return Err(make_failure(&opts, msg, Some(eff), r.schedule, r.trace));
                }
                last = r.schedule;
            }
            Ok(Report {
                schedules: iters,
                deepest,
                last_schedule: last,
            })
        }
        Mode::ReplaySeed { seed } => {
            let r = run_one(Policy::random(seed), &opts, &model);
            if let Some(msg) = r.failure {
                return Err(make_failure(&opts, msg, Some(seed), r.schedule, r.trace));
            }
            Ok(Report {
                schedules: 1,
                deepest: r.steps,
                last_schedule: r.schedule,
            })
        }
    }
}

/// [`explore`], panicking with the full failure report (seed, schedule,
/// per-op trace) — the form tests use.
pub fn check<F: Fn()>(mode: Mode, opts: Options, model: F) -> Report {
    match explore(mode, opts, model) {
        Ok(report) => report,
        Err(failure) => panic!("{failure}"),
    }
}
