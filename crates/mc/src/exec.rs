//! The controlled-scheduling core.
//!
//! A model runs on real OS threads, but only one is ever runnable: every
//! shimmed operation *yields* to the scheduler before it executes, so an
//! interleaving is exactly a schedule — the sequence of thread ids picked
//! at each step — and replaying a schedule replays the execution bit for
//! bit. Blocking primitives (mutex, condvar, spin loops, joins) never
//! block the OS thread on the modelled state; they park on the scheduler
//! until the model-level condition makes them runnable again, which is
//! what lets the explorer see (and report) deadlocks and lost wakeups
//! instead of hanging.
//!
//! `UnsafeCell` accesses are checked for data races by window overlap:
//! an access spans two schedule steps (begin/end), so any interleaving
//! in which a write window overlaps another access window is reachable
//! by the explorer and reported as a race — this is how seqlock bugs
//! (torn reads) surface without real torn memory.

use std::collections::HashMap;
use std::panic::panic_any;
use std::sync::{Arc, Condvar, Mutex, MutexGuard};

use crate::rng::SplitMix64;

/// Marker payload for the internal unwind that tears a model thread down
/// when the execution aborts (failure elsewhere, DFS prune, cleanup).
/// Never surfaces to user code.
pub(crate) struct McAbort;

/// What a visible operation does, for trace labels and the independence
/// relation used by sleep-set pruning.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub(crate) enum AccKind {
    Load,
    Store,
    Rmw,
    CellReadBegin,
    CellReadEnd,
    CellWriteBegin,
    CellWriteEnd,
    NotifyOne,
    NotifyAll,
}

impl AccKind {
    fn name(self) -> &'static str {
        match self {
            AccKind::Load => "load",
            AccKind::Store => "store",
            AccKind::Rmw => "rmw",
            AccKind::CellReadBegin => "cell-read-begin",
            AccKind::CellReadEnd => "cell-read-end",
            AccKind::CellWriteBegin => "cell-write-begin",
            AccKind::CellWriteEnd => "cell-write-end",
            AccKind::NotifyOne => "notify_one",
            AccKind::NotifyAll => "notify_all",
        }
    }

    /// Read-like ops commute with each other on the same object.
    fn read_like(self) -> bool {
        matches!(
            self,
            AccKind::Load | AccKind::CellReadBegin | AccKind::CellReadEnd
        )
    }
}

/// One visible operation, recorded with the `Ordering` the caller wrote
/// (execution itself is sequentially consistent; see crate docs).
#[derive(Clone, Copy, Debug)]
pub(crate) struct Op {
    pub acc: AccKind,
    pub ty: &'static str,
    pub addr: usize,
    pub order: &'static str,
}

/// What a thread will do when next scheduled.
#[derive(Clone, Copy, Debug)]
pub(crate) enum Pend {
    /// Visible operation: picked ⇒ the thread runs it, then user code up
    /// to its next yield.
    Op(Op),
    /// Waiting for a model mutex; enabled while free, acquires on pick.
    LockAcquire { m: usize, timed_out: bool },
    /// Parked on a condvar. `timed` waiters can be picked as a timeout.
    CvWait { cv: usize, m: usize, timed: bool },
    /// `spin_loop()`: enabled once any store lands after this thread's
    /// last atomic load (the value it is spinning on may have changed).
    Spin,
    /// Waiting for thread `t` to finish.
    Join { t: usize },
    /// Spawned, parked before its first user instruction.
    Start,
    /// Running, or finished: not schedulable.
    None,
}

/// Per-thread scheduler state.
pub(crate) struct Th {
    pub pending: Pend,
    pub finished: bool,
    /// `store_epoch` at this thread's last atomic load/rmw; a `Spin`
    /// becomes runnable when the global epoch moves past it.
    last_load_epoch: u64,
    cv_timed_out: bool,
}

#[derive(Default)]
struct CellWin {
    readers: usize,
    writer: bool,
}

pub(crate) struct ExecState {
    pub threads: Vec<Th>,
    active: usize,
    live: usize,
    /// Model-mutex holder by object address; absent = free.
    locks: HashMap<usize, usize>,
    /// FIFO wait queues per condvar (std leaves wake order unspecified;
    /// we pick FIFO so schedules stay deterministic).
    cv_waiters: HashMap<usize, Vec<usize>>,
    cells: HashMap<usize, CellWin>,
    /// Stable per-execution labels for raw addresses, in first-touch
    /// order, so traces are readable and replay-stable under ASLR.
    obj_names: HashMap<usize, usize>,
    pub policy: Option<Policy>,
    pub steps: usize,
    max_steps: usize,
    store_epoch: u64,
    pub schedule: Vec<usize>,
    pub trace: Vec<String>,
    pub failure: Option<String>,
    pub pruned: bool,
    abort: bool,
    handles: Vec<std::thread::JoinHandle<()>>,
}

impl ExecState {
    fn enabled(&self, i: usize) -> bool {
        let th = &self.threads[i];
        if th.finished {
            return false;
        }
        match th.pending {
            Pend::Op(_) | Pend::Start => true,
            Pend::LockAcquire { m, .. } => !self.locks.contains_key(&m),
            Pend::CvWait { timed, .. } => timed,
            Pend::Spin => self.store_epoch > th.last_load_epoch,
            Pend::Join { t } => self.threads[t].finished,
            Pend::None => false,
        }
    }

    fn obj_label(&mut self, addr: usize) -> usize {
        let next = self.obj_names.len();
        *self.obj_names.entry(addr).or_insert(next)
    }

    fn describe(&mut self, i: usize) -> String {
        match self.threads[i].pending {
            Pend::Op(op) => {
                let label = self.obj_label(op.addr);
                if op.order == "-" {
                    format!("{}#{} {}", op.ty, label, op.acc.name())
                } else {
                    format!("{}#{} {} {}", op.ty, label, op.acc.name(), op.order)
                }
            }
            Pend::LockAcquire { m, timed_out } => {
                let label = self.obj_label(m);
                if timed_out {
                    format!("mutex#{label} reacquire (after timeout)")
                } else {
                    format!("mutex#{label} acquire")
                }
            }
            Pend::CvWait { cv, timed, .. } => {
                let label = self.obj_label(cv);
                if timed {
                    format!("condvar#{label} wait_timeout fires")
                } else {
                    format!("condvar#{label} wait")
                }
            }
            Pend::Spin => "spin".to_string(),
            Pend::Join { t } => format!("join t{t}"),
            Pend::Start => "start".to_string(),
            Pend::None => "-".to_string(),
        }
    }
}

/// Outcome of asking the policy for the next thread.
pub(crate) enum Pick {
    Go(usize),
    /// Sleep-set pruning: every enabled thread is asleep, the subtree is
    /// covered elsewhere — abandon this execution quietly.
    Prune,
    Fail(String),
}

/// Scheduling policy for one execution.
pub(crate) enum Policy {
    Dfs(DfsPolicy),
    Random { rng: SplitMix64 },
}

impl Policy {
    pub(crate) fn dfs(stack: Vec<DfsNode>) -> Policy {
        Policy::Dfs(DfsPolicy {
            stack,
            depth: 0,
            cur_sleep: Vec::new(),
        })
    }

    pub(crate) fn random(seed: u64) -> Policy {
        Policy::Random {
            rng: SplitMix64::new(seed),
        }
    }

    pub(crate) fn into_dfs_stack(self) -> Vec<DfsNode> {
        match self {
            Policy::Dfs(d) => d.stack,
            Policy::Random { .. } => Vec::new(),
        }
    }

    fn pick(&mut self, enabled: &[usize], threads: &[Th]) -> Pick {
        match self {
            Policy::Random { rng } => Pick::Go(enabled[rng.below(enabled.len())]),
            Policy::Dfs(d) => d.pick(enabled, threads),
        }
    }
}

/// One node of the DFS frontier: the state reached by the schedule
/// prefix above it, with the branch currently taken and those still to
/// explore. `entry_sleep` is the sleep set the node was entered with.
pub(crate) struct DfsNode {
    pub chosen: usize,
    pub remaining: Vec<usize>,
    pub explored: Vec<usize>,
    entry_sleep: Vec<usize>,
}

pub(crate) struct DfsPolicy {
    stack: Vec<DfsNode>,
    depth: usize,
    cur_sleep: Vec<usize>,
}

/// Sleep-set independence: two pending operations commute iff they are
/// plain visible ops on different objects, or read-like ops on the same
/// one. Everything else (locks, condvars, notifications, joins, spins)
/// is conservatively dependent, which only costs extra exploration.
fn independent(a: &Pend, b: &Pend) -> bool {
    let (Pend::Op(x), Pend::Op(y)) = (a, b) else {
        return false;
    };
    if matches!(x.acc, AccKind::NotifyOne | AccKind::NotifyAll)
        || matches!(y.acc, AccKind::NotifyOne | AccKind::NotifyAll)
    {
        return false;
    }
    x.addr != y.addr || (x.acc.read_like() && y.acc.read_like())
}

impl DfsPolicy {
    fn pick(&mut self, enabled: &[usize], threads: &[Th]) -> Pick {
        if self.depth < self.stack.len() {
            // Replaying the committed prefix.
            let node = &self.stack[self.depth];
            let c = node.chosen;
            if !enabled.contains(&c) {
                return Pick::Fail(format!(
                    "schedule divergence during DFS replay at step {}: model is \
                     nondeterministic (thread t{c} no longer enabled)",
                    self.depth
                ));
            }
            let mut sleep: Vec<usize> = node.entry_sleep.clone();
            for &e in &node.explored {
                if !sleep.contains(&e) {
                    sleep.push(e);
                }
            }
            sleep.retain(|&t| t != c && independent(&threads[t].pending, &threads[c].pending));
            self.cur_sleep = sleep;
            self.depth += 1;
            Pick::Go(c)
        } else {
            // Frontier: open a new node.
            let entry_sleep = self.cur_sleep.clone();
            let cands: Vec<usize> = enabled
                .iter()
                .copied()
                .filter(|t| !entry_sleep.contains(t))
                .collect();
            let Some((&chosen, rest)) = cands.split_first() else {
                return Pick::Prune;
            };
            let mut sleep = entry_sleep.clone();
            sleep.retain(|&t| independent(&threads[t].pending, &threads[chosen].pending));
            self.stack.push(DfsNode {
                chosen,
                remaining: rest.to_vec(),
                explored: Vec::new(),
                entry_sleep,
            });
            self.cur_sleep = sleep;
            self.depth += 1;
            Pick::Go(chosen)
        }
    }
}

/// Advance the DFS frontier to the next unexplored branch. Returns
/// `false` when the whole tree is exhausted.
pub(crate) fn dfs_backtrack(stack: &mut Vec<DfsNode>) -> bool {
    while let Some(top) = stack.last_mut() {
        let done = top.chosen;
        top.explored.push(done);
        if !top.remaining.is_empty() {
            top.chosen = top.remaining.remove(0);
            return true;
        }
        stack.pop();
    }
    false
}

pub(crate) struct Execution {
    st: Mutex<ExecState>,
    cv: Condvar,
}

thread_local! {
    static CURRENT: std::cell::RefCell<Option<(Arc<Execution>, usize)>> =
        const { std::cell::RefCell::new(None) };
}

/// The (execution, thread-id) pair driving the calling thread, if it is
/// a controlled model thread. `None` ⇒ shims fall through to std.
pub(crate) fn ctx() -> Option<(Arc<Execution>, usize)> {
    CURRENT.with(|c| c.borrow().clone())
}

pub(crate) fn set_ctx(v: Option<(Arc<Execution>, usize)>) {
    CURRENT.with(|c| *c.borrow_mut() = v);
}

impl Execution {
    pub(crate) fn new(policy: Policy, max_steps: usize) -> Execution {
        Execution {
            st: Mutex::new(ExecState {
                threads: vec![Th {
                    pending: Pend::None,
                    finished: false,
                    last_load_epoch: 0,
                    cv_timed_out: false,
                }],
                active: 0,
                live: 1,
                locks: HashMap::new(),
                cv_waiters: HashMap::new(),
                cells: HashMap::new(),
                obj_names: HashMap::new(),
                policy: Some(policy),
                steps: 0,
                max_steps,
                store_epoch: 0,
                schedule: Vec::new(),
                trace: Vec::new(),
                failure: None,
                pruned: false,
                abort: false,
                handles: Vec::new(),
            }),
            cv: Condvar::new(),
        }
    }

    /// Poison-tolerant state lock: model threads unwind (with `McAbort`)
    /// while holding it by design.
    fn lock(&self) -> MutexGuard<'_, ExecState> {
        self.st.lock().unwrap_or_else(|e| e.into_inner())
    }

    fn wait<'a>(&'a self, st: MutexGuard<'a, ExecState>) -> MutexGuard<'a, ExecState> {
        self.cv.wait(st).unwrap_or_else(|e| e.into_inner())
    }

    fn fail_and_abort(&self, st: &mut ExecState, msg: String) {
        if st.failure.is_none() && !st.pruned {
            st.failure = Some(msg);
        }
        st.abort = true;
        self.cv.notify_all();
    }

    /// Core loop: pick threads (applying bookkeeping-only transitions
    /// inline) until one must run user code; set it active. `Err` means
    /// the execution aborted (failure, prune, or budget).
    fn schedule(&self, st: &mut ExecState) -> Result<(), ()> {
        loop {
            if st.abort {
                return Err(());
            }
            let enabled: Vec<usize> = (0..st.threads.len()).filter(|&i| st.enabled(i)).collect();
            if enabled.is_empty() {
                if st.live == 0 {
                    return Ok(());
                }
                let alive: Vec<usize> = (0..st.threads.len())
                    .filter(|&i| !st.threads[i].finished)
                    .collect();
                let stuck: Vec<String> = alive
                    .into_iter()
                    .map(|i| format!("t{i}: {}", st.describe(i)))
                    .collect();
                self.fail_and_abort(
                    st,
                    format!(
                        "deadlock: no thread is runnable ({}) — lost wakeup or cyclic wait",
                        stuck.join("; ")
                    ),
                );
                return Err(());
            }
            st.steps += 1;
            if st.steps > st.max_steps {
                let budget = st.max_steps;
                self.fail_and_abort(
                    st,
                    format!(
                        "step budget exceeded ({budget} steps): unbounded spin or runaway model"
                    ),
                );
                return Err(());
            }
            let mut policy = st.policy.take().expect("scheduling policy present");
            let picked = policy.pick(&enabled, &st.threads);
            st.policy = Some(policy);
            let pick = match picked {
                Pick::Go(t) => t,
                Pick::Prune => {
                    st.pruned = true;
                    st.abort = true;
                    self.cv.notify_all();
                    return Err(());
                }
                Pick::Fail(msg) => {
                    self.fail_and_abort(st, msg);
                    return Err(());
                }
            };
            st.schedule.push(pick);
            let step = st.steps;
            let desc = st.describe(pick);
            st.trace.push(format!("#{step:<5} t{pick} {desc}"));
            match st.threads[pick].pending {
                Pend::Op(op) => {
                    if matches!(
                        op.acc,
                        AccKind::Store | AccKind::Rmw | AccKind::CellWriteEnd
                    ) {
                        st.store_epoch += 1;
                    }
                    if matches!(op.acc, AccKind::Load | AccKind::Rmw) {
                        st.threads[pick].last_load_epoch = st.store_epoch;
                    }
                    st.threads[pick].pending = Pend::None;
                    st.active = pick;
                    return Ok(());
                }
                Pend::Start | Pend::Spin | Pend::Join { .. } => {
                    st.threads[pick].pending = Pend::None;
                    st.active = pick;
                    return Ok(());
                }
                Pend::LockAcquire { m, timed_out } => {
                    st.locks.insert(m, pick);
                    st.threads[pick].cv_timed_out = timed_out;
                    st.threads[pick].pending = Pend::None;
                    st.active = pick;
                    return Ok(());
                }
                Pend::CvWait { cv, m, timed } => {
                    // Timeout fires: leave the wait queue, go reacquire
                    // the mutex. Bookkeeping only — keep picking.
                    debug_assert!(timed, "untimed waiter can never be picked");
                    if let Some(ws) = st.cv_waiters.get_mut(&cv) {
                        ws.retain(|&w| w != pick);
                    }
                    st.threads[pick].pending = Pend::LockAcquire { m, timed_out: true };
                }
                Pend::None => unreachable!("picked a thread with nothing pending"),
            }
        }
    }

    /// Record `pend` for `me`, run the scheduler, and park until it is
    /// our turn again. Unwinds with `McAbort` if the execution aborts.
    pub(crate) fn yield_with(&self, me: usize, pend: Pend) {
        let mut st = self.lock();
        st.threads[me].pending = pend;
        if self.schedule(&mut st).is_err() {
            drop(st);
            panic_any(McAbort);
        }
        if st.active != me {
            self.cv.notify_all();
            loop {
                if st.abort {
                    drop(st);
                    panic_any(McAbort);
                }
                if st.active == me {
                    break;
                }
                st = self.wait(st);
            }
        }
    }

    // ---- shim entry points -------------------------------------------

    pub(crate) fn atomic_op(&self, me: usize, op: Op) {
        self.yield_with(me, Pend::Op(op));
    }

    /// Open an access window on an UnsafeCell; fails the execution when
    /// it overlaps a conflicting open window (a data race some real
    /// interleaving could turn into a torn read).
    pub(crate) fn cell_begin(&self, me: usize, addr: usize, ty: &'static str, write: bool) {
        let acc = if write {
            AccKind::CellWriteBegin
        } else {
            AccKind::CellReadBegin
        };
        self.yield_with(
            me,
            Pend::Op(Op {
                acc,
                ty,
                addr,
                order: "-",
            }),
        );
        let mut st = self.lock();
        let label = st.obj_label(addr);
        let win = st.cells.entry(addr).or_default();
        let conflict = if write {
            win.writer || win.readers > 0
        } else {
            win.writer
        };
        if conflict {
            let kind = if write { "write" } else { "read" };
            self.fail_and_abort(
                &mut st,
                format!(
                    "data race on {ty}#{label}: t{me} {kind} access overlaps an open \
                     {} window — a real interleaving could observe torn data",
                    if write { "read or write" } else { "write" }
                ),
            );
            drop(st);
            panic_any(McAbort);
        }
        if write {
            win.writer = true;
        } else {
            win.readers += 1;
        }
    }

    pub(crate) fn cell_end(&self, me: usize, addr: usize, ty: &'static str, write: bool) {
        let acc = if write {
            AccKind::CellWriteEnd
        } else {
            AccKind::CellReadEnd
        };
        self.yield_with(
            me,
            Pend::Op(Op {
                acc,
                ty,
                addr,
                order: "-",
            }),
        );
        let mut st = self.lock();
        let win = st.cells.entry(addr).or_default();
        if write {
            win.writer = false;
        } else {
            win.readers -= 1;
        }
    }

    pub(crate) fn lock_acquire(&self, me: usize, m: usize) {
        self.yield_with(
            me,
            Pend::LockAcquire {
                m,
                timed_out: false,
            },
        );
    }

    pub(crate) fn lock_release(&self, _me: usize, m: usize) {
        // Releasing is not a schedule point: no other thread runs until
        // our next yield, where the freed lock becomes visible.
        let mut st = self.lock();
        st.locks.remove(&m);
    }

    /// Atomically release `m`, park on `cv`, reacquire on wake. Returns
    /// whether the wake was a timeout (only possible when `timed`).
    pub(crate) fn cv_wait(&self, me: usize, cv: usize, m: usize, timed: bool) -> bool {
        {
            let mut st = self.lock();
            st.locks.remove(&m);
            st.cv_waiters.entry(cv).or_default().push(me);
            st.threads[me].cv_timed_out = false;
        }
        self.yield_with(me, Pend::CvWait { cv, m, timed });
        // Resumed ⇒ the LockAcquire was applied: we hold `m` again.
        self.lock().threads[me].cv_timed_out
    }

    pub(crate) fn cv_notify(&self, me: usize, cv: usize, all: bool) {
        let acc = if all {
            AccKind::NotifyAll
        } else {
            AccKind::NotifyOne
        };
        self.yield_with(
            me,
            Pend::Op(Op {
                acc,
                ty: "condvar",
                addr: cv,
                order: "-",
            }),
        );
        let mut st = self.lock();
        let woken: Vec<usize> = match st.cv_waiters.get_mut(&cv) {
            None => Vec::new(),
            Some(ws) if all => std::mem::take(ws),
            Some(ws) if ws.is_empty() => Vec::new(),
            Some(ws) => vec![ws.remove(0)],
        };
        for w in woken {
            if let Pend::CvWait { m, .. } = st.threads[w].pending {
                st.threads[w].pending = Pend::LockAcquire {
                    m,
                    timed_out: false,
                };
            }
        }
    }

    pub(crate) fn spin(&self, me: usize) {
        self.yield_with(me, Pend::Spin);
    }

    pub(crate) fn join_thread(&self, me: usize, t: usize) {
        self.yield_with(me, Pend::Join { t });
    }

    // ---- thread lifecycle --------------------------------------------

    pub(crate) fn register_thread(&self) -> usize {
        let mut st = self.lock();
        st.threads.push(Th {
            pending: Pend::Start,
            finished: false,
            last_load_epoch: 0,
            cv_timed_out: false,
        });
        st.live += 1;
        st.threads.len() - 1
    }

    pub(crate) fn store_handle(&self, h: std::thread::JoinHandle<()>) {
        self.lock().handles.push(h);
    }

    /// Park a freshly spawned thread until its `Start` step is picked.
    /// Returns `false` if the execution aborted before it ever ran.
    pub(crate) fn wait_for_start(&self, me: usize) -> bool {
        let mut st = self.lock();
        loop {
            if st.abort {
                return false;
            }
            if st.active == me {
                return true;
            }
            st = self.wait(st);
        }
    }

    /// A spawned thread is done (or panicked). Hands the schedule to the
    /// next runnable thread.
    pub(crate) fn finish_thread(&self, me: usize, panic_msg: Option<String>) {
        let mut st = self.lock();
        st.threads[me].finished = true;
        st.threads[me].pending = Pend::None;
        st.live -= 1;
        if let Some(msg) = panic_msg {
            self.fail_and_abort(&mut st, format!("model thread t{me} panicked: {msg}"));
            return;
        }
        if st.abort {
            return;
        }
        let _ = self.schedule(&mut st);
        self.cv.notify_all();
    }

    /// The model closure returned (or panicked) on the main thread: wind
    /// the execution down, join every spawned OS thread, and extract the
    /// verdict. Returns `(failure, pruned, schedule, trace, steps, policy)`.
    #[allow(clippy::type_complexity)]
    pub(crate) fn main_done(
        &self,
        panic_msg: Option<String>,
    ) -> (Option<String>, bool, Vec<usize>, Vec<String>, usize, Policy) {
        let handles;
        {
            let mut st = self.lock();
            st.threads[0].finished = true;
            st.threads[0].pending = Pend::None;
            st.live -= 1;
            if let Some(msg) = panic_msg {
                if st.failure.is_none() && !st.pruned {
                    st.failure = Some(format!("model thread t0 panicked: {msg}"));
                }
            } else if st.failure.is_none() && !st.pruned && st.live > 0 {
                st.failure = Some(format!(
                    "model returned with {} spawned thread(s) still live — join every \
                     hts_mc::spawn handle before returning",
                    st.live
                ));
            }
            st.abort = true;
            self.cv.notify_all();
            handles = std::mem::take(&mut st.handles);
        }
        for h in handles {
            let _ = h.join();
        }
        let mut st = self.lock();
        (
            st.failure.take(),
            st.pruned,
            std::mem::take(&mut st.schedule),
            std::mem::take(&mut st.trace),
            st.steps,
            st.policy.take().expect("policy returned after execution"),
        )
    }
}
