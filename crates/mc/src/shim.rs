//! Drop-in shims for the primitives the hts hot paths are built from.
//!
//! Outside a model-checked execution every operation passes straight
//! through to `std` with the caller's `Ordering` — the shims are inert
//! (one thread-local read of overhead), so enabling the `model-check`
//! feature in a consumer crate does not change test behavior. Inside an
//! execution every operation first yields to the controlled scheduler,
//! records the `Ordering` the call site wrote, and then executes
//! sequentially consistently. Exploration is over SC interleavings;
//! weak-memory reorderings are out of scope (the L7 lint is what keeps
//! the orderings themselves reviewed).

use std::cell::UnsafeCell as StdUnsafeCell;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::Ordering;
use std::sync::{Arc, Condvar as StdCondvar, Mutex as StdMutex, MutexGuard as StdMutexGuard};

use crate::exec::{ctx, set_ctx, AccKind, Execution, McAbort, Op};

fn order_name(o: Ordering) -> &'static str {
    match o {
        Ordering::Relaxed => "Relaxed",
        Ordering::Acquire => "Acquire",
        Ordering::Release => "Release",
        Ordering::AcqRel => "AcqRel",
        Ordering::SeqCst => "SeqCst",
        _ => "?",
    }
}

fn payload_msg(p: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = p.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = p.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

macro_rules! mc_atomic_common {
    ($Name:ident, $Std:ident, $Raw:ty, $ty_label:expr) => {
        /// Model-checked shim for
        #[doc = concat!("`std::sync::atomic::", stringify!($Std), "`.")]
        #[derive(Debug, Default)]
        pub struct $Name {
            inner: std::sync::atomic::$Std,
        }

        impl $Name {
            pub const fn new(v: $Raw) -> Self {
                $Name {
                    inner: std::sync::atomic::$Std::new(v),
                }
            }

            fn addr(&self) -> usize {
                self as *const _ as usize
            }

            fn yield_acc(&self, acc: AccKind, order: Ordering) -> Option<()> {
                let (exec, me) = ctx()?;
                exec.atomic_op(
                    me,
                    Op {
                        acc,
                        ty: $ty_label,
                        addr: self.addr(),
                        order: order_name(order),
                    },
                );
                Some(())
            }

            pub fn load(&self, order: Ordering) -> $Raw {
                match self.yield_acc(AccKind::Load, order) {
                    Some(()) => self.inner.load(Ordering::SeqCst),
                    None => self.inner.load(order),
                }
            }

            pub fn store(&self, v: $Raw, order: Ordering) {
                match self.yield_acc(AccKind::Store, order) {
                    Some(()) => self.inner.store(v, Ordering::SeqCst),
                    None => self.inner.store(v, order),
                }
            }

            pub fn swap(&self, v: $Raw, order: Ordering) -> $Raw {
                match self.yield_acc(AccKind::Rmw, order) {
                    Some(()) => self.inner.swap(v, Ordering::SeqCst),
                    None => self.inner.swap(v, order),
                }
            }

            pub fn compare_exchange(
                &self,
                current: $Raw,
                new: $Raw,
                success: Ordering,
                failure: Ordering,
            ) -> Result<$Raw, $Raw> {
                match self.yield_acc(AccKind::Rmw, success) {
                    Some(()) => self.inner.compare_exchange(
                        current,
                        new,
                        Ordering::SeqCst,
                        Ordering::SeqCst,
                    ),
                    None => self.inner.compare_exchange(current, new, success, failure),
                }
            }

            pub fn compare_exchange_weak(
                &self,
                current: $Raw,
                new: $Raw,
                success: Ordering,
                failure: Ordering,
            ) -> Result<$Raw, $Raw> {
                // The strong variant under control: spurious failure is a
                // hardware artifact, not an interleaving.
                match self.yield_acc(AccKind::Rmw, success) {
                    Some(()) => self.inner.compare_exchange(
                        current,
                        new,
                        Ordering::SeqCst,
                        Ordering::SeqCst,
                    ),
                    None => self
                        .inner
                        .compare_exchange_weak(current, new, success, failure),
                }
            }

            pub fn into_inner(self) -> $Raw {
                self.inner.into_inner()
            }

            pub fn get_mut(&mut self) -> &mut $Raw {
                self.inner.get_mut()
            }
        }
    };
}

macro_rules! mc_atomic_num {
    ($Name:ident) => {
        impl $Name {
            pub fn fetch_add(
                &self,
                v: <Self as McAtomicRaw>::Raw,
                order: Ordering,
            ) -> <Self as McAtomicRaw>::Raw {
                match self.yield_acc(AccKind::Rmw, order) {
                    Some(()) => self.inner.fetch_add(v, Ordering::SeqCst),
                    None => self.inner.fetch_add(v, order),
                }
            }

            pub fn fetch_sub(
                &self,
                v: <Self as McAtomicRaw>::Raw,
                order: Ordering,
            ) -> <Self as McAtomicRaw>::Raw {
                match self.yield_acc(AccKind::Rmw, order) {
                    Some(()) => self.inner.fetch_sub(v, Ordering::SeqCst),
                    None => self.inner.fetch_sub(v, order),
                }
            }

            pub fn fetch_max(
                &self,
                v: <Self as McAtomicRaw>::Raw,
                order: Ordering,
            ) -> <Self as McAtomicRaw>::Raw {
                match self.yield_acc(AccKind::Rmw, order) {
                    Some(()) => self.inner.fetch_max(v, Ordering::SeqCst),
                    None => self.inner.fetch_max(v, order),
                }
            }
        }
    };
}

/// Raw-value association for the numeric shim macro.
pub trait McAtomicRaw {
    type Raw;
}

macro_rules! mc_atomic_raw {
    ($Name:ident, $Raw:ty) => {
        impl McAtomicRaw for $Name {
            type Raw = $Raw;
        }
    };
}

mc_atomic_common!(McAtomicU64, AtomicU64, u64, "u64");
mc_atomic_common!(McAtomicU32, AtomicU32, u32, "u32");
mc_atomic_common!(McAtomicUsize, AtomicUsize, usize, "usize");
mc_atomic_common!(McAtomicI64, AtomicI64, i64, "i64");
mc_atomic_common!(McAtomicBool, AtomicBool, bool, "bool");
mc_atomic_raw!(McAtomicU64, u64);
mc_atomic_raw!(McAtomicU32, u32);
mc_atomic_raw!(McAtomicUsize, usize);
mc_atomic_raw!(McAtomicI64, i64);
mc_atomic_num!(McAtomicU64);
mc_atomic_num!(McAtomicU32);
mc_atomic_num!(McAtomicUsize);
mc_atomic_num!(McAtomicI64);

/// Model-checked `UnsafeCell`: accesses go through `with`/`with_mut`,
/// which bracket the access in begin/end schedule steps so the explorer
/// can observe (and fail on) overlapping conflicting windows — this is
/// how torn seqlock reads are caught without real torn memory.
#[derive(Debug, Default)]
pub struct McUnsafeCell<T> {
    inner: StdUnsafeCell<T>,
}

impl<T> McUnsafeCell<T> {
    pub const fn new(v: T) -> Self {
        McUnsafeCell {
            inner: StdUnsafeCell::new(v),
        }
    }

    fn addr(&self) -> usize {
        self as *const _ as usize
    }

    /// Shared (read) access.
    ///
    /// # Safety contract
    /// Same as a raw `UnsafeCell::get` read: the caller's protocol must
    /// keep writers out while reading. Under model checking that claim
    /// is *checked* across every explored interleaving.
    pub fn with<R>(&self, f: impl FnOnce(*const T) -> R) -> R {
        match ctx() {
            Some((exec, me)) => {
                exec.cell_begin(me, self.addr(), "cell", false);
                let r = f(self.inner.get());
                exec.cell_end(me, self.addr(), "cell", false);
                r
            }
            None => f(self.inner.get()),
        }
    }

    /// Exclusive (write) access; see [`Self::with`].
    pub fn with_mut<R>(&self, f: impl FnOnce(*mut T) -> R) -> R {
        match ctx() {
            Some((exec, me)) => {
                exec.cell_begin(me, self.addr(), "cell", true);
                let r = f(self.inner.get());
                exec.cell_end(me, self.addr(), "cell", true);
                r
            }
            None => f(self.inner.get()),
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut()
    }

    pub fn into_inner(self) -> T {
        self.inner.into_inner()
    }
}

/// Model-checked mutex. The lock *state* lives in the scheduler during
/// an execution (so blocking parks on the scheduler, not the OS); the
/// protected data still lives in a real `std::sync::Mutex`, which the
/// scheduler's exclusivity makes uncontended.
#[derive(Debug, Default)]
pub struct McMutex<T> {
    inner: StdMutex<T>,
}

pub struct McMutexGuard<'a, T> {
    lock: &'a McMutex<T>,
    inner: Option<StdMutexGuard<'a, T>>,
    controlled: bool,
}

impl<T> McMutex<T> {
    pub const fn new(v: T) -> Self {
        McMutex {
            inner: StdMutex::new(v),
        }
    }

    fn addr(&self) -> usize {
        self as *const _ as usize
    }

    /// Poison-recovering lock (matches `DebugMutex` semantics: a
    /// panicking holder already aborted the run that mattered).
    pub fn lock(&self) -> McMutexGuard<'_, T> {
        match ctx() {
            Some((exec, me)) => {
                exec.lock_acquire(me, self.addr());
                let g = self
                    .inner
                    .try_lock()
                    .expect("scheduler-held mc mutex is uncontended");
                McMutexGuard {
                    lock: self,
                    inner: Some(g),
                    controlled: true,
                }
            }
            None => McMutexGuard {
                lock: self,
                inner: Some(self.inner.lock().unwrap_or_else(|e| e.into_inner())),
                controlled: false,
            },
        }
    }

    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T> std::ops::Deref for McMutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard holds the std guard")
    }
}

impl<T> std::ops::DerefMut for McMutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("guard holds the std guard")
    }
}

impl<T> Drop for McMutexGuard<'_, T> {
    fn drop(&mut self) {
        // Release the data lock first, then the model lock; no other
        // thread can run in between.
        self.inner.take();
        if self.controlled {
            if let Some((exec, me)) = ctx() {
                exec.lock_release(me, self.lock.addr());
            }
        }
    }
}

impl<'a, T> McMutexGuard<'a, T> {
    /// Drop the real guard *without* releasing the model lock — condvar
    /// wait hands the release to the scheduler atomically.
    fn defuse(mut self) -> &'a McMutex<T> {
        self.inner.take();
        self.controlled = false;
        self.lock
    }
}

/// Model-checked condvar. Wake order is FIFO (std leaves it
/// unspecified) so schedules stay deterministic; `wait_timeout`'s
/// timeout is a *scheduling choice*, never a clock read — the explorer
/// decides at each step whether the timer "fires".
#[derive(Debug, Default)]
pub struct McCondvar {
    inner: StdCondvar,
    /// Gives the condvar a stable address of its own even when the
    /// struct would otherwise be zero-sized inside a parent.
    _anchor: u8,
}

impl McCondvar {
    pub const fn new() -> Self {
        McCondvar {
            inner: StdCondvar::new(),
            _anchor: 0,
        }
    }

    fn addr(&self) -> usize {
        self as *const _ as usize
    }

    pub fn wait<'a, T>(&self, guard: McMutexGuard<'a, T>) -> McMutexGuard<'a, T> {
        match ctx() {
            Some((exec, me)) => {
                let m_addr = guard.lock.addr();
                let lock = guard.defuse();
                exec.cv_wait(me, self.addr(), m_addr, false);
                let g = lock
                    .inner
                    .try_lock()
                    .expect("scheduler-held mc mutex is uncontended");
                McMutexGuard {
                    lock,
                    inner: Some(g),
                    controlled: true,
                }
            }
            None => {
                let mut guard = guard;
                let lock = guard.lock;
                let g = guard.inner.take().expect("guard holds the std guard");
                drop(guard); // inert: std guard taken, not controlled
                let g = self.inner.wait(g).unwrap_or_else(|e| e.into_inner());
                McMutexGuard {
                    lock,
                    inner: Some(g),
                    controlled: false,
                }
            }
        }
    }

    /// Returns `(guard, timed_out)`.
    pub fn wait_timeout<'a, T>(
        &self,
        guard: McMutexGuard<'a, T>,
        dur: std::time::Duration,
    ) -> (McMutexGuard<'a, T>, bool) {
        match ctx() {
            Some((exec, me)) => {
                let m_addr = guard.lock.addr();
                let lock = guard.defuse();
                let timed_out = exec.cv_wait(me, self.addr(), m_addr, true);
                let g = lock
                    .inner
                    .try_lock()
                    .expect("scheduler-held mc mutex is uncontended");
                (
                    McMutexGuard {
                        lock,
                        inner: Some(g),
                        controlled: true,
                    },
                    timed_out,
                )
            }
            None => {
                let mut guard = guard;
                let lock = guard.lock;
                let g = guard.inner.take().expect("guard holds the std guard");
                drop(guard); // inert: std guard taken, not controlled
                let (g, to) = self
                    .inner
                    .wait_timeout(g, dur)
                    .unwrap_or_else(|e| e.into_inner());
                (
                    McMutexGuard {
                        lock,
                        inner: Some(g),
                        controlled: false,
                    },
                    to.timed_out(),
                )
            }
        }
    }

    pub fn notify_one(&self) {
        match ctx() {
            Some((exec, me)) => exec.cv_notify(me, self.addr(), false),
            None => self.inner.notify_one(),
        }
    }

    pub fn notify_all(&self) {
        match ctx() {
            Some((exec, me)) => exec.cv_notify(me, self.addr(), true),
            None => self.inner.notify_all(),
        }
    }
}

/// Shim for `std::hint::spin_loop`. Under control the thread parks until
/// some other thread performs a store — spinning on an unchanged value
/// would otherwise make the schedule tree unbounded.
pub fn spin_loop() {
    match ctx() {
        Some((exec, me)) => exec.spin(me),
        None => std::hint::spin_loop(),
    }
}

enum HandleInner<T> {
    Controlled {
        exec: Arc<Execution>,
        tid: usize,
        result: Arc<StdMutex<Option<T>>>,
    },
    Native(std::thread::JoinHandle<T>),
}

/// Join handle for [`spawn`].
pub struct McJoinHandle<T> {
    inner: HandleInner<T>,
}

impl<T> McJoinHandle<T> {
    /// Scheduler-aware join. If the joined thread panicked, the
    /// execution has already failed and this unwinds the joiner too.
    pub fn join(self) -> T {
        match self.inner {
            HandleInner::Controlled { exec, tid, result } => {
                let me = ctx()
                    .expect("controlled handle joined outside its execution")
                    .1;
                exec.join_thread(me, tid);
                match result.lock().unwrap_or_else(|e| e.into_inner()).take() {
                    Some(v) => v,
                    // The child panicked: the failure is recorded, the
                    // execution is aborting — unwind quietly.
                    None => std::panic::panic_any(McAbort),
                }
            }
            HandleInner::Native(h) => match h.join() {
                Ok(v) => v,
                Err(p) => std::panic::resume_unwind(p),
            },
        }
    }
}

/// Spawn a model thread. Inside an execution the child is registered
/// with the scheduler and parks *before running any user code*, so no
/// instruction escapes the controlled interleaving; outside one this is
/// `std::thread::spawn`.
pub fn spawn<T, F>(f: F) -> McJoinHandle<T>
where
    T: Send + 'static,
    F: FnOnce() -> T + Send + 'static,
{
    match ctx() {
        Some((exec, _me)) => {
            let tid = exec.register_thread();
            let result: Arc<StdMutex<Option<T>>> = Arc::new(StdMutex::new(None));
            let (exec2, result2) = (exec.clone(), result.clone());
            let os = std::thread::Builder::new()
                .name(format!("hts-mc-t{tid}"))
                .spawn(move || {
                    if !exec2.wait_for_start(tid) {
                        return; // aborted before first instruction
                    }
                    set_ctx(Some((exec2.clone(), tid)));
                    let out = catch_unwind(AssertUnwindSafe(f));
                    set_ctx(None);
                    match out {
                        Ok(v) => {
                            *result2.lock().unwrap_or_else(|e| e.into_inner()) = Some(v);
                            exec2.finish_thread(tid, None);
                        }
                        Err(p) => {
                            let msg = if p.downcast_ref::<McAbort>().is_some() {
                                None
                            } else {
                                Some(payload_msg(p))
                            };
                            exec2.finish_thread(tid, msg);
                        }
                    }
                })
                .expect("spawn model thread");
            exec.store_handle(os);
            McJoinHandle {
                inner: HandleInner::Controlled { exec, tid, result },
            }
        }
        None => McJoinHandle {
            inner: HandleInner::Native(std::thread::spawn(f)),
        },
    }
}
