//! A sharded key-value store built from `hts` atomic registers.
//!
//! The paper's introduction motivates the register as the building block
//! of distributed storage systems, which "combine multiple of these
//! read/write objects, each storing its share of data". This crate is that
//! combination: keys hash onto a fixed set of register objects
//! ([`KeyMapper`]), all hosted by one server ring
//! ([`hts_core::MultiObjectServer`]), giving a linearizable-per-key
//! get/put store.
//!
//! [`ShardedStore`] is a synchronous facade over a simulated cluster —
//! each call steps the deterministic simulator until the operation
//! completes — used by `examples/kv_store.rs` and the store benches. For a
//! store over real sockets, combine the same [`KeyMapper`] with
//! `hts-net`'s client.
//!
//! # Examples
//!
//! ```
//! use hts_store::ShardedStore;
//!
//! let mut store = ShardedStore::builder().servers(3).shards(8).build();
//! store.put(b"user:42", b"alice".to_vec());
//! assert_eq!(store.get(b"user:42"), Some(b"alice".to_vec()));
//! assert_eq!(store.get(b"user:43"), None);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod mapper;
mod store;

pub use mapper::KeyMapper;
pub use store::{OpHandle, ShardedStore, ShardedStoreBuilder, StoreStats};
