//! The synchronous sharded store facade and its pipelined handles.

use std::cell::RefCell;
use std::collections::{HashMap, VecDeque};
use std::rc::Rc;

use hts_core::{BatchConfig, Config, Durability, SessionCore, SimServer};
use hts_sim::packet::{Ctx, NetworkConfig, PacketSim, Process, TimerId};
use hts_sim::{DiskConfig, Nanos};
use hts_types::{ClientId, Message, NodeId, ObjectId, RequestId, ServerId, Value};

use crate::KeyMapper;

/// Cumulative facade counters.
#[derive(Debug, Clone, Default)]
pub struct StoreStats {
    /// Completed puts (incl. deletes).
    pub puts: u64,
    /// Completed gets.
    pub gets: u64,
    /// Request retries (timeouts / server crashes survived).
    pub retries: u64,
}

/// A started-but-not-awaited operation of a [`ShardedStore`] — the
/// concurrent-handle API: [`begin_put`](ShardedStore::begin_put) /
/// [`begin_get`](ShardedStore::begin_get) return one, and
/// [`wait`](ShardedStore::wait) redeems it, in any order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct OpHandle(u64);

#[derive(Debug)]
enum PendingOp {
    Put(ObjectId, Value),
    Get(ObjectId),
}

#[derive(Default)]
struct CourierState {
    /// Operations admitted by the facade, waiting for window room.
    outbox: VecDeque<(u64, PendingOp)>,
    /// Finished operations by facade op number.
    results: HashMap<u64, Option<Value>>,
    retries: u64,
}

/// The in-sim client that executes the facade's operations through a
/// [`SessionCore`] pipeline: up to `window` concurrently, each with its
/// own retry timer, completions keyed back to facade handles.
struct Courier {
    core: SessionCore,
    state: Rc<RefCell<CourierState>>,
    client_net: hts_sim::NetworkId,
    timeout: Nanos,
    /// request → (facade op number, armed retry timer).
    pending: HashMap<RequestId, (u64, TimerId)>,
}

impl Courier {
    /// Dispatches queued operations while the window has room.
    fn issue(&mut self, ctx: &mut Ctx<'_, Message>) {
        loop {
            if !self.core.has_capacity() {
                return;
            }
            let next = self.state.borrow_mut().outbox.pop_front();
            let Some((op, pending_op)) = next else { return };
            let (request, server, message) = match pending_op {
                PendingOp::Put(object, value) => self.core.begin_write_to(object, value),
                PendingOp::Get(object) => self.core.begin_read_from(object),
            };
            ctx.send(self.client_net, NodeId::Server(server), message);
            self.pending
                .insert(request, (op, ctx.set_timer(self.timeout)));
        }
    }
}

impl Process<Message> for Courier {
    fn on_message(&mut self, ctx: &mut Ctx<'_, Message>, _from: NodeId, msg: Message) {
        if let Some(done) = self.core.on_reply(&msg) {
            let (op, timer) = self.pending.remove(&done.request).expect("tracked op");
            ctx.cancel_timer(timer);
            self.state.borrow_mut().results.insert(op, done.value);
            // A completion freed a window slot: keep the pipeline full.
            self.issue(ctx);
        }
    }

    fn on_poke(&mut self, ctx: &mut Ctx<'_, Message>) {
        self.issue(ctx);
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_, Message>, timer: TimerId) {
        let Some(request) = self
            .pending
            .iter()
            .find(|(_, (_, armed))| *armed == timer)
            .map(|(r, _)| *r)
        else {
            return; // stale timer
        };
        if let Some((server, message)) = self.core.on_timeout(request) {
            self.state.borrow_mut().retries += 1;
            ctx.send(self.client_net, NodeId::Server(server), message);
            let entry = self.pending.get_mut(&request).expect("found above");
            entry.1 = ctx.set_timer(self.timeout);
        }
    }

    fn on_crashed(&mut self, ctx: &mut Ctx<'_, Message>, node: NodeId) {
        if let Some(s) = node.as_server() {
            // Every in-flight request stranded on the crashed server
            // re-sends immediately, each under a fresh timer.
            for (request, server, message) in self.core.on_server_down(s) {
                self.state.borrow_mut().retries += 1;
                ctx.send(self.client_net, NodeId::Server(server), message);
                if let Some(entry) = self.pending.get_mut(&request) {
                    ctx.cancel_timer(entry.1);
                    entry.1 = ctx.set_timer(self.timeout);
                }
            }
        }
    }
}

/// Builder for [`ShardedStore`].
#[derive(Debug, Clone)]
pub struct ShardedStoreBuilder {
    servers: u16,
    shards: u32,
    seed: u64,
    config: Config,
    disk: Option<DiskConfig>,
    pipeline: usize,
}

impl ShardedStoreBuilder {
    /// Ring size (default 3).
    pub fn servers(mut self, n: u16) -> Self {
        self.servers = n;
        self
    }

    /// Hash buckets for key placement (default `u32::MAX`; two keys in one
    /// bucket evict each other, so keep this large unless testing).
    pub fn shards(mut self, shards: u32) -> Self {
        self.shards = shards;
        self
    }

    /// Determinism seed (default 0).
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Protocol configuration (default [`Config::paper`]).
    pub fn config(mut self, config: Config) -> Self {
        self.config = config;
        self
    }

    /// Persists committed writes on every server (modeled disk), turning
    /// crashed servers restartable via
    /// [`ShardedStore::restart_server`]. The disk charges append/fsync
    /// time per the given [`Durability`] policy.
    pub fn durability(mut self, durability: Durability, disk: DiskConfig) -> Self {
        self.config.durability = durability;
        self.disk = Some(disk);
        self
    }

    /// Ring frame batching for the store's servers (see
    /// [`BatchConfig`]): how aggressively protocol frames coalesce into
    /// one wire message per link transmission, and — with a persistent
    /// [`Durability`] — how many commits one modeled fsync covers
    /// (group commit). `BatchConfig::unbatched()` reproduces the
    /// frame-at-a-time runtime for A/B comparisons.
    pub fn batching(mut self, batching: BatchConfig) -> Self {
        self.config.batching = batching;
        self
    }

    /// Parallel ring lanes (default 1): the store's register objects are
    /// partitioned across `lanes` independent ring instances
    /// ([`hts_core::LaneMap`] placement over the objects `KeyMapper`
    /// produces), each with its own modeled ring NIC and — with
    /// [`durability`](Self::durability) — its own modeled log device.
    /// Keys stay wherever they hash; a key's object lives on exactly one
    /// lane, so per-key linearizability is untouched while the node's
    /// ring capacity scales with the lane count.
    pub fn lanes(mut self, lanes: u16) -> Self {
        self.config.lanes = lanes.max(1);
        self
    }

    /// Whether a TCP deployment of this store's configuration uses the
    /// epoll reactor backend (default: on, Linux only — see
    /// [`Config::reactor`]). The simulated cluster behind
    /// [`build`](Self::build) models neither threads nor syscalls, so
    /// the knob changes nothing here; it passes through so one builder
    /// recipe can be replayed against `hts-net` servers (and lets the
    /// simulator A/B a config byte-for-byte identical to either TCP
    /// backend).
    pub fn reactor(mut self, reactor: bool) -> Self {
        self.config.reactor = reactor;
        self
    }

    /// Pipeline window of the store's session (default 1): how many
    /// operations [`begin_put`](ShardedStore::begin_put) /
    /// [`begin_get`](ShardedStore::begin_get) may keep in flight
    /// concurrently before [`wait`](ShardedStore::wait) must drain one.
    /// The synchronous `put`/`get` calls are unaffected (each is a
    /// begin + wait); a window of 1 serializes even the handle API.
    pub fn pipeline(mut self, window: usize) -> Self {
        self.pipeline = window.max(1);
        self
    }

    /// Boots the simulated cluster and returns the store.
    pub fn build(&self) -> ShardedStore {
        let mut sim = PacketSim::new(self.seed);
        let lanes = self.config.lanes.max(1);
        let ring_nets: Vec<_> = (0..lanes)
            .map(|_| sim.add_network(NetworkConfig::fast_ethernet()))
            .collect();
        let client_net = sim.add_network(NetworkConfig::fast_ethernet());
        for i in 0..self.servers {
            let id = NodeId::Server(ServerId(i));
            let mut server = SimServer::with_ring_lanes(
                ServerId(i),
                self.servers,
                self.config.clone(),
                ring_nets.clone(),
                client_net,
            );
            if let Some(disk) = self.disk {
                server = server.with_disk(disk);
            }
            sim.add_node(id, Box::new(server));
            for ring_net in &ring_nets {
                sim.attach(id, *ring_net);
            }
            sim.attach(id, client_net);
        }
        let state = Rc::new(RefCell::new(CourierState::default()));
        let courier_id = NodeId::Client(ClientId(0));
        let courier = Courier {
            core: SessionCore::new(
                ClientId(0),
                ObjectId::SINGLE,
                self.servers,
                ServerId(0),
                self.pipeline.max(1),
            ),
            state: Rc::clone(&state),
            client_net,
            timeout: Nanos::from_millis(50),
            pending: HashMap::new(),
        };
        sim.add_node(courier_id, Box::new(courier));
        sim.attach(courier_id, client_net);
        ShardedStore {
            sim,
            mapper: KeyMapper::new(self.shards),
            state,
            courier: courier_id,
            stats: StoreStats::default(),
            next_op: 0,
            open: HashMap::new(),
        }
    }
}

/// What a [`wait`](ShardedStore::wait) must do with a finished
/// operation's raw register value.
enum OpKind {
    Mutation,
    Get { key: Vec<u8> },
}

/// A linearizable-per-key KV store over a simulated `hts` ring.
///
/// Each key lives in its own register object (chosen by hashing); the
/// stored register value embeds the key, so a hash collision behaves like
/// an eviction rather than a wrong-value read.
///
/// Two call styles:
///
/// * **Synchronous** — [`put`](Self::put) / [`get`](Self::get) /
///   [`delete`](Self::delete) step the deterministic simulator until the
///   ring answers (one operation at a time).
/// * **Pipelined** — [`begin_put`](Self::begin_put) /
///   [`begin_get`](Self::begin_get) / [`begin_delete`](Self::begin_delete)
///   start up to [`pipeline`](ShardedStoreBuilder::pipeline) concurrent
///   operations and return [`OpHandle`]s; [`wait`](Self::wait) redeems
///   them **in any order** (completions are keyed by handle, not arrival).
///
/// See the [crate docs](crate) for an example.
pub struct ShardedStore {
    sim: PacketSim<Message>,
    mapper: KeyMapper,
    state: Rc<RefCell<CourierState>>,
    courier: NodeId,
    stats: StoreStats,
    next_op: u64,
    /// Handles begun and not yet waited.
    open: HashMap<u64, OpKind>,
}

impl ShardedStore {
    /// Starts building a store.
    pub fn builder() -> ShardedStoreBuilder {
        ShardedStoreBuilder {
            servers: 3,
            shards: u32::MAX,
            seed: 0,
            config: Config::default(),
            disk: None,
            pipeline: 1,
        }
    }

    /// Stores `value` under `key`.
    pub fn put(&mut self, key: &[u8], value: Vec<u8>) {
        let handle = self.begin_put(key, value);
        self.wait(handle);
    }

    /// Removes `key` (a tombstone write).
    pub fn delete(&mut self, key: &[u8]) {
        let handle = self.begin_delete(key);
        self.wait(handle);
    }

    /// Fetches `key`, or `None` if absent (never written, deleted, or
    /// evicted by a colliding key).
    pub fn get(&mut self, key: &[u8]) -> Option<Vec<u8>> {
        let handle = self.begin_get(key);
        self.wait(handle)
    }

    /// Starts storing `value` under `key` without waiting; redeem the
    /// handle with [`wait`](Self::wait). Up to the configured
    /// [`pipeline`](ShardedStoreBuilder::pipeline) window of operations
    /// proceed concurrently through the ring.
    pub fn begin_put(&mut self, key: &[u8], value: Vec<u8>) -> OpHandle {
        let object = self.mapper.object_for(key);
        let encoded = encode_entry(key, Some(&value));
        self.stats.puts += 1;
        self.begin(PendingOp::Put(object, encoded), OpKind::Mutation)
    }

    /// Starts removing `key` (a tombstone write) without waiting.
    pub fn begin_delete(&mut self, key: &[u8]) -> OpHandle {
        let object = self.mapper.object_for(key);
        let encoded = encode_entry(key, None);
        self.stats.puts += 1;
        self.begin(PendingOp::Put(object, encoded), OpKind::Mutation)
    }

    /// Starts fetching `key` without waiting; [`wait`](Self::wait)
    /// returns the value (or `None` if absent at read time).
    pub fn begin_get(&mut self, key: &[u8]) -> OpHandle {
        let object = self.mapper.object_for(key);
        self.stats.gets += 1;
        self.begin(PendingOp::Get(object), OpKind::Get { key: key.to_vec() })
    }

    /// Blocks until `handle` completes. Returns the fetched value for
    /// gets, `None` for puts and deletes. Handles complete out of order:
    /// waiting a younger handle first is fine.
    ///
    /// # Panics
    ///
    /// Panics on a handle this store never issued or already waited.
    pub fn wait(&mut self, handle: OpHandle) -> Option<Vec<u8>> {
        let kind = self
            .open
            .remove(&handle.0)
            .expect("unknown or already-waited OpHandle");
        self.sim.poke(self.courier);
        let raw = loop {
            let done = self.state.borrow_mut().results.remove(&handle.0);
            if let Some(result) = done {
                break result;
            }
            assert!(self.sim.step(), "cluster quiesced without a reply");
        };
        match kind {
            OpKind::Mutation => None,
            OpKind::Get { key } => decode_entry(raw?.as_bytes(), &key),
        }
    }

    /// Waits for every outstanding handle, discarding get results (use
    /// [`wait`](Self::wait) per handle when the values matter).
    pub fn drain(&mut self) {
        let mut open: Vec<u64> = self.open.keys().copied().collect();
        // Issue order (ids are monotone): HashMap iteration order must
        // not leak into the deterministic simulation's timeline.
        open.sort_unstable();
        for raw in open {
            self.wait(OpHandle(raw));
        }
    }

    fn begin(&mut self, op: PendingOp, kind: OpKind) -> OpHandle {
        self.next_op += 1;
        let handle = OpHandle(self.next_op);
        self.open.insert(handle.0, kind);
        self.state.borrow_mut().outbox.push_back((handle.0, op));
        // Schedule the courier to dispatch (up to its window): begun
        // operations travel the ring concurrently once the sim steps —
        // virtual time only advances under `wait`, so pipelining shows
        // up as overlapped operations there.
        self.sim.poke(self.courier);
        handle
    }

    /// Crashes server `s` under the store (operations keep working while
    /// any server survives).
    pub fn crash_server(&mut self, s: ServerId) {
        self.sim.crash_at(NodeId::Server(s), self.sim.now());
    }

    /// Restarts a crashed server. With
    /// [`durability`](ShardedStoreBuilder::durability) configured it
    /// replays its modeled log; either way it rejoins the ring and
    /// resyncs from its predecessor before serving.
    pub fn restart_server(&mut self, s: ServerId) {
        self.sim.restart_at(NodeId::Server(s), self.sim.now());
        // Let the replay + rejoin circulation settle before the next op.
        self.sim.run_until(self.sim.now() + Nanos::from_millis(50));
    }

    /// Facade counters (retries reveal survived crashes).
    pub fn stats(&self) -> StoreStats {
        let mut stats = self.stats.clone();
        stats.retries = self.state.borrow().retries;
        stats
    }

    /// Virtual time consumed so far.
    pub fn elapsed(&self) -> Nanos {
        self.sim.now()
    }
}

fn encode_entry(key: &[u8], value: Option<&[u8]>) -> Value {
    let mut bytes = Vec::with_capacity(2 + key.len() + 1 + value.map_or(0, <[u8]>::len));
    let key_len = u16::try_from(key.len()).expect("key longer than 64 KiB");
    bytes.extend_from_slice(&key_len.to_be_bytes());
    bytes.extend_from_slice(key);
    match value {
        Some(v) => {
            bytes.push(1);
            bytes.extend_from_slice(v);
        }
        None => bytes.push(0),
    }
    Value::from(bytes)
}

fn decode_entry(raw: &[u8], want_key: &[u8]) -> Option<Vec<u8>> {
    if raw.is_empty() {
        return None; // ⊥: never written
    }
    let key_len = usize::from(u16::from_be_bytes([raw[0], raw[1]]));
    let key = &raw[2..2 + key_len];
    if key != want_key {
        return None; // collision eviction
    }
    let present = raw[2 + key_len];
    (present == 1).then(|| raw[2 + key_len + 1..].to_vec())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn put_get_delete_roundtrip() {
        let mut store = ShardedStore::builder().seed(3).build();
        assert_eq!(store.get(b"k"), None);
        store.put(b"k", b"v1".to_vec());
        assert_eq!(store.get(b"k"), Some(b"v1".to_vec()));
        store.put(b"k", b"v2".to_vec());
        assert_eq!(store.get(b"k"), Some(b"v2".to_vec()));
        store.delete(b"k");
        assert_eq!(store.get(b"k"), None);
        let stats = store.stats();
        assert_eq!(stats.puts, 3);
    }

    #[test]
    fn many_keys_are_independent() {
        let mut store = ShardedStore::builder().servers(4).seed(5).build();
        for i in 0..40u32 {
            store.put(format!("key-{i}").as_bytes(), i.to_be_bytes().to_vec());
        }
        for i in 0..40u32 {
            assert_eq!(
                store.get(format!("key-{i}").as_bytes()),
                Some(i.to_be_bytes().to_vec()),
                "key-{i}"
            );
        }
    }

    #[test]
    fn empty_values_are_distinguishable_from_absence() {
        let mut store = ShardedStore::builder().seed(7).build();
        store.put(b"empty", Vec::new());
        assert_eq!(store.get(b"empty"), Some(Vec::new()));
        store.delete(b"empty");
        assert_eq!(store.get(b"empty"), None);
    }

    #[test]
    fn survives_server_crashes() {
        let mut store = ShardedStore::builder().servers(3).seed(9).build();
        store.put(b"durable", b"before".to_vec());
        store.crash_server(ServerId(0));
        assert_eq!(store.get(b"durable"), Some(b"before".to_vec()));
        store.put(b"durable", b"after".to_vec());
        store.crash_server(ServerId(1));
        assert_eq!(store.get(b"durable"), Some(b"after".to_vec()));
        assert!(store.stats().puts >= 2);
    }

    #[test]
    fn crash_restart_preserves_data_on_the_restarted_server() {
        let mut store = ShardedStore::builder()
            .servers(3)
            .seed(13)
            .durability(Durability::SyncAlways, DiskConfig::nvme_ssd())
            .build();
        for i in 0..8u32 {
            store.put(format!("key-{i}").as_bytes(), i.to_be_bytes().to_vec());
        }
        // Bounce s0: it replays its modeled log and rejoins.
        store.crash_server(ServerId(0));
        store.put(b"during-downtime", b"fresh".to_vec());
        store.restart_server(ServerId(0));
        assert_eq!(store.get(b"key-3"), Some(3u32.to_be_bytes().to_vec()));
        // Kill the other two: only the restarted server remains. Every
        // key — including the one written while it was down — must
        // survive, proving log replay *and* ring resync both worked.
        store.crash_server(ServerId(1));
        store.crash_server(ServerId(2));
        for i in 0..8u32 {
            assert_eq!(
                store.get(format!("key-{i}").as_bytes()),
                Some(i.to_be_bytes().to_vec()),
                "key-{i} after every other server died"
            );
        }
        assert_eq!(store.get(b"during-downtime"), Some(b"fresh".to_vec()));
    }

    #[test]
    fn restart_without_durability_resyncs_from_the_ring() {
        // Volatile servers restart empty but still recover state from
        // their predecessor's recovery stream.
        let mut store = ShardedStore::builder().servers(3).seed(17).build();
        store.put(b"k", b"v".to_vec());
        store.crash_server(ServerId(1));
        store.restart_server(ServerId(1));
        store.crash_server(ServerId(0));
        store.crash_server(ServerId(2));
        assert_eq!(store.get(b"k"), Some(b"v".to_vec()));
    }

    #[test]
    fn batching_knob_is_a_pure_performance_setting() {
        // Same operations, batched vs unbatched (and with group-committed
        // durability): identical results, only the virtual clock differs.
        let run = |batching: BatchConfig| {
            let mut store = ShardedStore::builder()
                .servers(3)
                .seed(21)
                .durability(Durability::SyncAlways, DiskConfig::nvme_ssd())
                .batching(batching)
                .build();
            for i in 0..16u32 {
                store.put(format!("key-{i}").as_bytes(), i.to_be_bytes().to_vec());
            }
            store.crash_server(ServerId(1));
            store.restart_server(ServerId(1));
            let values: Vec<Option<Vec<u8>>> = (0..16u32)
                .map(|i| store.get(format!("key-{i}").as_bytes()))
                .collect();
            values
        };
        let batched = run(BatchConfig::default());
        let unbatched = run(BatchConfig::unbatched());
        assert_eq!(batched, unbatched);
        for (i, v) in batched.iter().enumerate() {
            assert_eq!(v.as_deref(), Some(&(i as u32).to_be_bytes()[..]), "key-{i}");
        }
    }

    #[test]
    fn laned_store_roundtrips_across_lanes() {
        // Keys hash across objects, objects partition across 4 lanes:
        // every key must still read back its own value.
        let mut store = ShardedStore::builder().servers(3).seed(23).lanes(4).build();
        for i in 0..48u32 {
            store.put(format!("key-{i}").as_bytes(), i.to_be_bytes().to_vec());
        }
        for i in 0..48u32 {
            assert_eq!(
                store.get(format!("key-{i}").as_bytes()),
                Some(i.to_be_bytes().to_vec()),
                "key-{i}"
            );
        }
    }

    #[test]
    fn laned_store_survives_crash_restart_with_per_lane_logs() {
        // Each lane persists to its own modeled log; a restarted server
        // must replay every lane and resync every lane's ring before the
        // cluster shrinks to it alone.
        let mut store = ShardedStore::builder()
            .servers(3)
            .seed(29)
            .lanes(2)
            .durability(Durability::SyncAlways, DiskConfig::nvme_ssd())
            .build();
        for i in 0..12u32 {
            store.put(format!("key-{i}").as_bytes(), i.to_be_bytes().to_vec());
        }
        store.crash_server(ServerId(0));
        store.put(b"during-downtime", b"fresh".to_vec());
        store.restart_server(ServerId(0));
        store.crash_server(ServerId(1));
        store.crash_server(ServerId(2));
        for i in 0..12u32 {
            assert_eq!(
                store.get(format!("key-{i}").as_bytes()),
                Some(i.to_be_bytes().to_vec()),
                "key-{i} after every other server died"
            );
        }
        assert_eq!(store.get(b"during-downtime"), Some(b"fresh".to_vec()));
    }

    #[test]
    fn lane_knob_is_a_pure_performance_setting() {
        // The lane count changes scheduling and capacity, never results:
        // the same operation sequence answers identically at 1 and 4
        // lanes (the lanes=1 runtime being today's single-ring path).
        let run = |lanes: u16| {
            let mut store = ShardedStore::builder()
                .servers(3)
                .seed(31)
                .lanes(lanes)
                .build();
            for i in 0..24u32 {
                store.put(format!("key-{i}").as_bytes(), i.to_be_bytes().to_vec());
            }
            store.crash_server(ServerId(1));
            (0..24u32)
                .map(|i| store.get(format!("key-{i}").as_bytes()))
                .collect::<Vec<_>>()
        };
        let single = run(1);
        let laned = run(4);
        assert_eq!(single, laned);
        for (i, v) in single.iter().enumerate() {
            assert_eq!(v.as_deref(), Some(&(i as u32).to_be_bytes()[..]), "key-{i}");
        }
    }

    #[test]
    fn pipelined_handles_complete_out_of_order() {
        let mut store = ShardedStore::builder().seed(37).pipeline(8).build();
        let puts: Vec<OpHandle> = (0..8u32)
            .map(|i| store.begin_put(format!("key-{i}").as_bytes(), i.to_be_bytes().to_vec()))
            .collect();
        // Redeem in reverse: completions are keyed by handle.
        for h in puts.into_iter().rev() {
            assert_eq!(store.wait(h), None);
        }
        let gets: Vec<(u32, OpHandle)> = (0..8u32)
            .map(|i| (i, store.begin_get(format!("key-{i}").as_bytes())))
            .collect();
        for (i, h) in gets.into_iter().rev() {
            assert_eq!(store.wait(h), Some(i.to_be_bytes().to_vec()), "key-{i}");
        }
        let stats = store.stats();
        assert_eq!((stats.puts, stats.gets), (8, 8));
    }

    #[test]
    fn pipelined_and_sequential_answers_agree() {
        // The pipeline window is a pure concurrency knob: per-key results
        // match the sequential store's (distinct keys — same-key ops in
        // one batch are concurrent by design and may order either way).
        let run = |window: usize| {
            let mut store = ShardedStore::builder().seed(41).pipeline(window).build();
            let handles: Vec<OpHandle> = (0..16u32)
                .map(|i| store.begin_put(format!("key-{i}").as_bytes(), vec![i as u8; 9]))
                .collect();
            for h in handles {
                store.wait(h);
            }
            let gets: Vec<OpHandle> = (0..16u32)
                .map(|i| store.begin_get(format!("key-{i}").as_bytes()))
                .collect();
            gets.into_iter().map(|h| store.wait(h)).collect::<Vec<_>>()
        };
        assert_eq!(run(1), run(8));
    }

    #[test]
    fn pipelined_store_survives_crash_mid_window() {
        let mut store = ShardedStore::builder()
            .servers(3)
            .seed(43)
            .pipeline(8)
            .durability(Durability::SyncAlways, DiskConfig::nvme_ssd())
            .build();
        let first: Vec<OpHandle> = (0..8u32)
            .map(|i| store.begin_put(format!("key-{i}").as_bytes(), i.to_be_bytes().to_vec()))
            .collect();
        // Crash the courier's preferred server with the window full: the
        // stranded requests all reroute and complete.
        store.crash_server(ServerId(0));
        for h in first {
            assert_eq!(store.wait(h), None);
        }
        store.restart_server(ServerId(0));
        for i in 0..8u32 {
            assert_eq!(
                store.get(format!("key-{i}").as_bytes()),
                Some(i.to_be_bytes().to_vec()),
                "key-{i} after crash mid-window"
            );
        }
        assert!(store.stats().retries > 0, "the crash forced re-sends");
    }

    #[test]
    #[should_panic(expected = "unknown or already-waited OpHandle")]
    fn double_wait_panics() {
        let mut store = ShardedStore::builder().seed(47).pipeline(2).build();
        let h = store.begin_put(b"k", b"v".to_vec());
        store.wait(h);
        store.wait(h);
    }

    #[test]
    fn drain_settles_every_outstanding_handle() {
        let mut store = ShardedStore::builder().seed(53).pipeline(4).build();
        for i in 0..10u32 {
            store.begin_put(format!("key-{i}").as_bytes(), vec![1, 2, 3]);
        }
        store.drain();
        assert_eq!(store.get(b"key-9"), Some(vec![1, 2, 3]));
    }

    #[test]
    fn colliding_bucket_evicts_previous_key() {
        // Force collisions with a single bucket.
        let mut store = ShardedStore::builder().shards(1).seed(11).build();
        store.put(b"a", b"1".to_vec());
        store.put(b"b", b"2".to_vec());
        assert_eq!(store.get(b"b"), Some(b"2".to_vec()));
        assert_eq!(store.get(b"a"), None, "evicted by the colliding key");
    }
}
