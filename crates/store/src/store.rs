//! The synchronous sharded store facade.

use std::cell::RefCell;
use std::rc::Rc;

use hts_core::{BatchConfig, ClientCore, Config, Durability, SimServer};
use hts_sim::packet::{Ctx, NetworkConfig, PacketSim, Process, TimerId};
use hts_sim::{DiskConfig, Nanos};
use hts_types::{ClientId, Message, NodeId, ObjectId, ServerId, Value};

use crate::KeyMapper;

/// Cumulative facade counters.
#[derive(Debug, Clone, Default)]
pub struct StoreStats {
    /// Completed puts (incl. deletes).
    pub puts: u64,
    /// Completed gets.
    pub gets: u64,
    /// Request retries (timeouts / server crashes survived).
    pub retries: u64,
}

#[derive(Debug)]
enum PendingOp {
    Put(ObjectId, Value),
    Get(ObjectId),
}

#[derive(Default)]
struct CourierState {
    outbox: Option<PendingOp>,
    result: Option<Option<Value>>,
    retries: u64,
}

/// The in-sim client that executes one operation at a time on behalf of
/// the synchronous facade.
struct Courier {
    core: ClientCore,
    state: Rc<RefCell<CourierState>>,
    client_net: hts_sim::NetworkId,
    timeout: Nanos,
    timer: Option<(TimerId, hts_types::RequestId)>,
}

impl Process<Message> for Courier {
    fn on_message(&mut self, _ctx: &mut Ctx<'_, Message>, _from: NodeId, msg: Message) {
        if let Some(done) = self.core.on_reply(&msg) {
            self.timer = None;
            self.state.borrow_mut().result = Some(done.value);
        }
    }

    fn on_poke(&mut self, ctx: &mut Ctx<'_, Message>) {
        let op = self.state.borrow_mut().outbox.take();
        let Some(op) = op else { return };
        let (request, server, message) = match op {
            PendingOp::Put(object, value) => self.core.begin_write_to(object, value),
            PendingOp::Get(object) => self.core.begin_read_from(object),
        };
        ctx.send(self.client_net, NodeId::Server(server), message);
        self.timer = Some((ctx.set_timer(self.timeout), request));
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_, Message>, timer: TimerId) {
        if let Some((armed, request)) = self.timer {
            if armed == timer {
                if let Some((server, message)) = self.core.on_timeout(request) {
                    self.state.borrow_mut().retries += 1;
                    ctx.send(self.client_net, NodeId::Server(server), message);
                    self.timer = Some((ctx.set_timer(self.timeout), request));
                }
            }
        }
    }

    fn on_crashed(&mut self, ctx: &mut Ctx<'_, Message>, node: NodeId) {
        if let Some(s) = node.as_server() {
            if let Some((server, message)) = self.core.on_server_down(s) {
                self.state.borrow_mut().retries += 1;
                ctx.send(self.client_net, NodeId::Server(server), message);
                if let Some((_, request)) = self.timer {
                    self.timer = Some((ctx.set_timer(self.timeout), request));
                }
            }
        }
    }
}

/// Builder for [`ShardedStore`].
#[derive(Debug, Clone)]
pub struct ShardedStoreBuilder {
    servers: u16,
    shards: u32,
    seed: u64,
    config: Config,
    disk: Option<DiskConfig>,
}

impl ShardedStoreBuilder {
    /// Ring size (default 3).
    pub fn servers(mut self, n: u16) -> Self {
        self.servers = n;
        self
    }

    /// Hash buckets for key placement (default `u32::MAX`; two keys in one
    /// bucket evict each other, so keep this large unless testing).
    pub fn shards(mut self, shards: u32) -> Self {
        self.shards = shards;
        self
    }

    /// Determinism seed (default 0).
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Protocol configuration (default [`Config::paper`]).
    pub fn config(mut self, config: Config) -> Self {
        self.config = config;
        self
    }

    /// Persists committed writes on every server (modeled disk), turning
    /// crashed servers restartable via
    /// [`ShardedStore::restart_server`]. The disk charges append/fsync
    /// time per the given [`Durability`] policy.
    pub fn durability(mut self, durability: Durability, disk: DiskConfig) -> Self {
        self.config.durability = durability;
        self.disk = Some(disk);
        self
    }

    /// Ring frame batching for the store's servers (see
    /// [`BatchConfig`]): how aggressively protocol frames coalesce into
    /// one wire message per link transmission, and — with a persistent
    /// [`Durability`] — how many commits one modeled fsync covers
    /// (group commit). `BatchConfig::unbatched()` reproduces the
    /// frame-at-a-time runtime for A/B comparisons.
    pub fn batching(mut self, batching: BatchConfig) -> Self {
        self.config.batching = batching;
        self
    }

    /// Parallel ring lanes (default 1): the store's register objects are
    /// partitioned across `lanes` independent ring instances
    /// ([`hts_core::LaneMap`] placement over the objects `KeyMapper`
    /// produces), each with its own modeled ring NIC and — with
    /// [`durability`](Self::durability) — its own modeled log device.
    /// Keys stay wherever they hash; a key's object lives on exactly one
    /// lane, so per-key linearizability is untouched while the node's
    /// ring capacity scales with the lane count.
    pub fn lanes(mut self, lanes: u16) -> Self {
        self.config.lanes = lanes.max(1);
        self
    }

    /// Boots the simulated cluster and returns the store.
    pub fn build(&self) -> ShardedStore {
        let mut sim = PacketSim::new(self.seed);
        let lanes = self.config.lanes.max(1);
        let ring_nets: Vec<_> = (0..lanes)
            .map(|_| sim.add_network(NetworkConfig::fast_ethernet()))
            .collect();
        let client_net = sim.add_network(NetworkConfig::fast_ethernet());
        for i in 0..self.servers {
            let id = NodeId::Server(ServerId(i));
            let mut server = SimServer::with_ring_lanes(
                ServerId(i),
                self.servers,
                self.config.clone(),
                ring_nets.clone(),
                client_net,
            );
            if let Some(disk) = self.disk {
                server = server.with_disk(disk);
            }
            sim.add_node(id, Box::new(server));
            for ring_net in &ring_nets {
                sim.attach(id, *ring_net);
            }
            sim.attach(id, client_net);
        }
        let state = Rc::new(RefCell::new(CourierState::default()));
        let courier_id = NodeId::Client(ClientId(0));
        let courier = Courier {
            core: ClientCore::new(ClientId(0), ObjectId::SINGLE, self.servers, ServerId(0)),
            state: Rc::clone(&state),
            client_net,
            timeout: Nanos::from_millis(50),
            timer: None,
        };
        sim.add_node(courier_id, Box::new(courier));
        sim.attach(courier_id, client_net);
        ShardedStore {
            sim,
            mapper: KeyMapper::new(self.shards),
            state,
            courier: courier_id,
            stats: StoreStats::default(),
        }
    }
}

/// A linearizable-per-key KV store over a simulated `hts` ring.
///
/// Each key lives in its own register object (chosen by hashing); the
/// stored register value embeds the key, so a hash collision behaves like
/// an eviction rather than a wrong-value read. Calls are synchronous: each
/// steps the deterministic simulator until the ring answers.
///
/// See the [crate docs](crate) for an example.
pub struct ShardedStore {
    sim: PacketSim<Message>,
    mapper: KeyMapper,
    state: Rc<RefCell<CourierState>>,
    courier: NodeId,
    stats: StoreStats,
}

impl ShardedStore {
    /// Starts building a store.
    pub fn builder() -> ShardedStoreBuilder {
        ShardedStoreBuilder {
            servers: 3,
            shards: u32::MAX,
            seed: 0,
            config: Config::default(),
            disk: None,
        }
    }

    /// Stores `value` under `key`.
    pub fn put(&mut self, key: &[u8], value: Vec<u8>) {
        let object = self.mapper.object_for(key);
        let encoded = encode_entry(key, Some(&value));
        self.execute(PendingOp::Put(object, encoded));
        self.stats.puts += 1;
    }

    /// Removes `key` (a tombstone write).
    pub fn delete(&mut self, key: &[u8]) {
        let object = self.mapper.object_for(key);
        let encoded = encode_entry(key, None);
        self.execute(PendingOp::Put(object, encoded));
        self.stats.puts += 1;
    }

    /// Fetches `key`, or `None` if absent (never written, deleted, or
    /// evicted by a colliding key).
    pub fn get(&mut self, key: &[u8]) -> Option<Vec<u8>> {
        let object = self.mapper.object_for(key);
        let raw = self.execute(PendingOp::Get(object));
        self.stats.gets += 1;
        decode_entry(raw?.as_bytes(), key)
    }

    /// Crashes server `s` under the store (operations keep working while
    /// any server survives).
    pub fn crash_server(&mut self, s: ServerId) {
        self.sim.crash_at(NodeId::Server(s), self.sim.now());
    }

    /// Restarts a crashed server. With
    /// [`durability`](ShardedStoreBuilder::durability) configured it
    /// replays its modeled log; either way it rejoins the ring and
    /// resyncs from its predecessor before serving.
    pub fn restart_server(&mut self, s: ServerId) {
        self.sim.restart_at(NodeId::Server(s), self.sim.now());
        // Let the replay + rejoin circulation settle before the next op.
        self.sim.run_until(self.sim.now() + Nanos::from_millis(50));
    }

    /// Facade counters (retries reveal survived crashes).
    pub fn stats(&self) -> StoreStats {
        let mut stats = self.stats.clone();
        stats.retries = self.state.borrow().retries;
        stats
    }

    /// Virtual time consumed so far.
    pub fn elapsed(&self) -> Nanos {
        self.sim.now()
    }

    fn execute(&mut self, op: PendingOp) -> Option<Value> {
        self.state.borrow_mut().outbox = Some(op);
        self.sim.poke(self.courier);
        loop {
            let done = self.state.borrow_mut().result.take();
            if let Some(result) = done {
                return result;
            }
            assert!(self.sim.step(), "cluster quiesced without a reply");
        }
    }
}

fn encode_entry(key: &[u8], value: Option<&[u8]>) -> Value {
    let mut bytes = Vec::with_capacity(2 + key.len() + 1 + value.map_or(0, <[u8]>::len));
    let key_len = u16::try_from(key.len()).expect("key longer than 64 KiB");
    bytes.extend_from_slice(&key_len.to_be_bytes());
    bytes.extend_from_slice(key);
    match value {
        Some(v) => {
            bytes.push(1);
            bytes.extend_from_slice(v);
        }
        None => bytes.push(0),
    }
    Value::from(bytes)
}

fn decode_entry(raw: &[u8], want_key: &[u8]) -> Option<Vec<u8>> {
    if raw.is_empty() {
        return None; // ⊥: never written
    }
    let key_len = usize::from(u16::from_be_bytes([raw[0], raw[1]]));
    let key = &raw[2..2 + key_len];
    if key != want_key {
        return None; // collision eviction
    }
    let present = raw[2 + key_len];
    (present == 1).then(|| raw[2 + key_len + 1..].to_vec())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn put_get_delete_roundtrip() {
        let mut store = ShardedStore::builder().seed(3).build();
        assert_eq!(store.get(b"k"), None);
        store.put(b"k", b"v1".to_vec());
        assert_eq!(store.get(b"k"), Some(b"v1".to_vec()));
        store.put(b"k", b"v2".to_vec());
        assert_eq!(store.get(b"k"), Some(b"v2".to_vec()));
        store.delete(b"k");
        assert_eq!(store.get(b"k"), None);
        let stats = store.stats();
        assert_eq!(stats.puts, 3);
    }

    #[test]
    fn many_keys_are_independent() {
        let mut store = ShardedStore::builder().servers(4).seed(5).build();
        for i in 0..40u32 {
            store.put(format!("key-{i}").as_bytes(), i.to_be_bytes().to_vec());
        }
        for i in 0..40u32 {
            assert_eq!(
                store.get(format!("key-{i}").as_bytes()),
                Some(i.to_be_bytes().to_vec()),
                "key-{i}"
            );
        }
    }

    #[test]
    fn empty_values_are_distinguishable_from_absence() {
        let mut store = ShardedStore::builder().seed(7).build();
        store.put(b"empty", Vec::new());
        assert_eq!(store.get(b"empty"), Some(Vec::new()));
        store.delete(b"empty");
        assert_eq!(store.get(b"empty"), None);
    }

    #[test]
    fn survives_server_crashes() {
        let mut store = ShardedStore::builder().servers(3).seed(9).build();
        store.put(b"durable", b"before".to_vec());
        store.crash_server(ServerId(0));
        assert_eq!(store.get(b"durable"), Some(b"before".to_vec()));
        store.put(b"durable", b"after".to_vec());
        store.crash_server(ServerId(1));
        assert_eq!(store.get(b"durable"), Some(b"after".to_vec()));
        assert!(store.stats().puts >= 2);
    }

    #[test]
    fn crash_restart_preserves_data_on_the_restarted_server() {
        let mut store = ShardedStore::builder()
            .servers(3)
            .seed(13)
            .durability(Durability::SyncAlways, DiskConfig::nvme_ssd())
            .build();
        for i in 0..8u32 {
            store.put(format!("key-{i}").as_bytes(), i.to_be_bytes().to_vec());
        }
        // Bounce s0: it replays its modeled log and rejoins.
        store.crash_server(ServerId(0));
        store.put(b"during-downtime", b"fresh".to_vec());
        store.restart_server(ServerId(0));
        assert_eq!(store.get(b"key-3"), Some(3u32.to_be_bytes().to_vec()));
        // Kill the other two: only the restarted server remains. Every
        // key — including the one written while it was down — must
        // survive, proving log replay *and* ring resync both worked.
        store.crash_server(ServerId(1));
        store.crash_server(ServerId(2));
        for i in 0..8u32 {
            assert_eq!(
                store.get(format!("key-{i}").as_bytes()),
                Some(i.to_be_bytes().to_vec()),
                "key-{i} after every other server died"
            );
        }
        assert_eq!(store.get(b"during-downtime"), Some(b"fresh".to_vec()));
    }

    #[test]
    fn restart_without_durability_resyncs_from_the_ring() {
        // Volatile servers restart empty but still recover state from
        // their predecessor's recovery stream.
        let mut store = ShardedStore::builder().servers(3).seed(17).build();
        store.put(b"k", b"v".to_vec());
        store.crash_server(ServerId(1));
        store.restart_server(ServerId(1));
        store.crash_server(ServerId(0));
        store.crash_server(ServerId(2));
        assert_eq!(store.get(b"k"), Some(b"v".to_vec()));
    }

    #[test]
    fn batching_knob_is_a_pure_performance_setting() {
        // Same operations, batched vs unbatched (and with group-committed
        // durability): identical results, only the virtual clock differs.
        let run = |batching: BatchConfig| {
            let mut store = ShardedStore::builder()
                .servers(3)
                .seed(21)
                .durability(Durability::SyncAlways, DiskConfig::nvme_ssd())
                .batching(batching)
                .build();
            for i in 0..16u32 {
                store.put(format!("key-{i}").as_bytes(), i.to_be_bytes().to_vec());
            }
            store.crash_server(ServerId(1));
            store.restart_server(ServerId(1));
            let values: Vec<Option<Vec<u8>>> = (0..16u32)
                .map(|i| store.get(format!("key-{i}").as_bytes()))
                .collect();
            values
        };
        let batched = run(BatchConfig::default());
        let unbatched = run(BatchConfig::unbatched());
        assert_eq!(batched, unbatched);
        for (i, v) in batched.iter().enumerate() {
            assert_eq!(v.as_deref(), Some(&(i as u32).to_be_bytes()[..]), "key-{i}");
        }
    }

    #[test]
    fn laned_store_roundtrips_across_lanes() {
        // Keys hash across objects, objects partition across 4 lanes:
        // every key must still read back its own value.
        let mut store = ShardedStore::builder().servers(3).seed(23).lanes(4).build();
        for i in 0..48u32 {
            store.put(format!("key-{i}").as_bytes(), i.to_be_bytes().to_vec());
        }
        for i in 0..48u32 {
            assert_eq!(
                store.get(format!("key-{i}").as_bytes()),
                Some(i.to_be_bytes().to_vec()),
                "key-{i}"
            );
        }
    }

    #[test]
    fn laned_store_survives_crash_restart_with_per_lane_logs() {
        // Each lane persists to its own modeled log; a restarted server
        // must replay every lane and resync every lane's ring before the
        // cluster shrinks to it alone.
        let mut store = ShardedStore::builder()
            .servers(3)
            .seed(29)
            .lanes(2)
            .durability(Durability::SyncAlways, DiskConfig::nvme_ssd())
            .build();
        for i in 0..12u32 {
            store.put(format!("key-{i}").as_bytes(), i.to_be_bytes().to_vec());
        }
        store.crash_server(ServerId(0));
        store.put(b"during-downtime", b"fresh".to_vec());
        store.restart_server(ServerId(0));
        store.crash_server(ServerId(1));
        store.crash_server(ServerId(2));
        for i in 0..12u32 {
            assert_eq!(
                store.get(format!("key-{i}").as_bytes()),
                Some(i.to_be_bytes().to_vec()),
                "key-{i} after every other server died"
            );
        }
        assert_eq!(store.get(b"during-downtime"), Some(b"fresh".to_vec()));
    }

    #[test]
    fn lane_knob_is_a_pure_performance_setting() {
        // The lane count changes scheduling and capacity, never results:
        // the same operation sequence answers identically at 1 and 4
        // lanes (the lanes=1 runtime being today's single-ring path).
        let run = |lanes: u16| {
            let mut store = ShardedStore::builder()
                .servers(3)
                .seed(31)
                .lanes(lanes)
                .build();
            for i in 0..24u32 {
                store.put(format!("key-{i}").as_bytes(), i.to_be_bytes().to_vec());
            }
            store.crash_server(ServerId(1));
            (0..24u32)
                .map(|i| store.get(format!("key-{i}").as_bytes()))
                .collect::<Vec<_>>()
        };
        let single = run(1);
        let laned = run(4);
        assert_eq!(single, laned);
        for (i, v) in single.iter().enumerate() {
            assert_eq!(v.as_deref(), Some(&(i as u32).to_be_bytes()[..]), "key-{i}");
        }
    }

    #[test]
    fn colliding_bucket_evicts_previous_key() {
        // Force collisions with a single bucket.
        let mut store = ShardedStore::builder().shards(1).seed(11).build();
        store.put(b"a", b"1".to_vec());
        store.put(b"b", b"2".to_vec());
        assert_eq!(store.get(b"b"), Some(b"2".to_vec()));
        assert_eq!(store.get(b"a"), None, "evicted by the colliding key");
    }
}
