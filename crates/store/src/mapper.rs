//! Key → register-object placement.

use hts_types::ObjectId;

/// Maps keys onto a fixed number of register objects by FNV-1a hashing.
///
/// Every client and server must agree on the shard count; the mapping is
/// stable (no rebalancing — the ring itself is the replication domain, so
/// shards never move between servers).
///
/// # Examples
///
/// ```
/// use hts_store::KeyMapper;
///
/// let mapper = KeyMapper::new(16);
/// let a = mapper.object_for(b"alpha");
/// assert_eq!(a, mapper.object_for(b"alpha")); // deterministic
/// assert!(a.0 < 16);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct KeyMapper {
    shards: u32,
}

impl KeyMapper {
    /// Creates a mapper over `shards` register objects.
    ///
    /// # Panics
    ///
    /// Panics if `shards` is zero.
    pub fn new(shards: u32) -> Self {
        assert!(shards > 0, "a store needs at least one shard");
        KeyMapper { shards }
    }

    /// Number of shards.
    pub fn shards(&self) -> u32 {
        self.shards
    }

    /// The register object storing `key`.
    pub fn object_for(&self, key: &[u8]) -> ObjectId {
        ObjectId(self.hash(key) % self.shards)
    }

    fn hash(&self, key: &[u8]) -> u32 {
        // FNV-1a, 32-bit.
        let mut h: u32 = 0x811c_9dc5;
        for &b in key {
            h ^= u32::from(b);
            h = h.wrapping_mul(0x0100_0193);
        }
        h
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_and_in_range() {
        let m = KeyMapper::new(7);
        for key in [&b"a"[..], b"bb", b"ccc", b"\x00\xff", b""] {
            let o1 = m.object_for(key);
            let o2 = m.object_for(key);
            assert_eq!(o1, o2);
            assert!(o1.0 < 7);
        }
    }

    #[test]
    fn spreads_keys_over_shards() {
        let m = KeyMapper::new(8);
        let mut hit = [false; 8];
        for i in 0..256u32 {
            let key = i.to_be_bytes();
            hit[m.object_for(&key).0 as usize] = true;
        }
        assert!(hit.iter().all(|h| *h), "every shard receives keys: {hit:?}");
    }

    #[test]
    #[should_panic(expected = "at least one shard")]
    fn zero_shards_panics() {
        let _ = KeyMapper::new(0);
    }
}
