//! Deterministic discrete-event network simulation for the `hts` workspace.
//!
//! The paper evaluates its algorithm on a 24-node fast-ethernet cluster; we
//! substitute a **packet-level simulator** whose resources are exactly the
//! quantities the algorithm economizes: full-duplex NIC serialization at a
//! configurable link rate, store-and-forward switch ports, propagation and
//! endpoint processing delays. Throughput in the paper is link-bound, so
//! byte-accurate serialization reproduces the shapes of every figure.
//!
//! Two models:
//!
//! * [`packet`] — continuous virtual time (nanoseconds), per-NIC TX/RX
//!   serialization, multiple networks (the paper's separate server/client
//!   networks, or one shared network), crash and crash-**restart**
//!   injection with a perfect-failure-detector callback, a modeled log
//!   device ([`disk`]) for durability experiments, deterministic seeded
//!   execution.
//! * [`round`] — the synchronous round model of the paper's §2/§4: per round
//!   a process computes, sends one (possibly multicast) message per network,
//!   and **receives at most one** message per network (FIFO NIC queue).
//!   Used to validate the analytical latency/throughput claims and Fig. 1.
//!
//! Processes are sans-io state machines implementing [`Process`] (packet
//! model) or [`round::RoundProcess`]; the same protocol cores run on either
//! model and on the real TCP runtime in `hts-net`.
//!
//! # Examples
//!
//! A two-node ping-pong in the packet model:
//!
//! ```
//! use hts_sim::{packet::{PacketSim, NetworkConfig}, Ctx, Process, Wire};
//! use hts_types::{ClientId, NodeId};
//!
//! #[derive(Clone, Debug)]
//! struct Ping(u32);
//! impl Wire for Ping {
//!     fn wire_size(&self) -> usize { 4 }
//! }
//!
//! struct Node { peer: NodeId, pings: u32 }
//! impl Process<Ping> for Node {
//!     fn on_start(&mut self, ctx: &mut Ctx<'_, Ping>) {
//!         if ctx.node() == NodeId::Client(ClientId(0)) {
//!             ctx.send(Default::default(), self.peer, Ping(0));
//!         }
//!     }
//!     fn on_message(&mut self, ctx: &mut Ctx<'_, Ping>, from: NodeId, msg: Ping) {
//!         self.pings += 1;
//!         if msg.0 < 3 { ctx.send(Default::default(), from, Ping(msg.0 + 1)); }
//!     }
//! }
//!
//! let mut sim = PacketSim::new(42);
//! let net = sim.add_network(NetworkConfig::fast_ethernet());
//! let a = NodeId::Client(ClientId(0));
//! let b = NodeId::Client(ClientId(1));
//! sim.add_node(a, Box::new(Node { peer: b, pings: 0 }));
//! sim.add_node(b, Box::new(Node { peer: a, pings: 0 }));
//! sim.attach(a, net);
//! sim.attach(b, net);
//! sim.run_to_quiescence();
//! assert!(sim.now().as_nanos() > 0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod disk;
pub mod packet;
pub mod round;
mod time;

pub use disk::{DiskConfig, DiskModel};
pub use packet::{Ctx, NetworkId, PacketSim, Process, TimerId};
pub use time::{Bandwidth, Nanos};

/// Byte-level size accounting for simulated payloads.
///
/// The packet model charges each message its [`wire_size`](Wire::wire_size)
/// plus framing overhead when computing serialization times, so simulated
/// throughput is byte-accurate with respect to the real codec.
pub trait Wire {
    /// The encoded size of this message in bytes (excluding link framing).
    fn wire_size(&self) -> usize;
}

impl Wire for hts_types::Message {
    fn wire_size(&self) -> usize {
        hts_types::codec::wire_size(self)
    }
}
