//! A modeled storage device for durability experiments.
//!
//! The WAL's cost model mirrors the NIC's: appends *serialize* through
//! one device. An append occupies the disk for a fixed setup cost plus
//! a bandwidth-proportional transfer time; an fsync adds a (much
//! larger) flush cost. [`DiskModel`] tracks the device's busy horizon
//! so concurrent appends queue exactly like frames on a TX path, and
//! returns the completion instant the caller should gate on (a server
//! with `fsync = Always` holds each write ack until its commit record's
//! sync completes).

use crate::{Bandwidth, Nanos};

/// Physical characteristics of the modeled log device.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DiskConfig {
    /// Fixed per-append setup cost (syscall + block allocation).
    pub append_latency: Nanos,
    /// Sequential write bandwidth of the device.
    pub write_bandwidth: Bandwidth,
    /// Cost of one fsync (flush + device cache barrier).
    pub fsync_latency: Nanos,
    /// Replay bandwidth at recovery (sequential read + apply).
    pub replay_bandwidth: Bandwidth,
}

impl DiskConfig {
    /// A commodity NVMe SSD: ~10 µs append setup, ~1 GB/s sequential
    /// writes, ~0.5 ms fsync (flush-to-media barrier), ~2 GB/s replay.
    pub fn nvme_ssd() -> Self {
        DiskConfig {
            append_latency: Nanos::from_micros(10),
            write_bandwidth: Bandwidth::gbps(8),
            fsync_latency: Nanos::from_micros(500),
            replay_bandwidth: Bandwidth::gbps(16),
        }
    }

    /// A spinning disk: ~50 µs setup, ~150 MB/s sequential writes, ~8 ms
    /// fsync (rotational latency + seek), ~300 MB/s replay.
    pub fn spinning_disk() -> Self {
        DiskConfig {
            append_latency: Nanos::from_micros(50),
            write_bandwidth: Bandwidth::mbps(1200),
            fsync_latency: Nanos::from_millis(8),
            replay_bandwidth: Bandwidth::mbps(2400),
        }
    }

    /// How long replaying a `bytes`-long log tail takes at recovery.
    pub fn replay_time(&self, bytes: u64) -> Nanos {
        self.replay_bandwidth.transmission_time(bytes as usize)
    }
}

impl Default for DiskConfig {
    fn default() -> Self {
        DiskConfig::nvme_ssd()
    }
}

/// The busy-horizon tracker: one device, FIFO appends.
///
/// # Examples
///
/// ```
/// use hts_sim::{DiskConfig, DiskModel, Nanos};
///
/// let mut disk = DiskModel::new(DiskConfig::nvme_ssd());
/// let first = disk.append(Nanos::ZERO, 4096, true);
/// // A second append issued at the same instant queues behind the first.
/// let second = disk.append(Nanos::ZERO, 4096, true);
/// assert!(second > first);
/// ```
#[derive(Debug, Clone)]
pub struct DiskModel {
    config: DiskConfig,
    free_at: Nanos,
    /// Total bytes appended (the log length, for replay-time modeling).
    appended_bytes: u64,
    fsyncs: u64,
}

impl DiskModel {
    /// A fresh, idle device.
    pub fn new(config: DiskConfig) -> Self {
        DiskModel {
            config,
            free_at: Nanos::ZERO,
            appended_bytes: 0,
            fsyncs: 0,
        }
    }

    /// The device's configuration.
    pub fn config(&self) -> &DiskConfig {
        &self.config
    }

    /// Bytes appended since creation (or the last [`truncate`](Self::truncate)).
    pub fn appended_bytes(&self) -> u64 {
        self.appended_bytes
    }

    /// Fsyncs issued.
    pub fn fsyncs(&self) -> u64 {
        self.fsyncs
    }

    /// Queues an append of `bytes` at `now` (plus an fsync when `sync`),
    /// returning the instant it is durable (or merely queued to the
    /// page cache when `sync` is false).
    pub fn append(&mut self, now: Nanos, bytes: usize, sync: bool) -> Nanos {
        let start = self.free_at.max(now);
        let mut end = start
            + self.config.append_latency
            + self.config.write_bandwidth.transmission_time(bytes);
        if sync {
            end += self.config.fsync_latency;
            self.fsyncs += 1;
        }
        self.free_at = end;
        self.appended_bytes += bytes as u64;
        end
    }

    /// Models log compaction: the replayable tail resets to `bytes`.
    pub fn truncate(&mut self, bytes: u64) {
        self.appended_bytes = bytes;
    }

    /// How long a restart spends replaying the current log tail.
    pub fn replay_time(&self) -> Nanos {
        self.config.replay_time(self.appended_bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn appends_serialize_through_the_device() {
        let mut disk = DiskModel::new(DiskConfig::nvme_ssd());
        let a = disk.append(Nanos::ZERO, 1024, false);
        let b = disk.append(Nanos::ZERO, 1024, false);
        assert_eq!(b.as_nanos() - a.as_nanos(), a.as_nanos());
        // An append issued after the device idles starts fresh.
        let later = Nanos::from_millis(5);
        let c = disk.append(later, 1024, false);
        assert_eq!(c.as_nanos() - later.as_nanos(), a.as_nanos());
    }

    #[test]
    fn fsync_dominates_small_appends() {
        let cfg = DiskConfig::nvme_ssd();
        let mut synced = DiskModel::new(cfg);
        let mut unsynced = DiskModel::new(cfg);
        let with = synced.append(Nanos::ZERO, 64, true);
        let without = unsynced.append(Nanos::ZERO, 64, false);
        assert_eq!(
            with.as_nanos() - without.as_nanos(),
            cfg.fsync_latency.as_nanos()
        );
        assert_eq!(synced.fsyncs(), 1);
        assert_eq!(unsynced.fsyncs(), 0);
    }

    #[test]
    fn replay_time_tracks_log_length_and_compaction() {
        let mut disk = DiskModel::new(DiskConfig::nvme_ssd());
        assert_eq!(disk.replay_time(), Nanos::ZERO);
        for _ in 0..100 {
            disk.append(Nanos::ZERO, 64 * 1024, false);
        }
        let long = disk.replay_time();
        assert!(long > Nanos::ZERO);
        disk.truncate(64 * 1024);
        assert!(disk.replay_time() < long);
    }
}
