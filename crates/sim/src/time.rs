//! Virtual time and link-rate arithmetic.

use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// A point in (or span of) virtual time, in nanoseconds.
///
/// The simulator's clock is a `u64` nanosecond counter — wide enough for
/// ~584 years of virtual time, so overflow is not handled.
///
/// # Examples
///
/// ```
/// use hts_sim::Nanos;
/// let t = Nanos::from_millis(2) + Nanos::from_micros(500);
/// assert_eq!(t.as_nanos(), 2_500_000);
/// assert_eq!(t.as_secs_f64(), 0.0025);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Nanos(pub u64);

impl Nanos {
    /// Zero time.
    pub const ZERO: Nanos = Nanos(0);

    /// Creates a span from whole seconds.
    pub fn from_secs(s: u64) -> Self {
        Nanos(s * 1_000_000_000)
    }

    /// Creates a span from milliseconds.
    pub fn from_millis(ms: u64) -> Self {
        Nanos(ms * 1_000_000)
    }

    /// Creates a span from microseconds.
    pub fn from_micros(us: u64) -> Self {
        Nanos(us * 1_000)
    }

    /// The raw nanosecond count.
    pub fn as_nanos(self) -> u64 {
        self.0
    }

    /// This span in (fractional) seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// This span in (fractional) milliseconds.
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Saturating subtraction.
    pub fn saturating_sub(self, other: Nanos) -> Nanos {
        Nanos(self.0.saturating_sub(other.0))
    }
}

impl Add for Nanos {
    type Output = Nanos;
    fn add(self, rhs: Nanos) -> Nanos {
        Nanos(self.0 + rhs.0)
    }
}

impl AddAssign for Nanos {
    fn add_assign(&mut self, rhs: Nanos) {
        self.0 += rhs.0;
    }
}

impl Sub for Nanos {
    type Output = Nanos;
    fn sub(self, rhs: Nanos) -> Nanos {
        Nanos(self.0 - rhs.0)
    }
}

impl fmt::Display for Nanos {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let ns = self.0;
        if ns >= 1_000_000_000 {
            write!(f, "{:.3}s", self.as_secs_f64())
        } else if ns >= 1_000_000 {
            write!(f, "{:.3}ms", self.as_millis_f64())
        } else if ns >= 1_000 {
            write!(f, "{:.3}µs", ns as f64 / 1e3)
        } else {
            write!(f, "{ns}ns")
        }
    }
}

/// A link rate in bits per second.
///
/// # Examples
///
/// ```
/// use hts_sim::Bandwidth;
/// let fe = Bandwidth::mbps(100);
/// // 1250 bytes at 100 Mbit/s serialize in 100 µs.
/// assert_eq!(fe.transmission_time(1250).as_nanos(), 100_000);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Bandwidth(pub u64);

impl Bandwidth {
    /// A rate in megabits per second.
    pub fn mbps(m: u64) -> Self {
        Bandwidth(m * 1_000_000)
    }

    /// A rate in gigabits per second.
    pub fn gbps(g: u64) -> Self {
        Bandwidth(g * 1_000_000_000)
    }

    /// The raw bits-per-second value.
    pub fn bits_per_sec(self) -> u64 {
        self.0
    }

    /// Time to serialize `bytes` onto a link of this rate (rounded up).
    ///
    /// # Panics
    ///
    /// Panics if the rate is zero.
    pub fn transmission_time(self, bytes: usize) -> Nanos {
        assert!(self.0 > 0, "zero bandwidth");
        let bits = bytes as u128 * 8;
        let ns = (bits * 1_000_000_000).div_ceil(self.0 as u128);
        Nanos(ns as u64)
    }
}

impl fmt::Display for Bandwidth {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1_000_000_000 {
            write!(f, "{:.1}Gbit/s", self.0 as f64 / 1e9)
        } else {
            write!(f, "{:.1}Mbit/s", self.0 as f64 / 1e6)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions() {
        assert_eq!(Nanos::from_secs(1).as_nanos(), 1_000_000_000);
        assert_eq!(Nanos::from_millis(1).as_nanos(), 1_000_000);
        assert_eq!(Nanos::from_micros(1).as_nanos(), 1_000);
        assert_eq!(Nanos::from_secs(2).as_secs_f64(), 2.0);
        assert_eq!(Nanos::from_millis(5).as_millis_f64(), 5.0);
    }

    #[test]
    fn arithmetic() {
        let a = Nanos(100) + Nanos(50);
        assert_eq!(a, Nanos(150));
        assert_eq!(a - Nanos(150), Nanos::ZERO);
        assert_eq!(Nanos(10).saturating_sub(Nanos(20)), Nanos::ZERO);
        let mut b = Nanos(1);
        b += Nanos(2);
        assert_eq!(b, Nanos(3));
    }

    #[test]
    fn display_scales_units() {
        assert_eq!(Nanos(5).to_string(), "5ns");
        assert_eq!(Nanos(5_000).to_string(), "5.000µs");
        assert_eq!(Nanos(5_000_000).to_string(), "5.000ms");
        assert_eq!(Nanos(5_000_000_000).to_string(), "5.000s");
        assert_eq!(Bandwidth::mbps(100).to_string(), "100.0Mbit/s");
        assert_eq!(Bandwidth::gbps(10).to_string(), "10.0Gbit/s");
    }

    #[test]
    fn transmission_times() {
        // 100 Mbit/s = 12.5 bytes/µs.
        let fe = Bandwidth::mbps(100);
        assert_eq!(fe.transmission_time(0), Nanos::ZERO);
        assert_eq!(fe.transmission_time(1), Nanos(80));
        assert_eq!(fe.transmission_time(1538), Nanos(123_040));
        // Rounds up.
        assert_eq!(Bandwidth(3).transmission_time(1).as_nanos(), 2_666_666_667);
    }

    #[test]
    #[should_panic(expected = "zero bandwidth")]
    fn zero_bandwidth_panics() {
        let _ = Bandwidth(0).transmission_time(1);
    }
}
