//! The synchronous round-based model of the paper's §2.
//!
//! Per round `k`, every process:
//!
//! 1. computes (sees the messages popped from its NIC queues),
//! 2. **sends at most one message per network** — possibly a multicast —
//!    and
//! 3. **receives at most one message per network** (excess arrivals wait in
//!    a FIFO NIC input queue; this is the model's stand-in for collisions /
//!    serialized reception on real hardware).
//!
//! Messages sent in round `k` enter the destination queues after the round
//! and are received in round `k + 1` at the earliest. The model is used to
//! validate the paper's analytical claims (read latency 2, write latency
//! `2N + 2`, write throughput 1/round, read throughput `n`/round) and to
//! reproduce Figure 1.

use std::collections::{HashMap, VecDeque};

use hts_types::NodeId;

use crate::packet::NetworkId;

/// A process driven by the round simulator.
pub trait RoundProcess<M> {
    /// One round: inspect [`RoundCtx::incoming`], optionally send.
    fn on_round(&mut self, ctx: &mut RoundCtx<'_, M>, round: u64);

    /// A crash of `node` detected at the start of this round (perfect
    /// failure detector: fires one round after the crash).
    fn on_crashed(&mut self, node: NodeId) {
        let _ = node;
    }
}

/// Context handed to [`RoundProcess::on_round`].
pub struct RoundCtx<'a, M> {
    node: NodeId,
    incoming: &'a mut Vec<(NetworkId, NodeId, M)>,
    sends: Vec<(NetworkId, Vec<NodeId>, M)>,
    sent_on: Vec<NetworkId>,
}

impl<'a, M> RoundCtx<'a, M> {
    /// The node this callback runs on.
    pub fn node(&self) -> NodeId {
        self.node
    }

    /// Takes the (at most one) message received this round on `net`.
    pub fn take_incoming(&mut self, net: NetworkId) -> Option<(NodeId, M)> {
        let pos = self.incoming.iter().position(|(n, _, _)| *n == net)?;
        let (_, from, msg) = self.incoming.remove(pos);
        Some((from, msg))
    }

    /// Sends `msg` to every node in `to` (a multicast counts as the one
    /// send this round permits on `net`).
    ///
    /// # Panics
    ///
    /// Panics on a second send on the same network in one round — the model
    /// forbids it, so it is a protocol bug worth failing loudly on.
    pub fn send(&mut self, net: NetworkId, to: &[NodeId], msg: M) {
        assert!(
            !self.sent_on.contains(&net),
            "{}: two sends on {net:?} in one round",
            self.node
        );
        self.sent_on.push(net);
        self.sends.push((net, to.to_vec(), msg));
    }
}

struct RSlot<M> {
    id: NodeId,
    proc: Option<Box<dyn RoundProcess<M>>>,
    crashed: bool,
    /// FIFO input queue per attached network.
    inbox: Vec<(NetworkId, VecDeque<(NodeId, M)>)>,
}

/// The round-based simulator. See the [module docs](self).
pub struct RoundSim<M> {
    nodes: Vec<RSlot<M>>,
    index: HashMap<NodeId, usize>,
    networks: usize,
    round: u64,
    crashes: Vec<(u64, NodeId)>,
    messages_sent: u64,
}

impl<M: Clone> RoundSim<M> {
    /// Creates an empty round simulation.
    pub fn new() -> Self {
        RoundSim {
            nodes: Vec::new(),
            index: HashMap::new(),
            networks: 0,
            round: 0,
            crashes: Vec::new(),
            messages_sent: 0,
        }
    }

    /// Adds a network; returns its id.
    pub fn add_network(&mut self) -> NetworkId {
        self.networks += 1;
        NetworkId(self.networks - 1)
    }

    /// Registers a node.
    ///
    /// # Panics
    ///
    /// Panics if `id` was already added.
    pub fn add_node(&mut self, id: NodeId, proc: Box<dyn RoundProcess<M>>) {
        assert!(
            self.index.insert(id, self.nodes.len()).is_none(),
            "node {id} added twice"
        );
        self.nodes.push(RSlot {
            id,
            proc: Some(proc),
            crashed: false,
            inbox: Vec::new(),
        });
    }

    /// Attaches `node` to `net`.
    pub fn attach(&mut self, node: NodeId, net: NetworkId) {
        assert!(net.0 < self.networks, "unknown network {net:?}");
        let idx = self.index[&node];
        assert!(
            self.nodes[idx].inbox.iter().all(|(n, _)| *n != net),
            "{node} already attached to {net:?}"
        );
        self.nodes[idx].inbox.push((net, VecDeque::new()));
    }

    /// Schedules `node` to crash at the **start** of round `round`.
    pub fn crash_at_round(&mut self, node: NodeId, round: u64) {
        assert!(self.index.contains_key(&node), "unknown node {node}");
        self.crashes.push((round, node));
    }

    /// The next round to execute (0-based).
    pub fn round(&self) -> u64 {
        self.round
    }

    /// Total point-to-point messages transferred (a multicast to `m`
    /// destinations counts `m`).
    pub fn messages_sent(&self) -> u64 {
        self.messages_sent
    }

    /// Executes one round.
    pub fn step(&mut self) {
        let round = self.round;

        // Crashes scheduled for this round take effect before computation;
        // survivors learn about them at the start of the *next* round.
        let mut newly_crashed = Vec::new();
        for &(r, node) in &self.crashes {
            if r == round {
                newly_crashed.push(node);
            }
        }
        for node in &newly_crashed {
            let idx = self.index[node];
            self.nodes[idx].crashed = true;
            for (_, q) in &mut self.nodes[idx].inbox {
                q.clear();
            }
        }
        let detected: Vec<NodeId> = self
            .crashes
            .iter()
            .filter(|(r, _)| *r + 1 == round)
            .map(|(_, n)| *n)
            .collect();

        let mut all_sends: Vec<(NodeId, NetworkId, Vec<NodeId>, M)> = Vec::new();
        for i in 0..self.nodes.len() {
            if self.nodes[i].crashed {
                continue;
            }
            let mut proc = self.nodes[i].proc.take().expect("re-entrant step");
            for crashed in &detected {
                proc.on_crashed(*crashed);
            }
            // Pop at most one message per attached network.
            let mut incoming: Vec<(NetworkId, NodeId, M)> = Vec::new();
            for (net, q) in &mut self.nodes[i].inbox {
                if let Some((from, msg)) = q.pop_front() {
                    incoming.push((*net, from, msg));
                }
            }
            let mut ctx = RoundCtx {
                node: self.nodes[i].id,
                incoming: &mut incoming,
                sends: Vec::new(),
                sent_on: Vec::new(),
            };
            proc.on_round(&mut ctx, round);
            let sends = ctx.sends;
            self.nodes[i].proc = Some(proc);
            for (net, to, msg) in sends {
                all_sends.push((self.nodes[i].id, net, to, msg));
            }
        }

        // Deliveries become visible next round.
        for (from, net, to, msg) in all_sends {
            for dst in to {
                let idx = *self
                    .index
                    .get(&dst)
                    .unwrap_or_else(|| panic!("send to unknown node {dst}"));
                if self.nodes[idx].crashed {
                    continue;
                }
                let q = self.nodes[idx]
                    .inbox
                    .iter_mut()
                    .find(|(n, _)| *n == net)
                    .unwrap_or_else(|| panic!("{dst} not attached to {net:?}"));
                q.1.push_back((from, msg.clone()));
                self.messages_sent += 1;
            }
        }

        self.round += 1;
    }

    /// Executes `k` rounds.
    pub fn run_rounds(&mut self, k: u64) {
        for _ in 0..k {
            self.step();
        }
    }
}

impl<M: Clone> Default for RoundSim<M> {
    fn default() -> Self {
        RoundSim::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hts_types::ClientId;
    use std::cell::RefCell;
    use std::rc::Rc;

    type Log = Rc<RefCell<Vec<(u64, NodeId, u32)>>>;

    /// Echoes every received message back to its sender, once per round.
    struct Echo {
        log: Log,
        kick: Option<(NodeId, u32)>,
    }

    impl RoundProcess<u32> for Echo {
        fn on_round(&mut self, ctx: &mut RoundCtx<'_, u32>, round: u64) {
            if let Some((to, v)) = self.kick.take() {
                ctx.send(NetworkId(0), &[to], v);
            }
            if let Some((from, msg)) = ctx.take_incoming(NetworkId(0)) {
                self.log.borrow_mut().push((round, from, msg));
                if msg < 3 {
                    ctx.send(NetworkId(0), &[from], msg + 1);
                }
            }
        }
    }

    #[test]
    fn messages_take_one_round() {
        let log: Log = Log::default();
        let mut sim = RoundSim::new();
        let net = sim.add_network();
        let a = NodeId::Client(ClientId(0));
        let b = NodeId::Client(ClientId(1));
        sim.add_node(
            a,
            Box::new(Echo {
                log: Rc::clone(&log),
                kick: Some((b, 0)),
            }),
        );
        sim.add_node(
            b,
            Box::new(Echo {
                log: Rc::clone(&log),
                kick: None,
            }),
        );
        sim.attach(a, net);
        sim.attach(b, net);
        sim.run_rounds(6);
        // Sent in round 0 -> received round 1; pong round 2; ...
        assert_eq!(
            *log.borrow(),
            vec![(1, a, 0), (2, b, 1), (3, a, 2), (4, b, 3)]
        );
        assert_eq!(sim.messages_sent(), 4);
    }

    #[test]
    fn reception_is_limited_to_one_per_round() {
        let log: Log = Log::default();
        struct Spray;
        impl RoundProcess<u32> for Spray {
            fn on_round(&mut self, ctx: &mut RoundCtx<'_, u32>, round: u64) {
                if round == 0 {
                    ctx.send(NetworkId(0), &[NodeId::Client(ClientId(9))], 7);
                }
            }
        }
        struct Sink {
            log: Log,
        }
        impl RoundProcess<u32> for Sink {
            fn on_round(&mut self, ctx: &mut RoundCtx<'_, u32>, round: u64) {
                if let Some((from, msg)) = ctx.take_incoming(NetworkId(0)) {
                    self.log.borrow_mut().push((round, from, msg));
                }
            }
        }
        let mut sim = RoundSim::new();
        let net = sim.add_network();
        let sink = NodeId::Client(ClientId(9));
        sim.add_node(
            sink,
            Box::new(Sink {
                log: Rc::clone(&log),
            }),
        );
        sim.attach(sink, net);
        for i in 0..3u32 {
            let id = NodeId::Client(ClientId(i));
            sim.add_node(id, Box::new(Spray));
            sim.attach(id, net);
        }
        sim.run_rounds(6);
        // Three messages sent in round 0: delivered one per round, 1..=3.
        let rounds: Vec<u64> = log.borrow().iter().map(|(r, _, _)| *r).collect();
        assert_eq!(rounds, vec![1, 2, 3]);
    }

    #[test]
    fn multicast_counts_as_one_send_but_many_deliveries() {
        struct Caster;
        impl RoundProcess<u32> for Caster {
            fn on_round(&mut self, ctx: &mut RoundCtx<'_, u32>, round: u64) {
                if round == 0 && ctx.node() == NodeId::Client(ClientId(0)) {
                    let dests: Vec<NodeId> = (1..4).map(|i| NodeId::Client(ClientId(i))).collect();
                    ctx.send(NetworkId(0), &dests, 1);
                }
            }
        }
        let mut sim = RoundSim::new();
        let net = sim.add_network();
        for i in 0..4u32 {
            let id = NodeId::Client(ClientId(i));
            sim.add_node(id, Box::new(Caster));
            sim.attach(id, net);
        }
        sim.run_rounds(2);
        assert_eq!(sim.messages_sent(), 3);
    }

    #[test]
    #[should_panic(expected = "two sends")]
    fn double_send_panics() {
        struct Bad;
        impl RoundProcess<u32> for Bad {
            fn on_round(&mut self, ctx: &mut RoundCtx<'_, u32>, _round: u64) {
                let me = ctx.node();
                ctx.send(NetworkId(0), &[me], 1);
                ctx.send(NetworkId(0), &[me], 2);
            }
        }
        let mut sim = RoundSim::new();
        let net = sim.add_network();
        let id = NodeId::Client(ClientId(0));
        sim.add_node(id, Box::new(Bad));
        sim.attach(id, net);
        sim.step();
    }

    #[test]
    fn crashed_nodes_stop_and_are_detected_next_round() {
        let log: Log = Log::default();
        struct Watch {
            log: Log,
        }
        impl RoundProcess<u32> for Watch {
            fn on_round(&mut self, _ctx: &mut RoundCtx<'_, u32>, _round: u64) {}
            fn on_crashed(&mut self, node: NodeId) {
                self.log.borrow_mut().push((0, node, 0));
            }
        }
        let mut sim = RoundSim::new();
        let net = sim.add_network();
        let a = NodeId::Client(ClientId(0));
        let b = NodeId::Client(ClientId(1));
        sim.add_node(
            a,
            Box::new(Watch {
                log: Rc::clone(&log),
            }),
        );
        sim.add_node(
            b,
            Box::new(Watch {
                log: Rc::clone(&log),
            }),
        );
        sim.attach(a, net);
        sim.attach(b, net);
        sim.crash_at_round(b, 2);
        sim.run_rounds(5);
        assert_eq!(*log.borrow(), vec![(0, b, 0)]);
    }

    #[test]
    fn separate_networks_have_independent_receive_slots() {
        let log: Log = Log::default();
        struct DualSink {
            log: Log,
        }
        impl RoundProcess<u32> for DualSink {
            fn on_round(&mut self, ctx: &mut RoundCtx<'_, u32>, round: u64) {
                for net in [NetworkId(0), NetworkId(1)] {
                    if let Some((from, msg)) = ctx.take_incoming(net) {
                        self.log.borrow_mut().push((round, from, msg));
                    }
                }
            }
        }
        struct Src {
            net: NetworkId,
            dst: NodeId,
        }
        impl RoundProcess<u32> for Src {
            fn on_round(&mut self, ctx: &mut RoundCtx<'_, u32>, round: u64) {
                if round == 0 {
                    ctx.send(self.net, &[self.dst], self.net.0 as u32);
                }
            }
        }
        let mut sim = RoundSim::new();
        let n0 = sim.add_network();
        let n1 = sim.add_network();
        let sink = NodeId::Client(ClientId(9));
        sim.add_node(
            sink,
            Box::new(DualSink {
                log: Rc::clone(&log),
            }),
        );
        sim.attach(sink, n0);
        sim.attach(sink, n1);
        let s0 = NodeId::Client(ClientId(0));
        let s1 = NodeId::Client(ClientId(1));
        sim.add_node(s0, Box::new(Src { net: n0, dst: sink }));
        sim.add_node(s1, Box::new(Src { net: n1, dst: sink }));
        sim.attach(s0, n0);
        sim.attach(s1, n1);
        sim.run_rounds(3);
        // Both messages received in round 1, one per NIC.
        let rounds: Vec<u64> = log.borrow().iter().map(|(r, _, _)| *r).collect();
        assert_eq!(rounds, vec![1, 1]);
    }
}
