//! The packet-level network model.
//!
//! Virtual time is continuous ([`Nanos`]); the simulated resources are the
//! ones a switched-ethernet cluster actually contends on:
//!
//! * **TX serialization** — a node's NIC puts one frame on the wire at a
//!   time at the link rate; concurrent sends queue (FIFO).
//! * **RX serialization** — the switch's output port towards a node
//!   delivers one frame at a time at the link rate; concurrent arrivals
//!   from different senders queue (FCFS by arrival instant). This is what
//!   makes one-to-many "broadcast storms" expensive and the paper's ring
//!   pattern cheap.
//! * **Propagation + endpoint processing** — constant per network, with
//!   optional deterministic jitter.
//!
//! Nodes can attach to several networks (the paper's dual-homed servers).
//! Crashes drop a node at an instant; messages it had not finished
//! serializing are lost, and every surviving node receives a
//! perfect-failure-detector callback after a configurable detection delay.
//! Everything is deterministic for a given seed and insertion order.

use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap, HashSet};
use std::fmt;

use hts_types::NodeId;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::{Bandwidth, Nanos, Wire};

/// Identifies one simulated network (switch). The default id names the
/// first network added, convenient for single-network setups.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct NetworkId(pub usize);

/// Handle to a pending timer, returned by [`Ctx::set_timer`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TimerId(pub u64);

/// Physical characteristics of one network.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NetworkConfig {
    /// Link rate of every port on this network.
    pub bandwidth: Bandwidth,
    /// One-way propagation (incl. switch forwarding) delay.
    pub propagation: Nanos,
    /// Maximum payload bytes per frame (ethernet MSS).
    pub mss: usize,
    /// Non-payload bytes charged per frame (preamble, MAC/IP/TCP headers,
    /// FCS, inter-frame gap). 78 bytes on a 1460-byte MSS reproduces TCP's
    /// ≈94.9 Mbit/s goodput ceiling on fast ethernet.
    pub frame_overhead: usize,
    /// Fixed endpoint processing delay added to every delivery.
    pub proc_delay: Nanos,
    /// Deterministic uniform jitter in `[0, proc_jitter)` added on top.
    pub proc_jitter: Nanos,
}

impl NetworkConfig {
    /// 100 Mbit/s switched fast ethernet, tuned to the paper's cluster.
    pub fn fast_ethernet() -> Self {
        NetworkConfig {
            bandwidth: Bandwidth::mbps(100),
            propagation: Nanos::from_micros(30),
            mss: 1460,
            frame_overhead: 78,
            proc_delay: Nanos::from_micros(40),
            proc_jitter: Nanos::from_micros(10),
        }
    }

    /// 1 Gbit/s ethernet (for scale-out ablations).
    pub fn gigabit_ethernet() -> Self {
        NetworkConfig {
            bandwidth: Bandwidth::gbps(1),
            propagation: Nanos::from_micros(10),
            mss: 1460,
            frame_overhead: 78,
            proc_delay: Nanos::from_micros(15),
            proc_jitter: Nanos::from_micros(4),
        }
    }

    /// The wire-level bytes charged for a `payload`-byte message.
    pub fn wire_bytes(&self, payload: usize) -> usize {
        let frames = payload.div_ceil(self.mss).max(1);
        payload + frames * self.frame_overhead
    }
}

/// A sans-io process driven by the packet simulator.
///
/// All methods have default no-op implementations except
/// [`on_message`](Process::on_message); implement the ones the protocol
/// needs. Methods receive a [`Ctx`] to emit sends, set timers and query
/// NIC state; effects are applied when the callback returns.
pub trait Process<M> {
    /// Called once before the first event is processed.
    fn on_start(&mut self, ctx: &mut Ctx<'_, M>) {
        let _ = ctx;
    }

    /// A message arrived (fully received and processed by the NIC).
    fn on_message(&mut self, ctx: &mut Ctx<'_, M>, from: NodeId, msg: M);

    /// A timer set via [`Ctx::set_timer`] fired.
    fn on_timer(&mut self, ctx: &mut Ctx<'_, M>, timer: TimerId) {
        let _ = (ctx, timer);
    }

    /// The perfect failure detector reports that `node` crashed.
    fn on_crashed(&mut self, ctx: &mut Ctx<'_, M>, node: NodeId) {
        let _ = (ctx, node);
    }

    /// This node was restarted ([`PacketSim::restart_at`]) after a
    /// crash. The process object survives with its pre-crash state —
    /// the callback models the reboot: reset volatile state, replay the
    /// modeled disk, rejoin the protocol. Messages and timers from the
    /// previous incarnation are dropped by the simulator.
    fn on_restart(&mut self, ctx: &mut Ctx<'_, M>) {
        let _ = ctx;
    }

    /// The TX path of this node's NIC on `net` drained: anything queued
    /// before has fully serialized. Protocol cores with *paced* output (the
    /// ring fairness rule) hand over their next frame here.
    fn on_tx_idle(&mut self, ctx: &mut Ctx<'_, M>, net: NetworkId) {
        let _ = (ctx, net);
    }

    /// An out-of-band nudge injected by the harness via
    /// [`PacketSim::poke`] — synchronous facades use this to hand new work
    /// to a node between `run_*` calls.
    fn on_poke(&mut self, ctx: &mut Ctx<'_, M>) {
        let _ = ctx;
    }
}

enum Command<M> {
    Send { net: NetworkId, to: NodeId, msg: M },
    SetTimer { id: TimerId, at: Nanos },
    CancelTimer { id: TimerId },
}

/// The callback context: read the clock, send messages, manage timers.
///
/// Sends and timer operations are buffered and applied when the callback
/// returns, in order.
pub struct Ctx<'a, M> {
    now: Nanos,
    node: NodeId,
    rng: &'a mut SmallRng,
    commands: Vec<Command<M>>,
    timer_seq: &'a mut u64,
    /// (net, tx idle?) snapshot, updated pessimistically by sends.
    idle: Vec<(NetworkId, bool)>,
}

impl<'a, M> Ctx<'a, M> {
    /// Current virtual time.
    pub fn now(&self) -> Nanos {
        self.now
    }

    /// The node this callback runs on.
    pub fn node(&self) -> NodeId {
        self.node
    }

    /// Sends `msg` to `to` over `net`.
    ///
    /// The message queues at this node's NIC for `net` and serializes at
    /// the link rate; `to` must also be attached to `net` (checked when the
    /// command is applied — a violation panics, it is a harness bug).
    pub fn send(&mut self, net: NetworkId, to: NodeId, msg: M) {
        for (n, idle) in &mut self.idle {
            if *n == net {
                *idle = false;
            }
        }
        self.commands.push(Command::Send { net, to, msg });
    }

    /// Arms a timer to fire `delay` from now; returns its id.
    pub fn set_timer(&mut self, delay: Nanos) -> TimerId {
        *self.timer_seq += 1;
        let id = TimerId(*self.timer_seq);
        self.commands.push(Command::SetTimer {
            id,
            at: self.now + delay,
        });
        id
    }

    /// Cancels a previously armed timer (no-op if it already fired).
    pub fn cancel_timer(&mut self, id: TimerId) {
        self.commands.push(Command::CancelTimer { id });
    }

    /// Whether this node's TX path on `net` is idle (nothing serializing
    /// and nothing sent earlier in this callback).
    pub fn tx_is_idle(&self, net: NetworkId) -> bool {
        self.idle
            .iter()
            .find(|(n, _)| *n == net)
            .map(|(_, i)| *i)
            .unwrap_or(false)
    }

    /// A deterministic uniform sample in `[0, bound)` (zero if `bound` is
    /// zero). Protocol cores use this for randomized backoff in tests.
    pub fn rand_below(&mut self, bound: u64) -> u64 {
        if bound == 0 {
            0
        } else {
            self.rng.gen_range(0..bound)
        }
    }
}

#[derive(Debug, Default, Clone)]
/// Cumulative per-NIC counters; see [`PacketSim::nic_stats`].
pub struct NicStats {
    /// Wire-level bytes serialized out (payload + framing).
    pub tx_wire_bytes: u64,
    /// Wire-level bytes received.
    pub rx_wire_bytes: u64,
    /// Total time the TX path was serializing.
    pub tx_busy: Nanos,
    /// Total time the RX path was serializing.
    pub rx_busy: Nanos,
    /// Messages sent.
    pub msgs_sent: u64,
    /// Messages delivered to the process.
    pub msgs_delivered: u64,
}

struct Nic {
    tx_free: Nanos,
    rx_free: Nanos,
    /// Monotone delivery clock: processing jitter must never reorder
    /// deliveries from one port (TCP links are FIFO).
    last_delivery: Nanos,
    stats: NicStats,
}

struct NodeSlot<M> {
    id: NodeId,
    proc: Option<Box<dyn Process<M>>>,
    crashed_at: Option<Nanos>,
    /// Incarnation counter, bumped by restart: in-flight messages and
    /// timers stamped with an older epoch are dropped (they belonged to
    /// connections/state of the dead incarnation).
    epoch: u32,
    nics: Vec<(NetworkId, Nic)>,
}

impl<M> NodeSlot<M> {
    fn nic_mut(&mut self, net: NetworkId) -> Option<&mut Nic> {
        self.nics
            .iter_mut()
            .find(|(n, _)| *n == net)
            .map(|(_, nic)| nic)
    }
    fn alive(&self) -> bool {
        self.crashed_at.is_none()
    }
}

enum EvKind<M> {
    Arrival {
        net: NetworkId,
        from: NodeId,
        to: NodeId,
        msg: M,
        wire_bytes: usize,
        src_tx_end: Nanos,
        dst_epoch: u32,
    },
    Deliver {
        net: NetworkId,
        from: NodeId,
        to: NodeId,
        msg: M,
        dst_epoch: u32,
    },
    TimerFire {
        node: NodeId,
        timer: TimerId,
        epoch: u32,
    },
    TxIdle {
        node: NodeId,
        net: NetworkId,
    },
    Crash {
        node: NodeId,
    },
    DetectCrash {
        node: NodeId,
    },
    Restart {
        node: NodeId,
    },
    /// Targeted failure-detector refresh: tells a freshly restarted
    /// `observer` about a `crashed` node it may have forgotten.
    DetectCrashFor {
        observer: NodeId,
        crashed: NodeId,
    },
    Poke {
        node: NodeId,
    },
}

struct Ev<M> {
    at: Nanos,
    seq: u64,
    kind: EvKind<M>,
}

impl<M> PartialEq for Ev<M> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<M> Eq for Ev<M> {}
impl<M> PartialOrd for Ev<M> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<M> Ord for Ev<M> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.at, self.seq).cmp(&(other.at, other.seq))
    }
}

/// One recorded trace entry (when tracing is enabled).
#[derive(Debug, Clone)]
pub struct TraceEntry {
    /// When it happened.
    pub at: Nanos,
    /// What happened, pre-rendered.
    pub what: String,
}

/// Shape of the per-event callbacks `dispatch` runs against a process.
type ProcessHook<'a, M> = dyn FnMut(&mut dyn Process<M>, &mut Ctx<'_, M>) + 'a;

/// The packet-level simulator. See the [module docs](self).
pub struct PacketSim<M> {
    networks: Vec<NetworkConfig>,
    nodes: Vec<NodeSlot<M>>,
    index: HashMap<NodeId, usize>,
    queue: BinaryHeap<Reverse<Ev<M>>>,
    now: Nanos,
    seq: u64,
    timer_seq: u64,
    cancelled: HashSet<u64>,
    rng: SmallRng,
    started: bool,
    detection_delay: Nanos,
    dropped_to_crashed: u64,
    /// Pending sender-side "connection refused" detections, deduplicated
    /// per (observer, crashed) so a saturated sender does not flood the
    /// event heap during the detection window.
    refused_pending: HashSet<(NodeId, NodeId)>,
    trace: Option<Vec<TraceEntry>>,
    events_processed: u64,
}

impl<M: Wire + fmt::Debug> PacketSim<M> {
    /// Creates an empty simulation with a deterministic seed.
    pub fn new(seed: u64) -> Self {
        PacketSim {
            networks: Vec::new(),
            nodes: Vec::new(),
            index: HashMap::new(),
            queue: BinaryHeap::new(),
            now: Nanos::ZERO,
            seq: 0,
            timer_seq: 0,
            cancelled: HashSet::new(),
            rng: SmallRng::seed_from_u64(seed),
            started: false,
            detection_delay: Nanos::from_micros(500),
            dropped_to_crashed: 0,
            refused_pending: HashSet::new(),
            trace: None,
            events_processed: 0,
        }
    }

    /// Sets how long after a crash the perfect failure detector notifies
    /// the survivors (default 500 µs — a couple of TCP keep-alive probes on
    /// a LAN).
    pub fn set_detection_delay(&mut self, delay: Nanos) {
        self.detection_delay = delay;
    }

    /// Adds a network; returns its id.
    pub fn add_network(&mut self, config: NetworkConfig) -> NetworkId {
        self.networks.push(config);
        NetworkId(self.networks.len() - 1)
    }

    /// Registers a node.
    ///
    /// # Panics
    ///
    /// Panics if `id` was already added.
    pub fn add_node(&mut self, id: NodeId, proc: Box<dyn Process<M>>) {
        assert!(
            self.index.insert(id, self.nodes.len()).is_none(),
            "node {id} added twice"
        );
        self.nodes.push(NodeSlot {
            id,
            proc: Some(proc),
            crashed_at: None,
            epoch: 0,
            nics: Vec::new(),
        });
    }

    /// Attaches `node` to `net` with a fresh NIC.
    ///
    /// # Panics
    ///
    /// Panics if node or network is unknown, or already attached.
    pub fn attach(&mut self, node: NodeId, net: NetworkId) {
        assert!(net.0 < self.networks.len(), "unknown network {net:?}");
        let idx = self.index[&node];
        assert!(
            self.nodes[idx].nics.iter().all(|(n, _)| *n != net),
            "{node} already attached to {net:?}"
        );
        self.nodes[idx].nics.push((
            net,
            Nic {
                tx_free: Nanos::ZERO,
                rx_free: Nanos::ZERO,
                last_delivery: Nanos::ZERO,
                stats: NicStats::default(),
            },
        ));
    }

    /// Schedules a crash of `node` at absolute time `at`.
    pub fn crash_at(&mut self, node: NodeId, at: Nanos) {
        assert!(self.index.contains_key(&node), "unknown node {node}");
        self.push(at, EvKind::Crash { node });
    }

    /// Schedules a crash-**restart** of `node` at absolute time `at`
    /// (a no-op if the node is alive then). The node's
    /// [`Process::on_restart`] runs with fresh NICs; messages and timers
    /// of the dead incarnation are dropped, and the restarted node's
    /// failure detector is re-told about every still-crashed node after
    /// the detection delay.
    pub fn restart_at(&mut self, node: NodeId, at: Nanos) {
        assert!(self.index.contains_key(&node), "unknown node {node}");
        self.push(at, EvKind::Restart { node });
    }

    /// Nudges `node` at the current instant: its
    /// [`Process::on_poke`] runs at the head of the event queue.
    pub fn poke(&mut self, node: NodeId) {
        assert!(self.index.contains_key(&node), "unknown node {node}");
        let now = self.now;
        self.push(now, EvKind::Poke { node });
    }

    /// Enables trace recording (for illustration walkthroughs).
    pub fn enable_trace(&mut self) {
        if self.trace.is_none() {
            self.trace = Some(Vec::new());
        }
    }

    /// Takes the recorded trace, leaving recording enabled.
    pub fn take_trace(&mut self) -> Vec<TraceEntry> {
        self.trace.replace(Vec::new()).unwrap_or_default()
    }

    /// Current virtual time.
    pub fn now(&self) -> Nanos {
        self.now
    }

    /// Total events processed so far.
    pub fn events_processed(&self) -> u64 {
        self.events_processed
    }

    /// Messages dropped because their destination (or mid-transmission
    /// sender) had crashed.
    pub fn dropped_to_crashed(&self) -> u64 {
        self.dropped_to_crashed
    }

    /// Returns `true` if `node` has crashed.
    pub fn is_crashed(&self, node: NodeId) -> bool {
        self.nodes[self.index[&node]].crashed_at.is_some()
    }

    /// Cumulative NIC counters for `node` on `net`.
    ///
    /// # Panics
    ///
    /// Panics if the node is not attached to `net`.
    pub fn nic_stats(&self, node: NodeId, net: NetworkId) -> NicStats {
        let idx = self.index[&node];
        self.nodes[idx]
            .nics
            .iter()
            .find(|(n, _)| *n == net)
            .map(|(_, nic)| nic.stats.clone())
            .unwrap_or_else(|| panic!("{node} not attached to {net:?}"))
    }

    /// Zeroes all NIC counters (used to exclude warm-up from measurements).
    pub fn reset_stats(&mut self) {
        for slot in &mut self.nodes {
            for (_, nic) in &mut slot.nics {
                nic.stats = NicStats::default();
            }
        }
    }

    fn push(&mut self, at: Nanos, kind: EvKind<M>) {
        self.seq += 1;
        self.queue.push(Reverse(Ev {
            at,
            seq: self.seq,
            kind,
        }));
    }

    fn trace_push(&mut self, what: String) {
        let at = self.now;
        if let Some(t) = &mut self.trace {
            t.push(TraceEntry { at, what });
        }
    }

    /// Runs every node's `on_start` (idempotent; run methods call it).
    fn ensure_started(&mut self) {
        if self.started {
            return;
        }
        self.started = true;
        for i in 0..self.nodes.len() {
            self.dispatch(i, false, &mut |proc, ctx| proc.on_start(ctx));
        }
    }

    /// Processes events until the queue is empty.
    pub fn run_to_quiescence(&mut self) {
        self.ensure_started();
        while self.step() {}
    }

    /// Processes events with `at <= deadline`, then advances the clock to
    /// `deadline`.
    pub fn run_until(&mut self, deadline: Nanos) {
        self.ensure_started();
        loop {
            match self.queue.peek() {
                Some(Reverse(ev)) if ev.at <= deadline => {
                    self.step();
                }
                _ => break,
            }
        }
        self.now = deadline;
    }

    /// Processes a single event; returns `false` when the queue is empty.
    pub fn step(&mut self) -> bool {
        self.ensure_started();
        let Some(Reverse(ev)) = self.queue.pop() else {
            return false;
        };
        debug_assert!(ev.at >= self.now, "time went backwards");
        self.now = ev.at;
        self.events_processed += 1;
        match ev.kind {
            EvKind::Arrival {
                net,
                from,
                to,
                msg,
                wire_bytes,
                src_tx_end,
                dst_epoch,
            } => self.on_arrival(net, from, to, msg, wire_bytes, src_tx_end, dst_epoch),
            EvKind::Deliver {
                net,
                from,
                to,
                msg,
                dst_epoch,
            } => {
                let idx = self.index[&to];
                if !self.nodes[idx].alive() || self.nodes[idx].epoch != dst_epoch {
                    self.dropped_to_crashed += 1;
                } else {
                    if let Some(nic) = self.nodes[idx].nic_mut(net) {
                        nic.stats.msgs_delivered += 1;
                    }
                    if self.trace.is_some() {
                        self.trace_push(format!("{to} <- {from}: deliver {msg:?}"));
                    }
                    let mut slot = Some(msg);
                    self.dispatch(idx, false, &mut |proc, ctx| {
                        proc.on_message(ctx, from, slot.take().expect("message consumed twice"))
                    });
                }
            }
            EvKind::TimerFire { node, timer, epoch } => {
                if self.cancelled.remove(&timer.0) {
                    return true;
                }
                let idx = self.index[&node];
                if self.nodes[idx].alive() && self.nodes[idx].epoch == epoch {
                    self.dispatch(idx, false, &mut |proc, ctx| proc.on_timer(ctx, timer));
                }
            }
            EvKind::TxIdle { node, net } => {
                let idx = self.index[&node];
                if self.nodes[idx].alive() {
                    let idle = self.nodes[idx]
                        .nic_mut(net)
                        .map(|nic| nic.tx_free <= ev.at)
                        .unwrap_or(false);
                    if idle {
                        self.dispatch(idx, true, &mut |proc, ctx| proc.on_tx_idle(ctx, net));
                    }
                }
            }
            EvKind::Crash { node } => {
                let idx = self.index[&node];
                if self.nodes[idx].alive() {
                    self.nodes[idx].crashed_at = Some(ev.at);
                    self.trace_push(format!("{node} CRASHED"));
                    self.push(ev.at + self.detection_delay, EvKind::DetectCrash { node });
                }
            }
            EvKind::DetectCrash { node } => {
                // A node that restarted before its own crash finished
                // detecting announces itself through the protocol; stale
                // detections about it would wrongly splice it out again.
                if self.nodes[self.index[&node]].alive() {
                    return true;
                }
                self.trace_push(format!("failure of {node} detected"));
                for i in 0..self.nodes.len() {
                    if self.nodes[i].alive() {
                        self.dispatch(i, false, &mut |proc, ctx| proc.on_crashed(ctx, node));
                    }
                }
            }
            EvKind::Restart { node } => {
                let idx = self.index[&node];
                if self.nodes[idx].alive() {
                    return true; // never crashed (or already restarted)
                }
                self.nodes[idx].crashed_at = None;
                self.nodes[idx].epoch += 1;
                let now = ev.at;
                for (_, nic) in &mut self.nodes[idx].nics {
                    nic.tx_free = now;
                    nic.rx_free = now;
                    nic.last_delivery = now;
                }
                self.trace_push(format!("{node} RESTARTED"));
                // Refresh the rebooted node's failure detector: it comes
                // back assuming a healthy ring and must re-learn which
                // peers are still down.
                let still_down: Vec<NodeId> = self
                    .nodes
                    .iter()
                    .filter(|slot| !slot.alive())
                    .map(|slot| slot.id)
                    .collect();
                for crashed in still_down {
                    self.push(
                        now + self.detection_delay,
                        EvKind::DetectCrashFor {
                            observer: node,
                            crashed,
                        },
                    );
                }
                self.dispatch(idx, false, &mut |proc, ctx| proc.on_restart(ctx));
            }
            EvKind::DetectCrashFor { observer, crashed } => {
                self.refused_pending.remove(&(observer, crashed));
                let crashed_idx = self.index[&crashed];
                let idx = self.index[&observer];
                if !self.nodes[crashed_idx].alive() && self.nodes[idx].alive() {
                    self.dispatch(idx, false, &mut |proc, ctx| proc.on_crashed(ctx, crashed));
                }
            }
            EvKind::Poke { node } => {
                let idx = self.index[&node];
                if self.nodes[idx].alive() {
                    self.dispatch(idx, false, &mut |proc, ctx| proc.on_poke(ctx));
                }
            }
        }
        true
    }

    #[allow(clippy::too_many_arguments)]
    fn on_arrival(
        &mut self,
        net: NetworkId,
        from: NodeId,
        to: NodeId,
        msg: M,
        wire_bytes: usize,
        src_tx_end: Nanos,
        dst_epoch: u32,
    ) {
        // A sender that crashed before finishing serialization never put
        // the full frame on the wire.
        let src_idx = self.index[&from];
        if let Some(crashed) = self.nodes[src_idx].crashed_at {
            if crashed < src_tx_end {
                self.dropped_to_crashed += 1;
                return;
            }
        }
        let idx = self.index[&to];
        if !self.nodes[idx].alive() || self.nodes[idx].epoch != dst_epoch {
            self.dropped_to_crashed += 1;
            return;
        }
        let config = self.networks[net.0].clone();
        let rx_time = config.bandwidth.transmission_time(wire_bytes);
        let now = self.now;
        let Some(nic) = self.nodes[idx].nic_mut(net) else {
            panic!("{to} not attached to {net:?}");
        };
        let rx_start = nic.rx_free.max(now);
        let rx_end = rx_start + rx_time;
        nic.rx_free = rx_end;
        nic.stats.rx_wire_bytes += wire_bytes as u64;
        nic.stats.rx_busy += rx_time;
        let jitter = if config.proc_jitter.as_nanos() == 0 {
            Nanos::ZERO
        } else {
            Nanos(self.rng.gen_range(0..config.proc_jitter.as_nanos()))
        };
        // Jitter must not reorder deliveries from one port: clamp to the
        // port's monotone delivery clock (links are reliable FIFO, §2).
        let deliver_at = (rx_end + config.proc_delay + jitter).max(nic.last_delivery);
        nic.last_delivery = deliver_at;
        self.push(
            deliver_at,
            EvKind::Deliver {
                net,
                from,
                to,
                msg,
                dst_epoch,
            },
        );
    }

    /// Runs `f` against node `idx`'s process with a fresh [`Ctx`], then
    /// applies the buffered commands. Unless the callback itself was
    /// `on_tx_idle`, NICs left idle afterwards get one `on_tx_idle` pull.
    fn dispatch(&mut self, idx: usize, is_tx_idle_cb: bool, f: &mut ProcessHook<'_, M>) {
        let mut proc = self.nodes[idx].proc.take().expect("re-entrant dispatch");
        let node = self.nodes[idx].id;
        let idle: Vec<(NetworkId, bool)> = self.nodes[idx]
            .nics
            .iter()
            .map(|(n, nic)| (*n, nic.tx_free <= self.now))
            .collect();
        let mut ctx = Ctx {
            now: self.now,
            node,
            rng: &mut self.rng,
            commands: Vec::new(),
            timer_seq: &mut self.timer_seq,
            idle,
        };
        f(proc.as_mut(), &mut ctx);
        let commands = ctx.commands;
        self.nodes[idx].proc = Some(proc);
        for cmd in commands {
            self.apply(idx, cmd);
        }
        if !is_tx_idle_cb {
            // Offer the node a chance to refill idle TX paths right away
            // (one level deep: an on_tx_idle that sends nothing ends it).
            let nets: Vec<NetworkId> = self.nodes[idx]
                .nics
                .iter()
                .filter(|(_, nic)| nic.tx_free <= self.now)
                .map(|(n, _)| *n)
                .collect();
            for net in nets {
                let still_idle = self.nodes[idx]
                    .nic_mut(net)
                    .map(|nic| nic.tx_free <= self.now)
                    .unwrap_or(false);
                if still_idle && self.nodes[idx].alive() {
                    self.dispatch(idx, true, &mut |proc, ctx| proc.on_tx_idle(ctx, net));
                }
            }
        }
    }

    fn apply(&mut self, src_idx: usize, cmd: Command<M>) {
        match cmd {
            Command::Send { net, to, msg } => {
                let from = self.nodes[src_idx].id;
                assert!(self.index.contains_key(&to), "send to unknown node {to}");
                let dst_idx = self.index[&to];
                assert!(
                    self.nodes[dst_idx].nics.iter().any(|(n, _)| *n == net),
                    "{to} not attached to {net:?}"
                );
                let config = self.networks[net.0].clone();
                let wire_bytes = config.wire_bytes(msg.wire_size());
                let tx_time = config.bandwidth.transmission_time(wire_bytes);
                let now = self.now;
                // Sending to a crashed node is the simulator's analogue
                // of a refused/reset TCP connection: the sender's
                // failure detector learns about the peer after the
                // detection delay. This is what lets a node that was
                // wrongly told a peer rejoined (a stale announcement
                // racing a re-crash) re-splice instead of black-holing
                // frames forever.
                if !self.nodes[dst_idx].alive() && self.refused_pending.insert((from, to)) {
                    self.push(
                        now + self.detection_delay,
                        EvKind::DetectCrashFor {
                            observer: from,
                            crashed: to,
                        },
                    );
                }
                let Some(nic) = self.nodes[src_idx].nic_mut(net) else {
                    panic!("{from} not attached to {net:?}");
                };
                let tx_start = nic.tx_free.max(now);
                let tx_end = tx_start + tx_time;
                nic.tx_free = tx_end;
                nic.stats.tx_wire_bytes += wire_bytes as u64;
                nic.stats.tx_busy += tx_time;
                nic.stats.msgs_sent += 1;
                if self.trace.is_some() {
                    self.trace_push(format!("{from} -> {to}: send {msg:?}"));
                }
                self.push(
                    tx_end + config.propagation,
                    EvKind::Arrival {
                        net,
                        from,
                        to,
                        msg,
                        wire_bytes,
                        src_tx_end: tx_end,
                        dst_epoch: self.nodes[dst_idx].epoch,
                    },
                );
                self.push(tx_end, EvKind::TxIdle { node: from, net });
            }
            Command::SetTimer { id, at } => {
                let node = self.nodes[src_idx].id;
                let epoch = self.nodes[src_idx].epoch;
                self.push(
                    at,
                    EvKind::TimerFire {
                        node,
                        timer: id,
                        epoch,
                    },
                );
            }
            Command::CancelTimer { id } => {
                self.cancelled.insert(id.0);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hts_types::ClientId;
    use std::cell::RefCell;
    use std::rc::Rc;

    #[derive(Debug, Clone, PartialEq)]
    struct Blob(usize);
    impl Wire for Blob {
        fn wire_size(&self) -> usize {
            self.0
        }
    }

    /// Shared, inspectable record of everything a probe node observed.
    #[derive(Default)]
    struct ProbeState {
        delivered: Vec<(NodeId, usize, Nanos)>,
        crashes_seen: Vec<NodeId>,
        timer_fires: Vec<Nanos>,
        tx_idles: u64,
        restarts: u64,
    }

    type Shared = Rc<RefCell<ProbeState>>;

    #[derive(Default)]
    struct Probe {
        state: Shared,
        send_on_start: Vec<(NetworkId, NodeId, Blob)>,
    }

    impl Probe {
        fn new() -> (Self, Shared) {
            let state: Shared = Shared::default();
            (
                Probe {
                    state: Rc::clone(&state),
                    send_on_start: Vec::new(),
                },
                state,
            )
        }

        fn sending(sends: Vec<(NetworkId, NodeId, Blob)>) -> (Self, Shared) {
            let (mut probe, state) = Probe::new();
            probe.send_on_start = sends;
            (probe, state)
        }
    }

    impl Process<Blob> for Probe {
        fn on_start(&mut self, ctx: &mut Ctx<'_, Blob>) {
            for (net, to, msg) in self.send_on_start.drain(..) {
                ctx.send(net, to, msg);
            }
        }
        fn on_message(&mut self, ctx: &mut Ctx<'_, Blob>, from: NodeId, msg: Blob) {
            self.state
                .borrow_mut()
                .delivered
                .push((from, msg.0, ctx.now()));
        }
        fn on_timer(&mut self, ctx: &mut Ctx<'_, Blob>, _timer: TimerId) {
            self.state.borrow_mut().timer_fires.push(ctx.now());
        }
        fn on_crashed(&mut self, _ctx: &mut Ctx<'_, Blob>, node: NodeId) {
            self.state.borrow_mut().crashes_seen.push(node);
        }
        fn on_tx_idle(&mut self, _ctx: &mut Ctx<'_, Blob>, _net: NetworkId) {
            self.state.borrow_mut().tx_idles += 1;
        }
        fn on_restart(&mut self, _ctx: &mut Ctx<'_, Blob>) {
            self.state.borrow_mut().restarts += 1;
        }
    }

    fn quiet_fe() -> NetworkConfig {
        let mut cfg = NetworkConfig::fast_ethernet();
        cfg.proc_jitter = Nanos::ZERO; // exact assertions
        cfg
    }

    fn two_node_sim(payload: usize) -> (PacketSim<Blob>, NodeId, Shared, NodeId, Shared) {
        let mut sim = PacketSim::new(1);
        let net = sim.add_network(quiet_fe());
        let a = NodeId::Client(ClientId(0));
        let b = NodeId::Client(ClientId(1));
        let (pa, sa) = Probe::sending(vec![(net, b, Blob(payload))]);
        let (pb, sb) = Probe::new();
        sim.add_node(a, Box::new(pa));
        sim.add_node(b, Box::new(pb));
        sim.attach(a, net);
        sim.attach(b, net);
        (sim, a, sa, b, sb)
    }

    #[test]
    fn delivery_time_accounts_every_stage() {
        let (mut sim, _a, _sa, _b, sb) = two_node_sim(1000);
        sim.run_to_quiescence();
        let st = sb.borrow();
        assert_eq!(st.delivered.len(), 1);
        // 1000B -> 1 frame -> 1078 wire bytes; tx = 86.24µs; prop = 30µs;
        // rx = 86.24µs; proc = 40µs  => 242.48µs.
        assert_eq!(st.delivered[0].2, Nanos(242_480));
    }

    #[test]
    fn tx_serialization_queues_messages() {
        let mut sim = PacketSim::new(1);
        let net = sim.add_network(quiet_fe());
        let a = NodeId::Client(ClientId(0));
        let b = NodeId::Client(ClientId(1));
        let (pa, _sa) = Probe::sending(vec![(net, b, Blob(1000)), (net, b, Blob(1000))]);
        let (pb, sb) = Probe::new();
        sim.add_node(a, Box::new(pa));
        sim.add_node(b, Box::new(pb));
        sim.attach(a, net);
        sim.attach(b, net);
        sim.run_to_quiescence();
        let st = sb.borrow();
        assert_eq!(st.delivered.len(), 2);
        // Second message serializes after the first: deliveries one
        // tx-time (86.24µs) apart (TX and RX pipelines).
        assert_eq!(st.delivered[1].2 - st.delivered[0].2, Nanos(86_240));
    }

    #[test]
    fn rx_port_contention_serializes_concurrent_senders() {
        let mut sim = PacketSim::new(1);
        let net = sim.add_network(quiet_fe());
        let dst = NodeId::Client(ClientId(9));
        let (pd, sd) = Probe::new();
        sim.add_node(dst, Box::new(pd));
        sim.attach(dst, net);
        for i in 0..2u32 {
            let id = NodeId::Client(ClientId(i));
            let (p, _s) = Probe::sending(vec![(net, dst, Blob(1000))]);
            sim.add_node(id, Box::new(p));
            sim.attach(id, net);
        }
        sim.run_to_quiescence();
        let st = sd.borrow();
        assert_eq!(st.delivered.len(), 2);
        // Both frames arrive simultaneously; the switch output port
        // serializes them: deliveries one rx-time apart.
        assert_eq!(st.delivered[1].2 - st.delivered[0].2, Nanos(86_240));
    }

    #[test]
    fn separate_networks_do_not_contend() {
        let mut sim = PacketSim::new(1);
        let net0 = sim.add_network(quiet_fe());
        let net1 = sim.add_network(quiet_fe());
        let dst = NodeId::Client(ClientId(9));
        let (pd, sd) = Probe::new();
        sim.add_node(dst, Box::new(pd));
        sim.attach(dst, net0);
        sim.attach(dst, net1);
        for (i, net) in [(0u32, net0), (1u32, net1)] {
            let id = NodeId::Client(ClientId(i));
            let (p, _s) = Probe::sending(vec![(net, dst, Blob(1000))]);
            sim.add_node(id, Box::new(p));
            sim.attach(id, net);
        }
        sim.run_to_quiescence();
        let st = sd.borrow();
        assert_eq!(st.delivered.len(), 2);
        // Dual-homed: both frames deliver simultaneously.
        assert_eq!(st.delivered[0].2, st.delivered[1].2);
    }

    #[test]
    fn timers_fire_and_cancel() {
        struct TimerNode {
            state: Shared,
        }
        impl Process<Blob> for TimerNode {
            fn on_start(&mut self, ctx: &mut Ctx<'_, Blob>) {
                let _t1 = ctx.set_timer(Nanos::from_micros(10));
                let t2 = ctx.set_timer(Nanos::from_micros(20));
                ctx.cancel_timer(t2);
                let _t3 = ctx.set_timer(Nanos::from_micros(30));
            }
            fn on_message(&mut self, _: &mut Ctx<'_, Blob>, _: NodeId, _: Blob) {}
            fn on_timer(&mut self, ctx: &mut Ctx<'_, Blob>, _timer: TimerId) {
                self.state.borrow_mut().timer_fires.push(ctx.now());
            }
        }
        let mut sim = PacketSim::new(1);
        let id = NodeId::Client(ClientId(0));
        let state: Shared = Shared::default();
        sim.add_node(
            id,
            Box::new(TimerNode {
                state: Rc::clone(&state),
            }),
        );
        sim.run_to_quiescence();
        assert_eq!(
            state.borrow().timer_fires,
            vec![Nanos(10_000), Nanos(30_000)]
        );
    }

    #[test]
    fn crash_drops_messages_and_notifies_survivors() {
        let (mut sim, _a, sa, b, sb) = two_node_sim(100_000); // long transmission
        sim.crash_at(b, Nanos::from_micros(1)); // dies before delivery
        sim.run_to_quiescence();
        assert!(sim.is_crashed(b));
        assert_eq!(sb.borrow().delivered.len(), 0);
        assert_eq!(sim.dropped_to_crashed(), 1);
        assert_eq!(sa.borrow().crashes_seen, vec![b]);
    }

    #[test]
    fn sender_crash_mid_transmission_loses_message() {
        let (mut sim, a, _sa, _b, sb) = two_node_sim(100_000);
        // 100 KB ≈ 8.3 ms on the wire: crash the *sender* at 1 ms.
        sim.crash_at(a, Nanos::from_millis(1));
        sim.run_to_quiescence();
        assert_eq!(sb.borrow().delivered.len(), 0);
        assert!(sim.dropped_to_crashed() >= 1);
    }

    #[test]
    fn restart_drops_dead_incarnation_messages_and_reboots() {
        let (mut sim, _a, sa, b, sb) = two_node_sim(100_000); // ≈8.3 ms on the wire
        sim.crash_at(b, Nanos::from_micros(1));
        sim.restart_at(b, Nanos::from_micros(2));
        sim.run_to_quiescence();
        let st = sb.borrow();
        // The in-flight message targeted the dead incarnation.
        assert_eq!(st.delivered.len(), 0);
        assert_eq!(st.restarts, 1);
        assert!(sim.dropped_to_crashed() >= 1);
        assert!(!sim.is_crashed(b));
        // The restart outran detection, so no stale crash report fired.
        assert_eq!(sa.borrow().crashes_seen, Vec::<NodeId>::new());
    }

    #[test]
    fn messages_after_restart_deliver_normally() {
        let (mut sim, a, _sa, b, sb) = two_node_sim(1000);
        sim.crash_at(b, Nanos::ZERO);
        sim.restart_at(b, Nanos::from_micros(1));
        sim.run_to_quiescence();
        assert_eq!(sb.borrow().delivered.len(), 0); // pre-crash send lost
                                                    // A fresh send to the new incarnation goes through.
        let _ = a;
        sim.poke(b); // no-op poke just to confirm liveness
        sim.run_to_quiescence();
        assert!(!sim.is_crashed(b));
    }

    #[test]
    fn pre_crash_timers_do_not_fire_into_the_new_incarnation() {
        struct TimerNode {
            state: Shared,
        }
        impl Process<Blob> for TimerNode {
            fn on_start(&mut self, ctx: &mut Ctx<'_, Blob>) {
                let _ = ctx.set_timer(Nanos::from_millis(2));
            }
            fn on_message(&mut self, _: &mut Ctx<'_, Blob>, _: NodeId, _: Blob) {}
            fn on_timer(&mut self, ctx: &mut Ctx<'_, Blob>, _timer: TimerId) {
                self.state.borrow_mut().timer_fires.push(ctx.now());
            }
            fn on_restart(&mut self, _ctx: &mut Ctx<'_, Blob>) {}
        }
        let mut sim = PacketSim::new(1);
        let id = NodeId::Client(ClientId(0));
        let state: Shared = Shared::default();
        sim.add_node(
            id,
            Box::new(TimerNode {
                state: Rc::clone(&state),
            }),
        );
        sim.crash_at(id, Nanos::from_millis(1));
        sim.restart_at(id, Nanos::from_micros(1500));
        sim.run_to_quiescence();
        // The 2 ms timer belonged to epoch 0; the node restarted at 1.5 ms
        // into epoch 1, so the timer must be swallowed.
        assert_eq!(state.borrow().timer_fires, Vec::<Nanos>::new());
    }

    #[test]
    fn restarted_node_relearns_still_crashed_peers() {
        let mut sim = PacketSim::new(1);
        let net = sim.add_network(quiet_fe());
        let a = NodeId::Client(ClientId(0));
        let b = NodeId::Client(ClientId(1));
        let c = NodeId::Client(ClientId(2));
        let (pa, sa) = Probe::new();
        sim.add_node(a, Box::new(pa));
        sim.add_node(b, Box::new(Probe::new().0));
        sim.add_node(c, Box::new(Probe::new().0));
        for n in [a, b, c] {
            sim.attach(n, net);
        }
        sim.crash_at(c, Nanos::from_micros(1)); // c stays down
        sim.crash_at(a, Nanos::from_millis(2));
        sim.restart_at(a, Nanos::from_millis(3));
        sim.run_to_quiescence();
        // a saw c's crash twice: once live, once as the post-restart
        // failure-detector refresh.
        assert_eq!(sa.borrow().crashes_seen, vec![c, c]);
    }

    #[test]
    fn tx_idle_fires_after_sends_drain() {
        let (mut sim, _a, sa, _b, _sb) = two_node_sim(1000);
        sim.run_to_quiescence();
        assert!(sa.borrow().tx_idles >= 1);
    }

    #[test]
    fn stats_account_wire_bytes() {
        let (mut sim, a, _sa, b, _sb) = two_node_sim(1000);
        sim.run_to_quiescence();
        let tx = sim.nic_stats(a, NetworkId(0));
        let rx = sim.nic_stats(b, NetworkId(0));
        assert_eq!(tx.tx_wire_bytes, 1078);
        assert_eq!(rx.rx_wire_bytes, 1078);
        assert_eq!(tx.msgs_sent, 1);
        assert_eq!(rx.msgs_delivered, 1);
        assert!(tx.tx_busy > Nanos::ZERO);
        sim.reset_stats();
        assert_eq!(sim.nic_stats(a, NetworkId(0)).tx_wire_bytes, 0);
    }

    #[test]
    fn run_until_advances_clock_exactly() {
        let (mut sim, _a, _sa, _b, _sb) = two_node_sim(1000);
        sim.run_until(Nanos::from_millis(5));
        assert_eq!(sim.now(), Nanos::from_millis(5));
    }

    #[test]
    fn determinism_same_seed_same_outcome() {
        let run = || {
            let (mut sim, _a, _sa, _b, sb) = two_node_sim(1000);
            sim.enable_trace();
            sim.run_to_quiescence();
            let delivered = sb.borrow().delivered.clone();
            (delivered, sim.take_trace().len(), sim.events_processed())
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn trace_records_sends_and_deliveries() {
        let (mut sim, _a, _sa, _b, _sb) = two_node_sim(100);
        sim.enable_trace();
        sim.run_to_quiescence();
        let trace = sim.take_trace();
        assert!(trace.iter().any(|e| e.what.contains("send")));
        assert!(trace.iter().any(|e| e.what.contains("deliver")));
    }

    #[test]
    fn wire_bytes_charges_per_frame_overhead() {
        let cfg = NetworkConfig::fast_ethernet();
        assert_eq!(cfg.wire_bytes(0), 78); // empty message: one frame
        assert_eq!(cfg.wire_bytes(1460), 1460 + 78);
        assert_eq!(cfg.wire_bytes(1461), 1461 + 2 * 78);
        assert_eq!(cfg.wire_bytes(65536), 65536 + 45 * 78);
    }

    #[test]
    #[should_panic(expected = "added twice")]
    fn duplicate_node_panics() {
        let mut sim: PacketSim<Blob> = PacketSim::new(1);
        let id = NodeId::Client(ClientId(0));
        sim.add_node(id, Box::new(Probe::new().0));
        sim.add_node(id, Box::new(Probe::new().0));
    }

    #[test]
    #[should_panic(expected = "not attached")]
    fn send_to_detached_node_panics() {
        let mut sim = PacketSim::new(1);
        let net = sim.add_network(NetworkConfig::fast_ethernet());
        let a = NodeId::Client(ClientId(0));
        let b = NodeId::Client(ClientId(1));
        let (pa, _sa) = Probe::sending(vec![(net, b, Blob(10))]);
        sim.add_node(a, Box::new(pa));
        sim.add_node(b, Box::new(Probe::new().0));
        sim.attach(a, net);
        // b never attached.
        sim.run_to_quiescence();
    }
}
