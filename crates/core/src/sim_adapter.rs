//! Adapters running the protocol cores on the packet-level simulator.
//!
//! [`SimServer`] wires a [`MultiObjectServer`] to two (possibly identical)
//! simulated networks — the ring network and the client network, matching
//! the paper's dual-homed cluster. Ring transmissions are *pulled* through
//! [`MultiObjectServer::next_frame`] whenever the ring NIC reports idle,
//! which is exactly where the paper's fairness rule takes effect.
//!
//! [`SimClient`] is a workload client over a [`SessionCore`] pipeline: at
//! the default window of 1 it is closed-loop (like the paper's client
//! processes); larger [`WorkloadConfig::window`]s keep that many
//! operations in flight concurrently over the one simulated channel. It
//! records every operation into a shared [`History`] for linearizability
//! checking, accumulates latency/throughput counters, and re-issues each
//! timed-out request to the next server independently.

use std::cell::RefCell;
use std::collections::{BTreeMap, HashMap, VecDeque};
use std::rc::Rc;

use hts_lincheck::{History, OpId};
use hts_sim::packet::{Ctx, NetworkId, Process, TimerId};
use hts_sim::{DiskConfig, DiskModel, Nanos};
use hts_types::{ClientId, Message, NodeId, ObjectId, RequestId, ServerId, Tag, Value};

use crate::{Action, Config, Durability, LaneMap, MultiObjectServer, SessionCore};

/// On-log framing overhead per record (frame header + fixed fields),
/// mirroring `hts-wal`'s record layout for byte-accurate disk modeling.
const RECORD_OVERHEAD: usize = 26;

/// Modeled compaction threshold, mirroring `hts-wal`'s default
/// `segment_bytes`: past this, the log snapshots and truncates so the
/// modeled replay time tracks state size, not total history.
const MODELED_SEGMENT_BYTES: u64 = 8 * 1024 * 1024;

/// One parallel ring lane of a [`SimServer`]: an independent protocol
/// instance with its own ring NIC, modeled log device and recovery
/// state. A single-lane server is exactly the pre-lane adapter.
struct SimLane {
    server: MultiObjectServer,
    ring_net: NetworkId,
    /// Modeled log device (durability experiments only) — per lane, so
    /// group commit is modeled per lane exactly like `hts-net`'s
    /// per-lane WALs.
    disk: Option<DiskModel>,
    /// Modeled persisted state: what `hts-wal` would recover after a
    /// crash. Survives crash-restart because the process object does.
    persisted: BTreeMap<ObjectId, (Tag, Value)>,
    /// Appends since the last modeled fsync (`Durability::SyncEveryN`).
    appends_since_sync: u32,
    /// Instant the last queued append (incl. fsync) completes.
    durable_horizon: Nanos,
    /// Replay-in-progress timer after a restart; pumping waits for it.
    replaying: Option<TimerId>,
}

/// A ring storage server as a simulated process, hosting one protocol
/// instance per configured ring lane (see [`Config::lanes`]).
pub struct SimServer {
    lanes: Vec<SimLane>,
    map: LaneMap,
    me: ServerId,
    n: u16,
    config: Config,
    client_net: NetworkId,
    /// Outgoing client replies, paced one frame at a time so that on a
    /// shared network they interleave fairly with ring traffic instead of
    /// monopolizing the NIC (the kernel's per-socket queues do this on
    /// real hardware).
    replies: VecDeque<(NodeId, Message)>,
    /// Shared-network alternation flag: reply next (vs ring frame).
    prefer_reply: bool,
    /// Write acks gated on fsync completion (`Durability::SyncAlways`).
    deferred_acks: Vec<(Nanos, (NodeId, Message))>,
    /// Crash-restarts survived.
    restarts: u64,
    /// Virtual-time arrival of each client request still awaiting its
    /// reply: the server-side latency histograms (what fig1's
    /// `srv_write_p50/p99` columns report) measure ack-send minus this.
    arrivals: HashMap<(ClientId, RequestId), Nanos>,
}

impl SimServer {
    /// Creates server `me` of an `n`-ring attached to the given networks
    /// (pass the same id twice for the shared-network experiments).
    /// Hosts a single ring lane regardless of [`Config::lanes`]; use
    /// [`with_ring_lanes`](Self::with_ring_lanes) for the laned runtime.
    pub fn new(
        me: ServerId,
        n: u16,
        config: Config,
        ring_net: NetworkId,
        client_net: NetworkId,
    ) -> Self {
        let mut config = config;
        config.lanes = 1;
        SimServer::with_ring_lanes(me, n, config, vec![ring_net], client_net)
    }

    /// Creates server `me` of an `n`-ring with one independent ring lane
    /// per entry of `ring_nets` — each lane owns its NIC, exactly as the
    /// TCP runtime gives each lane its own successor connection.
    /// `config.lanes` must equal `ring_nets.len()`, and the shared-NIC
    /// experiment (`client_net` doubling as a ring net) only supports a
    /// single lane.
    ///
    /// # Panics
    ///
    /// Panics on a lane-count mismatch, or on a multi-lane server whose
    /// client NIC doubles as a ring NIC.
    pub fn with_ring_lanes(
        me: ServerId,
        n: u16,
        config: Config,
        ring_nets: Vec<NetworkId>,
        client_net: NetworkId,
    ) -> Self {
        assert_eq!(
            usize::from(config.lanes.max(1)),
            ring_nets.len(),
            "config.lanes must match the ring NIC count"
        );
        assert!(
            ring_nets.len() == 1 || ring_nets.iter().all(|net| *net != client_net),
            "the shared-network experiment supports a single lane only"
        );
        let lanes = ring_nets
            .into_iter()
            .map(|ring_net| SimLane {
                server: MultiObjectServer::new(me, n, config.clone()),
                ring_net,
                disk: None,
                persisted: BTreeMap::new(),
                appends_since_sync: 0,
                durable_horizon: Nanos::ZERO,
                replaying: None,
            })
            .collect::<Vec<_>>();
        SimServer {
            map: LaneMap::new(lanes.len() as u16),
            lanes,
            me,
            n,
            config,
            client_net,
            replies: VecDeque::new(),
            prefer_reply: true,
            deferred_acks: Vec::new(),
            restarts: 0,
            arrivals: HashMap::new(),
        }
    }

    /// Attaches a modeled log device **per lane** (meaningful when the
    /// config's [`Durability`] is persistent: commits charge disk time,
    /// and with [`Durability::SyncAlways`] write acks wait for the
    /// fsync). Each lane logs — and group-commits — independently.
    pub fn with_disk(mut self, disk: DiskConfig) -> Self {
        for lane in &mut self.lanes {
            lane.disk = Some(DiskModel::new(disk));
        }
        self
    }

    /// Access to lane 0's multi-object server (tests/inspection).
    pub fn server(&self) -> &MultiObjectServer {
        &self.lanes[0].server
    }

    /// Access to one lane's multi-object server (tests/inspection).
    pub fn lane_server(&self, lane: u16) -> &MultiObjectServer {
        &self.lanes[usize::from(lane)].server
    }

    /// The object → lane placement this server routes by.
    pub fn lane_map(&self) -> &LaneMap {
        &self.map
    }

    /// Crash-restarts survived so far.
    pub fn restarts(&self) -> u64 {
        self.restarts
    }

    /// Drains one lane's committed writes into its modeled log, charging
    /// that lane's disk per the fsync policy. Mirrors `hts-wal`'s **group
    /// commit**: the whole drained batch is one append, and one fsync
    /// covers every commit in it (under `SyncAlways` each commit's ack is
    /// still gated on that fsync — it just shares the flush).
    fn persist_commits(&mut self, lane_idx: usize, now: Nanos) {
        if !self.config.durability.is_persistent() {
            return;
        }
        let lane = &mut self.lanes[lane_idx];
        let commits = lane.server.drain_commits();
        if commits.is_empty() {
            return;
        }
        if let Some(disk) = lane.disk.as_mut() {
            let batch_bytes: usize = commits
                .iter()
                .map(|(_, _, value)| RECORD_OVERHEAD + value.len())
                .sum();
            let sync = match self.config.durability {
                Durability::SyncAlways => true,
                Durability::SyncEveryN(n) => {
                    lane.appends_since_sync += commits.len() as u32;
                    if lane.appends_since_sync >= n.max(1) {
                        lane.appends_since_sync = 0;
                        true
                    } else {
                        false
                    }
                }
                Durability::Buffered | Durability::Volatile => false,
            };
            let done = disk.append(now, batch_bytes, sync);
            if sync {
                hts_metrics::histogram!("hts_sim_fsync_nanos")
                    .record(done.saturating_sub(now).as_nanos());
            }
            lane.durable_horizon = lane.durable_horizon.max(done);
        }
        hts_metrics::histogram!("hts_sim_group_commit_records").record(commits.len() as u64);
        for (object, tag, value) in commits {
            let entry = lane
                .persisted
                .entry(object)
                .or_insert_with(|| (tag, value.clone()));
            if entry.0 <= tag {
                *entry = (tag, value);
            }
        }
        // Modeled compaction (the real path: Wal::wants_compaction →
        // compact): write a snapshot of the live state, then the
        // replayable tail shrinks to it. Without this, replay time —
        // and the benchmark's recovery_seconds — would grow with total
        // history instead of state size.
        if let Some(disk) = lane.disk.as_mut() {
            if disk.appended_bytes() >= MODELED_SEGMENT_BYTES {
                let state_bytes: u64 = lane
                    .persisted
                    .values()
                    .map(|(_, v)| (RECORD_OVERHEAD + v.len()) as u64)
                    .sum();
                let done = disk.append(now, state_bytes as usize, true);
                lane.durable_horizon = lane.durable_horizon.max(done);
                disk.truncate(state_bytes);
            }
        }
    }

    fn flush(&mut self, ctx: &mut Ctx<'_, Message>, lane_idx: usize, actions: Vec<Action>) {
        // Under ack-after-fsync durability, write acks wait until the
        // lane's log device reports their commit record stable.
        let now = ctx.now();
        let lane = &self.lanes[lane_idx];
        let gate = (self.config.durability == Durability::SyncAlways
            && lane.disk.is_some()
            && lane.durable_horizon > now)
            .then_some(lane.durable_horizon);
        for action in actions {
            match action {
                // Write acks are a couple dozen bytes: real NICs interleave
                // them between large segments of other sockets, so they
                // jump ahead of queued 64 KiB read replies here.
                Action::WriteAck {
                    object,
                    client,
                    request,
                } => {
                    // Server-side latency in *virtual* time: arrival to
                    // the instant the ack leaves (the fsync gate counts —
                    // durability is part of what the client waits for).
                    if let Some(arrived) = self.arrivals.remove(&(client, request)) {
                        hts_metrics::histogram!("hts_sim_server_write_nanos")
                            .record(gate.unwrap_or(now).saturating_sub(arrived).as_nanos());
                    }
                    let reply = (
                        NodeId::Client(client),
                        Message::WriteAck { object, request },
                    );
                    match gate {
                        Some(at) => {
                            self.deferred_acks.push((at, reply));
                            ctx.set_timer(at.saturating_sub(now));
                        }
                        None => self.replies.push_front(reply),
                    }
                }
                Action::ReadReply {
                    object,
                    client,
                    request,
                    value,
                    tag: _,
                } => {
                    if let Some(arrived) = self.arrivals.remove(&(client, request)) {
                        hts_metrics::histogram!("hts_sim_server_read_nanos")
                            .record(now.saturating_sub(arrived).as_nanos());
                    }
                    self.replies.push_back((
                        NodeId::Client(client),
                        Message::ReadAck {
                            object,
                            request,
                            value,
                        },
                    ));
                }
            }
        }
    }

    /// Routes an event through one lane: apply, persist that lane's
    /// commits, flush its actions.
    fn integrate(
        &mut self,
        ctx: &mut Ctx<'_, Message>,
        lane_idx: usize,
        apply: impl FnOnce(&mut MultiObjectServer) -> Vec<Action>,
    ) {
        let actions = apply(&mut self.lanes[lane_idx].server);
        self.persist_commits(lane_idx, ctx.now());
        self.flush(ctx, lane_idx, actions);
    }

    fn send_ring_frame(&mut self, ctx: &mut Ctx<'_, Message>, lane_idx: usize) -> bool {
        let lane = &mut self.lanes[lane_idx];
        let Some(successor) = lane.server.successor() else {
            return false;
        };
        // Batch everything ready for the successor into one wire message
        // (one serialization, one per-message processing delay at the
        // receiver) — the simulated analogue of the coalescing TCP
        // writer. A single ready frame travels as a plain `Ring`.
        let batching = self.config.batching.normalized();
        let mut frames = lane
            .server
            .drain_frames(batching.max_frames, batching.max_bytes);
        if self.map.lanes() > 1 {
            // Announce-only frames carry a placeholder object; stamp the
            // lane's token object so the receiver's object-based demux
            // delivers them to the right lane (the transport-level lane
            // tag the TCP runtime gets from its per-lane connections).
            let token = self.map.token_object(lane_idx as u16);
            for frame in &mut frames {
                if frame.pre_write.is_none() && frame.write.is_none() {
                    frame.object = token;
                }
            }
        }
        if frames.is_empty() {
            return false;
        }
        // Only wire messages that actually ship are measured — idle polls
        // would drown the batch-size distribution in zeros.
        hts_metrics::histogram!("hts_sim_ring_batch_frames").record(frames.len() as u64);
        // A single ready frame travels as a plain `Ring`; more coalesce
        // into one `RingBatch` wire message.
        let msg = match frames.pop() {
            Some(frame) if frames.is_empty() => Message::Ring(frame),
            Some(frame) => {
                frames.push(frame);
                Message::RingBatch(frames)
            }
            None => return false,
        };
        ctx.send(lane.ring_net, NodeId::Server(successor), msg);
        true
    }

    fn send_reply(&mut self, ctx: &mut Ctx<'_, Message>) -> bool {
        match self.replies.pop_front() {
            Some((to, msg)) => {
                ctx.send(self.client_net, to, msg);
                true
            }
            None => false,
        }
    }

    fn pump(&mut self, ctx: &mut Ctx<'_, Message>) {
        if self.lanes.len() == 1 && self.lanes[0].ring_net == self.client_net {
            if self.lanes[0].replaying.is_some() {
                return; // still replaying the log: no traffic yet
            }
            // One NIC for everything: alternate replies and ring frames so
            // neither side starves (Figure 3's shared-network setup).
            if !ctx.tx_is_idle(self.client_net) {
                return;
            }
            if self.prefer_reply {
                if self.send_reply(ctx) || self.send_ring_frame(ctx, 0) {
                    self.prefer_reply = false;
                }
            } else if self.send_ring_frame(ctx, 0) || self.send_reply(ctx) {
                self.prefer_reply = true;
            }
        } else {
            // Replies hold while every lane is still replaying its log
            // (the whole process just rebooted); once any lane is live
            // its traffic — and the shared reply path — flows again.
            if self.lanes.iter().any(|lane| lane.replaying.is_none())
                && ctx.tx_is_idle(self.client_net)
            {
                self.send_reply(ctx);
            }
            for lane_idx in 0..self.lanes.len() {
                if self.lanes[lane_idx].replaying.is_some() {
                    continue; // this lane is still replaying its log
                }
                if ctx.tx_is_idle(self.lanes[lane_idx].ring_net) {
                    self.send_ring_frame(ctx, lane_idx);
                }
            }
        }
    }
}

impl Process<Message> for SimServer {
    fn on_message(&mut self, ctx: &mut Ctx<'_, Message>, from: NodeId, msg: Message) {
        match msg {
            Message::WriteReq {
                object,
                request,
                value,
            } => {
                if let Some(client) = from.as_client() {
                    self.arrivals.insert((client, request), ctx.now());
                    let lane_idx = usize::from(self.map.lane_of(object));
                    self.integrate(ctx, lane_idx, |server| {
                        server.on_client_write(object, client, request, value)
                    });
                }
            }
            Message::ReadReq { object, request } => {
                if let Some(client) = from.as_client() {
                    self.arrivals.insert((client, request), ctx.now());
                    let lane_idx = usize::from(self.map.lane_of(object));
                    self.integrate(ctx, lane_idx, |server| {
                        server.on_client_read(object, client, request)
                    });
                }
            }
            Message::Ring(frame) => {
                let lane_idx = usize::from(self.map.lane_of_frame(&frame));
                self.integrate(ctx, lane_idx, |server| server.on_frame(frame));
            }
            Message::RingBatch(frames) => {
                // Frames apply strictly in batch order — the batch is the
                // FIFO link's contents, nothing more. A batch is drained
                // from one lane's scheduler, so every frame routes to the
                // same lane (routing per frame keeps that a
                // non-assumption), but persistence stays per lane per
                // BATCH: every commit the batch produced shares one
                // modeled append + fsync — the group-commit model the
                // durability benchmarks measure.
                let mut lane_actions: Vec<Option<Vec<Action>>> = vec![None; self.lanes.len()];
                for frame in frames {
                    let lane_idx = usize::from(self.map.lane_of_frame(&frame));
                    let actions = self.lanes[lane_idx].server.on_frame(frame);
                    lane_actions[lane_idx]
                        .get_or_insert_with(Vec::new)
                        .extend(actions);
                }
                for (lane_idx, actions) in lane_actions.into_iter().enumerate() {
                    if let Some(actions) = actions {
                        self.persist_commits(lane_idx, ctx.now());
                        self.flush(ctx, lane_idx, actions);
                    }
                }
            }
            Message::StatsRequest { request } => {
                // Stats bypass the protocol core entirely: answered from
                // the process-wide registry and paced through the ordinary
                // reply queue like any other client-bound frame.
                self.replies.push_back((
                    from,
                    Message::StatsReply {
                        request,
                        text: Value::from(hts_metrics::render().into_bytes()),
                    },
                ));
            }
            // Acks are client-bound; a server receiving one is a routing
            // bug in the harness.
            Message::WriteAck { .. } | Message::ReadAck { .. } | Message::StatsReply { .. } => {}
        }
        self.pump(ctx);
    }

    fn on_tx_idle(&mut self, ctx: &mut Ctx<'_, Message>, net: NetworkId) {
        if net == self.client_net || self.lanes.iter().any(|lane| lane.ring_net == net) {
            self.pump(ctx);
        }
    }

    fn on_crashed(&mut self, ctx: &mut Ctx<'_, Message>, node: NodeId) {
        if let Some(s) = node.as_server() {
            // A crash is process-wide on the peer: every lane's link to
            // it died, so every lane splices its own ring view.
            for lane_idx in 0..self.lanes.len() {
                self.integrate(ctx, lane_idx, |server| server.on_server_crashed(s));
            }
            self.pump(ctx);
        }
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_, Message>, timer: TimerId) {
        let mut replay_done = false;
        for lane in &mut self.lanes {
            if lane.replaying == Some(timer) {
                // This lane's log replay finished: its rejoin
                // announcement may now leave.
                lane.replaying = None;
                replay_done = true;
            }
        }
        if replay_done {
            self.pump(ctx);
            return;
        }
        let now = ctx.now();
        let due: Vec<(NodeId, Message)> = {
            let (ready, waiting): (Vec<_>, Vec<_>) =
                self.deferred_acks.drain(..).partition(|(at, _)| *at <= now);
            self.deferred_acks = waiting;
            ready.into_iter().map(|(_, reply)| reply).collect()
        };
        for reply in due {
            self.replies.push_front(reply);
        }
        self.pump(ctx);
    }

    fn on_restart(&mut self, ctx: &mut Ctx<'_, Message>) {
        // Reboot: volatile state is gone; every lane rebuilds from its
        // own modeled log and rejoins its ring through the announcement
        // protocol, independently.
        self.restarts += 1;
        self.replies.clear();
        self.deferred_acks.clear();
        let now = ctx.now();
        let (me, n, config) = (self.me, self.n, self.config.clone());
        for lane in &mut self.lanes {
            lane.durable_horizon = now;
            lane.appends_since_sync = 0;
            lane.server = MultiObjectServer::new(me, n, config.clone());
            lane.server.restore_state(
                lane.persisted
                    .iter()
                    .map(|(object, (tag, value))| (*object, *tag, value.clone())),
            );
            lane.server.begin_rejoin();
            let replay = lane
                .disk
                .as_ref()
                .map(DiskModel::replay_time)
                .unwrap_or(Nanos::ZERO);
            lane.replaying = (replay > Nanos::ZERO).then(|| ctx.set_timer(replay));
        }
        self.pump(ctx);
    }
}

/// What mix of operations a [`SimClient`] issues.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OpMix {
    /// Only reads.
    ReadOnly,
    /// Only writes.
    WriteOnly,
    /// Reads with probability `read_percent`/100, writes otherwise.
    Mixed {
        /// Percentage of reads (0–100).
        read_percent: u8,
    },
}

/// Closed-loop workload parameters for a [`SimClient`].
#[derive(Debug, Clone)]
pub struct WorkloadConfig {
    /// Operation mix.
    pub mix: OpMix,
    /// Payload size of written values, in bytes (≥ 12: the unique header).
    pub value_size: usize,
    /// Stop after this many completed operations (`None` = run forever).
    pub op_limit: Option<u64>,
    /// Delay before the first operation.
    pub start_delay: Nanos,
    /// Reply timeout before re-issuing to the next server.
    pub timeout: Nanos,
    /// Pipeline window: how many operations this client keeps in flight
    /// concurrently (default 1 — the paper's closed-loop client). Larger
    /// windows model open-loop load honestly: one client multiplexes
    /// `window` outstanding requests over its channel, each with its own
    /// retry/timeout state (see [`SessionCore`](crate::SessionCore)).
    pub window: usize,
}

impl Default for WorkloadConfig {
    fn default() -> Self {
        WorkloadConfig {
            mix: OpMix::Mixed { read_percent: 50 },
            value_size: 64 * 1024,
            op_limit: None,
            start_delay: Nanos::ZERO,
            timeout: Nanos::from_millis(250),
            window: 1,
        }
    }
}

/// Shared, inspectable counters of one client.
#[derive(Debug, Clone, Default)]
pub struct ClientStats {
    /// Completed writes.
    pub writes_done: u64,
    /// Completed reads.
    pub reads_done: u64,
    /// Payload bytes written (completed writes × value size).
    pub write_payload_bytes: u64,
    /// Payload bytes read.
    pub read_payload_bytes: u64,
    /// Sum of write latencies.
    pub write_latency_total: Nanos,
    /// Sum of read latencies.
    pub read_latency_total: Nanos,
    /// Individual write latencies (ns), for percentiles.
    pub write_latencies: Vec<u64>,
    /// Individual read latencies (ns), for percentiles.
    pub read_latencies: Vec<u64>,
    /// Re-sends after timeout.
    pub retries: u64,
}

impl ClientStats {
    /// Mean write latency, if any writes completed.
    pub fn mean_write_latency(&self) -> Option<Nanos> {
        (self.writes_done > 0)
            .then(|| Nanos(self.write_latency_total.as_nanos() / self.writes_done))
    }

    /// Mean read latency, if any reads completed.
    pub fn mean_read_latency(&self) -> Option<Nanos> {
        (self.reads_done > 0).then(|| Nanos(self.read_latency_total.as_nanos() / self.reads_done))
    }
}

/// Builds a workload value that is globally unique (first 12 bytes encode
/// the writing client and a sequence number) and padded to `size`.
///
/// Unique values are what let the fast linearizability checker map reads
/// to writes; see `hts-lincheck`.
pub fn unique_value(client: ClientId, seq: u64, size: usize) -> Value {
    let mut bytes = Vec::with_capacity(size.max(12));
    bytes.extend_from_slice(&client.0.to_be_bytes());
    bytes.extend_from_slice(&seq.to_be_bytes());
    if size > bytes.len() {
        bytes.resize(size, 0xA5);
    }
    Value::from(bytes)
}

/// Book-keeping for one in-flight operation of a [`SimClient`].
struct PendingOp {
    op_id: Option<OpId>,
    issued_at: Nanos,
    is_read: bool,
    timer: TimerId,
}

/// A simulated workload client: closed-loop at `window = 1` (the paper's
/// client processes), an open-loop pipeline of `window` concurrent
/// operations otherwise. See the [module docs](self).
pub struct SimClient {
    core: SessionCore,
    workload: WorkloadConfig,
    client_net: NetworkId,
    stats: Rc<RefCell<ClientStats>>,
    history: Option<Rc<RefCell<History>>>,
    pending: HashMap<RequestId, PendingOp>,
    kick: Option<TimerId>,
    value_seq: u64,
    issued: u64,
}

impl SimClient {
    /// Creates a client that talks to `preferred` in an `n`-server ring,
    /// issuing ops per `workload` on `client_net`. `history`, when given,
    /// records every operation for linearizability checking.
    pub fn new(
        id: ClientId,
        n: u16,
        preferred: ServerId,
        workload: WorkloadConfig,
        client_net: NetworkId,
        history: Option<Rc<RefCell<History>>>,
    ) -> (Self, Rc<RefCell<ClientStats>>) {
        SimClient::new_for_object(
            id,
            ObjectId::SINGLE,
            n,
            preferred,
            workload,
            client_net,
            history,
        )
    }

    /// [`new`](Self::new), but every operation targets register `object`
    /// instead of [`ObjectId::SINGLE`] — the multi-object workloads
    /// (e.g. the lane-scaling ablation) give each client its own object
    /// so load spreads across lanes.
    pub fn new_for_object(
        id: ClientId,
        object: ObjectId,
        n: u16,
        preferred: ServerId,
        workload: WorkloadConfig,
        client_net: NetworkId,
        history: Option<Rc<RefCell<History>>>,
    ) -> (Self, Rc<RefCell<ClientStats>>) {
        let stats = Rc::new(RefCell::new(ClientStats::default()));
        let window = workload.window.max(1);
        (
            SimClient {
                core: SessionCore::new(id, object, n, preferred, window),
                workload,
                client_net,
                stats: Rc::clone(&stats),
                history,
                pending: HashMap::new(),
                kick: None,
                value_seq: 0,
                issued: 0,
            },
            stats,
        )
    }

    /// Fills the pipeline: issues operations until the window is full or
    /// the op limit is reached (each issued op completes eventually — the
    /// retry rule re-sends under the same request id — so bounding
    /// *issues* bounds completions identically).
    fn issue_next(&mut self, ctx: &mut Ctx<'_, Message>) {
        while self.core.has_capacity() {
            if let Some(limit) = self.workload.op_limit {
                if self.issued >= limit {
                    return;
                }
            }
            let read = match self.workload.mix {
                OpMix::ReadOnly => true,
                OpMix::WriteOnly => false,
                OpMix::Mixed { read_percent } => ctx.rand_below(100) < u64::from(read_percent),
            };
            let now = ctx.now();
            let (request, server, message, op_id) = if read {
                let op_id = self
                    .history
                    .as_ref()
                    .map(|h| h.borrow_mut().invoke_read(self.core.id(), now.as_nanos()));
                let (request, server, message) = self.core.begin_read();
                (request, server, message, op_id)
            } else {
                self.value_seq += 1;
                let value = unique_value(self.core.id(), self.value_seq, self.workload.value_size);
                let op_id = self.history.as_ref().map(|h| {
                    h.borrow_mut()
                        .invoke_write(self.core.id(), value.clone(), now.as_nanos())
                });
                let (request, server, message) = self.core.begin_write(value);
                (request, server, message, op_id)
            };
            self.issued += 1;
            ctx.send(self.client_net, NodeId::Server(server), message);
            self.pending.insert(
                request,
                PendingOp {
                    op_id,
                    issued_at: now,
                    is_read: read,
                    timer: ctx.set_timer(self.workload.timeout),
                },
            );
        }
    }
}

impl Process<Message> for SimClient {
    fn on_start(&mut self, ctx: &mut Ctx<'_, Message>) {
        if self.workload.start_delay == Nanos::ZERO {
            self.issue_next(ctx);
        } else {
            self.kick = Some(ctx.set_timer(self.workload.start_delay));
        }
    }

    fn on_message(&mut self, ctx: &mut Ctx<'_, Message>, _from: NodeId, msg: Message) {
        let Some(completion) = self.core.on_reply(&msg) else {
            return; // stale or duplicate reply
        };
        let Some(op) = self.pending.remove(&completion.request) else {
            // The session core only completes requests it launched, and
            // every launch registers an op — but a bookkeeping mismatch
            // should drop a sample, not crash the simulation.
            return;
        };
        ctx.cancel_timer(op.timer);
        let now = ctx.now();
        let latency = now.saturating_sub(op.issued_at);
        {
            let mut stats = self.stats.borrow_mut();
            match (op.is_read, completion.value.as_ref()) {
                (true, Some(value)) => {
                    stats.reads_done += 1;
                    stats.read_payload_bytes += value.len() as u64;
                    stats.read_latency_total += latency;
                    stats.read_latencies.push(latency.as_nanos());
                }
                // A read completing without a value is a session-core
                // contract breach; drop the sample rather than panic.
                (true, None) => {}
                (false, _) => {
                    stats.writes_done += 1;
                    stats.write_payload_bytes += self.workload.value_size as u64;
                    stats.write_latency_total += latency;
                    stats.write_latencies.push(latency.as_nanos());
                }
            }
        }
        if let (Some(h), Some(op_id)) = (&self.history, op.op_id) {
            let mut h = h.borrow_mut();
            match completion.value {
                Some(value) => h.complete_read(op_id, value, now.as_nanos()),
                None => h.complete_write(op_id, now.as_nanos()),
            }
        }
        self.issue_next(ctx);
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_, Message>, timer: TimerId) {
        if self.kick == Some(timer) {
            self.kick = None;
            self.issue_next(ctx);
            return;
        }
        // Per-request timers: only the request whose timer fired retries;
        // the rest of the window is untouched.
        let Some(request) = self
            .pending
            .iter()
            .find(|(_, op)| op.timer == timer)
            .map(|(r, _)| *r)
        else {
            return; // stale timer
        };
        if let Some((server, message)) = self.core.on_timeout(request) {
            self.stats.borrow_mut().retries += 1;
            ctx.send(self.client_net, NodeId::Server(server), message);
            if let Some(op) = self.pending.get_mut(&request) {
                op.timer = ctx.set_timer(self.workload.timeout);
            }
        } else {
            self.pending.remove(&request);
        }
    }

    fn on_crashed(&mut self, ctx: &mut Ctx<'_, Message>, node: NodeId) {
        if let Some(s) = node.as_server() {
            // Every in-flight request stranded on the crashed server is
            // re-sent immediately, each under its own fresh timer.
            for (request, server, message) in self.core.on_server_down(s) {
                self.stats.borrow_mut().retries += 1;
                ctx.send(self.client_net, NodeId::Server(server), message);
                if let Some(op) = self.pending.get_mut(&request) {
                    ctx.cancel_timer(op.timer);
                    op.timer = ctx.set_timer(self.workload.timeout);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn modeled_record_overhead_matches_the_real_wal_layout() {
        // The modeled disk charges RECORD_OVERHEAD + value bytes per
        // commit; keep that pinned to what hts-wal actually writes, or
        // the durability benchmarks silently drift from reality.
        let record = hts_wal::WalRecord {
            object: ObjectId(1),
            tag: Tag::new(1, ServerId(0)),
            value: Value::bottom(), // empty: the encoding is pure overhead
        };
        let mut bytes = Vec::new();
        hts_wal::record::encode_record(&mut bytes, &record);
        assert_eq!(bytes.len(), RECORD_OVERHEAD);
    }
}
