//! Object → ring-lane placement for the parallel-lane runtimes.
//!
//! The paper's throughput argument is per-ring: one circulating token
//! pipeline saturates one link. [`Config::lanes`](crate::Config) splits a
//! node into `R` fully independent ring instances and this module decides
//! which lane hosts which [`ObjectId`] — the same style of stable hashed
//! placement `hts-store`'s `KeyMapper` uses for key → object, one level
//! up. Every server and transport must agree on the mapping (it is pure
//! and derived only from the object id and the lane count), and an object
//! never moves between lanes, so a single object's frames always ride one
//! lane's FIFO link — lane routing can never reorder them.

use hts_types::{ObjectId, RingFrame};

/// Stable object → lane placement shared by every laned runtime
/// (`hts-net`'s per-lane event loops, the simulator's per-lane NICs, the
/// store facade).
///
/// # Examples
///
/// ```
/// use hts_core::LaneMap;
/// use hts_types::ObjectId;
///
/// let map = LaneMap::new(4);
/// let lane = map.lane_of(ObjectId(7));
/// assert_eq!(lane, map.lane_of(ObjectId(7))); // deterministic
/// assert!(lane < 4);
/// assert_eq!(LaneMap::new(1).lane_of(ObjectId(7)), 0); // single lane
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LaneMap {
    lanes: u16,
    /// Per lane, the smallest `ObjectId` that maps onto it — the
    /// canonical object a transport may stamp onto lane-private control
    /// frames (rejoin announcements) so object-based demultiplexers
    /// deliver them to the right lane.
    tokens: Vec<ObjectId>,
}

impl LaneMap {
    /// Creates a placement over `lanes` ring lanes (0 is clamped to 1).
    pub fn new(lanes: u16) -> Self {
        let lanes = lanes.max(1);
        let mut tokens = vec![None; usize::from(lanes)];
        let mut found = 0usize;
        let mut id = 0u32;
        while found < usize::from(lanes) {
            let lane = usize::from(hash_lane(ObjectId(id), lanes));
            if tokens[lane].is_none() {
                tokens[lane] = Some(ObjectId(id));
                found += 1;
            }
            id = id
                .checked_add(1)
                .expect("FNV covers every lane well before u32::MAX");
        }
        LaneMap {
            lanes,
            tokens: tokens.into_iter().map(|t| t.expect("filled")).collect(),
        }
    }

    /// Number of lanes.
    pub fn lanes(&self) -> u16 {
        self.lanes
    }

    /// The lane hosting `object` (always 0 with a single lane).
    pub fn lane_of(&self, object: ObjectId) -> u16 {
        hash_lane(object, self.lanes)
    }

    /// The lane an inbound ring frame belongs to. Data frames route by
    /// their object; transports stamp announce-only frames with a lane's
    /// [`token_object`](Self::token_object), so this covers those too.
    pub fn lane_of_frame(&self, frame: &RingFrame) -> u16 {
        self.lane_of(frame.object)
    }

    /// The canonical object of `lane`: the smallest id placed on it.
    /// Transports stamp this onto announce-only (objectless) frames so
    /// [`lane_of_frame`](Self::lane_of_frame) routes them home.
    ///
    /// # Panics
    ///
    /// Panics if `lane` is out of range.
    pub fn token_object(&self, lane: u16) -> ObjectId {
        self.tokens[usize::from(lane)]
    }

    /// Splits a drained frame sequence into per-lane sequences, keeping
    /// each lane's (and therefore each object's) relative order — the
    /// reference semantics lane-routing transports must match.
    pub fn split_frames(&self, frames: Vec<RingFrame>) -> Vec<Vec<RingFrame>> {
        let mut out: Vec<Vec<RingFrame>> = (0..self.lanes).map(|_| Vec::new()).collect();
        for frame in frames {
            out[usize::from(self.lane_of_frame(&frame))].push(frame);
        }
        out
    }
}

/// FNV-1a over the object id's big-endian bytes, reduced mod `lanes` —
/// `KeyMapper`-style placement so consecutive ids spread instead of
/// striping.
fn hash_lane(object: ObjectId, lanes: u16) -> u16 {
    if lanes <= 1 {
        return 0;
    }
    let mut h: u32 = 0x811c_9dc5;
    for b in object.0.to_be_bytes() {
        h ^= u32::from(b);
        h = h.wrapping_mul(0x0100_0193);
    }
    (h % u32::from(lanes)) as u16
}

#[cfg(test)]
mod tests {
    use super::*;
    use hts_types::{Rejoin, ServerId, Tag, Value};

    #[test]
    fn deterministic_and_in_range() {
        let map = LaneMap::new(4);
        for id in 0..256u32 {
            let lane = map.lane_of(ObjectId(id));
            assert!(lane < 4);
            assert_eq!(lane, map.lane_of(ObjectId(id)));
        }
    }

    #[test]
    fn single_lane_pins_everything_to_lane_zero() {
        let map = LaneMap::new(1);
        for id in [0u32, 1, 99, u32::MAX] {
            assert_eq!(map.lane_of(ObjectId(id)), 0);
        }
        assert_eq!(map.token_object(0), ObjectId(0));
        assert_eq!(LaneMap::new(0).lanes(), 1, "0 clamps to 1");
    }

    #[test]
    fn every_lane_receives_objects() {
        let map = LaneMap::new(8);
        let mut hit = [false; 8];
        for id in 0..512u32 {
            hit[usize::from(map.lane_of(ObjectId(id)))] = true;
        }
        assert!(hit.iter().all(|h| *h), "unbalanced placement: {hit:?}");
    }

    #[test]
    fn token_objects_route_back_to_their_lane() {
        for lanes in [1u16, 2, 3, 4, 7] {
            let map = LaneMap::new(lanes);
            for lane in 0..lanes {
                assert_eq!(map.lane_of(map.token_object(lane)), lane, "lanes={lanes}");
                // Canonical: no smaller id lands on this lane.
                for id in 0..map.token_object(lane).0 {
                    assert_ne!(map.lane_of(ObjectId(id)), lane);
                }
            }
        }
    }

    #[test]
    fn split_preserves_per_object_frame_order() {
        // The drain-equivalence property the laned transports rely on:
        // partitioning a frame stream across lanes never reorders a
        // single object's frames, because an object maps to exactly one
        // lane and each lane keeps arrival order.
        let map = LaneMap::new(3);
        let mut frames = Vec::new();
        for ts in 1..=40u64 {
            let object = ObjectId((ts % 7) as u32);
            frames.push(if ts % 2 == 0 {
                RingFrame::pre_write(object, Tag::new(ts, ServerId(0)), Value::from_u64(ts))
            } else {
                RingFrame::write(object, Tag::new(ts, ServerId(0)))
            });
        }
        // A lane-stamped announcement rides lane 2's stream.
        let announce = RingFrame {
            object: map.token_object(2),
            rejoin: Some(Rejoin::announce(ServerId(1))),
            ..RingFrame::write(map.token_object(2), Tag::new(99, ServerId(1)))
        };
        frames.push(RingFrame {
            pre_write: None,
            write: None,
            ..announce
        });

        let lanes = map.split_frames(frames.clone());
        assert_eq!(lanes.len(), 3);
        assert_eq!(lanes.iter().map(Vec::len).sum::<usize>(), frames.len());
        for (lane, lane_frames) in lanes.iter().enumerate() {
            // Every frame landed on its own lane...
            for f in lane_frames {
                assert_eq!(usize::from(map.lane_of_frame(f)), lane);
            }
            // ...and the lane's sequence is exactly the original stream
            // filtered to that lane (order preserved).
            let expected: Vec<&RingFrame> = frames
                .iter()
                .filter(|f| usize::from(map.lane_of_frame(f)) == lane)
                .collect();
            assert_eq!(lane_frames.iter().collect::<Vec<_>>(), expected);
        }
        // Per-object order is a corollary: each object's frames are a
        // subsequence of one lane.
        for object in (0..7u32).map(ObjectId) {
            let original: Vec<u64> = frames
                .iter()
                .filter(|f| f.object == object)
                .filter_map(|f| f.write.as_ref().map(|w| w.tag.ts))
                .collect();
            let through_lanes: Vec<u64> = lanes[usize::from(map.lane_of(object))]
                .iter()
                .filter(|f| f.object == object)
                .filter_map(|f| f.write.as_ref().map(|w| w.tag.ts))
                .collect();
            assert_eq!(original, through_lanes, "{object:?} reordered");
        }
    }
}
