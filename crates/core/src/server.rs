//! The server state machine of the high-throughput atomic storage
//! algorithm.
//!
//! This is a **sans-io** translation of the paper's server pseudo-code
//! (§3): events come in through the `on_*` methods, client-visible effects
//! come out as [`Action`]s, and ring transmissions are *pulled* by the
//! transport through [`ServerCore::next_frame`] whenever the ring NIC can
//! send — which is where the fairness rule runs. The same core drives the
//! packet-level simulator, the round-model simulator and the real TCP
//! runtime.
//!
//! The protocol in one paragraph: a write is assigned a [`Tag`] greater
//! than everything its coordinator has seen and circulates the ring twice —
//! once as a value-carrying *pre-write* announcing it, once as a (tag-only)
//! *write* notice committing it. Every server caches pre-written values in
//! its [`PendingSet`]; a read is served locally and immediately unless the
//! server knows of a pending pre-write, in which case it waits until a
//! write notice at or above that tag arrives (this is what prevents the
//! read-inversion anomaly). Failure handling splices the ring, retransmits
//! in-flight state, and *adopts* writes orphaned by their coordinator's
//! crash. See DESIGN.md §4 for the resolved pseudo-code ambiguities.

use std::collections::{BTreeMap, HashMap, VecDeque};
use std::sync::Arc;

use hts_types::{
    ClientId, ObjectId, PreWrite, RequestId, RingFrame, ServerId, Tag, Value, WriteNotice,
};

use crate::{Config, ForwardScheduler, PendingSet, ReadCell, RingView, Selection};

/// A client-visible effect produced by the server core; the transport
/// layer turns these into reply messages.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Action {
    /// Acknowledge a completed write (paper line 50).
    WriteAck {
        /// The register object written.
        object: ObjectId,
        /// The client to reply to.
        client: ClientId,
        /// Its request id.
        request: RequestId,
    },
    /// Answer a read (paper lines 78 and 82).
    ReadReply {
        /// The register object read.
        object: ObjectId,
        /// The client to reply to.
        client: ClientId,
        /// Its request id.
        request: RequestId,
        /// The value read.
        value: Value,
        /// The tag of that value (white-box witness for the
        /// linearizability checker; not sent to clients).
        tag: Tag,
    },
}

/// Cumulative protocol counters (inspected by benchmarks and tests).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ServerStats {
    /// Writes this server initiated (its clients' writes + adoptions).
    pub writes_initiated: u64,
    /// Pre-writes forwarded for other origins.
    pub prewrites_forwarded: u64,
    /// Write notices forwarded or emitted.
    pub notices_sent: u64,
    /// Reads answered immediately.
    pub reads_immediate: u64,
    /// Reads that had to wait for a pending write.
    pub reads_blocked: u64,
    /// Duplicate or already-committed ring messages dropped.
    pub duplicates_dropped: u64,
    /// Ring splices performed (successor crashes survived).
    pub recoveries: u64,
    /// Orphaned writes adopted from crashed origins.
    pub adoptions: u64,
    /// Rejoins served as the restarted server's new predecessor (each
    /// re-sends the stored value and pending set, like a splice).
    pub rejoins_served: u64,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Phase {
    PreWrite,
    Write,
}

#[derive(Debug, Clone)]
struct Outstanding {
    client: Option<(ClientId, RequestId)>,
    phase: Phase,
    /// [`hts_metrics::now_nanos`] when the pre-write was framed (0 with
    /// metrics off — the phase histograms then record nothing).
    begun_at: u64,
    /// When the own pre-write returned and the write phase started; 0
    /// while still in [`Phase::PreWrite`].
    prewrite_done_at: u64,
}

#[derive(Debug, Clone)]
struct WaitingRead {
    client: ClientId,
    request: RequestId,
    /// The read unblocks on the first write notice with tag >= target
    /// (paper line 81).
    target: Tag,
    /// [`hts_metrics::now_nanos`] when the read blocked.
    begun_at: u64,
}

/// The per-object server state machine. See the [module docs](self).
#[derive(Debug, Clone)]
pub struct ServerCore {
    object: ObjectId,
    config: Config,
    ring: RingView,
    stored_tag: Tag,
    stored_value: Value,
    pending: PendingSet,
    sched: ForwardScheduler,
    write_queue: VecDeque<(Option<(ClientId, RequestId)>, Value)>,
    notice_queue: VecDeque<WriteNotice>,
    outstanding: BTreeMap<Tag, Outstanding>,
    /// Orphaned writes this server completes as surrogate origin.
    adopted: BTreeMap<Tag, Value>,
    waiting_reads: Vec<WaitingRead>,
    /// Highest pre-write timestamp seen per origin (duplicate suppression).
    prewrite_seen: HashMap<ServerId, u64>,
    /// Highest write timestamp seen per origin.
    write_seen: HashMap<ServerId, u64>,
    /// Restart resync: while set, reads queue (the restored state may be
    /// behind writes committed during the downtime) and no local writes
    /// are initiated (their tags could be assigned "into the past").
    /// Cleared when the rejoin announcement completes its circulation —
    /// FIFO links guarantee the predecessor's recovery stream arrived
    /// before it — or when this server becomes the lone survivor.
    syncing: bool,
    /// Reads received while syncing, answered at sync completion.
    sync_reads: Vec<(ClientId, RequestId)>,
    /// Commits applied since the last [`drain_commits`](Self::drain_commits)
    /// (populated only under a persistent [`Durability`](crate::Durability)).
    commit_log: Vec<(Tag, Value)>,
    /// The published snapshot cell behind the net layer's lock-free read
    /// fast path (attached by the runtime; `None` in simulators).
    cell: Option<Arc<ReadCell>>,
    /// What the cell currently says — `(stored_tag, blocked)` — so
    /// republishing is a no-op when nothing observable changed.
    published: Option<(Tag, bool)>,
    stats: ServerStats,
}

impl ServerCore {
    /// Creates the state machine of server `me` in a ring of `n`, serving
    /// register `object`.
    ///
    /// # Panics
    ///
    /// Panics if `me` is outside `0..n` (see [`RingView::new`]).
    pub fn new(me: ServerId, n: u16, object: ObjectId, config: Config) -> Self {
        ServerCore {
            object,
            ring: RingView::new(me, n),
            sched: ForwardScheduler::new(config.fairness),
            config,
            stored_tag: Tag::ZERO,
            stored_value: Value::bottom(),
            pending: PendingSet::new(),
            write_queue: VecDeque::new(),
            notice_queue: VecDeque::new(),
            outstanding: BTreeMap::new(),
            adopted: BTreeMap::new(),
            waiting_reads: Vec::new(),
            prewrite_seen: HashMap::new(),
            write_seen: HashMap::new(),
            syncing: false,
            sync_reads: Vec::new(),
            commit_log: Vec::new(),
            cell: None,
            published: None,
            stats: ServerStats::default(),
        }
    }

    /// This server's id.
    pub fn me(&self) -> ServerId {
        self.ring.me()
    }

    /// The register object this core serves.
    pub fn object(&self) -> ObjectId {
        self.object
    }

    /// The currently stored `(tag, value)` pair.
    pub fn stored(&self) -> (Tag, &Value) {
        (self.stored_tag, &self.stored_value)
    }

    /// The ring membership view.
    pub fn ring(&self) -> &RingView {
        &self.ring
    }

    /// The current ring successor (where [`next_frame`](Self::next_frame)
    /// output goes), or `None` when this server is the only survivor.
    pub fn successor(&self) -> Option<ServerId> {
        self.ring.successor()
    }

    /// The pending (pre-written, uncommitted) set.
    pub fn pending(&self) -> &PendingSet {
        &self.pending
    }

    /// Protocol counters.
    pub fn stats(&self) -> &ServerStats {
        &self.stats
    }

    /// Number of reads currently blocked on a pending write.
    pub fn waiting_reads(&self) -> usize {
        self.waiting_reads.len()
    }

    /// Whether anything waits for a ring transmission slot.
    pub fn has_ring_work(&self) -> bool {
        !self.write_queue.is_empty() || self.sched.has_queued() || !self.notice_queue.is_empty()
    }

    /// Whether this core is resyncing after a restart (reads queued,
    /// local writes withheld).
    pub fn is_syncing(&self) -> bool {
        self.syncing
    }

    /// Attaches the published snapshot cell consulted by the transport's
    /// lock-free read fast path; the cell immediately reflects the
    /// core's current state. This core's event loop is the cell's single
    /// writer — do not attach one cell to two cores, and do not clone an
    /// attached core.
    pub fn attach_read_cell(&mut self, cell: Arc<ReadCell>) {
        self.cell = Some(cell);
        self.published = None;
        self.republish();
    }

    /// Re-publishes `(stored_tag, stored_value)` and the read-blocked
    /// bit into the attached cell whenever either changed. The blocked
    /// predicate mirrors [`on_client_read`](Self::on_client_read)'s
    /// immediate-read test (minus the lone-survivor shortcut — the cell
    /// is conservative there, which only costs a fallback hop).
    fn republish(&mut self) {
        let Some(cell) = &self.cell else { return };
        let blocked = self.syncing
            || match self.pending.max_tag() {
                None => false,
                Some(max) => !(self.config.read_fast_path && self.stored_tag >= max),
            };
        if self.published == Some((self.stored_tag, blocked)) {
            return;
        }
        match self.published {
            // Same snapshot, different gate: skip the slot (and the
            // reader drain) — only the flag word moves.
            Some((tag, _)) if tag == self.stored_tag => cell.set_blocked(blocked),
            _ => cell.publish(self.stored_tag, &self.stored_value, blocked),
        }
        self.published = Some((self.stored_tag, blocked));
    }

    /// Enters resync mode after a restart-from-log (no-op when this
    /// server is the only one alive — there is nobody to sync from).
    pub fn begin_sync(&mut self) {
        if self.ring.alive_count() > 1 {
            self.syncing = true;
        }
        self.republish();
    }

    /// Leaves resync mode and answers the reads queued during it
    /// (re-routed through the normal read path, so they still block on
    /// any pending pre-write learned during the sync).
    pub fn finish_sync(&mut self) -> Vec<Action> {
        self.syncing = false;
        let queued = std::mem::take(&mut self.sync_reads);
        let mut actions = Vec::new();
        for (client, request) in queued {
            actions.extend(self.on_client_read(client, request));
        }
        self.republish();
        actions
    }

    /// Restores the stored register from a recovery log (boot-time only:
    /// never emits ring traffic, never logs the restore as a commit).
    /// Duplicate-suppression watermarks advance so stale ring traffic at
    /// or below the restored tag is dropped.
    pub fn restore(&mut self, tag: Tag, value: Value) {
        if tag > self.stored_tag {
            self.stored_tag = tag;
            self.stored_value = value;
        }
        self.note_prewrite_seen(tag);
        self.note_write_seen(tag);
        self.republish();
    }

    /// Takes the commits applied since the last drain (empty unless
    /// [`Config::durability`] is persistent). The runtime appends these
    /// to its log **before** flushing client acks, so `SyncAlways`
    /// really means ack-after-fsync.
    ///
    /// [`Config::durability`]: crate::Config
    pub fn drain_commits(&mut self) -> Vec<(Tag, Value)> {
        std::mem::take(&mut self.commit_log)
    }

    /// Whether recovery retransmissions (value-carrying notices or
    /// recovery pre-writes) still wait in the outbound queues. A rejoin
    /// announcement must not leave before them: its arrival at the
    /// rejoiner certifies, via FIFO links, that the recovery stream
    /// arrived first.
    pub fn has_recovery_backlog(&self) -> bool {
        self.notice_queue.iter().any(|n| n.value.is_some()) || self.sched.has_recovery_queued()
    }

    /// The failure detector (or a rejoin announcement) reports that `s`
    /// restarted and is back in the ring. If `s` is now this server's
    /// successor, this server is the one the rejoiner syncs from: it
    /// re-sends its stored value and every pending pre-write, exactly
    /// like the splice path — everything committed anywhere is either
    /// ≤ our stored tag or still in our pending set, so the FIFO stream
    /// to the rejoiner covers all of it.
    pub fn on_server_rejoined(&mut self, s: ServerId) {
        if s == self.me() {
            return;
        }
        self.ring.mark_rejoined(s);
        if self.ring.successor() == Some(s) {
            self.stats.rejoins_served += 1;
            if self.stored_tag != Tag::ZERO {
                self.notice_queue.push_front(WriteNotice {
                    tag: self.stored_tag,
                    value: Some(self.stored_value.clone()),
                });
            }
            let resend: Vec<PreWrite> = self
                .pending
                .iter()
                .map(|(tag, value)| PreWrite {
                    tag,
                    value: value.clone(),
                    recovery: true,
                })
                .collect();
            self.sched.enqueue_front(resend);
        }
    }

    /// A client asked to write `value` (paper lines 18–20).
    pub fn on_client_write(
        &mut self,
        client: ClientId,
        request: RequestId,
        value: Value,
    ) -> Vec<Action> {
        let actions = self.handle_client_write(client, request, value);
        self.republish();
        actions
    }

    fn handle_client_write(
        &mut self,
        client: ClientId,
        request: RequestId,
        value: Value,
    ) -> Vec<Action> {
        if self.ring.alive_count() == 1 && !self.syncing {
            // Degenerate ring: the full circulation is a no-op. (A lone
            // survivor that is still mid-resync must NOT take this
            // shortcut: its restored tag watermark may be behind tags
            // already committed cluster-wide, and a tag minted from it
            // would order this write into the observed past.)
            let tag = self.next_tag();
            self.apply(tag, value);
            self.stats.writes_initiated += 1;
            return vec![Action::WriteAck {
                object: self.object,
                client,
                request,
            }];
        }
        self.write_queue.push_back((Some((client, request)), value));
        hts_metrics::histogram!("hts_core_write_queue_depth").record(self.write_queue.len() as u64);
        Vec::new()
    }

    /// A client asked to read (paper lines 76–84).
    pub fn on_client_read(&mut self, client: ClientId, request: RequestId) -> Vec<Action> {
        if self.syncing {
            // Restart resync: the restored state may miss writes
            // committed during the downtime; serving now could travel
            // back in time. Queue until the rejoin round trip completes
            // — even as a lone survivor (the missing writes live in the
            // crashed peers' logs; see `on_server_crashed`).
            self.stats.reads_blocked += 1;
            self.sync_reads.push((client, request));
            return Vec::new();
        }
        // A read blocks only on a pending write it must wait out; with
        // none pending (or the fast path satisfied, or no peers left to
        // wait for) it is served immediately.
        let target = self.pending.max_tag().filter(|&max| {
            !(self.config.read_fast_path && self.stored_tag >= max) && self.ring.alive_count() > 1
        });
        let Some(target) = target else {
            self.stats.reads_immediate += 1;
            return vec![Action::ReadReply {
                object: self.object,
                client,
                request,
                value: self.stored_value.clone(),
                tag: self.stored_tag,
            }];
        };
        self.stats.reads_blocked += 1;
        self.waiting_reads.push(WaitingRead {
            client,
            request,
            target,
            begun_at: hts_metrics::now_nanos(),
        });
        Vec::new()
    }

    /// A ring frame arrived from the predecessor.
    ///
    /// # Panics
    ///
    /// Panics if the frame belongs to a different object (routing bug).
    pub fn on_frame(&mut self, frame: RingFrame) -> Vec<Action> {
        assert_eq!(frame.object, self.object, "frame routed to wrong object");
        let mut actions = Vec::new();
        // Commit before announce: a piggybacked frame carries an older
        // write notice next to a newer pre-write.
        if let Some(notice) = frame.write {
            self.process_write_notice(notice, &mut actions);
        }
        if let Some(pw) = frame.pre_write {
            self.process_pre_write(pw, &mut actions);
        }
        self.republish();
        actions
    }

    /// The perfect failure detector reported the crash of `s`.
    pub fn on_server_crashed(&mut self, s: ServerId) -> Vec<Action> {
        let actions = self.handle_server_crashed(s);
        self.republish();
        actions
    }

    fn handle_server_crashed(&mut self, s: ServerId) -> Vec<Action> {
        if s == self.me() || !self.ring.is_alive(s) {
            return Vec::new(); // stale or self-report
        }
        let was_successor = self.ring.successor() == Some(s);
        self.ring.mark_crashed(s);
        let mut actions = Vec::new();

        if self.ring.alive_count() == 1 {
            if self.syncing {
                // A lone survivor that is itself mid-resync must NOT
                // serve: its restored log may miss writes acknowledged
                // while it was down, and those writes still exist in the
                // crashed peers' logs. Linearizability over availability:
                // reads and writes stay queued until a peer rejoins and
                // the resync completes (see the Multi-level rejoin
                // handling), rather than time-traveling clients.
                return actions;
            }
            self.complete_everything_alone(&mut actions);
            return actions;
        }

        if was_successor {
            self.stats.recoveries += 1;
            // Everything forwarded to the dead successor may be lost
            // (paper lines 85–92): re-send the current value and every
            // pending pre-write to the new successor. Recovery pre-writes
            // bypass duplicate suppression so they can complete a full
            // turn even through servers that saw them already.
            if self.stored_tag != Tag::ZERO {
                self.notice_queue.push_front(WriteNotice {
                    tag: self.stored_tag,
                    value: Some(self.stored_value.clone()),
                });
            }
            let resend: Vec<PreWrite> = self
                .pending
                .iter()
                .map(|(tag, value)| PreWrite {
                    tag,
                    value: value.clone(),
                    recovery: true,
                })
                .collect();
            self.sched.enqueue_front(resend);
        }

        if self.config.adopt_orphans && self.ring.is_adopter_of(s) {
            // Writes initiated by the dead server that never committed
            // would block readers forever; as its first alive successor we
            // complete them under their original tags (DESIGN.md §4.10).
            let orphans = self.pending.with_origin(s);
            let mut resend = Vec::new();
            for (tag, value) in orphans {
                self.adopted.insert(tag, value.clone());
                self.stats.adoptions += 1;
                if !was_successor {
                    resend.push(PreWrite {
                        tag,
                        value,
                        recovery: true,
                    });
                }
                // (if `was_successor`, the blanket re-send above already
                // queued a recovery copy.)
            }
            self.sched.enqueue_front(resend);
            // Pre-writes from the dead origin still waiting in our forward
            // queues were seen by no one downstream; adopt them and let
            // their (first) forwarding double as the adoption circulation.
            let queued = self.sched.drain_origin(s);
            if !queued.is_empty() {
                for pw in &queued {
                    self.adopted.insert(pw.tag, pw.value.clone());
                    self.stats.adoptions += 1;
                }
                self.sched.enqueue_front(queued);
            }
        }
        actions
    }

    /// Pulls the next ring frame for the current successor, running the
    /// fairness rule. Returns `None` when nothing needs the slot (or this
    /// server is alone).
    pub fn next_frame(&mut self) -> Option<RingFrame> {
        let frame = self.pull_frame();
        self.republish();
        frame
    }

    fn pull_frame(&mut self) -> Option<RingFrame> {
        self.ring.successor()?;
        loop {
            // While resyncing, hold local initiations: a tag minted from
            // restored (possibly stale) state could order a new write
            // before already-completed ones.
            let want_local = !self.syncing && !self.write_queue.is_empty();
            let me = self.me();
            let mut frame = RingFrame {
                object: self.object,
                pre_write: None,
                write: None,
                rejoin: None,
            };
            match self.sched.select(me, want_local) {
                Some(Selection::InitiateLocal) => {
                    // Offered only when a write is queued (`want_local`);
                    // if that ever drifts, skip the slot instead of
                    // panicking the server.
                    let (client, value) = self.write_queue.pop_front()?;
                    let tag = self.next_tag();
                    self.pending.insert(tag, value.clone());
                    hts_metrics::flight::record(
                        hts_metrics::flight::KIND_OP_BEGIN,
                        client.map_or(0, |(_, r)| r.0),
                        tag.ts,
                        u64::from(tag.origin.0),
                    );
                    self.outstanding.insert(
                        tag,
                        Outstanding {
                            client,
                            phase: Phase::PreWrite,
                            begun_at: hts_metrics::now_nanos(),
                            prewrite_done_at: 0,
                        },
                    );
                    self.note_prewrite_seen(tag);
                    self.sched.record_initiation(me);
                    self.stats.writes_initiated += 1;
                    frame.pre_write = Some(PreWrite {
                        tag,
                        value,
                        recovery: false,
                    });
                }
                Some(Selection::Forward(pw)) => {
                    // Late guard: the tag may have committed while queued.
                    if pw.tag <= self.stored_tag || self.write_seen_ts(pw.tag.origin) >= pw.tag.ts {
                        self.stats.duplicates_dropped += 1;
                        continue;
                    }
                    // Paper line 71: the tag becomes pending at forward
                    // time (with its value cached for the tag-only commit).
                    self.pending.insert(pw.tag, pw.value.clone());
                    self.stats.prewrites_forwarded += 1;
                    frame.pre_write = Some(pw);
                }
                None => {}
            }
            // Piggyback at most one write notice (§4.2 "(2)").
            if let Some(notice) = self.notice_queue.pop_front() {
                self.stats.notices_sent += 1;
                frame.write = Some(notice);
            }
            if frame.is_empty() {
                return None;
            }
            return Some(frame);
        }
    }

    /// Pulls up to `max_frames` frames for the current successor — the
    /// batch scheduler behind [`next_frame`](Self::next_frame). Draining
    /// also stops once the batch's encoded frame bodies reach `max_bytes`
    /// (a soft cap: the frame that crosses the budget is still included,
    /// so a jumbo value can never wedge the ring and the first frame
    /// always goes out). The frames come out in exactly the order
    /// repeated `next_frame` calls would produce them, so coalescing
    /// them into one wire message preserves per-link FIFO.
    pub fn drain_frames(&mut self, max_frames: usize, max_bytes: usize) -> Vec<RingFrame> {
        drain_frames_with(|| self.next_frame(), max_frames, max_bytes)
    }

    fn next_tag(&self) -> Tag {
        let highest = self
            .pending
            .max_tag()
            .map_or(self.stored_tag.ts, |t| t.ts.max(self.stored_tag.ts));
        Tag::new(highest + 1, self.me())
    }

    fn apply(&mut self, tag: Tag, value: Value) {
        if tag > self.stored_tag {
            if self.config.durability.is_persistent() {
                self.commit_log.push((tag, value.clone()));
            }
            self.stored_tag = tag;
            self.stored_value = value;
        }
    }

    fn prewrite_seen_ts(&self, origin: ServerId) -> u64 {
        self.prewrite_seen.get(&origin).copied().unwrap_or(0)
    }

    fn write_seen_ts(&self, origin: ServerId) -> u64 {
        self.write_seen.get(&origin).copied().unwrap_or(0)
    }

    fn note_prewrite_seen(&mut self, tag: Tag) {
        let e = self.prewrite_seen.entry(tag.origin).or_insert(0);
        *e = (*e).max(tag.ts);
    }

    fn note_write_seen(&mut self, tag: Tag) {
        let e = self.write_seen.entry(tag.origin).or_insert(0);
        *e = (*e).max(tag.ts);
    }

    fn process_pre_write(&mut self, pw: PreWrite, actions: &mut Vec<Action>) {
        let tag = pw.tag;

        // Already committed (here or anywhere upstream): never re-pend.
        if tag <= self.stored_tag || self.write_seen_ts(tag.origin) >= tag.ts {
            self.stats.duplicates_dropped += 1;
            return;
        }

        // Surrogate return: an adopted orphan completed its ring turn.
        if self.adopted.remove(&tag).is_some() {
            self.apply(tag, pw.value.clone());
            self.pending.remove(tag);
            self.note_write_seen(tag);
            self.notice_queue.push_back(WriteNotice {
                tag,
                value: Some(pw.value),
            });
            self.check_waiting_reads(tag, None, actions);
            return;
        }

        if tag.origin == self.me() {
            // Own pre-write returned: every server saw it; start the write
            // phase (paper lines 32–38). "Every server" has one exception:
            // a rejoiner whose recovery copy of this pre-write still waits
            // in our forward queues — then the commit notice must carry
            // the value or it can overtake the copy (see
            // `process_write_notice`).
            match self.outstanding.get_mut(&tag) {
                Some(out) if out.phase == Phase::PreWrite => {
                    out.phase = Phase::Write;
                    out.prewrite_done_at = hts_metrics::now_nanos();
                    hts_metrics::histogram!("hts_core_write_prewrite_nanos")
                        .record(out.prewrite_done_at.saturating_sub(out.begun_at));
                    hts_metrics::flight::record(
                        hts_metrics::flight::KIND_OP_PHASE,
                        out.client.map_or(0, |(_, r)| r.0),
                        tag.ts,
                        u64::from(tag.origin.0),
                    );
                    self.apply(tag, pw.value.clone());
                    self.pending.remove(tag);
                    let value = (self.config.write_carries_value
                        || self.sched.has_recovery_for(tag))
                    .then_some(pw.value);
                    self.notice_queue.push_back(WriteNotice { tag, value });
                }
                Some(_) => self.stats.duplicates_dropped += 1,
                None => {
                    // Our own pre-write, but no outstanding entry: it was
                    // issued by a previous incarnation of this server
                    // (crash-restart lost the bookkeeping, and the restart
                    // outran failure detection so nobody adopted it).
                    // It has completed a full circulation — every alive
                    // server holds it pending — so commit it; dropping it
                    // would leave the tag pending ring-wide, blocking
                    // readers until some newer write subsumes it. There is
                    // no client to ack (it died with the old incarnation
                    // and has long since retried elsewhere).
                    self.apply(tag, pw.value.clone());
                    self.pending.remove(tag);
                    self.notice_queue.push_back(WriteNotice {
                        tag,
                        value: Some(pw.value),
                    });
                    self.check_waiting_reads(tag, None, actions);
                }
            }
            return;
        }

        // Foreign pre-write: suppress duplicates unless it is a recovery
        // re-circulation (which must pass through servers that saw it to
        // reach whoever consumes it — the alive origin, or the adopter of
        // a dead one). A recovery frame nobody will consume must fall back
        // to normal suppression or it would circle the ring forever.
        let consumable = self.ring.is_alive(tag.origin) || self.config.adopt_orphans;
        let bypass = pw.recovery && consumable;
        if !bypass && self.prewrite_seen_ts(tag.origin) >= tag.ts {
            self.stats.duplicates_dropped += 1;
            return;
        }
        self.note_prewrite_seen(tag);

        // If the origin is already known to be dead and we are its
        // designated adopter, claim the orphan now; its forwarding below
        // doubles as the adoption circulation.
        if self.config.adopt_orphans && self.ring.is_adopter_of(tag.origin) {
            self.adopted.insert(tag, pw.value.clone());
            self.stats.adoptions += 1;
        }

        self.sched.enqueue(pw);
    }

    fn process_write_notice(&mut self, notice: WriteNotice, actions: &mut Vec<Action>) {
        let tag = notice.tag;
        let mine = tag.origin == self.me();

        if !mine && self.write_seen_ts(tag.origin) >= tag.ts {
            self.stats.duplicates_dropped += 1;
            return;
        }
        self.note_write_seen(tag);

        // Resolve the committed value: carried explicitly, from the
        // pending cache filled by the matching pre-write, or from a
        // pre-write still waiting in the forward queues (possible after
        // a splice-and-rejoin, when the commit's recovery circulation
        // bypassed this server; the stale queue entry is dropped later
        // by `next_frame`'s late guard).
        let resolved = notice
            .value
            .clone()
            .or_else(|| self.pending.get(tag).cloned())
            .or_else(|| self.sched.queued_value(tag).cloned());
        match &resolved {
            Some(v) => self.apply(tag, v.clone()),
            None => {
                // Only already-applied tags may lack a cached value.
                debug_assert!(
                    tag <= self.stored_tag,
                    "tag-only write {tag} without a cached pre-write at {me} \
                     (stored {stored}, syncing {syncing}, pending {pending:?}, \
                     write_seen {seen:?})",
                    me = self.me(),
                    stored = self.stored_tag,
                    syncing = self.syncing,
                    pending = self.pending.iter().map(|(t, _)| t).collect::<Vec<_>>(),
                    seen = self.write_seen,
                );
            }
        }

        // Subsumption (DESIGN.md §4.2): a committed tag proves every lower
        // pre-write can never be read again.
        self.pending.remove_le(tag);
        self.adopted.retain(|t, _| *t > tag);

        // Acknowledge own writes at or below the committed tag — the exact
        // own-write return (paper line 49) and any of ours it subsumes.
        let first_kept = if tag.origin.0 < u16::MAX {
            Tag::new(tag.ts, ServerId(tag.origin.0 + 1))
        } else {
            Tag::new(tag.ts.saturating_add(1), ServerId(0))
        };
        let still_out = self.outstanding.split_off(&first_kept);
        let acked = std::mem::replace(&mut self.outstanding, still_out);
        for (t, out) in acked {
            debug_assert!(t <= tag);
            let done = hts_metrics::now_nanos();
            if out.prewrite_done_at != 0 {
                hts_metrics::histogram!("hts_core_write_commit_nanos")
                    .record(done.saturating_sub(out.prewrite_done_at));
            }
            hts_metrics::histogram!("hts_core_write_total_nanos")
                .record(done.saturating_sub(out.begun_at));
            hts_metrics::flight::record(
                hts_metrics::flight::KIND_OP_COMPLETE,
                out.client.map_or(0, |(_, r)| r.0),
                t.ts,
                u64::from(t.origin.0),
            );
            if let Some((client, request)) = out.client {
                actions.push(Action::WriteAck {
                    object: self.object,
                    client,
                    request,
                });
            }
        }

        self.check_waiting_reads(tag, resolved.as_ref(), actions);

        if !mine {
            // Forward the commit around the ring (tag-only in steady
            // state; keep the explicit value in recovery/ablation
            // frames). One extra case must carry the value: while a
            // recovery copy of this tag still waits in our forward
            // queues, the successor is a resyncing rejoiner that has
            // never seen the pre-write — fairness across origins can
            // let this notice overtake the copy, and a tag-only notice
            // would then commit a value the rejoiner cannot resolve.
            let value = if self.config.write_carries_value || self.sched.has_recovery_for(tag) {
                resolved
            } else {
                notice.value
            };
            self.notice_queue.push_back(WriteNotice { tag, value });
        }
    }

    /// Unblocks reads whose target the committed `tag` satisfies (paper
    /// line 81). Replies carry the *stored* value — see DESIGN.md §4.9 for
    /// why the pseudo-code's literal reply (the message value) admits a
    /// read inversion when ring writes overtake each other; that behaviour
    /// is available as the `unblock_replies_message_value` ablation.
    fn check_waiting_reads(
        &mut self,
        tag: Tag,
        message_value: Option<&Value>,
        actions: &mut Vec<Action>,
    ) {
        if self.waiting_reads.is_empty() {
            return;
        }
        let literal = self.config.unblock_replies_message_value;
        let (reply_value, reply_tag) = if literal {
            match message_value {
                Some(v) => (v.clone(), tag),
                None => (self.stored_value.clone(), self.stored_tag),
            }
        } else {
            (self.stored_value.clone(), self.stored_tag)
        };
        let mut still_waiting = Vec::with_capacity(self.waiting_reads.len());
        let object = self.object;
        for wr in self.waiting_reads.drain(..) {
            if wr.target <= tag {
                hts_metrics::histogram!("hts_core_read_block_nanos")
                    .record(hts_metrics::now_nanos().saturating_sub(wr.begun_at));
                actions.push(Action::ReadReply {
                    object,
                    client: wr.client,
                    request: wr.request,
                    value: reply_value.clone(),
                    tag: reply_tag,
                });
            } else {
                still_waiting.push(wr);
            }
        }
        self.waiting_reads = still_waiting;
    }

    /// Last survivor: every circulation is a no-op, so finish all
    /// in-flight work locally.
    fn complete_everything_alone(&mut self, actions: &mut Vec<Action>) {
        // Commit every pending pre-write under its original tag (nothing
        // newer can be overwritten, and readers blocked on them unblock).
        let committed = self.pending.remove_le(Tag {
            ts: u64::MAX,
            origin: ServerId(u16::MAX),
        });
        for (tag, value) in committed {
            self.apply(tag, value);
            self.note_write_seen(tag);
        }
        // Same for pre-writes still waiting in the forward queues and for
        // adopted orphans.
        for origin in self.ring_origins() {
            for pw in self.sched.drain_origin(origin) {
                self.apply(pw.tag, pw.value);
                self.note_write_seen(pw.tag);
            }
        }
        for (tag, value) in std::mem::take(&mut self.adopted) {
            self.apply(tag, value);
            self.note_write_seen(tag);
        }
        // Local writes apply directly now.
        let queued: Vec<_> = self.write_queue.drain(..).collect();
        for (client, value) in queued {
            let tag = self.next_tag();
            self.apply(tag, value);
            self.stats.writes_initiated += 1;
            if let Some((client, request)) = client {
                actions.push(Action::WriteAck {
                    object: self.object,
                    client,
                    request,
                });
            }
        }
        // Outstanding two-phase writes are complete by fiat.
        for (_, out) in std::mem::take(&mut self.outstanding) {
            if let Some((client, request)) = out.client {
                actions.push(Action::WriteAck {
                    object: self.object,
                    client,
                    request,
                });
            }
        }
        self.notice_queue.clear();
        // A lone survivor has nobody to resync from: whatever it has is
        // the authoritative state now.
        self.syncing = false;
        // All blocked reads can be answered from the store.
        let waiting = std::mem::take(&mut self.waiting_reads);
        for wr in waiting {
            actions.push(Action::ReadReply {
                object: self.object,
                client: wr.client,
                request: wr.request,
                value: self.stored_value.clone(),
                tag: self.stored_tag,
            });
        }
        let sync_reads = std::mem::take(&mut self.sync_reads);
        for (client, request) in sync_reads {
            actions.push(Action::ReadReply {
                object: self.object,
                client,
                request,
                value: self.stored_value.clone(),
                tag: self.stored_tag,
            });
        }
    }

    fn ring_origins(&self) -> Vec<ServerId> {
        (0..self.ring.n()).map(ServerId).collect()
    }
}

/// The one frame/byte-capped drain loop behind both
/// [`ServerCore::drain_frames`] and
/// [`MultiObjectServer::drain_frames`](crate::MultiObjectServer::drain_frames):
/// pull frames until `max_frames` (clamped to ≥ 1) or the `max_bytes`
/// soft cap. The first frame is admitted unconditionally — even a zero
/// byte budget must not wedge the ring — and the frame that crosses the
/// budget still ships.
pub(crate) fn drain_frames_with(
    mut pull: impl FnMut() -> Option<RingFrame>,
    max_frames: usize,
    max_bytes: usize,
) -> Vec<RingFrame> {
    let mut frames = Vec::new();
    let mut bytes = 0usize;
    while frames.len() < max_frames.max(1) && (frames.is_empty() || bytes < max_bytes) {
        let Some(frame) = pull() else { break };
        bytes += hts_types::codec::frame_wire_size(&frame);
        frames.push(frame);
    }
    frames
}
