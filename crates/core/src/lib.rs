//! The high-throughput ring-based atomic storage algorithm of Guerraoui,
//! Kostić, Levy and Quéma (ICDCS 2007), as a reusable sans-io library.
//!
//! # What this implements
//!
//! A multi-writer multi-reader **atomic (linearizable) register** served by
//! `n` cluster servers organized in a ring, tolerating the crash of `n − 1`
//! servers and of any number of clients, assuming reliable (perfect)
//! failure detection — realistic on a LAN where per-neighbor TCP
//! connections double as failure detectors.
//!
//! Two design points give it its performance profile:
//!
//! * **Reads are local.** Any server answers a read from its own storage,
//!   so read throughput scales linearly with servers. Atomicity is
//!   preserved by making *writes* pay: a write circulates a `pre-write`
//!   announcement before its commit `write` message, and a server that
//!   knows of an announced-but-uncommitted value briefly holds reads (the
//!   pre-write phase prevents the classic read-inversion anomaly).
//! * **Writes ride a ring.** Servers forward protocol messages only to
//!   their ring successor — no multicast storms, no ack implosion (a frame
//!   returning to its sender proves everyone saw it), and commit messages
//!   are tag-only because values are cached at every hop. A fairness rule
//!   multiplexes each server's own writes with forwarded traffic so every
//!   write completes.
//!
//! # Crate layout
//!
//! * [`ServerCore`] / [`ClientCore`] — the protocol state machines
//!   (sans-io: feed events, collect [`Action`]s / messages).
//! * [`SessionCore`] — the pipelined client session: a **window** of
//!   concurrent in-flight operations over one channel, with per-request
//!   retry state and out-of-order completions ([`ClientCore`] is its
//!   window-of-1 wrapper).
//! * [`MultiObjectServer`] — many registers multiplexed over one ring.
//! * [`SimServer`] / [`SimClient`] — adapters for the `hts-sim` packet
//!   simulator (used by every benchmark).
//! * [`RoundServer`] / [`RoundClient`] — adapters for the paper's
//!   synchronous round model (validates the §4 analytical claims).
//! * [`Config`] — paper-faithful defaults plus documented ablations.
//!
//! # Examples
//!
//! A three-server ring exercised entirely in-memory (no simulator), by
//! hand-delivering frames — the protocol is just data in, data out:
//!
//! ```
//! use hts_core::{Action, Config, ServerCore};
//! use hts_types::{ClientId, Message, ObjectId, RequestId, ServerId, Value};
//!
//! let mut servers: Vec<ServerCore> = (0..3)
//!     .map(|i| ServerCore::new(ServerId(i), 3, ObjectId::SINGLE, Config::default()))
//!     .collect();
//!
//! // A client writes through s0.
//! servers[0].on_client_write(ClientId(0), RequestId(1), Value::from_u64(42));
//!
//! // Drive the ring until quiescent: pull frames, deliver to successors.
//! let mut acks = Vec::new();
//! loop {
//!     let mut progressed = false;
//!     for i in 0..3 {
//!         if let Some(frame) = servers[i].next_frame() {
//!             let successor = servers[i].successor().unwrap();
//!             acks.extend(servers[successor.index()].on_frame(frame));
//!             progressed = true;
//!         }
//!     }
//!     if !progressed {
//!         break;
//!     }
//! }
//!
//! // The write completed and every server stores the value.
//! assert!(matches!(acks[0], Action::WriteAck { .. }));
//! for s in &servers {
//!     assert_eq!(s.stored().1, &Value::from_u64(42));
//! }
//! ```

// `deny` rather than `forbid`: the `snapshot` module (and only it) opts
// back in for the seqlock read cell's `UnsafeCell` slot — the one place
// safe Rust cannot express the wait-free published-snapshot protocol.
// hts-check rule L5 requires a SAFETY comment on every unsafe block.
#![deny(unsafe_code)]
#![warn(missing_docs)]

mod client;
mod config;
mod fairness;
mod lanes;
mod mc_shim;
mod multi;
mod pending;
mod ring;
mod round_adapter;
mod server;
mod session;
mod sim_adapter;
mod snapshot;

pub use client::{ClientCore, Completion};
pub use config::{BatchConfig, Config, Durability, FairnessMode};
pub use fairness::{ForwardScheduler, Selection};
pub use lanes::LaneMap;
pub use multi::MultiObjectServer;
pub use pending::PendingSet;
pub use ring::RingView;
pub use round_adapter::{RoundClient, RoundClientStats, RoundServer};
pub use server::{Action, ServerCore, ServerStats};
pub use session::{SessionCore, REPROBE_PERIOD};
pub use sim_adapter::{unique_value, ClientStats, OpMix, SimClient, SimServer, WorkloadConfig};
pub use snapshot::{ReadCell, ReadCellRegistry};
