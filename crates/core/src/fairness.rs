//! The fairness scheduler for ring transmission slots.
//!
//! Each time a server's ring NIC can transmit, it must choose between
//! **initiating** a write from its own client queue and **forwarding** a
//! pre-write received from its predecessor. The paper's rule (lines 53–75):
//! count, per originating server, how many of its messages this server has
//! forwarded (`nb_msg`), and serve the origin with the smallest count — the
//! local server competes as its own origin, its counter incremented by
//! initiations. When nothing waits to be forwarded, the counters reset.
//!
//! This guarantees every origin a `1/n` share of every ring link, which is
//! what bounds write latency (`l_max` in §4.2) and makes the write
//! throughput claim (1 per round) hold under saturation. The
//! [`FairnessMode::LocalFirst`] and [`FairnessMode::ForwardFirst`]
//! ablations demonstrate the starvation each naive policy causes.

use std::collections::{BTreeMap, VecDeque};

use hts_types::{PreWrite, ServerId, Value};

use crate::FairnessMode;

/// What the scheduler picked for the next ring transmission slot.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Selection {
    /// Initiate the next write from the local client queue.
    InitiateLocal,
    /// Forward this queued pre-write.
    Forward(PreWrite),
}

/// Per-origin forward queues plus the paper's `nb_msg` counters.
#[derive(Debug, Clone, Default)]
pub struct ForwardScheduler {
    queues: BTreeMap<ServerId, VecDeque<(u64, PreWrite)>>,
    nb_msg: BTreeMap<ServerId, u64>,
    arrival_seq: u64,
    mode: FairnessMode,
}

impl ForwardScheduler {
    /// Creates an empty scheduler with the given policy.
    pub fn new(mode: FairnessMode) -> Self {
        ForwardScheduler {
            mode,
            ..ForwardScheduler::default()
        }
    }

    /// Queues a received pre-write for forwarding (per-origin FIFO).
    pub fn enqueue(&mut self, pw: PreWrite) {
        self.arrival_seq += 1;
        let seq = self.arrival_seq;
        self.queues
            .entry(pw.tag.origin)
            .or_default()
            .push_back((seq, pw));
    }

    /// Re-queues pre-writes at the **front** of their origin's queue,
    /// preserving the given (ascending-tag) order — used by crash recovery,
    /// where retransmitted pre-writes must precede anything queued later
    /// from the same origin or downstream duplicate suppression would
    /// discard the fresher entries.
    pub fn enqueue_front(&mut self, pre_writes: Vec<PreWrite>) {
        for pw in pre_writes.into_iter().rev() {
            let queue = self.queues.entry(pw.tag.origin).or_default();
            queue.push_front((0, pw)); // seq 0: logically "oldest"
        }
    }

    /// Whether any pre-write waits to be forwarded.
    pub fn has_queued(&self) -> bool {
        self.queues.values().any(|q| !q.is_empty())
    }

    /// Whether any queued pre-write is a recovery re-circulation — the
    /// resync backlog a rejoin announcement must stay behind (FIFO links
    /// make the announcement's arrival prove the backlog arrived first).
    pub fn has_recovery_queued(&self) -> bool {
        self.queues.values().flatten().any(|(_, pw)| pw.recovery)
    }

    /// Whether a recovery copy of exactly `tag` still waits to be
    /// forwarded. While it does, the successor (a resyncing rejoiner)
    /// has not seen the value yet, so a commit notice for the tag must
    /// carry the value explicitly instead of being tag-only — fairness
    /// across origins can otherwise let the notice overtake the copy.
    pub fn has_recovery_for(&self, tag: hts_types::Tag) -> bool {
        self.queues
            .get(&tag.origin)
            .is_some_and(|q| q.iter().any(|(_, pw)| pw.recovery && pw.tag == tag))
    }

    /// The value of a queued-but-not-yet-forwarded pre-write for `tag`,
    /// if any. The pending cache is only filled at *forward* time (paper
    /// line 71), but after a splice-and-rejoin a commit notice can reach
    /// a server while the matching pre-write still waits in its forward
    /// queue (the commit's recovery circulation bypassed it): the value
    /// is resolvable from here.
    pub fn queued_value(&self, tag: hts_types::Tag) -> Option<&Value> {
        self.queues
            .get(&tag.origin)?
            .iter()
            .find(|(_, pw)| pw.tag == tag)
            .map(|(_, pw)| &pw.value)
    }

    /// Total queued pre-writes.
    pub fn queued_len(&self) -> usize {
        self.queues.values().map(|q| q.len()).sum()
    }

    /// Removes and returns every queued pre-write originated by `origin`
    /// (used by orphan adoption: entries this server never forwarded were
    /// seen by no one else and are simply re-issued).
    pub fn drain_origin(&mut self, origin: ServerId) -> Vec<PreWrite> {
        self.queues
            .remove(&origin)
            .map(|q| q.into_iter().map(|(_, pw)| pw).collect())
            .unwrap_or_default()
    }

    /// Records that the local server initiated a write (counts against its
    /// own origin, paper line 26).
    pub fn record_initiation(&mut self, me: ServerId) {
        *self.nb_msg.entry(me).or_insert(0) += 1;
    }

    /// Picks the next transmission: a local initiation (only offered when
    /// `want_local`) or a queued pre-write. Returns `None` when there is
    /// nothing to send.
    ///
    /// Counter bookkeeping (increments, the empty-queue reset) happens
    /// here, except the local-initiation increment, which the caller
    /// triggers via [`record_initiation`](Self::record_initiation) once the
    /// write is actually created.
    pub fn select(&mut self, me: ServerId, want_local: bool) -> Option<Selection> {
        match self.mode {
            FairnessMode::Fair => self.select_fair(me, want_local),
            FairnessMode::LocalFirst => {
                if want_local {
                    Some(Selection::InitiateLocal)
                } else {
                    self.pop_oldest().map(Selection::Forward)
                }
            }
            FairnessMode::ForwardFirst => {
                self.pop_oldest().map(Selection::Forward).or(if want_local {
                    Some(Selection::InitiateLocal)
                } else {
                    None
                })
            }
        }
    }

    fn select_fair(&mut self, me: ServerId, want_local: bool) -> Option<Selection> {
        if !self.has_queued() {
            // Paper line 55: reset the counters whenever the forward queue
            // drains; fairness is relative to the current busy period.
            self.nb_msg.clear();
            return want_local.then_some(Selection::InitiateLocal);
        }
        // Candidates: origins with queued traffic, plus (if a local write
        // waits) this server itself. Minimal nb_msg wins; ties break by
        // smallest server id — any deterministic rule works, the paper
        // leaves it open.
        let mut best: Option<(u64, ServerId)> = None;
        let mut consider = |sched: &Self, origin: ServerId| {
            let count = sched.nb_msg.get(&origin).copied().unwrap_or(0);
            if best.is_none_or(|(c, o)| (count, origin) < (c, o)) {
                best = Some((count, origin));
            }
        };
        for (origin, queue) in &self.queues {
            if !queue.is_empty() {
                consider(self, *origin);
            }
        }
        if want_local {
            consider(self, me);
        }
        let (_, chosen) = best?;
        if chosen == me && want_local {
            return Some(Selection::InitiateLocal);
        }
        // `chosen` came from a non-empty queue above, so the lookups
        // cannot miss; `?` still beats a panic if that ever drifts.
        let (_, pw) = self.queues.get_mut(&chosen)?.pop_front()?;
        *self.nb_msg.entry(chosen).or_insert(0) += 1;
        Some(Selection::Forward(pw))
    }

    /// Pops the globally oldest queued pre-write (arrival order).
    fn pop_oldest(&mut self) -> Option<PreWrite> {
        let origin = self
            .queues
            .iter()
            .filter_map(|(origin, q)| q.front().map(|(arrival, _)| (*arrival, *origin)))
            .min()
            .map(|(_, o)| o)?;
        let (_, pw) = self.queues.get_mut(&origin)?.pop_front()?;
        Some(pw)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hts_types::{Tag, Value};

    fn pw(ts: u64, origin: u16) -> PreWrite {
        PreWrite {
            tag: Tag::new(ts, ServerId(origin)),
            value: Value::from_u64(ts),
            recovery: false,
        }
    }

    fn origin_of(sel: Selection) -> ServerId {
        match sel {
            Selection::Forward(p) => p.tag.origin,
            Selection::InitiateLocal => ServerId(u16::MAX),
        }
    }

    #[test]
    fn empty_scheduler_offers_local_only_when_wanted() {
        let mut s = ForwardScheduler::new(FairnessMode::Fair);
        assert_eq!(s.select(ServerId(0), false), None);
        assert_eq!(s.select(ServerId(0), true), Some(Selection::InitiateLocal));
    }

    #[test]
    fn fair_mode_alternates_between_origins() {
        let mut s = ForwardScheduler::new(FairnessMode::Fair);
        for ts in 1..=3 {
            s.enqueue(pw(ts, 1));
            s.enqueue(pw(ts, 2));
        }
        let mut picks = Vec::new();
        for _ in 0..6 {
            picks.push(origin_of(s.select(ServerId(0), false).unwrap()));
        }
        assert_eq!(
            picks,
            vec![
                ServerId(1),
                ServerId(2),
                ServerId(1),
                ServerId(2),
                ServerId(1),
                ServerId(2)
            ]
        );
    }

    #[test]
    fn fair_mode_gives_local_its_share() {
        let mut s = ForwardScheduler::new(FairnessMode::Fair);
        for ts in 1..=4 {
            s.enqueue(pw(ts, 1));
        }
        // Local writes wait too: me=0 competes with origin 1.
        let first = s.select(ServerId(0), true).unwrap();
        assert_eq!(first, Selection::InitiateLocal); // both at 0, id 0 wins tie
        s.record_initiation(ServerId(0));
        let second = s.select(ServerId(0), true).unwrap();
        assert!(matches!(second, Selection::Forward(_)));
        let third = s.select(ServerId(0), true).unwrap();
        assert_eq!(third, Selection::InitiateLocal);
        s.record_initiation(ServerId(0));
        let fourth = s.select(ServerId(0), true).unwrap();
        assert!(matches!(fourth, Selection::Forward(_)));
    }

    #[test]
    fn per_origin_fifo_is_preserved() {
        let mut s = ForwardScheduler::new(FairnessMode::Fair);
        s.enqueue(pw(1, 1));
        s.enqueue(pw(2, 1));
        s.enqueue(pw(3, 1));
        let tags: Vec<u64> = (0..3)
            .map(|_| match s.select(ServerId(0), false).unwrap() {
                Selection::Forward(p) => p.tag.ts,
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(tags, vec![1, 2, 3]);
    }

    #[test]
    fn counters_reset_when_queues_drain() {
        let mut s = ForwardScheduler::new(FairnessMode::Fair);
        s.enqueue(pw(1, 1));
        let _ = s.select(ServerId(0), false); // nb_msg[1] = 1
        assert!(!s.has_queued());
        // Queue drained: next select resets counters.
        assert_eq!(s.select(ServerId(0), false), None);
        s.enqueue(pw(2, 2));
        s.enqueue(pw(2, 1));
        // After reset both origins are at 0; smallest id (1) wins the tie.
        assert_eq!(
            origin_of(s.select(ServerId(0), false).unwrap()),
            ServerId(1)
        );
    }

    #[test]
    fn local_first_starves_the_ring() {
        let mut s = ForwardScheduler::new(FairnessMode::LocalFirst);
        s.enqueue(pw(1, 1));
        for _ in 0..10 {
            assert_eq!(s.select(ServerId(0), true), Some(Selection::InitiateLocal));
        }
        assert_eq!(s.queued_len(), 1); // never forwarded
    }

    #[test]
    fn forward_first_starves_local_writes() {
        let mut s = ForwardScheduler::new(FairnessMode::ForwardFirst);
        for ts in 1..=10 {
            s.enqueue(pw(ts, 1));
        }
        for _ in 0..10 {
            assert!(matches!(
                s.select(ServerId(0), true),
                Some(Selection::Forward(_))
            ));
        }
        // Only once the ring is empty does the local write go.
        assert_eq!(s.select(ServerId(0), true), Some(Selection::InitiateLocal));
    }

    #[test]
    fn enqueue_front_precedes_queued_traffic_of_same_origin() {
        let mut s = ForwardScheduler::new(FairnessMode::Fair);
        s.enqueue(pw(5, 1));
        s.enqueue_front(vec![pw(2, 1), pw(3, 1)]);
        let tags: Vec<u64> = (0..3)
            .map(|_| match s.select(ServerId(0), false).unwrap() {
                Selection::Forward(p) => p.tag.ts,
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(tags, vec![2, 3, 5]);
    }

    #[test]
    fn drain_origin_removes_only_that_origin() {
        let mut s = ForwardScheduler::new(FairnessMode::Fair);
        s.enqueue(pw(1, 1));
        s.enqueue(pw(2, 2));
        s.enqueue(pw(3, 1));
        let drained = s.drain_origin(ServerId(1));
        assert_eq!(drained.len(), 2);
        assert_eq!(drained[0].tag.ts, 1);
        assert_eq!(drained[1].tag.ts, 3);
        assert_eq!(s.queued_len(), 1);
    }
}
