//! The pipelined client session state machine.
//!
//! [`SessionCore`] generalizes the paper's sequential client (§3) to a
//! **window** of concurrent in-flight operations multiplexed over one
//! logical channel: every request keeps its own retry state, replies
//! complete out of order (keyed by [`RequestId`]), and the alive-map and
//! server-routing policy are shared across the window. A window of 1 is
//! exactly the paper's client — [`ClientCore`](crate::ClientCore) is that
//! thin wrapper — while larger windows turn one transport connection into
//! an open-loop request pipeline (the load model the throughput analyses
//! of CAS/SODA-style algorithms assume).
//!
//! Like the rest of `hts-core` this is sans-io: transports own sockets
//! and timers, the core just decides what to send where next.

use std::collections::BTreeMap;

use hts_types::{ClientId, Message, ObjectId, RequestId, ServerId, Value};

/// A finished operation, reported by [`SessionCore::on_reply`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Completion {
    /// The request that finished.
    pub request: RequestId,
    /// `None` for writes; the value read for reads.
    pub value: Option<Value>,
}

/// Suspected-dead servers are optimistically re-probed every this many
/// launched operations: a launch that would have skipped the dead
/// preferred server targets it anyway, so a *restarted* server is
/// re-discovered within one probe period (costing at most one extra
/// retry timeout when the suspicion was right). Transports additionally
/// call [`SessionCore::on_server_up`] on successful reconnects, which
/// clears the suspicion immediately.
pub const REPROBE_PERIOD: u64 = 16;

#[derive(Debug, Clone)]
struct Inflight {
    /// Message to (re-)send.
    message: Message,
    server: ServerId,
    attempts: u32,
}

/// One client session's request/retry logic with up to `window`
/// operations in flight concurrently.
///
/// Each request is re-issued independently on timeout (to the next server
/// believed alive, under the same request id — the paper's retry rule),
/// and completions are delivered in whatever order replies arrive. The
/// alive-map is shared: one dead-server verdict benefits every in-flight
/// and future request, and it **recovers** — via [`on_server_up`]
/// (transport observed a successful reconnect), via a periodic re-probe
/// of suspected servers (see [`REPROBE_PERIOD`]), and via a full reset
/// whenever a request's retries complete a whole cycle of the ring
/// (every server suspect ⇒ the suspicions are stale).
///
/// [`on_server_up`]: SessionCore::on_server_up
///
/// # Examples
///
/// ```
/// use hts_core::SessionCore;
/// use hts_types::{ClientId, Message, ObjectId, ServerId, Value};
///
/// let mut s = SessionCore::new(ClientId(0), ObjectId::SINGLE, 3, ServerId(0), 8);
/// let (r1, _, _) = s.begin_write(Value::from_u64(1));
/// let (r2, _, _) = s.begin_write(Value::from_u64(2));
/// assert_eq!(s.in_flight(), 2);
/// // Replies may land out of order; each completes its own request.
/// let done = s.on_reply(&Message::WriteAck { object: ObjectId::SINGLE, request: r2 });
/// assert_eq!(done.unwrap().request, r2);
/// assert!(s.is_inflight(r1));
/// ```
#[derive(Debug, Clone)]
pub struct SessionCore {
    id: ClientId,
    object: ObjectId,
    n: u16,
    alive: Vec<bool>,
    preferred: ServerId,
    window: usize,
    next_request: u64,
    launches: u64,
    inflight: BTreeMap<RequestId, Inflight>,
}

impl SessionCore {
    /// Creates a session of a ring of `n` servers that prefers talking to
    /// `preferred` (the paper pins client machines to servers) and admits
    /// up to `window` concurrent operations.
    ///
    /// # Panics
    ///
    /// Panics if `preferred` is outside `0..n`, `n` is zero, or `window`
    /// is zero.
    pub fn new(id: ClientId, object: ObjectId, n: u16, preferred: ServerId, window: usize) -> Self {
        assert!(n > 0, "a ring needs at least one server");
        assert!(preferred.0 < n, "preferred server outside ring");
        assert!(window > 0, "a session needs a window of at least one");
        SessionCore {
            id,
            object,
            n,
            alive: vec![true; usize::from(n)],
            preferred,
            window,
            next_request: 0,
            launches: 0,
            inflight: BTreeMap::new(),
        }
    }

    /// This session's client id.
    pub fn id(&self) -> ClientId {
        self.id
    }

    /// The default object operations target.
    pub fn object(&self) -> ObjectId {
        self.object
    }

    /// The maximum number of concurrent in-flight operations.
    pub fn window(&self) -> usize {
        self.window
    }

    /// Operations currently in flight.
    pub fn in_flight(&self) -> usize {
        self.inflight.len()
    }

    /// Whether another operation may begin without exceeding the window.
    pub fn has_capacity(&self) -> bool {
        self.inflight.len() < self.window
    }

    /// Whether `request` is still awaiting its completion.
    pub fn is_inflight(&self, request: RequestId) -> bool {
        self.inflight.contains_key(&request)
    }

    /// The server `request` was last sent to, while it is in flight.
    pub fn server_of(&self, request: RequestId) -> Option<ServerId> {
        self.inflight.get(&request).map(|i| i.server)
    }

    /// Re-sends consumed by `request` so far (timeout and server-down
    /// re-routes), while it is in flight. Transports bound their retry
    /// cycles on this instead of keeping a parallel counter.
    pub fn attempts_of(&self, request: RequestId) -> Option<u32> {
        self.inflight.get(&request).map(|i| i.attempts)
    }

    /// The in-flight request ids, oldest first.
    pub fn inflight_requests(&self) -> impl Iterator<Item = RequestId> + '_ {
        self.inflight.keys().copied()
    }

    /// The current alive-map (suspicions are transport hints, never
    /// correctness: a fully-suspect map still routes round-robin).
    pub fn believed_alive(&self) -> &[bool] {
        &self.alive
    }

    /// Starts a write of the default object; returns
    /// `(request, server, message to send)`.
    ///
    /// # Panics
    ///
    /// Panics if the window is full (check [`has_capacity`](Self::has_capacity)).
    pub fn begin_write(&mut self, value: Value) -> (RequestId, ServerId, Message) {
        self.begin_write_to(self.object, value)
    }

    /// Starts a write of an explicit object (multi-register deployments).
    ///
    /// # Panics
    ///
    /// Panics if the window is full.
    pub fn begin_write_to(
        &mut self,
        object: ObjectId,
        value: Value,
    ) -> (RequestId, ServerId, Message) {
        let request = self.fresh_request();
        let message = Message::WriteReq {
            object,
            request,
            value,
        };
        self.launch(request, message)
    }

    /// Starts a read of the default object; returns
    /// `(request, server, message to send)`.
    ///
    /// # Panics
    ///
    /// Panics if the window is full.
    pub fn begin_read(&mut self) -> (RequestId, ServerId, Message) {
        self.begin_read_from(self.object)
    }

    /// Starts a read of an explicit object (multi-register deployments).
    ///
    /// # Panics
    ///
    /// Panics if the window is full.
    pub fn begin_read_from(&mut self, object: ObjectId) -> (RequestId, ServerId, Message) {
        let request = self.fresh_request();
        let message = Message::ReadReq { object, request };
        self.launch(request, message)
    }

    /// Feeds a server reply; returns the completion if it answers an
    /// in-flight request. Replies complete **out of order** — whichever
    /// request the reply names finishes. Duplicate and stale replies
    /// (an earlier attempt's answer arriving after the retry already
    /// completed, or a reply for a request this session never issued)
    /// return `None`.
    pub fn on_reply(&mut self, reply: &Message) -> Option<Completion> {
        let (request, value) = match reply {
            Message::WriteAck { request, .. } => (*request, None),
            Message::ReadAck { request, value, .. } => (*request, Some(value.clone())),
            // Requests, ring traffic and stats exchanges are not register
            // replies; ignored by name so a new wire variant forces a
            // decision here. (Stats run outside the session window — the
            // transport answers them without consuming an op slot.)
            Message::WriteReq { .. }
            | Message::ReadReq { .. }
            | Message::StatsRequest { .. }
            | Message::StatsReply { .. }
            | Message::Ring(_)
            | Message::RingBatch(_) => return None,
        };
        self.inflight.remove(&request).map(|inflight| {
            // The answering server (almost surely the request's current
            // target — a reply raced by a retry at worst flips the wrong
            // hint, costing one future timeout) is evidently alive:
            // completions heal the map, so a re-probe that succeeds
            // un-shuns a restarted server without transport help.
            if let Some(a) = self.alive.get_mut(inflight.server.index()) {
                *a = true;
            }
            Completion { request, value }
        })
    }

    /// The transport's reply timer fired for `request`: re-issue it to
    /// the next server believed alive. Returns `None` if the request
    /// already completed (stale timer). Retry state is **per request**:
    /// other in-flight operations keep their servers and attempt counts.
    ///
    /// When the retries of this one request have walked the entire ring
    /// (a full dead cycle), the shared alive-map resets to all-alive:
    /// either every server really is down (and correctness never depended
    /// on the map) or the suspicions have gone stale — e.g. every suspect
    /// has since restarted — and shunning them forever would be a
    /// livelock.
    pub fn on_timeout(&mut self, request: RequestId) -> Option<(ServerId, Message)> {
        let n = self.n;
        let (from, attempts) = {
            let inflight = self.inflight.get_mut(&request)?;
            inflight.attempts += 1;
            (inflight.server, inflight.attempts)
        };
        if attempts % u32::from(n) == 0 {
            // A full cycle of silence: our suspicions bought nothing.
            // Start probing everyone again.
            self.alive.iter_mut().for_each(|a| *a = true);
        }
        let next = self.next_server_after(from);
        hts_metrics::counter!("hts_session_retries_total").inc();
        hts_metrics::flight::record(
            hts_metrics::flight::KIND_OP_RETRY,
            request.0,
            u64::from(from.0),
            u64::from(next.0),
        );
        // Still present: nothing between the two lookups removes entries.
        let inflight = self.inflight.get_mut(&request)?;
        inflight.server = next;
        Some((next, inflight.message.clone()))
    }

    /// The failure detector (or connection teardown) reported `s`
    /// crashed: skip it in future routing, and re-issue **every**
    /// in-flight request that was waiting on it. Returns the re-sends,
    /// oldest request first.
    pub fn on_server_down(&mut self, s: ServerId) -> Vec<(RequestId, ServerId, Message)> {
        if let Some(a) = self.alive.get_mut(s.index()) {
            if *a {
                hts_metrics::counter!("hts_session_server_down_total").inc();
                hts_metrics::flight::record(
                    hts_metrics::flight::KIND_ALIVE_TRANSITION,
                    u64::from(s.0),
                    0,
                    u64::from(self.id.0),
                );
            }
            *a = false;
        }
        let stranded: Vec<RequestId> = self
            .inflight
            .iter()
            .filter(|(_, i)| i.server == s)
            .map(|(r, _)| *r)
            .collect();
        stranded
            .into_iter()
            .filter_map(|request| {
                self.on_timeout(request)
                    .map(|(server, message)| (request, server, message))
            })
            .collect()
    }

    /// The transport observed `s` healthy again (a reconnect succeeded,
    /// typically to a restarted server): clear the suspicion so routing
    /// may prefer it again. In-flight requests keep their current
    /// targets.
    pub fn on_server_up(&mut self, s: ServerId) {
        if let Some(a) = self.alive.get_mut(s.index()) {
            if !*a {
                hts_metrics::counter!("hts_session_server_up_total").inc();
                hts_metrics::flight::record(
                    hts_metrics::flight::KIND_ALIVE_TRANSITION,
                    u64::from(s.0),
                    1,
                    u64::from(self.id.0),
                );
            }
            *a = true;
        }
    }

    /// Abandons an in-flight request (the transport exhausted its retry
    /// budget). Returns whether it was still in flight. A late reply for
    /// an aborted request is treated as stale.
    pub fn abort(&mut self, request: RequestId) -> bool {
        self.inflight.remove(&request).is_some()
    }

    fn fresh_request(&mut self) -> RequestId {
        self.next_request += 1;
        // Request ids are unique per client; transports key replies on
        // (client, request).
        RequestId(self.next_request)
    }

    fn launch(&mut self, request: RequestId, message: Message) -> (RequestId, ServerId, Message) {
        assert!(
            self.has_capacity(),
            "{}: session window of {} full",
            self.id,
            self.window
        );
        self.launches += 1;
        let server = if self.alive[self.preferred.index()] {
            self.preferred
        } else if self.launches.is_multiple_of(REPROBE_PERIOD) {
            // Periodic optimism: aim at the suspected preferred server
            // anyway. A restarted server answers (and the transport's
            // reconnect reports it up); a still-dead one costs this one
            // request a retry timeout.
            self.preferred
        } else {
            self.next_server_after(self.preferred)
        };
        self.inflight.insert(
            request,
            Inflight {
                message: message.clone(),
                server,
                attempts: 0,
            },
        );
        // Occupancy *after* the insert: how full the window runs when ops
        // launch, the pipelining signal the fig1 window ablation varies.
        hts_metrics::histogram!("hts_session_window_inflight").record(self.inflight.len() as u64);
        (request, server, message)
    }

    fn next_server_after(&self, s: ServerId) -> ServerId {
        let n = usize::from(self.n);
        for step in 1..=n {
            let idx = (s.index() + step) % n;
            if self.alive[idx] {
                return ServerId(idx as u16);
            }
        }
        // Everyone suspected: fall back to round-robin anyway (the paper
        // assumes at least one correct server, so suspicion must be wrong).
        ServerId(((s.index() + 1) % n) as u16)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn session(window: usize) -> SessionCore {
        SessionCore::new(ClientId(7), ObjectId::SINGLE, 3, ServerId(1), window)
    }

    fn write_ack(request: RequestId) -> Message {
        Message::WriteAck {
            object: ObjectId::SINGLE,
            request,
        }
    }

    #[test]
    fn window_admits_and_caps_concurrency() {
        let mut s = session(3);
        let (r1, ..) = s.begin_write(Value::from_u64(1));
        let (r2, ..) = s.begin_write(Value::from_u64(2));
        let (r3, ..) = s.begin_write(Value::from_u64(3));
        assert_eq!(s.in_flight(), 3);
        assert!(!s.has_capacity());
        assert!(s.on_reply(&write_ack(r2)).is_some());
        assert!(s.has_capacity());
        assert!(s.is_inflight(r1) && s.is_inflight(r3));
    }

    #[test]
    fn completions_arrive_out_of_order_exactly_once() {
        let mut s = session(4);
        let ids: Vec<RequestId> = (0..4)
            .map(|i| s.begin_write(Value::from_u64(i)).0)
            .collect();
        for &r in [ids[2], ids[0], ids[3], ids[1]].iter() {
            let done = s.on_reply(&write_ack(r)).expect("first reply completes");
            assert_eq!(done.request, r);
            assert!(s.on_reply(&write_ack(r)).is_none(), "duplicate ignored");
        }
        assert_eq!(s.in_flight(), 0);
    }

    #[test]
    fn per_request_retries_are_independent() {
        let mut s = session(2);
        let (r1, s1, _) = s.begin_read();
        let (r2, s2, _) = s.begin_read();
        assert_eq!((s1, s2), (ServerId(1), ServerId(1)));
        let (next, _) = s.on_timeout(r1).expect("retry");
        assert_eq!(next, ServerId(2));
        // r2 is untouched by r1's retry.
        assert_eq!(s.server_of(r2), Some(ServerId(1)));
        assert_eq!(s.server_of(r1), Some(ServerId(2)));
    }

    #[test]
    fn server_down_reroutes_every_stranded_request() {
        let mut s = session(3);
        let (r1, ..) = s.begin_read();
        let (r2, ..) = s.begin_read();
        let (r3, ..) = s.begin_read();
        let resends = s.on_server_down(ServerId(1));
        let rerouted: Vec<RequestId> = resends.iter().map(|(r, ..)| *r).collect();
        assert_eq!(rerouted, vec![r1, r2, r3], "oldest first");
        for (_, server, _) in &resends {
            assert_eq!(*server, ServerId(2));
        }
    }

    #[test]
    fn server_up_recovers_the_preferred_server() {
        let mut s = session(2);
        let resends = s.on_server_down(ServerId(1));
        assert!(resends.is_empty());
        let (r, server, _) = s.begin_read();
        assert_eq!(server, ServerId(2), "dead preferred skipped");
        s.on_server_up(ServerId(1));
        let (_, server, _) = s.begin_read();
        assert_eq!(server, ServerId(1), "recovered preferred used again");
        // The rerouted request kept its target.
        assert_eq!(s.server_of(r), Some(ServerId(2)));
    }

    #[test]
    fn full_dead_cycle_resets_the_alive_map() {
        let mut s = session(1);
        s.on_server_down(ServerId(0));
        s.on_server_down(ServerId(2));
        let (r, server, _) = s.begin_read();
        assert_eq!(server, ServerId(1), "only survivor preferred");
        // Ring walk: 3 timeouts = a full cycle; the map resets.
        s.on_timeout(r);
        s.on_timeout(r);
        assert!(!s.believed_alive()[0]);
        s.on_timeout(r);
        assert!(
            s.believed_alive().iter().all(|&a| a),
            "full cycle of silence resets suspicions"
        );
    }

    #[test]
    fn reprobe_period_revisits_a_dead_preferred() {
        let mut s = session(1);
        s.on_server_down(ServerId(1));
        let mut probed = false;
        for _ in 0..REPROBE_PERIOD {
            let (r, server, _) = s.begin_read();
            if server == ServerId(1) {
                probed = true;
            }
            assert!(s
                .on_reply(&Message::ReadAck {
                    object: ObjectId::SINGLE,
                    request: r,
                    value: Value::bottom(),
                })
                .is_some());
        }
        assert!(probed, "one launch per period probes the suspect");
    }

    #[test]
    fn abort_makes_late_replies_stale() {
        let mut s = session(2);
        let (r1, ..) = s.begin_read();
        assert!(s.abort(r1));
        assert!(!s.abort(r1));
        assert!(s.on_reply(&write_ack(r1)).is_none());
        assert!(s.on_timeout(r1).is_none());
    }

    #[test]
    #[should_panic(expected = "session window of 2 full")]
    fn overfilling_the_window_panics() {
        let mut s = session(2);
        let _ = s.begin_read();
        let _ = s.begin_read();
        let _ = s.begin_read();
    }
}
