//! The client state machine.
//!
//! Clients are oblivious to the ring: they send each request to one server
//! and wait (paper lines 1–10). If the reply times out — the contacted
//! server crashed, or its reply was lost with it — the client re-issues
//! the *same request id* to the next server (paper §3: "when their request
//! times out, they simply re-send it to another server"). Transports own
//! the actual timers; this core just decides what to send next.

use hts_types::{ClientId, Message, ObjectId, RequestId, ServerId, Value};

/// A finished operation, reported by [`ClientCore::on_reply`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Completion {
    /// The request that finished.
    pub request: RequestId,
    /// `None` for writes; the value read for reads.
    pub value: Option<Value>,
}

#[derive(Debug, Clone)]
struct Inflight {
    request: RequestId,
    /// Message to (re-)send.
    message: Message,
    server: ServerId,
    attempts: u32,
}

/// One client's request/retry logic. At most one operation is in flight at
/// a time (the paper's clients are sequential; harnesses emulate load by
/// running many `ClientCore`s, exactly like the paper's client machines).
///
/// # Examples
///
/// ```
/// use hts_core::{ClientCore, Completion};
/// use hts_types::{ClientId, Message, ObjectId, ServerId, Value};
///
/// let mut c = ClientCore::new(ClientId(0), ObjectId::SINGLE, 3, ServerId(1));
/// let (request, server, msg) = c.begin_write(Value::from_u64(7));
/// assert_eq!(server, ServerId(1));
/// // ... transport sends msg, server replies ...
/// let done = c.on_reply(&Message::WriteAck { object: ObjectId::SINGLE, request });
/// assert_eq!(done, Some(Completion { request, value: None }));
/// ```
#[derive(Debug, Clone)]
pub struct ClientCore {
    id: ClientId,
    object: ObjectId,
    n: u16,
    alive: Vec<bool>,
    preferred: ServerId,
    next_request: u64,
    inflight: Option<Inflight>,
}

impl ClientCore {
    /// Creates a client of a ring of `n` servers that prefers talking to
    /// `preferred` (the paper pins client machines to servers).
    ///
    /// # Panics
    ///
    /// Panics if `preferred` is outside `0..n` or `n` is zero.
    pub fn new(id: ClientId, object: ObjectId, n: u16, preferred: ServerId) -> Self {
        assert!(n > 0, "a ring needs at least one server");
        assert!(preferred.0 < n, "preferred server outside ring");
        ClientCore {
            id,
            object,
            n,
            alive: vec![true; usize::from(n)],
            preferred,
            next_request: 0,
            inflight: None,
        }
    }

    /// This client's id.
    pub fn id(&self) -> ClientId {
        self.id
    }

    /// Whether an operation is currently in flight.
    pub fn is_busy(&self) -> bool {
        self.inflight.is_some()
    }

    /// The server the in-flight request was last sent to.
    pub fn current_server(&self) -> Option<ServerId> {
        self.inflight.as_ref().map(|i| i.server)
    }

    /// Starts a write of the default object; returns
    /// `(request, server, message to send)`.
    ///
    /// # Panics
    ///
    /// Panics if an operation is already in flight.
    pub fn begin_write(&mut self, value: Value) -> (RequestId, ServerId, Message) {
        self.begin_write_to(self.object, value)
    }

    /// Starts a write of an explicit object (multi-register deployments).
    ///
    /// # Panics
    ///
    /// Panics if an operation is already in flight.
    pub fn begin_write_to(
        &mut self,
        object: ObjectId,
        value: Value,
    ) -> (RequestId, ServerId, Message) {
        let request = self.fresh_request();
        let message = Message::WriteReq {
            object,
            request,
            value,
        };
        self.launch(request, message)
    }

    /// Starts a read of the default object; returns
    /// `(request, server, message to send)`.
    ///
    /// # Panics
    ///
    /// Panics if an operation is already in flight.
    pub fn begin_read(&mut self) -> (RequestId, ServerId, Message) {
        self.begin_read_from(self.object)
    }

    /// Starts a read of an explicit object (multi-register deployments).
    ///
    /// # Panics
    ///
    /// Panics if an operation is already in flight.
    pub fn begin_read_from(&mut self, object: ObjectId) -> (RequestId, ServerId, Message) {
        let request = self.fresh_request();
        let message = Message::ReadReq { object, request };
        self.launch(request, message)
    }

    /// Feeds a server reply; returns the completion if it answers the
    /// in-flight request (stale or duplicate replies return `None`).
    pub fn on_reply(&mut self, reply: &Message) -> Option<Completion> {
        let (request, value) = match reply {
            Message::WriteAck { request, .. } => (*request, None),
            Message::ReadAck { request, value, .. } => (*request, Some(value.clone())),
            _ => return None,
        };
        match &self.inflight {
            Some(inflight) if inflight.request == request => {
                self.inflight = None;
                Some(Completion { request, value })
            }
            _ => None,
        }
    }

    /// The transport's reply timer fired for `request`: re-issue it to the
    /// next server believed alive. Returns `None` if the request already
    /// completed (stale timer) — or panics never.
    pub fn on_timeout(&mut self, request: RequestId) -> Option<(ServerId, Message)> {
        let inflight = self.inflight.as_mut()?;
        if inflight.request != request {
            return None;
        }
        // The silent server is suspect: deprioritize it for future ops.
        let from = inflight.server;
        inflight.attempts += 1;
        let next = self.next_server_after(from);
        let inflight = self.inflight.as_mut().expect("checked above");
        inflight.server = next;
        Some((next, inflight.message.clone()))
    }

    /// The failure detector (or connection teardown) reported `s` crashed:
    /// skip it in future retries. If the in-flight request targets `s`,
    /// returns the immediate re-send.
    pub fn on_server_down(&mut self, s: ServerId) -> Option<(ServerId, Message)> {
        if let Some(a) = self.alive.get_mut(s.index()) {
            *a = false;
        }
        match &self.inflight {
            Some(inflight) if inflight.server == s => {
                let request = inflight.request;
                self.on_timeout(request)
            }
            _ => None,
        }
    }

    fn fresh_request(&mut self) -> RequestId {
        self.next_request += 1;
        // Request ids are unique per client; transports key replies on
        // (client, request).
        RequestId(self.next_request)
    }

    fn launch(&mut self, request: RequestId, message: Message) -> (RequestId, ServerId, Message) {
        assert!(
            self.inflight.is_none(),
            "{}: operation already in flight",
            self.id
        );
        let server = if self.alive[self.preferred.index()] {
            self.preferred
        } else {
            self.next_server_after(self.preferred)
        };
        self.inflight = Some(Inflight {
            request,
            message: message.clone(),
            server,
            attempts: 0,
        });
        (request, server, message)
    }

    fn next_server_after(&self, s: ServerId) -> ServerId {
        let n = usize::from(self.n);
        for step in 1..=n {
            let idx = (s.index() + step) % n;
            if self.alive[idx] {
                return ServerId(idx as u16);
            }
        }
        // Everyone suspected: fall back to round-robin anyway (the paper
        // assumes at least one correct server, so suspicion must be wrong).
        ServerId(((s.index() + 1) % n) as u16)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn client() -> ClientCore {
        ClientCore::new(ClientId(7), ObjectId::SINGLE, 3, ServerId(1))
    }

    #[test]
    fn write_round_trip() {
        let mut c = client();
        let (request, server, msg) = c.begin_write(Value::from_u64(1));
        assert_eq!(server, ServerId(1));
        assert!(matches!(msg, Message::WriteReq { .. }));
        assert!(c.is_busy());
        let done = c.on_reply(&Message::WriteAck {
            object: ObjectId::SINGLE,
            request,
        });
        assert_eq!(
            done,
            Some(Completion {
                request,
                value: None
            })
        );
        assert!(!c.is_busy());
    }

    #[test]
    fn read_round_trip_returns_value() {
        let mut c = client();
        let (request, _server, _msg) = c.begin_read();
        let done = c.on_reply(&Message::ReadAck {
            object: ObjectId::SINGLE,
            request,
            value: Value::from_u64(9),
        });
        assert_eq!(done.unwrap().value, Some(Value::from_u64(9)));
    }

    #[test]
    fn stale_and_foreign_replies_ignored() {
        let mut c = client();
        let (request, _, _) = c.begin_read();
        // Wrong request id.
        assert!(c
            .on_reply(&Message::ReadAck {
                object: ObjectId::SINGLE,
                request: RequestId(999),
                value: Value::bottom(),
            })
            .is_none());
        // Real reply still works, exactly once.
        assert!(c
            .on_reply(&Message::ReadAck {
                object: ObjectId::SINGLE,
                request,
                value: Value::bottom(),
            })
            .is_some());
        assert!(c
            .on_reply(&Message::ReadAck {
                object: ObjectId::SINGLE,
                request,
                value: Value::bottom(),
            })
            .is_none());
    }

    #[test]
    fn timeout_walks_the_ring() {
        let mut c = client();
        let (request, first, _) = c.begin_write(Value::from_u64(1));
        assert_eq!(first, ServerId(1));
        let (second, msg) = c.on_timeout(request).unwrap();
        assert_eq!(second, ServerId(2));
        assert!(matches!(msg, Message::WriteReq { .. }));
        let (third, _) = c.on_timeout(request).unwrap();
        assert_eq!(third, ServerId(0));
        // Stale timer after completion: ignored.
        c.on_reply(&Message::WriteAck {
            object: ObjectId::SINGLE,
            request,
        });
        assert!(c.on_timeout(request).is_none());
    }

    #[test]
    fn server_down_triggers_immediate_retry_and_future_avoidance() {
        let mut c = client();
        let (_, first, _) = c.begin_read();
        assert_eq!(first, ServerId(1));
        let (retry, _) = c.on_server_down(ServerId(1)).unwrap();
        assert_eq!(retry, ServerId(2));
        // Complete, then a fresh op avoids the dead preferred server.
        let req = c.current_server();
        assert_eq!(req, Some(ServerId(2)));
        let inflight = c.inflight.clone().unwrap();
        c.on_reply(&Message::ReadAck {
            object: ObjectId::SINGLE,
            request: inflight.request,
            value: Value::bottom(),
        });
        let (_, server, _) = c.begin_read();
        assert_eq!(server, ServerId(2));
    }

    #[test]
    fn down_report_for_other_server_does_not_resend() {
        let mut c = client();
        let (_, first, _) = c.begin_read();
        assert_eq!(first, ServerId(1));
        assert!(c.on_server_down(ServerId(0)).is_none());
    }

    #[test]
    #[should_panic(expected = "already in flight")]
    fn overlapping_operations_panic() {
        let mut c = client();
        let _ = c.begin_read();
        let _ = c.begin_read();
    }
}
