//! The sequential client state machine.
//!
//! Clients are oblivious to the ring: they send each request to one server
//! and wait (paper lines 1–10). If the reply times out — the contacted
//! server crashed, or its reply was lost with it — the client re-issues
//! the *same request id* to the next server (paper §3: "when their request
//! times out, they simply re-send it to another server"). Transports own
//! the actual timers; this core just decides what to send next.
//!
//! Since the pipelined-session refactor, [`ClientCore`] is a thin
//! window-of-1 wrapper over [`SessionCore`]: the paper's sequential
//! client is exactly a session that admits one in-flight operation.

use hts_types::{ClientId, Message, ObjectId, RequestId, ServerId, Value};

pub use crate::session::Completion;
use crate::session::SessionCore;

/// One client's request/retry logic. At most one operation is in flight at
/// a time (the paper's clients are sequential; harnesses emulate load by
/// running many `ClientCore`s, exactly like the paper's client machines).
/// For many concurrent operations over one channel, use the underlying
/// [`SessionCore`] with a larger window.
///
/// # Examples
///
/// ```
/// use hts_core::{ClientCore, Completion};
/// use hts_types::{ClientId, Message, ObjectId, ServerId, Value};
///
/// let mut c = ClientCore::new(ClientId(0), ObjectId::SINGLE, 3, ServerId(1));
/// let (request, server, msg) = c.begin_write(Value::from_u64(7));
/// assert_eq!(server, ServerId(1));
/// // ... transport sends msg, server replies ...
/// let done = c.on_reply(&Message::WriteAck { object: ObjectId::SINGLE, request });
/// assert_eq!(done, Some(Completion { request, value: None }));
/// ```
#[derive(Debug, Clone)]
pub struct ClientCore {
    session: SessionCore,
}

impl ClientCore {
    /// Creates a client of a ring of `n` servers that prefers talking to
    /// `preferred` (the paper pins client machines to servers).
    ///
    /// # Panics
    ///
    /// Panics if `preferred` is outside `0..n` or `n` is zero.
    pub fn new(id: ClientId, object: ObjectId, n: u16, preferred: ServerId) -> Self {
        ClientCore {
            session: SessionCore::new(id, object, n, preferred, 1),
        }
    }

    /// This client's id.
    pub fn id(&self) -> ClientId {
        self.session.id()
    }

    /// Whether an operation is currently in flight.
    pub fn is_busy(&self) -> bool {
        self.session.in_flight() > 0
    }

    /// The server the in-flight request was last sent to.
    pub fn current_server(&self) -> Option<ServerId> {
        let request = self.session.inflight_requests().next()?;
        self.session.server_of(request)
    }

    /// The current alive-map (see [`SessionCore::believed_alive`]).
    pub fn believed_alive(&self) -> &[bool] {
        self.session.believed_alive()
    }

    /// Starts a write of the default object; returns
    /// `(request, server, message to send)`.
    ///
    /// # Panics
    ///
    /// Panics if an operation is already in flight.
    pub fn begin_write(&mut self, value: Value) -> (RequestId, ServerId, Message) {
        self.begin_write_to(self.session.object(), value)
    }

    /// Starts a write of an explicit object (multi-register deployments).
    ///
    /// # Panics
    ///
    /// Panics if an operation is already in flight.
    pub fn begin_write_to(
        &mut self,
        object: ObjectId,
        value: Value,
    ) -> (RequestId, ServerId, Message) {
        self.assert_idle();
        self.session.begin_write_to(object, value)
    }

    /// Starts a read of the default object; returns
    /// `(request, server, message to send)`.
    ///
    /// # Panics
    ///
    /// Panics if an operation is already in flight.
    pub fn begin_read(&mut self) -> (RequestId, ServerId, Message) {
        self.begin_read_from(self.session.object())
    }

    /// Starts a read of an explicit object (multi-register deployments).
    ///
    /// # Panics
    ///
    /// Panics if an operation is already in flight.
    pub fn begin_read_from(&mut self, object: ObjectId) -> (RequestId, ServerId, Message) {
        self.assert_idle();
        self.session.begin_read_from(object)
    }

    /// Feeds a server reply; returns the completion if it answers the
    /// in-flight request (stale or duplicate replies return `None`).
    pub fn on_reply(&mut self, reply: &Message) -> Option<Completion> {
        self.session.on_reply(reply)
    }

    /// The transport's reply timer fired for `request`: re-issue it to the
    /// next server believed alive. Returns `None` if the request already
    /// completed (stale timer) — or panics never.
    pub fn on_timeout(&mut self, request: RequestId) -> Option<(ServerId, Message)> {
        self.session.on_timeout(request)
    }

    /// The failure detector (or connection teardown) reported `s` crashed:
    /// skip it in future retries. If the in-flight request targets `s`,
    /// returns the immediate re-send.
    pub fn on_server_down(&mut self, s: ServerId) -> Option<(ServerId, Message)> {
        self.session
            .on_server_down(s)
            .into_iter()
            .next()
            .map(|(_, server, message)| (server, message))
    }

    /// The transport observed `s` healthy again (successful reconnect):
    /// clear the suspicion so routing may prefer it again.
    pub fn on_server_up(&mut self, s: ServerId) {
        self.session.on_server_up(s);
    }

    fn assert_idle(&self) {
        assert!(
            !self.is_busy(),
            "{}: operation already in flight",
            self.session.id()
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn client() -> ClientCore {
        ClientCore::new(ClientId(7), ObjectId::SINGLE, 3, ServerId(1))
    }

    #[test]
    fn write_round_trip() {
        let mut c = client();
        let (request, server, msg) = c.begin_write(Value::from_u64(1));
        assert_eq!(server, ServerId(1));
        assert!(matches!(msg, Message::WriteReq { .. }));
        assert!(c.is_busy());
        let done = c.on_reply(&Message::WriteAck {
            object: ObjectId::SINGLE,
            request,
        });
        assert_eq!(
            done,
            Some(Completion {
                request,
                value: None
            })
        );
        assert!(!c.is_busy());
    }

    #[test]
    fn read_round_trip_returns_value() {
        let mut c = client();
        let (request, _server, _msg) = c.begin_read();
        let done = c.on_reply(&Message::ReadAck {
            object: ObjectId::SINGLE,
            request,
            value: Value::from_u64(9),
        });
        assert_eq!(done.unwrap().value, Some(Value::from_u64(9)));
    }

    #[test]
    fn stale_and_foreign_replies_ignored() {
        let mut c = client();
        let (request, _, _) = c.begin_read();
        // Wrong request id.
        assert!(c
            .on_reply(&Message::ReadAck {
                object: ObjectId::SINGLE,
                request: RequestId(999),
                value: Value::bottom(),
            })
            .is_none());
        // Real reply still works, exactly once.
        assert!(c
            .on_reply(&Message::ReadAck {
                object: ObjectId::SINGLE,
                request,
                value: Value::bottom(),
            })
            .is_some());
        assert!(c
            .on_reply(&Message::ReadAck {
                object: ObjectId::SINGLE,
                request,
                value: Value::bottom(),
            })
            .is_none());
    }

    #[test]
    fn timeout_walks_the_ring() {
        let mut c = client();
        let (request, first, _) = c.begin_write(Value::from_u64(1));
        assert_eq!(first, ServerId(1));
        let (second, msg) = c.on_timeout(request).unwrap();
        assert_eq!(second, ServerId(2));
        assert!(matches!(msg, Message::WriteReq { .. }));
        let (third, _) = c.on_timeout(request).unwrap();
        assert_eq!(third, ServerId(0));
        // Stale timer after completion: ignored.
        c.on_reply(&Message::WriteAck {
            object: ObjectId::SINGLE,
            request,
        });
        assert!(c.on_timeout(request).is_none());
    }

    #[test]
    fn server_down_triggers_immediate_retry_and_future_avoidance() {
        let mut c = client();
        let (_, first, _) = c.begin_read();
        assert_eq!(first, ServerId(1));
        let (retry, _) = c.on_server_down(ServerId(1)).unwrap();
        assert_eq!(retry, ServerId(2));
        // Complete, then a fresh op avoids the dead preferred server.
        assert_eq!(c.current_server(), Some(ServerId(2)));
        let request = c.session.inflight_requests().next().unwrap();
        c.on_reply(&Message::ReadAck {
            object: ObjectId::SINGLE,
            request,
            value: Value::bottom(),
        });
        let (_, server, _) = c.begin_read();
        assert_eq!(server, ServerId(2));
    }

    #[test]
    fn server_up_restores_the_preferred_server() {
        let mut c = client();
        assert!(c.on_server_down(ServerId(1)).is_none());
        let (request, server, _) = c.begin_read();
        assert_eq!(server, ServerId(2), "dead preferred avoided");
        c.on_reply(&Message::ReadAck {
            object: ObjectId::SINGLE,
            request,
            value: Value::bottom(),
        });
        c.on_server_up(ServerId(1));
        let (_, server, _) = c.begin_read();
        assert_eq!(server, ServerId(1), "recovered preferred used again");
    }

    #[test]
    fn down_report_for_other_server_does_not_resend() {
        let mut c = client();
        let (_, first, _) = c.begin_read();
        assert_eq!(first, ServerId(1));
        assert!(c.on_server_down(ServerId(0)).is_none());
    }

    #[test]
    #[should_panic(expected = "already in flight")]
    fn overlapping_operations_panic() {
        let mut c = client();
        let _ = c.begin_read();
        let _ = c.begin_read();
    }
}
