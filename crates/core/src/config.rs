//! Protocol configuration and ablation flags.

use hts_sim::Nanos;

/// How a server multiplexes its own new writes with forwarded ring traffic.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum FairnessMode {
    /// The paper's rule (§3 lines 53–75): per-origin forwarded-message
    /// counters; the origin with the fewest forwarded messages goes next
    /// (the local server competes as its own origin). Guarantees every
    /// origin a fair share of the ring and thus write liveness.
    #[default]
    Fair,
    /// Always initiate a local write when one is queued, otherwise forward
    /// in arrival order. Under sustained local load this starves the ring —
    /// the failure mode the paper's fairness rule exists to prevent
    /// (ablation A3).
    LocalFirst,
    /// Always forward queued ring traffic before initiating local writes.
    /// Under sustained ring load local clients starve.
    ForwardFirst,
}

/// What a server persists, and when it reaches stable storage.
///
/// The paper's model is crash-**stop**: server state lives in RAM and a
/// crash is forever. Any persistent setting upgrades the system to
/// crash-**recovery** — committed `(tag, value)` pairs are exposed
/// through [`MultiObjectServer::drain_commits`] for the runtime to log
/// (`hts-net` appends them to an `hts-wal` log, the simulator to its
/// modeled disk), and a restarted server rebuilds from that log and
/// rejoins the ring.
///
/// [`MultiObjectServer::drain_commits`]: crate::MultiObjectServer::drain_commits
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Durability {
    /// No persistence — the paper's crash-stop model (default).
    #[default]
    Volatile,
    /// Log committed writes; leave flushing to the OS page cache.
    /// Survives process crashes, not power loss.
    Buffered,
    /// Log committed writes; fsync once every `n` appends (bounded loss
    /// window of `n − 1` acknowledged writes).
    SyncEveryN(u32),
    /// Log committed writes; fsync before the client sees the ack.
    SyncAlways,
}

impl Durability {
    /// Whether committed writes are logged at all.
    pub fn is_persistent(self) -> bool {
        !matches!(self, Durability::Volatile)
    }
}

/// How ring frames coalesce into batches on their way to the wire.
///
/// The ring's throughput headline rests on each server talking to one
/// successor — but shipping one frame per TCP write (and one fsync per
/// commit) squanders it on per-message overheads. Batching drains
/// everything ready for the successor into a single wire message
/// ([`RingBatch`](hts_types::Message::RingBatch)), one flush, and lets the
/// WAL cover every commit in the batch with one fsync (group commit).
/// Frames inside a batch keep their exact one-at-a-time order, so the
/// per-link FIFO guarantee the rejoin/resync protocol depends on is
/// untouched; `max_frames: 1` reproduces the unbatched runtime bit for
/// bit (the fig1 benchmark's batching ablation).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BatchConfig {
    /// Most frames one batch may carry (≥ 1; 1 disables coalescing).
    pub max_frames: usize,
    /// Byte budget per batch (encoded frame bodies; soft cap — the frame
    /// that crosses it still ships, so a jumbo value cannot wedge the
    /// ring). This is the **head-of-line latency knob**: a batch is one
    /// wire message, decoded only when fully received, so its first
    /// frame waits for the whole batch to serialize. The 16 KiB default
    /// coalesces small frames (tag-only write notices, small values)
    /// aggressively while letting large values travel essentially alone.
    pub max_bytes: usize,
    /// How long the outbound writer may wait for more frames after
    /// draining fewer than `max_frames` (real runtime only; the
    /// simulator's event loop batches whatever is queued at TX-idle
    /// time). Zero — the default — never delays a ready frame.
    pub linger: Nanos,
}

impl Default for BatchConfig {
    fn default() -> Self {
        BatchConfig {
            max_frames: 64,
            max_bytes: 16 * 1024,
            linger: Nanos::ZERO,
        }
    }
}

impl BatchConfig {
    /// A configuration that disables coalescing (one frame per write,
    /// one fsync per commit) — the pre-batching runtime, kept for
    /// ablations and A/B tests.
    pub fn unbatched() -> Self {
        BatchConfig {
            max_frames: 1,
            ..BatchConfig::default()
        }
    }

    /// A batch cap of `max_frames` with the default byte budget.
    pub fn with_max_frames(max_frames: usize) -> Self {
        BatchConfig {
            max_frames: max_frames.max(1),
            ..BatchConfig::default()
        }
    }

    /// Clamps the knobs into the range the wire format supports — the
    /// transports call this before building batches, so a hostile or
    /// typo'd config degrades instead of panicking the writer or
    /// tripping the receiver's frame-size cap:
    ///
    /// * `max_frames` into `[1, MAX_BATCH_FRAMES]` (the batch count
    ///   prefix is 16-bit);
    /// * `max_bytes` into `[1, 16 MiB]` — with the soft-cap overshoot
    ///   of one frame this stays far below the 64 MiB receive limit
    ///   (a *single* frame beyond it is unshippable batched or not).
    pub fn normalized(self) -> Self {
        const MAX_BATCH_BUDGET_BYTES: usize = 16 * 1024 * 1024;
        BatchConfig {
            max_frames: self.max_frames.clamp(1, hts_types::codec::MAX_BATCH_FRAMES),
            max_bytes: self.max_bytes.clamp(1, MAX_BATCH_BUDGET_BYTES),
            linger: self.linger,
        }
    }
}

/// Protocol options. [`Config::default`] is the paper-faithful,
/// full-performance configuration; every deviation is an explicitly
/// documented ablation (see DESIGN.md §4).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Config {
    /// Carry the value in steady-state `write` ring messages instead of
    /// resolving it from the pending cache (ablation A1). Doubles ring
    /// bandwidth per write; the paper's measured 81 Mbit/s write throughput
    /// on 100 Mbit/s links is impossible with this on.
    pub write_carries_value: bool,
    /// Let a read return immediately when the locally stored tag already
    /// dominates every pending pre-write (ablation A2). The paper always
    /// waits for the next `write` message. The TCP runtime additionally
    /// gates its reader-thread snapshot shortcut on this: with the flag
    /// on, an unblocked read is answered from the seqlock snapshot cell
    /// right on the connection's reader thread; off, every read takes
    /// the event-loop hop.
    pub read_fast_path: bool,
    /// Scheduling of local writes vs. forwarded traffic.
    pub fairness: FairnessMode,
    /// Reply to an unblocked read with the value of the unblocking `write`
    /// *message* — the conference pseudo-code's literal line 82 — instead
    /// of the (≥) locally stored value. Exists to demonstrate the
    /// read-inversion anomaly this allows when concurrent writes overtake
    /// each other on the ring; see DESIGN.md §4.9. **Unsafe**; tests only.
    pub unblock_replies_message_value: bool,
    /// Complete writes orphaned by the crash of their originating server
    /// (surrogate-origin adoption, DESIGN.md §4.10). Without it, readers
    /// can block forever on a pre-write whose `write` phase died with its
    /// origin.
    pub adopt_orphans: bool,
    /// How long a client waits for a reply before re-issuing the request
    /// to the next server.
    pub client_timeout: Nanos,
    /// Persistence of committed writes (crash-stop vs crash-recovery).
    pub durability: Durability,
    /// Ring frame coalescing (see [`BatchConfig`]). The default batches
    /// up to 64 frames per wire message; this changes scheduling
    /// granularity only, never protocol semantics.
    pub batching: BatchConfig,
    /// Zero-copy inbound decode in the `hts-net` runtime (default on).
    /// Each received wire message lands in one refcounted buffer and its
    /// values are decoded as **views** of it; with this off, the server
    /// re-decodes through the copying path (one fresh allocation and
    /// copy per value) — the pre-zero-copy runtime, kept as the fig1
    /// ablation baseline. Wire format and protocol semantics are
    /// identical either way; simulators ignore the flag (they pass
    /// values by refcount already).
    pub zero_copy: bool,
    /// Readiness-driven (epoll reactor) runtime in `hts-net` (default
    /// on under Linux, off elsewhere). On, each lane's event loop is a
    /// reactor that owns its sockets directly — accepting, reading,
    /// coalescing and writing on epoll readiness — so a node runs on
    /// `lanes + 1` threads regardless of connection count. Off, the
    /// thread-per-socket backend (spawned reader per inbound
    /// connection, writer thread per client and ring peer) runs
    /// instead — kept verbatim as the fig1 ablation baseline and the
    /// non-Linux fallback. Wire format and protocol semantics are
    /// byte-identical either way; simulators ignore the flag.
    pub reactor: bool,
    /// Parallel ring **lanes** (default 1). Objects are partitioned
    /// across `lanes` fully independent ring instances
    /// ([`LaneMap`](crate::LaneMap) placement): each lane owns its own
    /// protocol cores, its own successor link (a separate TCP stream in
    /// `hts-net`, a separate ring NIC in the simulator), and — with a
    /// persistent [`Durability`] — its own WAL, so one node scales
    /// across cores/links instead of funneling every object through a
    /// single event loop. Per-object semantics are untouched: an object
    /// lives on exactly one lane, and each lane preserves the per-link
    /// FIFO the rejoin/resync protocol depends on. `1` is today's
    /// single-ring runtime, bit for bit.
    pub lanes: u16,
}

impl Default for Config {
    fn default() -> Self {
        Config {
            write_carries_value: false,
            read_fast_path: false,
            fairness: FairnessMode::Fair,
            unblock_replies_message_value: false,
            adopt_orphans: true,
            client_timeout: Nanos::from_millis(250),
            durability: Durability::Volatile,
            batching: BatchConfig::default(),
            zero_copy: true,
            reactor: cfg!(target_os = "linux"),
            lanes: 1,
        }
    }
}

impl Config {
    /// The paper-faithful default configuration.
    pub fn paper() -> Self {
        Config::default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_paper_faithful() {
        let c = Config::default();
        assert!(!c.write_carries_value);
        assert!(!c.read_fast_path);
        assert_eq!(c.fairness, FairnessMode::Fair);
        assert!(!c.unblock_replies_message_value);
        assert!(c.adopt_orphans);
        assert_eq!(c.durability, Durability::Volatile);
        assert!(!c.durability.is_persistent());
        assert!(c.zero_copy);
        // The reactor changes scheduling, never semantics: it defaults
        // on exactly where its epoll substrate exists.
        assert_eq!(c.reactor, cfg!(target_os = "linux"));
        assert_eq!(c.lanes, 1);
        assert_eq!(c, Config::paper());
    }

    #[test]
    fn persistent_settings_are_persistent() {
        assert!(Durability::Buffered.is_persistent());
        assert!(Durability::SyncEveryN(32).is_persistent());
        assert!(Durability::SyncAlways.is_persistent());
    }

    #[test]
    fn batch_config_constructors() {
        let d = BatchConfig::default();
        assert_eq!(d.max_frames, 64);
        assert_eq!(d.linger, Nanos::ZERO);

        let un = BatchConfig::unbatched();
        assert_eq!(un.max_frames, 1);
        assert_eq!(un.max_bytes, d.max_bytes);

        // A zero cap would wedge the ring; it clamps to 1.
        assert_eq!(BatchConfig::with_max_frames(0).max_frames, 1);
        assert_eq!(BatchConfig::with_max_frames(8).max_frames, 8);
    }

    #[test]
    fn normalized_clamps_into_wire_limits() {
        let hostile = BatchConfig {
            max_frames: usize::MAX,
            max_bytes: usize::MAX,
            linger: Nanos::from_micros(5),
        }
        .normalized();
        assert_eq!(hostile.max_frames, hts_types::codec::MAX_BATCH_FRAMES);
        assert_eq!(hostile.max_bytes, 16 * 1024 * 1024);
        assert_eq!(hostile.linger, Nanos::from_micros(5));

        let zeroed = BatchConfig {
            max_frames: 0,
            max_bytes: 0,
            linger: Nanos::ZERO,
        }
        .normalized();
        assert_eq!(zeroed.max_frames, 1);
        assert_eq!(zeroed.max_bytes, 1);

        // A sane config is untouched.
        assert_eq!(BatchConfig::default().normalized(), BatchConfig::default());
    }
}
