//! Protocol configuration and ablation flags.

use hts_sim::Nanos;

/// How a server multiplexes its own new writes with forwarded ring traffic.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum FairnessMode {
    /// The paper's rule (§3 lines 53–75): per-origin forwarded-message
    /// counters; the origin with the fewest forwarded messages goes next
    /// (the local server competes as its own origin). Guarantees every
    /// origin a fair share of the ring and thus write liveness.
    #[default]
    Fair,
    /// Always initiate a local write when one is queued, otherwise forward
    /// in arrival order. Under sustained local load this starves the ring —
    /// the failure mode the paper's fairness rule exists to prevent
    /// (ablation A3).
    LocalFirst,
    /// Always forward queued ring traffic before initiating local writes.
    /// Under sustained ring load local clients starve.
    ForwardFirst,
}

/// What a server persists, and when it reaches stable storage.
///
/// The paper's model is crash-**stop**: server state lives in RAM and a
/// crash is forever. Any persistent setting upgrades the system to
/// crash-**recovery** — committed `(tag, value)` pairs are exposed
/// through [`MultiObjectServer::drain_commits`] for the runtime to log
/// (`hts-net` appends them to an `hts-wal` log, the simulator to its
/// modeled disk), and a restarted server rebuilds from that log and
/// rejoins the ring.
///
/// [`MultiObjectServer::drain_commits`]: crate::MultiObjectServer::drain_commits
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Durability {
    /// No persistence — the paper's crash-stop model (default).
    #[default]
    Volatile,
    /// Log committed writes; leave flushing to the OS page cache.
    /// Survives process crashes, not power loss.
    Buffered,
    /// Log committed writes; fsync once every `n` appends (bounded loss
    /// window of `n − 1` acknowledged writes).
    SyncEveryN(u32),
    /// Log committed writes; fsync before the client sees the ack.
    SyncAlways,
}

impl Durability {
    /// Whether committed writes are logged at all.
    pub fn is_persistent(self) -> bool {
        !matches!(self, Durability::Volatile)
    }
}

/// Protocol options. [`Config::default`] is the paper-faithful,
/// full-performance configuration; every deviation is an explicitly
/// documented ablation (see DESIGN.md §4).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Config {
    /// Carry the value in steady-state `write` ring messages instead of
    /// resolving it from the pending cache (ablation A1). Doubles ring
    /// bandwidth per write; the paper's measured 81 Mbit/s write throughput
    /// on 100 Mbit/s links is impossible with this on.
    pub write_carries_value: bool,
    /// Let a read return immediately when the locally stored tag already
    /// dominates every pending pre-write (ablation A2). The paper always
    /// waits for the next `write` message.
    pub read_fast_path: bool,
    /// Scheduling of local writes vs. forwarded traffic.
    pub fairness: FairnessMode,
    /// Reply to an unblocked read with the value of the unblocking `write`
    /// *message* — the conference pseudo-code's literal line 82 — instead
    /// of the (≥) locally stored value. Exists to demonstrate the
    /// read-inversion anomaly this allows when concurrent writes overtake
    /// each other on the ring; see DESIGN.md §4.9. **Unsafe**; tests only.
    pub unblock_replies_message_value: bool,
    /// Complete writes orphaned by the crash of their originating server
    /// (surrogate-origin adoption, DESIGN.md §4.10). Without it, readers
    /// can block forever on a pre-write whose `write` phase died with its
    /// origin.
    pub adopt_orphans: bool,
    /// How long a client waits for a reply before re-issuing the request
    /// to the next server.
    pub client_timeout: Nanos,
    /// Persistence of committed writes (crash-stop vs crash-recovery).
    pub durability: Durability,
}

impl Default for Config {
    fn default() -> Self {
        Config {
            write_carries_value: false,
            read_fast_path: false,
            fairness: FairnessMode::Fair,
            unblock_replies_message_value: false,
            adopt_orphans: true,
            client_timeout: Nanos::from_millis(250),
            durability: Durability::Volatile,
        }
    }
}

impl Config {
    /// The paper-faithful default configuration.
    pub fn paper() -> Self {
        Config::default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_paper_faithful() {
        let c = Config::default();
        assert!(!c.write_carries_value);
        assert!(!c.read_fast_path);
        assert_eq!(c.fairness, FairnessMode::Fair);
        assert!(!c.unblock_replies_message_value);
        assert!(c.adopt_orphans);
        assert_eq!(c.durability, Durability::Volatile);
        assert!(!c.durability.is_persistent());
        assert_eq!(c, Config::paper());
    }

    #[test]
    fn persistent_settings_are_persistent() {
        assert!(Durability::Buffered.is_persistent());
        assert!(Durability::SyncEveryN(32).is_persistent());
        assert!(Durability::SyncAlways.is_persistent());
    }
}
