//! The pending-write set with value cache.
//!
//! The paper's `pending_write_set` holds the tags of pre-written but not
//! yet written values. Ours additionally caches the **value** announced by
//! each pre-write: that is what lets steady-state `write` ring messages be
//! tag-only (the piggyback optimization of §4.2) — on commit, the value is
//! resolved locally instead of crossing the wire a second time.

use std::collections::BTreeMap;

use hts_types::{ServerId, Tag, Value};

/// Pre-written, not-yet-committed writes known to one server.
///
/// # Examples
///
/// ```
/// use hts_core::PendingSet;
/// use hts_types::{ServerId, Tag, Value};
///
/// let mut pending = PendingSet::new();
/// pending.insert(Tag::new(1, ServerId(0)), Value::from_u64(10));
/// pending.insert(Tag::new(2, ServerId(1)), Value::from_u64(20));
/// assert_eq!(pending.max_tag(), Some(Tag::new(2, ServerId(1))));
///
/// // Committing tag [2,s1] subsumes everything at or below it.
/// let committed = pending.remove_le(Tag::new(2, ServerId(1)));
/// assert_eq!(committed.len(), 2);
/// assert!(pending.is_empty());
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PendingSet {
    map: BTreeMap<Tag, Value>,
}

impl PendingSet {
    /// Creates an empty set.
    pub fn new() -> Self {
        PendingSet::default()
    }

    /// Records a pre-written `value` under `tag` (idempotent).
    pub fn insert(&mut self, tag: Tag, value: Value) {
        self.map.insert(tag, value);
    }

    /// Removes exactly `tag`, returning its cached value.
    pub fn remove(&mut self, tag: Tag) -> Option<Value> {
        self.map.remove(&tag)
    }

    /// Removes every entry with tag `<= bound` (the subsumption rule: a
    /// committed write at `bound` proves no earlier pre-write can ever be
    /// read). Returns the removed entries in ascending tag order.
    pub fn remove_le(&mut self, bound: Tag) -> Vec<(Tag, Value)> {
        let mut keep = self.map.split_off(&bound);
        // split_off keeps `bound` in `keep`; move it out if present.
        if let Some(v) = keep.remove(&bound) {
            self.map.insert(bound, v);
        }
        let removed: Vec<(Tag, Value)> = std::mem::take(&mut self.map).into_iter().collect();
        self.map = keep;
        removed
    }

    /// The cached value of `tag`, if pending.
    pub fn get(&self, tag: Tag) -> Option<&Value> {
        self.map.get(&tag)
    }

    /// Whether `tag` is pending.
    pub fn contains(&self, tag: Tag) -> bool {
        self.map.contains_key(&tag)
    }

    /// The highest pending tag (`maxlex(pending_write_set)`).
    pub fn max_tag(&self) -> Option<Tag> {
        self.map.keys().next_back().copied()
    }

    /// Whether no write is pending.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Number of pending writes.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Iterates over `(tag, value)` in ascending tag order.
    pub fn iter(&self) -> impl Iterator<Item = (Tag, &Value)> {
        self.map.iter().map(|(t, v)| (*t, v))
    }

    /// The pending entries initiated by `origin`, ascending.
    pub fn with_origin(&self, origin: ServerId) -> Vec<(Tag, Value)> {
        self.map
            .iter()
            .filter(|(t, _)| t.origin == origin)
            .map(|(t, v)| (*t, v.clone()))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(ts: u64, o: u16) -> Tag {
        Tag::new(ts, ServerId(o))
    }

    fn v(n: u64) -> Value {
        Value::from_u64(n)
    }

    #[test]
    fn insert_get_remove() {
        let mut p = PendingSet::new();
        assert!(p.is_empty());
        p.insert(t(1, 0), v(10));
        assert!(p.contains(t(1, 0)));
        assert_eq!(p.get(t(1, 0)), Some(&v(10)));
        assert_eq!(p.len(), 1);
        assert_eq!(p.remove(t(1, 0)), Some(v(10)));
        assert!(p.is_empty());
        assert_eq!(p.remove(t(1, 0)), None);
    }

    #[test]
    fn max_tag_is_lexicographic() {
        let mut p = PendingSet::new();
        p.insert(t(2, 0), v(1));
        p.insert(t(1, 9), v(2));
        p.insert(t(2, 1), v(3));
        assert_eq!(p.max_tag(), Some(t(2, 1)));
    }

    #[test]
    fn remove_le_is_inclusive_and_ordered() {
        let mut p = PendingSet::new();
        for (ts, o, val) in [(1, 0, 1), (2, 0, 2), (2, 1, 3), (3, 0, 4)] {
            p.insert(t(ts, o), v(val));
        }
        let removed = p.remove_le(t(2, 0));
        assert_eq!(
            removed,
            vec![(t(1, 0), v(1)), (t(2, 0), v(2))] // ascending, inclusive
        );
        assert_eq!(p.len(), 2);
        assert!(p.contains(t(2, 1)));
        assert!(p.contains(t(3, 0)));
    }

    #[test]
    fn remove_le_with_absent_bound() {
        let mut p = PendingSet::new();
        p.insert(t(1, 0), v(1));
        p.insert(t(3, 0), v(3));
        let removed = p.remove_le(t(2, 5));
        assert_eq!(removed, vec![(t(1, 0), v(1))]);
        assert_eq!(p.len(), 1);
    }

    #[test]
    fn with_origin_filters() {
        let mut p = PendingSet::new();
        p.insert(t(1, 0), v(1));
        p.insert(t(2, 1), v(2));
        p.insert(t(3, 0), v(3));
        assert_eq!(
            p.with_origin(ServerId(0)),
            vec![(t(1, 0), v(1)), (t(3, 0), v(3))]
        );
        assert_eq!(p.with_origin(ServerId(9)), vec![]);
    }

    #[test]
    fn insert_is_idempotent_overwrite() {
        let mut p = PendingSet::new();
        p.insert(t(1, 0), v(1));
        p.insert(t(1, 0), v(1));
        assert_eq!(p.len(), 1);
        let all: Vec<(Tag, &Value)> = p.iter().collect();
        assert_eq!(all.len(), 1);
    }
}
