//! Adapters running the protocol on the synchronous round model.
//!
//! These validate the paper's §4 analytical claims against the same
//! [`ServerCore`] used everywhere else: read latency 2 rounds, write
//! latency `2N + 2` rounds, write throughput 1 op/round, read throughput
//! `n` ops/round. Each server has a ring NIC and a client NIC (one send +
//! one receive per round on each, per the model in §2) and sends exactly
//! one (possibly piggybacked) ring frame per round.

use std::cell::RefCell;
use std::collections::VecDeque;
use std::rc::Rc;

use hts_sim::packet::NetworkId;
use hts_sim::round::{RoundCtx, RoundProcess};
use hts_types::{ClientId, Message, NodeId, ObjectId, ServerId, Value};

use crate::{Action, ClientCore, Config, ServerCore};

/// A ring server in the round model.
pub struct RoundServer {
    core: ServerCore,
    ring_net: NetworkId,
    client_net: NetworkId,
    replies: VecDeque<(ClientId, Message)>,
}

impl RoundServer {
    /// Creates round-model server `me` of `n` on the given networks.
    pub fn new(
        me: ServerId,
        n: u16,
        config: Config,
        ring_net: NetworkId,
        client_net: NetworkId,
    ) -> Self {
        RoundServer {
            core: ServerCore::new(me, n, ObjectId::SINGLE, config),
            ring_net,
            client_net,
            replies: VecDeque::new(),
        }
    }

    /// The wrapped protocol core.
    pub fn core(&self) -> &ServerCore {
        &self.core
    }

    fn queue_actions(&mut self, actions: Vec<Action>) {
        for action in actions {
            match action {
                Action::WriteAck {
                    object,
                    client,
                    request,
                } => self
                    .replies
                    .push_back((client, Message::WriteAck { object, request })),
                Action::ReadReply {
                    object,
                    client,
                    request,
                    value,
                    ..
                } => self.replies.push_back((
                    client,
                    Message::ReadAck {
                        object,
                        request,
                        value,
                    },
                )),
            }
        }
    }
}

impl RoundProcess<Message> for RoundServer {
    fn on_round(&mut self, ctx: &mut RoundCtx<'_, Message>, _round: u64) {
        // Receive (≤1 per NIC, per the model).
        if let Some((_, Message::Ring(frame))) = ctx.take_incoming(self.ring_net) {
            let actions = self.core.on_frame(frame);
            self.queue_actions(actions);
        }
        if let Some((from, msg)) = ctx.take_incoming(self.client_net) {
            if let Some(client) = from.as_client() {
                let actions = match msg {
                    Message::WriteReq { request, value, .. } => {
                        self.core.on_client_write(client, request, value)
                    }
                    Message::ReadReq { request, .. } => self.core.on_client_read(client, request),
                    Message::StatsRequest { request } => {
                        // Answered from the process-wide registry, outside
                        // the protocol core: stats are observational.
                        self.replies.push_back((
                            client,
                            Message::StatsReply {
                                request,
                                text: Value::from(hts_metrics::render().into_bytes()),
                            },
                        ));
                        Vec::new()
                    }
                    // Clients never send replies or ring traffic; dropped
                    // by name so a new wire variant forces a decision.
                    Message::WriteAck { .. }
                    | Message::ReadAck { .. }
                    | Message::StatsReply { .. }
                    | Message::Ring(_)
                    | Message::RingBatch(_) => Vec::new(),
                };
                self.queue_actions(actions);
            }
        }
        // Send: one ring frame (the fairness-selected, possibly
        // piggybacked slot) and one client reply.
        if let Some(successor) = self.core.successor() {
            if let Some(frame) = self.core.next_frame() {
                ctx.send(
                    self.ring_net,
                    &[NodeId::Server(successor)],
                    Message::Ring(frame),
                );
            }
        }
        if let Some((client, msg)) = self.replies.pop_front() {
            ctx.send(self.client_net, &[NodeId::Client(client)], msg);
        }
    }

    fn on_crashed(&mut self, node: NodeId) {
        if let Some(s) = node.as_server() {
            let actions = self.core.on_server_crashed(s);
            self.queue_actions(actions);
        }
    }
}

/// Per-client round-model counters.
#[derive(Debug, Clone, Default)]
pub struct RoundClientStats {
    /// Completed operations.
    pub completed: u64,
    /// Sum of op latencies, in rounds (completion round − issue round).
    pub latency_rounds_total: u64,
    /// Individual latencies in rounds.
    pub latencies: Vec<u64>,
}

/// A closed-loop round-model client issuing only reads or only writes.
pub struct RoundClient {
    core: ClientCore,
    client_net: NetworkId,
    reads: bool,
    op_limit: Option<u64>,
    issue_round: u64,
    value_seq: u64,
    stats: Rc<RefCell<RoundClientStats>>,
}

impl RoundClient {
    /// Creates a client of server `preferred` issuing reads (`reads`) or
    /// writes, up to `op_limit` operations.
    pub fn new(
        id: ClientId,
        n: u16,
        preferred: ServerId,
        reads: bool,
        op_limit: Option<u64>,
        client_net: NetworkId,
    ) -> (Self, Rc<RefCell<RoundClientStats>>) {
        let stats = Rc::new(RefCell::new(RoundClientStats::default()));
        (
            RoundClient {
                core: ClientCore::new(id, ObjectId::SINGLE, n, preferred),
                client_net,
                reads,
                op_limit,
                issue_round: 0,
                value_seq: 0,
                stats: Rc::clone(&stats),
            },
            stats,
        )
    }
}

impl RoundProcess<Message> for RoundClient {
    fn on_round(&mut self, ctx: &mut RoundCtx<'_, Message>, round: u64) {
        if let Some((_, msg)) = ctx.take_incoming(self.client_net) {
            if self.core.on_reply(&msg).is_some() {
                let mut stats = self.stats.borrow_mut();
                stats.completed += 1;
                let latency = round - self.issue_round;
                stats.latency_rounds_total += latency;
                stats.latencies.push(latency);
            }
        }
        let completed = self.stats.borrow().completed;
        if self.core.is_busy() || self.op_limit.is_some_and(|l| completed >= l) {
            return;
        }
        let (_, server, msg) = if self.reads {
            self.core.begin_read()
        } else {
            self.value_seq += 1;
            // Client ids and sequence numbers keep values unique.
            let value = Value::from_u64((u64::from(self.core.id().0) << 32) | self.value_seq);
            self.core.begin_write(value)
        };
        self.issue_round = round;
        ctx.send(self.client_net, &[NodeId::Server(server)], msg);
    }
}
