//! cfg-switched primitives for the seqlock cell (`snapshot.rs`).
//!
//! With the `model-check` feature on, the `ReadCell` protocol runs on
//! the `hts-mc` shims so `crates/mc` models can explore its
//! interleavings; off (the default, and always in release builds) the
//! same names resolve to plain `std` types with zero overhead. The only
//! API difference from `std` is `UnsafeCell`: accesses go through
//! `with`/`with_mut` closures so the model checker can bracket them in
//! begin/end schedule steps (loom's convention).

#[cfg(feature = "model-check")]
pub(crate) use hts_mc::sync::{spin_loop, AtomicU32, AtomicU64, AtomicUsize, UnsafeCell};

#[cfg(not(feature = "model-check"))]
pub(crate) use plain::{spin_loop, AtomicU32, AtomicU64, AtomicUsize, UnsafeCell};

#[cfg(not(feature = "model-check"))]
mod plain {
    pub(crate) use std::hint::spin_loop;
    pub(crate) use std::sync::atomic::{AtomicU32, AtomicU64, AtomicUsize};

    /// `std::cell::UnsafeCell` behind the loom-style closure API the
    /// model-checked build uses; compiles to the raw pointer accesses.
    #[derive(Debug, Default)]
    pub(crate) struct UnsafeCell<T>(std::cell::UnsafeCell<T>);

    impl<T> UnsafeCell<T> {
        pub(crate) const fn new(v: T) -> Self {
            UnsafeCell(std::cell::UnsafeCell::new(v))
        }

        pub(crate) fn with<R>(&self, f: impl FnOnce(*const T) -> R) -> R {
            f(self.0.get())
        }

        pub(crate) fn with_mut<R>(&self, f: impl FnOnce(*mut T) -> R) -> R {
            f(self.0.get())
        }
    }
}
