//! Lock-free published read snapshots: the seqlock-style cell behind the
//! net layer's read fast path.
//!
//! Each [`ServerCore`](crate::ServerCore) owning a register publishes its
//! latest committed `(Tag, Value)` plus a *read-blocked* bit into a
//! [`ReadCell`]. A transport thread holding a `ReadRequest` consults the
//! cell **without any lock or event-loop hop**: when the cell says
//! "unblocked", the request is answered right there with a refcounted
//! clone of the committed value; any doubt (a pending pre-write, a sync
//! in progress, a publish racing the read) falls back to the ordinary
//! event-loop path, which is always correct.
//!
//! The design follows *Big Atomics* (Anderson, Blelloch, Jayanti):
//! a packed atomic word carries a version stamp and the state bits, and
//! readers are optimistic — validate the word, read, and bail to the
//! slow path when the stamp moved (cf. the `AtomicDSA` packed-64-bit
//! cell in SNIPPETS.md). Because the snapshot holds a refcounted
//! [`Value`] rather than plain words, a torn read must be prevented
//! rather than merely detected: readers register in a counter for the
//! nanoseconds their clone takes, and the (single) writer spins until
//! the slot is reader-free before touching it. Readers never wait —
//! every contended path returns `None` immediately.

// The one sanctioned unsafe island of this crate: the seqlock slot.
// Every block carries a SAFETY argument tied to the word/readers
// protocol; hts-check rule L5 enforces the comments, L6 keeps the hot
// functions allocation-free.
#![allow(unsafe_code)]

use std::collections::HashMap;
use std::sync::atomic::Ordering;
use std::sync::{Arc, Mutex};

use crate::mc_shim::{spin_loop, AtomicU32, AtomicU64, AtomicUsize, UnsafeCell};
use hts_types::{ObjectId, Tag, Value};

/// Word bit 0: a publish is in progress; readers must fall back.
const WRITING: u64 = 0b01;
/// Word bit 1: reads are blocked (pending pre-write, sync, or the fast
/// path is disabled); readers must fall back.
const BLOCKED: u64 = 0b10;
/// Version stamp: bits 2.. — bumped on every publish and flag change.
const VERSION_ONE: u64 = 0b100;

/// A seqlock-style versioned cell publishing one register's latest
/// committed `(Tag, Value)` and whether a read may be answered from it.
///
/// **Single writer**: exactly one thread (the event loop driving the
/// owning [`ServerCore`](crate::ServerCore)) may call [`publish`] /
/// [`set_blocked`]; any number of threads may call [`try_read`].
///
/// [`publish`]: ReadCell::publish
/// [`set_blocked`]: ReadCell::set_blocked
/// [`try_read`]: ReadCell::try_read
pub struct ReadCell {
    /// Packed `version << 2 | BLOCKED | WRITING`.
    word: AtomicU64,
    /// Readers currently cloning the slot; the writer waits for zero.
    readers: AtomicU32,
    slot: UnsafeCell<(Tag, Value)>,
}

// SAFETY: `slot` is only accessed under the word/readers protocol —
// readers clone it strictly between a successful registration and their
// deregistration while WRITING is clear; the single writer mutates it
// only with WRITING set and the reader count observed at zero. See
// `try_read` and `publish`.
unsafe impl Sync for ReadCell {}

impl ReadCell {
    /// A fresh cell, **blocked** until its server publishes a snapshot.
    pub fn new() -> ReadCell {
        ReadCell {
            word: AtomicU64::new(BLOCKED),
            readers: AtomicU32::new(0),
            slot: UnsafeCell::new((Tag::ZERO, Value::bottom())),
        }
    }

    /// Publishes a committed snapshot and the blocked bit in one step.
    ///
    /// Must only be called by the cell's single writer. Spins (bounded
    /// by a concurrent reader's refcount clone, i.e. nanoseconds unless
    /// the reader is preempted mid-clone) until the slot is reader-free.
    pub fn publish(&self, tag: Tag, value: &Value, blocked: bool) {
        // ordering: Relaxed — single-writer read of our own last store;
        // no other thread ever writes `word`.
        let w = self.word.load(Ordering::Relaxed);
        // Gate new readers out, then drain the registered ones.
        self.word.store(w | WRITING, Ordering::SeqCst);
        while self.readers.load(Ordering::SeqCst) != 0 {
            spin_loop();
        }
        // Every future `try_read` bails at its validation step; no
        // reader touches the slot until the store below clears WRITING.
        // SAFETY: WRITING was set before we observed `readers == 0`.
        self.slot.with_mut(|slot| unsafe {
            *slot = (tag, value.clone());
        });
        let flags = if blocked { BLOCKED } else { 0 };
        self.word.store(
            (w | WRITING).wrapping_add(VERSION_ONE) & !WRITING & !BLOCKED | flags,
            Ordering::SeqCst,
        );
    }

    /// Updates only the blocked bit (the committed snapshot is
    /// unchanged). Single-writer, like [`publish`](ReadCell::publish);
    /// never touches the slot, so it needs no reader drain.
    pub fn set_blocked(&self, blocked: bool) {
        // ordering: Relaxed — single-writer read of our own last store;
        // no other thread ever writes `word`.
        let w = self.word.load(Ordering::Relaxed);
        let flags = if blocked { BLOCKED } else { 0 };
        self.word.store(
            w.wrapping_add(VERSION_ONE) & !BLOCKED | flags,
            Ordering::SeqCst,
        );
    }

    /// Optimistically reads the published snapshot. `None` whenever the
    /// cell is blocked, a publish is in flight, or the version moved
    /// during the read — the caller then takes the event-loop path.
    /// Never blocks, never spins.
    pub fn try_read(&self) -> Option<(Tag, Value)> {
        let w1 = self.word.load(Ordering::SeqCst);
        if w1 & (WRITING | BLOCKED) != 0 {
            return None;
        }
        self.readers.fetch_add(1, Ordering::SeqCst);
        // Validate after registering: the writer sets WRITING *before*
        // it checks the reader count, so (SeqCst total order) either it
        // sees our registration and waits, or we see WRITING/a new
        // version here and bail.
        if self.word.load(Ordering::SeqCst) != w1 {
            self.readers.fetch_sub(1, Ordering::SeqCst);
            return None;
        }
        // The writer cannot enter the slot before we deregister, so the
        // clone below races nothing.
        // SAFETY: our registration is visible (SeqCst) and the word was
        // validated WRITING-free after it.
        let snap = self.slot.with(|slot| unsafe { (*slot).clone() });
        self.readers.fetch_sub(1, Ordering::SeqCst);
        Some(snap)
    }

    /// The current packed word (test/diagnostic hook): version stamp in
    /// the upper bits, `WRITING`/`BLOCKED` in the low two.
    pub fn raw_word(&self) -> u64 {
        self.word.load(Ordering::SeqCst)
    }
}

impl Default for ReadCell {
    fn default() -> Self {
        ReadCell::new()
    }
}

impl std::fmt::Debug for ReadCell {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        // ordering: Relaxed — diagnostic-only snapshot of the word; a
        // stale value merely prints stale.
        let w = self.word.load(Ordering::Relaxed);
        f.debug_struct("ReadCell")
            .field("version", &(w >> 2))
            .field("writing", &(w & WRITING != 0))
            .field("blocked", &(w & BLOCKED != 0))
            .finish_non_exhaustive()
    }
}

/// One immutable generation of the registry's index. Once published it
/// is never mutated again; writers build a fresh `Snap` and swap the
/// pointer.
type Snap = HashMap<ObjectId, Arc<ReadCell>>;

/// The per-server map of [`ReadCell`]s, shared between the event loop
/// (writer side, one cell per register) and the transport threads
/// (reader side).
///
/// Lookup is wait-free: readers do one `Acquire` pointer load of the
/// currently published immutable snapshot and index into it — no lock,
/// no CAS loop, no chance of bouncing a reader to the slow path because
/// a register happened to be created concurrently (the old `RwLock`
/// design failed `try_read` under any write contention). Writers (only
/// the event loop, only when a register is created) clone the map,
/// insert, and publish the new snapshot with a `Release` store under a
/// plain mutex that serialises writers against each other only.
///
/// Snapshot reclamation: superseded snapshots are retired to a list and
/// freed in `Drop`. Readers access snapshots only through `&self`, so
/// every snapshot published during the registry's lifetime remains
/// valid until the registry itself is gone — registers are created a
/// handful of times per run, so the retained memory is a few map
/// headers, not a leak in any practical sense.
pub struct ReadCellRegistry {
    /// Address of the current `Box<Snap>`, published with `Release`.
    published: AtomicUsize,
    /// Serialises writers; also owns the retired-snapshot list.
    writer: Mutex<Vec<usize>>,
}

impl Default for ReadCellRegistry {
    fn default() -> ReadCellRegistry {
        let first = Box::leak(Box::new(Snap::new())) as *mut Snap as usize;
        ReadCellRegistry {
            published: AtomicUsize::new(first),
            writer: Mutex::new(Vec::new()),
        }
    }
}

impl std::fmt::Debug for ReadCellRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ReadCellRegistry")
            .field("registers", &self.snap().len())
            .finish_non_exhaustive()
    }
}

impl ReadCellRegistry {
    /// An empty registry.
    pub fn new() -> ReadCellRegistry {
        ReadCellRegistry::default()
    }

    /// The currently published snapshot.
    fn snap(&self) -> &Snap {
        let addr = self.published.load(Ordering::Acquire);
        // Superseded snapshots go to the retired list, not the
        // allocator, and we hold `&self`, so `Drop` cannot free them
        // concurrently; the `Acquire` load pairs with the writer's
        // `Release` store to make the map's contents visible.
        // SAFETY: `addr` is always the address of a live `Box<Snap>`
        // leaked by `Default::default` or `cell` (see above).
        unsafe { &*(addr as *const Snap) }
    }

    /// The cell for `object`, creating it (blocked) on first use.
    /// Called by the event loop when it creates the register's core.
    pub fn cell(&self, object: ObjectId) -> Arc<ReadCell> {
        let mut retired = self.writer.lock().unwrap_or_else(|e| e.into_inner());
        // Re-check under the writer lock: the snapshot can only change
        // while the lock is held, so this read is the authoritative one.
        let current = self.snap();
        if let Some(cell) = current.get(&object) {
            return Arc::clone(cell);
        }
        let cell: Arc<ReadCell> = Arc::default();
        let mut next = current.clone();
        next.insert(object, Arc::clone(&cell));
        let addr = Box::leak(Box::new(next)) as *mut Snap as usize;
        // ordering: Release publishes the fully built map to the
        // `Acquire` loads in `snap`; the swap itself is already
        // serialised by the writer lock.
        let old = self.published.swap(addr, Ordering::Release);
        retired.push(old);
        cell
    }

    /// Optimistically answers a read for `object` from its published
    /// snapshot; `None` (fall back to the event loop) when the register
    /// is unknown or the cell is blocked. Wait-free: one atomic load
    /// plus the cell's seqlock attempt.
    pub fn try_read(&self, object: ObjectId) -> Option<(Tag, Value)> {
        self.snap().get(&object)?.try_read()
    }
}

impl Drop for ReadCellRegistry {
    fn drop(&mut self) {
        let retired = self.writer.get_mut().unwrap_or_else(|e| e.into_inner());
        retired.push(*self.published.get_mut());
        for addr in retired.drain(..) {
            // Every address in the retired list (and the final published
            // one) came from `Box::leak(Box::new(..))`, and `&mut self`
            // means no reader can still hold a `&Snap` through `&self`.
            // SAFETY: each address is a leaked, still-live `Box<Snap>`,
            // freed exactly once, here.
            drop(unsafe { Box::from_raw(addr as *mut Snap) });
        }
    }
}

#[cfg(test)]
mod tests {
    use std::sync::atomic::{AtomicBool, Ordering};
    use std::sync::Arc;
    use std::thread;

    use super::*;
    use hts_types::ServerId;

    #[test]
    fn fresh_cell_is_blocked() {
        let cell = ReadCell::new();
        assert_eq!(cell.try_read(), None);
    }

    #[test]
    fn publish_then_read_roundtrips() {
        let cell = ReadCell::new();
        let tag = Tag::new(3, ServerId(1));
        let value = Value::from_u64(77);
        cell.publish(tag, &value, false);
        assert_eq!(cell.try_read(), Some((tag, value.clone())));
        // The read is a refcounted view, not a copy.
        let (_, read) = cell.try_read().expect("unblocked");
        assert_eq!(read.as_bytes().as_ptr(), value.as_bytes().as_ptr());
    }

    #[test]
    fn forcing_the_blocked_bit_disables_the_fast_path() {
        // The fallback regression: with the blocked bit forced on, every
        // optimistic read must bail out (the event loop then answers).
        let cell = ReadCell::new();
        let tag = Tag::new(1, ServerId(0));
        cell.publish(tag, &Value::from_u64(1), false);
        assert!(cell.try_read().is_some());
        cell.set_blocked(true);
        assert_eq!(cell.try_read(), None);
        // Publishing while blocked stays blocked...
        cell.publish(Tag::new(2, ServerId(0)), &Value::from_u64(2), true);
        assert_eq!(cell.try_read(), None);
        // ...until the writer unblocks.
        cell.set_blocked(false);
        assert_eq!(
            cell.try_read(),
            Some((Tag::new(2, ServerId(0)), Value::from_u64(2)))
        );
    }

    #[test]
    fn version_stamp_moves_on_every_transition() {
        let cell = ReadCell::new();
        let v0 = cell.raw_word() >> 2;
        cell.set_blocked(false);
        let v1 = cell.raw_word() >> 2;
        cell.publish(Tag::new(1, ServerId(0)), &Value::bottom(), false);
        let v2 = cell.raw_word() >> 2;
        assert!(v0 < v1 && v1 < v2, "{v0} {v1} {v2}");
    }

    #[test]
    fn registry_creates_blocked_cells_and_answers_after_publish() {
        let reg = ReadCellRegistry::new();
        assert_eq!(reg.try_read(ObjectId(5)), None, "unknown register");
        let cell = reg.cell(ObjectId(5));
        assert_eq!(reg.try_read(ObjectId(5)), None, "fresh cell is blocked");
        cell.publish(Tag::new(1, ServerId(2)), &Value::from_u64(9), false);
        assert_eq!(
            reg.try_read(ObjectId(5)),
            Some((Tag::new(1, ServerId(2)), Value::from_u64(9)))
        );
        // Same cell on re-lookup.
        assert!(Arc::ptr_eq(&cell, &reg.cell(ObjectId(5))));
    }

    /// Drives a real three-server ring with cells attached: the cell
    /// must track the protocol — blocked exactly while a pre-write is
    /// pending and unsubsumed, serving the committed value otherwise.
    #[test]
    fn server_core_publishes_through_a_write_circulation() {
        use crate::{Config, ServerCore};
        use hts_types::{ClientId, RequestId};

        let reg = Arc::new(ReadCellRegistry::new());
        let mut servers: Vec<ServerCore> = (0..3)
            .map(|i| ServerCore::new(ServerId(i), 3, ObjectId::SINGLE, Config::default()))
            .collect();
        for s in servers.iter_mut() {
            s.attach_read_cell(reg.cell(ObjectId::SINGLE));
        }
        // One shared-cell caveat aside (each server gets its own cell in
        // the runtime), re-attach distinct cells per server:
        let cells: Vec<Arc<ReadCell>> = (0..3).map(|_| Arc::new(ReadCell::new())).collect();
        for (s, cell) in servers.iter_mut().zip(&cells) {
            s.attach_read_cell(Arc::clone(cell));
        }

        // Fresh ring: every cell serves the initial ⊥ immediately.
        for cell in &cells {
            assert_eq!(cell.try_read(), Some((Tag::ZERO, Value::bottom())));
        }

        servers[0].on_client_write(ClientId(0), RequestId(1), Value::from_u64(42));
        // s0 frames the pre-write: now pending there → blocked.
        let frame = servers[0].next_frame().expect("pre-write frame");
        assert_eq!(cells[0].try_read(), None, "origin blocked by own pending");
        // Deliver around the ring until quiescent.
        let mut at = 1usize;
        let mut frame = Some(frame);
        let mut acks = Vec::new();
        while let Some(f) = frame.take() {
            acks.extend(servers[at].on_frame(f));
            frame = servers[at].next_frame();
            at = (at + 1) % 3;
        }
        assert!(!acks.is_empty(), "write must complete");
        // Committed everywhere: every cell serves the new value.
        for cell in &cells {
            assert_eq!(
                cell.try_read().map(|(_, v)| v),
                Some(Value::from_u64(42)),
                "{cell:?}"
            );
        }
    }

    /// The torn-read hammer: one writer publishes tag/value pairs whose
    /// value encodes the tag; readers must never observe a pair where
    /// they disagree, no matter how the threads interleave.
    #[test]
    fn hammer_publish_vs_optimistic_read_never_tears() {
        let cell = Arc::new(ReadCell::new());
        let stop = Arc::new(AtomicBool::new(false));
        let seen_any = Arc::new(AtomicBool::new(false));
        let readers: Vec<_> = (0..4)
            .map(|_| {
                let cell = Arc::clone(&cell);
                let stop = Arc::clone(&stop);
                let seen_any = Arc::clone(&seen_any);
                thread::spawn(move || {
                    let mut seen = 0u64;
                    let mut last_ts = 0u64;
                    while !stop.load(Ordering::Relaxed) {
                        if let Some((tag, value)) = cell.try_read() {
                            // Consistency: the value must encode its tag.
                            assert_eq!(
                                value.as_u64(),
                                Some(tag.ts),
                                "torn read: tag {tag} with mismatched value"
                            );
                            // Monotonicity: published tags only grow.
                            assert!(tag.ts >= last_ts, "snapshot went backwards");
                            last_ts = tag.ts;
                            seen += 1;
                            seen_any.store(true, Ordering::Relaxed);
                        }
                    }
                    seen
                })
            })
            .collect();
        // Writer: alternate blocked/unblocked publishes as fast as
        // possible to maximize the chance of catching a racing reader.
        for ts in 1..=50_000u64 {
            let tag = Tag::new(ts, ServerId(0));
            cell.publish(tag, &Value::from_u64(ts), ts % 7 == 0);
            if ts % 3 == 0 {
                cell.set_blocked(ts % 6 == 0);
            }
        }
        // Park on a final unblocked snapshot and wait for a successful
        // read before stopping: on an oversubscribed machine the reader
        // threads may not have been scheduled at all yet.
        cell.publish(
            Tag::new(50_001, ServerId(0)),
            &Value::from_u64(50_001),
            false,
        );
        while !seen_any.load(Ordering::Relaxed) {
            thread::yield_now();
        }
        stop.store(true, Ordering::Relaxed);
        let total: u64 = readers.into_iter().map(|h| h.join().unwrap()).sum();
        // The fast path must actually have answered (this is a sanity
        // check on the test, not a strict liveness guarantee).
        assert!(total > 0, "no reader ever saw an unblocked snapshot");
    }
}
