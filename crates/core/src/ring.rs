//! Ring membership as seen by one server.

use hts_types::ServerId;

/// One server's view of the ring: the full (static) membership and which
/// members are still believed alive.
///
/// The paper's model has a fixed initial membership of `n` servers; crashed
/// servers are spliced out of the ring, never re-added. The perfect failure
/// detector guarantees all views converge.
///
/// # Examples
///
/// ```
/// use hts_core::RingView;
/// use hts_types::ServerId;
///
/// let mut ring = RingView::new(ServerId(1), 4);
/// assert_eq!(ring.successor(), Some(ServerId(2)));
/// ring.mark_crashed(ServerId(2));
/// assert_eq!(ring.successor(), Some(ServerId(3)));
/// assert_eq!(ring.alive_count(), 3);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RingView {
    me: ServerId,
    alive: Vec<bool>,
}

impl RingView {
    /// Creates the view of server `me` in a healthy ring of `n` servers
    /// (`0..n`).
    ///
    /// # Panics
    ///
    /// Panics if `me` is outside `0..n` or `n` is zero.
    pub fn new(me: ServerId, n: u16) -> Self {
        assert!(n > 0, "a ring needs at least one server");
        assert!(me.0 < n, "server {me} outside ring of {n}");
        RingView {
            me,
            alive: vec![true; usize::from(n)],
        }
    }

    /// This server's id.
    pub fn me(&self) -> ServerId {
        self.me
    }

    /// Total (initial) membership, alive or not.
    pub fn n(&self) -> u16 {
        self.alive.len() as u16
    }

    /// Number of servers still believed alive.
    pub fn alive_count(&self) -> usize {
        self.alive.iter().filter(|a| **a).count()
    }

    /// Whether `s` is still believed alive.
    pub fn is_alive(&self, s: ServerId) -> bool {
        self.alive.get(s.index()).copied().unwrap_or(false)
    }

    /// Marks `s` crashed; returns `true` if it was previously alive.
    ///
    /// Marking oneself crashed is a protocol bug and panics.
    pub fn mark_crashed(&mut self, s: ServerId) -> bool {
        assert_ne!(s, self.me, "{s} asked to mark itself crashed");
        if s.index() >= self.alive.len() {
            return false;
        }
        std::mem::replace(&mut self.alive[s.index()], false)
    }

    /// Marks `s` alive again (crash-**recovery** rejoin: a restarted
    /// server announced itself back). Returns `true` if `s` was
    /// previously marked crashed. Rejoining oneself or an out-of-range
    /// id is a no-op.
    pub fn mark_rejoined(&mut self, s: ServerId) -> bool {
        if s == self.me || s.index() >= self.alive.len() {
            return false;
        }
        !std::mem::replace(&mut self.alive[s.index()], true)
    }

    /// The next alive server after `me` in ring order, or `None` when this
    /// server is the only survivor.
    pub fn successor(&self) -> Option<ServerId> {
        self.next_alive_after(self.me)
    }

    /// The next alive server after `s` (exclusive), or `None` if no *other*
    /// server is alive. `s` itself need not be alive.
    pub fn next_alive_after(&self, s: ServerId) -> Option<ServerId> {
        let n = self.alive.len();
        for step in 1..=n {
            let idx = (s.index() + step) % n;
            let candidate = ServerId(idx as u16);
            if candidate != s && self.is_alive(candidate) {
                if candidate == self.me && s == self.me {
                    return None; // alone in the ring
                }
                return Some(candidate);
            }
        }
        None
    }

    /// Whether this server is the designated **adopter** of writes orphaned
    /// by the crash of `origin`: the first alive server after it in ring
    /// order. All correct servers compute the same adopter once their
    /// failure detectors converge.
    pub fn is_adopter_of(&self, origin: ServerId) -> bool {
        !self.is_alive(origin) && self.next_alive_after(origin) == Some(self.me)
    }

    /// Iterates over the alive servers in id order.
    pub fn alive_servers(&self) -> impl Iterator<Item = ServerId> + '_ {
        self.alive
            .iter()
            .enumerate()
            .filter(|(_, a)| **a)
            .map(|(i, _)| ServerId(i as u16))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn healthy_ring_successors_wrap() {
        let r0 = RingView::new(ServerId(0), 3);
        let r2 = RingView::new(ServerId(2), 3);
        assert_eq!(r0.successor(), Some(ServerId(1)));
        assert_eq!(r2.successor(), Some(ServerId(0)));
        assert_eq!(r0.n(), 3);
        assert_eq!(r0.alive_count(), 3);
    }

    #[test]
    fn crashes_splice_the_ring() {
        let mut r = RingView::new(ServerId(0), 4);
        assert!(r.mark_crashed(ServerId(1)));
        assert!(!r.mark_crashed(ServerId(1))); // second report is stale
        assert_eq!(r.successor(), Some(ServerId(2)));
        r.mark_crashed(ServerId(2));
        r.mark_crashed(ServerId(3));
        assert_eq!(r.successor(), None);
        assert_eq!(r.alive_count(), 1);
    }

    #[test]
    fn rejoin_splices_back_in() {
        let mut r = RingView::new(ServerId(0), 3);
        r.mark_crashed(ServerId(1));
        assert_eq!(r.successor(), Some(ServerId(2)));
        assert!(r.mark_rejoined(ServerId(1)));
        assert!(!r.mark_rejoined(ServerId(1))); // second report is stale
        assert_eq!(r.successor(), Some(ServerId(1)));
        assert_eq!(r.alive_count(), 3);
        // Self and out-of-range rejoins are no-ops.
        assert!(!r.mark_rejoined(ServerId(0)));
        assert!(!r.mark_rejoined(ServerId(9)));
    }

    #[test]
    fn single_server_ring_has_no_successor() {
        let r = RingView::new(ServerId(0), 1);
        assert_eq!(r.successor(), None);
        assert_eq!(r.alive_count(), 1);
    }

    #[test]
    fn next_alive_after_skips_dead_runs() {
        let mut r = RingView::new(ServerId(0), 5);
        r.mark_crashed(ServerId(2));
        r.mark_crashed(ServerId(3));
        assert_eq!(r.next_alive_after(ServerId(1)), Some(ServerId(4)));
        assert_eq!(r.next_alive_after(ServerId(4)), Some(ServerId(0)));
        // Dead server as reference point works too.
        assert_eq!(r.next_alive_after(ServerId(2)), Some(ServerId(4)));
    }

    #[test]
    fn adopter_is_first_alive_successor_of_the_dead() {
        let mut r1 = RingView::new(ServerId(1), 4);
        let mut r2 = RingView::new(ServerId(2), 4);
        r1.mark_crashed(ServerId(0));
        r2.mark_crashed(ServerId(0));
        assert!(r1.is_adopter_of(ServerId(0)));
        assert!(!r2.is_adopter_of(ServerId(0)));
        // If the adopter dies too, the role shifts.
        r2.mark_crashed(ServerId(1));
        assert!(r2.is_adopter_of(ServerId(0)));
        // Alive origins have no adopter.
        let healthy = RingView::new(ServerId(1), 4);
        assert!(!healthy.is_adopter_of(ServerId(0)));
    }

    #[test]
    fn alive_servers_iterates_in_id_order() {
        let mut r = RingView::new(ServerId(0), 4);
        r.mark_crashed(ServerId(2));
        let alive: Vec<ServerId> = r.alive_servers().collect();
        assert_eq!(alive, vec![ServerId(0), ServerId(1), ServerId(3)]);
    }

    #[test]
    #[should_panic(expected = "outside ring")]
    fn out_of_range_me_panics() {
        let _ = RingView::new(ServerId(3), 3);
    }

    #[test]
    #[should_panic(expected = "mark itself crashed")]
    fn marking_self_crashed_panics() {
        let mut r = RingView::new(ServerId(0), 3);
        r.mark_crashed(ServerId(0));
    }
}
