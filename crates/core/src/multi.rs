//! Multiplexing many register objects over one server ring.
//!
//! Distributed storage systems "combine multiple of these read/write
//! objects, each storing its share of data" (paper §1). One
//! [`MultiObjectServer`] hosts a [`ServerCore`] per object; all objects
//! share the ring links, with transmission slots rotated round-robin
//! across objects that have work (each object's own fairness rule governs
//! *within* the object).

use std::collections::{BTreeMap, VecDeque};
use std::sync::Arc;

use hts_types::{ClientId, ObjectId, Rejoin, RequestId, RingFrame, ServerId, Tag, Value};

use crate::{Action, Config, ReadCellRegistry, ServerCore};

/// A ring server hosting many independent atomic registers.
///
/// # Examples
///
/// ```
/// use hts_core::{Config, MultiObjectServer};
/// use hts_types::{ClientId, ObjectId, RequestId, ServerId, Value};
///
/// let mut s = MultiObjectServer::new(ServerId(0), 1, Config::default());
/// // Objects are created on first use; a 1-server ring answers at once.
/// let acks = s.on_client_write(ObjectId(5), ClientId(0), RequestId(1), Value::from_u64(9));
/// assert_eq!(acks.len(), 1);
/// ```
#[derive(Debug, Clone)]
pub struct MultiObjectServer {
    me: ServerId,
    n: u16,
    config: Config,
    objects: BTreeMap<ObjectId, ServerCore>,
    /// Round-robin cursor over objects for ring slots.
    cursor: Option<ObjectId>,
    crashed: Vec<ServerId>,
    /// Rejoin announcements awaiting a ring slot (ours at restart,
    /// others' when forwarding). At most one rides per frame, and none
    /// leaves while recovery retransmissions are still queued — FIFO
    /// links then make an announcement's arrival prove the recovery
    /// stream arrived first.
    announce: VecDeque<Rejoin>,
    /// Restart resync in progress: every core queues reads and holds
    /// local writes until our own announcement completes its circuit.
    syncing: bool,
    /// [`hts_metrics::now_nanos`] when the resync began (0 outside one).
    sync_begun_at: u64,
    /// Snapshot cells for the transport's lock-free read fast path
    /// (attached by the runtime; `None` in simulators). Each core gets
    /// its object's cell when created.
    cells: Option<Arc<ReadCellRegistry>>,
}

impl MultiObjectServer {
    /// Creates server `me` of a ring of `n`, initially hosting no objects
    /// (they are created on first use).
    pub fn new(me: ServerId, n: u16, config: Config) -> Self {
        MultiObjectServer {
            me,
            n,
            config,
            objects: BTreeMap::new(),
            cursor: None,
            crashed: Vec::new(),
            announce: VecDeque::new(),
            syncing: false,
            sync_begun_at: 0,
            cells: None,
        }
    }

    /// Attaches the read-cell registry consulted by the transport's
    /// lock-free read fast path: every current and future object core
    /// publishes its snapshot into the registry's cell for that object.
    /// The thread driving this server is the cells' single writer.
    pub fn attach_read_cells(&mut self, cells: Arc<ReadCellRegistry>) {
        for (object, core) in self.objects.iter_mut() {
            core.attach_read_cell(cells.cell(*object));
        }
        self.cells = Some(cells);
    }

    /// This server's id.
    pub fn me(&self) -> ServerId {
        self.me
    }

    /// The number of objects currently hosted.
    pub fn object_count(&self) -> usize {
        self.objects.len()
    }

    /// Access to one object's core (if it exists yet).
    pub fn object(&self, object: ObjectId) -> Option<&ServerCore> {
        self.objects.get(&object)
    }

    /// The current ring successor.
    pub fn successor(&self) -> Option<ServerId> {
        // All cores share the same view; compute from any, else fresh.
        match self.objects.values().next() {
            Some(core) => core.successor(),
            None => {
                let mut core =
                    ServerCore::new(self.me, self.n, ObjectId::SINGLE, self.config.clone());
                for s in &self.crashed {
                    let _ = core.on_server_crashed(*s);
                }
                core.successor()
            }
        }
    }

    fn core_mut(&mut self, object: ObjectId) -> &mut ServerCore {
        let me = self.me;
        let n = self.n;
        let config = self.config.clone();
        let crashed = self.crashed.clone();
        let syncing = self.syncing;
        let cells = self.cells.clone();
        self.objects.entry(object).or_insert_with(|| {
            let mut core = ServerCore::new(me, n, object, config);
            // Late-created objects must share the ring view.
            for s in crashed {
                let _ = core.on_server_crashed(s);
            }
            // ...and the resync gate: an object this server has never
            // seen may still have history elsewhere in the ring.
            if syncing {
                core.begin_sync();
            }
            // ...and publish into the fast-path cell from birth.
            if let Some(cells) = cells {
                core.attach_read_cell(cells.cell(object));
            }
            core
        })
    }

    /// Routes a client write to its object.
    pub fn on_client_write(
        &mut self,
        object: ObjectId,
        client: ClientId,
        request: RequestId,
        value: Value,
    ) -> Vec<Action> {
        self.core_mut(object)
            .on_client_write(client, request, value)
    }

    /// Routes a client read to its object.
    pub fn on_client_read(
        &mut self,
        object: ObjectId,
        client: ClientId,
        request: RequestId,
    ) -> Vec<Action> {
        self.core_mut(object).on_client_read(client, request)
    }

    /// Routes a ring frame to its object and handles any piggybacked
    /// rejoin announcement.
    pub fn on_frame(&mut self, frame: RingFrame) -> Vec<Action> {
        let rejoin = frame.rejoin;
        // Route the protocol phases first: when an announcement rides on
        // the frame that carries the tail of a recovery stream, the
        // state must land before the sync-complete marker is acted on.
        let mut actions = if frame.pre_write.is_some() || frame.write.is_some() {
            self.core_mut(frame.object).on_frame(frame)
        } else {
            Vec::new()
        };
        if let Some(r) = rejoin {
            actions.extend(self.on_rejoin_announcement(r));
        }
        actions
    }

    /// Fans a crash report to every object.
    pub fn on_server_crashed(&mut self, s: ServerId) -> Vec<Action> {
        if !self.crashed.contains(&s) {
            self.crashed.push(s);
        }
        let mut actions = Vec::new();
        for core in self.objects.values_mut() {
            actions.extend(core.on_server_crashed(s));
        }
        // A queued or circulating announcement for the crashed server is
        // now a lie: forwarding it would resurrect a dead server in
        // every peer's ring view.
        self.announce.retain(|r| r.server != s);
        if self.syncing {
            if self.alive_count() <= 1 {
                // Lone survivor mid-resync: nobody to sync from *now*,
                // and our restored log may miss acknowledged writes that
                // live in the crashed peers' logs. Stay gated (reads and
                // writes keep queueing) until a peer rejoins — its log
                // holds everything committed while we were down, so the
                // resync then completes linearizably. Announcements are
                // pointless without a successor.
                self.announce.clear();
            } else if !self.announce.iter().any(|r| r.server == self.me) {
                // Our in-flight announcement may have died with the
                // crashed server; re-announce over the spliced ring.
                self.announce.push_back(Rejoin::announce(self.me));
            }
        }
        actions
    }

    /// Enters restart-resync mode: restore state first (see
    /// [`restore_state`](Self::restore_state)), then call this. Reads
    /// queue and local writes are withheld until our rejoin announcement
    /// — queued behind the predecessor's recovery stream at every hop —
    /// makes it all the way around the ring and back, proving the
    /// restored state has caught up with everything committed while this
    /// server was down. A single-server ring has nobody to sync from and
    /// skips straight to serving.
    pub fn begin_rejoin(&mut self) {
        if self.n <= 1 {
            return;
        }
        self.syncing = true;
        self.sync_begun_at = hts_metrics::now_nanos();
        for core in self.objects.values_mut() {
            core.begin_sync();
        }
        self.announce.push_back(Rejoin::announce(self.me));
    }

    /// Whether this server is still resyncing after a restart.
    pub fn is_syncing(&self) -> bool {
        self.syncing
    }

    /// Convenience wrapper for runtimes with an out-of-band rejoin
    /// detector: equivalent to receiving a fresh announcement for `s`.
    pub fn on_server_rejoined(&mut self, s: ServerId) -> Vec<Action> {
        self.on_rejoin_announcement(Rejoin::announce(s))
    }

    /// Handles a rejoin announcement (usually piggybacked on a ring
    /// frame). Our own announcement returning certifies the resync —
    /// unless the flags say the predecessor that vouched for the
    /// recovery stream was itself still syncing, in which case we
    /// re-announce and wait for it to catch up (see [`Rejoin`]). Anyone
    /// else's announcement is applied to every core (the new
    /// predecessor re-sends its state) and forwarded with the flags
    /// updated.
    pub fn on_rejoin_announcement(&mut self, r: Rejoin) -> Vec<Action> {
        if r.server == self.me {
            if !self.syncing {
                return Vec::new(); // duplicate announcement return
            }
            if r.stale_source && !r.all_syncing {
                // The predecessor's stream may miss writes committed
                // during our overlapping downtimes, and somewhere in the
                // ring a non-syncing server holds the truth. Go again:
                // by the time the retry circulates, the predecessor has
                // had its own stream FIFO-ahead of our announcement.
                self.announce.push_back(Rejoin::announce(self.me));
                return Vec::new();
            }
            // Clean certificate — or a whole-cluster cold start, where
            // the recovery logs are collectively all there is.
            self.syncing = false;
            hts_metrics::histogram!("hts_core_resync_nanos")
                .record(hts_metrics::now_nanos().saturating_sub(self.sync_begun_at));
            hts_metrics::counter!("hts_core_resyncs_total").inc();
            self.sync_begun_at = 0;
            let mut actions = Vec::new();
            for core in self.objects.values_mut() {
                actions.extend(core.finish_sync());
            }
            return actions;
        }
        self.crashed.retain(|c| *c != r.server);
        for core in self.objects.values_mut() {
            core.on_server_rejoined(r.server);
        }
        if self.syncing && !self.announce.iter().any(|a| a.server == self.me) {
            // A peer coming back ends a lone-survivor wait (and generally
            // gives our own announcement a ring to circulate on): make
            // sure one is in flight so our resync can complete.
            self.announce.push_back(Rejoin::announce(self.me));
        }
        let serving = self.successor() == Some(r.server);
        self.announce.push_back(Rejoin {
            server: r.server,
            // We are the hop the certificate vouches for: flag our own
            // resync state so the rejoiner knows whether to trust it.
            stale_source: r.stale_source || (serving && self.syncing),
            all_syncing: r.all_syncing && self.syncing,
        });
        Vec::new()
    }

    /// Whether any object has ring work queued (or an announcement
    /// waits for a slot).
    pub fn has_ring_work(&self) -> bool {
        !self.announce.is_empty() || self.objects.values().any(|c| c.has_ring_work())
    }

    /// Pulls the next ring frame, rotating fairly across objects. A
    /// pending rejoin announcement piggybacks on the frame (or rides
    /// alone) once no core still queues recovery retransmissions.
    pub fn next_frame(&mut self) -> Option<RingFrame> {
        let mut frame = self.next_object_frame();
        if !self.announce.is_empty() && self.objects.values().all(|c| !c.has_recovery_backlog()) {
            let r = self.announce.pop_front();
            match &mut frame {
                Some(f) => f.rejoin = r,
                None => frame = r.map(RingFrame::announce_rejoin),
            }
        }
        frame
    }

    /// Pulls up to `max_frames` frames for the current successor,
    /// rotating fairly across objects and piggybacking queued rejoin
    /// announcements exactly as repeated [`next_frame`](Self::next_frame)
    /// calls would — this is the batch scheduler the transports drain
    /// into one [`RingBatch`](hts_types::Message::RingBatch) wire
    /// message. `max_bytes` is a soft cap on the batch's encoded frame
    /// bodies: the frame that crosses it is included, then draining
    /// stops. Per-link FIFO (which the rejoin/resync protocol depends
    /// on) is preserved because the batch is written sequentially on the
    /// same link in drain order.
    pub fn drain_frames(&mut self, max_frames: usize, max_bytes: usize) -> Vec<RingFrame> {
        crate::server::drain_frames_with(|| self.next_frame(), max_frames, max_bytes)
    }

    fn next_object_frame(&mut self) -> Option<RingFrame> {
        if self.objects.is_empty() {
            return None;
        }
        // Start after the cursor, wrap once around all objects.
        let ids: Vec<ObjectId> = self.objects.keys().copied().collect();
        let start = match self.cursor {
            Some(c) => ids.iter().position(|&o| o > c).unwrap_or(0),
            None => 0,
        };
        for k in 0..ids.len() {
            let id = ids[(start + k) % ids.len()];
            let core = self.objects.get_mut(&id)?; // ids came from the map
            if let Some(frame) = core.next_frame() {
                self.cursor = Some(id);
                return Some(frame);
            }
        }
        None
    }

    fn alive_count(&self) -> usize {
        match self.objects.values().next() {
            Some(core) => core.ring().alive_count(),
            None => usize::from(self.n) - self.crashed.len(),
        }
    }

    /// Exports every object's committed `(tag, value)` pair — the state
    /// a snapshot persists. Objects still at the initial `⊥` are
    /// skipped (recovery recreates them on demand).
    pub fn export_state(&self) -> Vec<(ObjectId, Tag, Value)> {
        self.objects
            .iter()
            .filter_map(|(object, core)| {
                let (tag, value) = core.stored();
                (tag != Tag::ZERO).then(|| (*object, tag, value.clone()))
            })
            .collect()
    }

    /// Restores objects from recovered log state (boot-time only; pair
    /// with [`begin_rejoin`](Self::begin_rejoin) when other servers may
    /// have moved on during the downtime).
    pub fn restore_state(&mut self, state: impl IntoIterator<Item = (ObjectId, Tag, Value)>) {
        for (object, tag, value) in state {
            self.core_mut(object).restore(tag, value);
        }
    }

    /// Takes the `(object, tag, value)` commits applied since the last
    /// drain (empty unless [`Config::durability`] is persistent). The
    /// runtime logs them before flushing client acks.
    ///
    /// [`Config::durability`]: crate::Config
    pub fn drain_commits(&mut self) -> Vec<(ObjectId, Tag, Value)> {
        let mut commits = Vec::new();
        for (object, core) in self.objects.iter_mut() {
            commits.extend(
                core.drain_commits()
                    .into_iter()
                    .map(|(tag, value)| (*object, tag, value)),
            );
        }
        commits
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hts_types::Tag;

    #[test]
    fn objects_are_independent_registers() {
        let mut s = MultiObjectServer::new(ServerId(0), 1, Config::default());
        s.on_client_write(ObjectId(1), ClientId(0), RequestId(1), Value::from_u64(10));
        s.on_client_write(ObjectId(2), ClientId(0), RequestId(2), Value::from_u64(20));
        assert_eq!(s.object_count(), 2);
        assert_eq!(
            s.object(ObjectId(1)).unwrap().stored().1,
            &Value::from_u64(10)
        );
        assert_eq!(
            s.object(ObjectId(2)).unwrap().stored().1,
            &Value::from_u64(20)
        );
    }

    #[test]
    fn ring_slots_rotate_across_objects() {
        let mut s = MultiObjectServer::new(ServerId(0), 3, Config::default());
        // Queue one write in each of three objects.
        for o in 1..=3u32 {
            s.on_client_write(
                ObjectId(o),
                ClientId(0),
                RequestId(u64::from(o)),
                Value::from_u64(u64::from(o)),
            );
        }
        let mut seen = Vec::new();
        while let Some(frame) = s.next_frame() {
            seen.push(frame.object);
            if seen.len() > 10 {
                break;
            }
        }
        assert_eq!(seen, vec![ObjectId(1), ObjectId(2), ObjectId(3)]);
        assert!(s.has_ring_work() || !seen.is_empty());
    }

    #[test]
    fn late_objects_inherit_crash_knowledge() {
        let mut s = MultiObjectServer::new(ServerId(0), 3, Config::default());
        s.on_server_crashed(ServerId(1));
        // Object created after the crash still skips s1.
        s.on_client_write(ObjectId(9), ClientId(0), RequestId(1), Value::from_u64(1));
        let core = s.object(ObjectId(9)).unwrap();
        assert_eq!(core.successor(), Some(ServerId(2)));
        assert_eq!(s.successor(), Some(ServerId(2)));
    }

    #[test]
    fn drain_frames_matches_sequential_next_frame_order() {
        // A forwarding server with traffic across two objects, queued
        // local writes AND a rejoin announcement waiting for a slot: the
        // batch drain must produce byte-for-byte the frame sequence the
        // one-at-a-time pull would, announcements included — that is
        // what makes a batch FIFO-transparent on the link.
        let build = || {
            let mut s = MultiObjectServer::new(ServerId(1), 3, Config::default());
            for (o, ts) in [(1u32, 1u64), (2, 2), (1, 3)] {
                s.on_frame(RingFrame::pre_write(
                    ObjectId(o),
                    Tag::new(ts, ServerId(0)),
                    Value::from_u64(ts),
                ));
            }
            s.on_client_write(ObjectId(1), ClientId(9), RequestId(1), Value::from_u64(100));
            // s0 restarted: its announcement forwards with the flags
            // updated, competing with protocol frames for slots.
            s.on_rejoin_announcement(hts_types::Rejoin::announce(ServerId(0)));
            s
        };

        let mut batched = build();
        let mut sequential = build();
        let drained = batched.drain_frames(16, usize::MAX);
        let mut one_at_a_time = Vec::new();
        while let Some(frame) = sequential.next_frame() {
            one_at_a_time.push(frame);
        }
        assert!(drained.len() >= 4, "expected real traffic, got {drained:?}");
        assert_eq!(drained, one_at_a_time);
        assert!(
            drained.iter().any(|f| f.rejoin.is_some()),
            "announcement must ride in the batch"
        );
        assert!(!batched.has_ring_work(), "drain leaves nothing behind");
    }

    #[test]
    fn drain_frames_respects_frame_and_byte_caps() {
        let mut s = MultiObjectServer::new(ServerId(1), 3, Config::default());
        for ts in 1..=6u64 {
            s.on_frame(RingFrame::pre_write(
                ObjectId(1),
                Tag::new(ts, ServerId(0)),
                Value::filled(1, 1000),
            ));
        }
        // Frame cap.
        assert_eq!(s.drain_frames(2, usize::MAX).len(), 2);
        // Byte cap is soft: the frame crossing the budget still ships,
        // and a zero/tiny budget still yields one frame.
        assert_eq!(s.drain_frames(16, 0).len(), 1);
        assert_eq!(s.drain_frames(16, 1500).len(), 2);
        assert_eq!(s.drain_frames(16, usize::MAX).len(), 1);
        assert!(s.drain_frames(16, usize::MAX).is_empty());
    }

    #[test]
    fn frames_route_to_their_object() {
        let mut s = MultiObjectServer::new(ServerId(1), 3, Config::default());
        let frame = RingFrame::pre_write(ObjectId(4), Tag::new(1, ServerId(0)), Value::from_u64(4));
        s.on_frame(frame);
        assert!(s.has_ring_work());
        let out = s.next_frame().unwrap();
        assert_eq!(out.object, ObjectId(4));
        assert_eq!(s.object(ObjectId(4)).unwrap().pending().len(), 1);
    }
}
