//! Multiplexing many register objects over one server ring.
//!
//! Distributed storage systems "combine multiple of these read/write
//! objects, each storing its share of data" (paper §1). One
//! [`MultiObjectServer`] hosts a [`ServerCore`] per object; all objects
//! share the ring links, with transmission slots rotated round-robin
//! across objects that have work (each object's own fairness rule governs
//! *within* the object).

use std::collections::BTreeMap;

use hts_types::{ClientId, ObjectId, RequestId, RingFrame, ServerId, Value};

use crate::{Action, Config, ServerCore};

/// A ring server hosting many independent atomic registers.
///
/// # Examples
///
/// ```
/// use hts_core::{Config, MultiObjectServer};
/// use hts_types::{ClientId, ObjectId, RequestId, ServerId, Value};
///
/// let mut s = MultiObjectServer::new(ServerId(0), 1, Config::default());
/// // Objects are created on first use; a 1-server ring answers at once.
/// let acks = s.on_client_write(ObjectId(5), ClientId(0), RequestId(1), Value::from_u64(9));
/// assert_eq!(acks.len(), 1);
/// ```
#[derive(Debug, Clone)]
pub struct MultiObjectServer {
    me: ServerId,
    n: u16,
    config: Config,
    objects: BTreeMap<ObjectId, ServerCore>,
    /// Round-robin cursor over objects for ring slots.
    cursor: Option<ObjectId>,
    crashed: Vec<ServerId>,
}

impl MultiObjectServer {
    /// Creates server `me` of a ring of `n`, initially hosting no objects
    /// (they are created on first use).
    pub fn new(me: ServerId, n: u16, config: Config) -> Self {
        MultiObjectServer {
            me,
            n,
            config,
            objects: BTreeMap::new(),
            cursor: None,
            crashed: Vec::new(),
        }
    }

    /// This server's id.
    pub fn me(&self) -> ServerId {
        self.me
    }

    /// The number of objects currently hosted.
    pub fn object_count(&self) -> usize {
        self.objects.len()
    }

    /// Access to one object's core (if it exists yet).
    pub fn object(&self, object: ObjectId) -> Option<&ServerCore> {
        self.objects.get(&object)
    }

    /// The current ring successor.
    pub fn successor(&self) -> Option<ServerId> {
        // All cores share the same view; compute from any, else fresh.
        match self.objects.values().next() {
            Some(core) => core.successor(),
            None => {
                let mut core = ServerCore::new(self.me, self.n, ObjectId::SINGLE, self.config.clone());
                for s in &self.crashed {
                    let _ = core.on_server_crashed(*s);
                }
                core.successor()
            }
        }
    }

    fn core_mut(&mut self, object: ObjectId) -> &mut ServerCore {
        let me = self.me;
        let n = self.n;
        let config = self.config.clone();
        let crashed = self.crashed.clone();
        self.objects.entry(object).or_insert_with(|| {
            let mut core = ServerCore::new(me, n, object, config);
            // Late-created objects must share the ring view.
            for s in crashed {
                let _ = core.on_server_crashed(s);
            }
            core
        })
    }

    /// Routes a client write to its object.
    pub fn on_client_write(
        &mut self,
        object: ObjectId,
        client: ClientId,
        request: RequestId,
        value: Value,
    ) -> Vec<Action> {
        self.core_mut(object).on_client_write(client, request, value)
    }

    /// Routes a client read to its object.
    pub fn on_client_read(
        &mut self,
        object: ObjectId,
        client: ClientId,
        request: RequestId,
    ) -> Vec<Action> {
        self.core_mut(object).on_client_read(client, request)
    }

    /// Routes a ring frame to its object.
    pub fn on_frame(&mut self, frame: RingFrame) -> Vec<Action> {
        self.core_mut(frame.object).on_frame(frame)
    }

    /// Fans a crash report to every object.
    pub fn on_server_crashed(&mut self, s: ServerId) -> Vec<Action> {
        if !self.crashed.contains(&s) {
            self.crashed.push(s);
        }
        let mut actions = Vec::new();
        for core in self.objects.values_mut() {
            actions.extend(core.on_server_crashed(s));
        }
        actions
    }

    /// Whether any object has ring work queued.
    pub fn has_ring_work(&self) -> bool {
        self.objects.values().any(|c| c.has_ring_work())
    }

    /// Pulls the next ring frame, rotating fairly across objects.
    pub fn next_frame(&mut self) -> Option<RingFrame> {
        if self.objects.is_empty() {
            return None;
        }
        // Start after the cursor, wrap once around all objects.
        let ids: Vec<ObjectId> = self.objects.keys().copied().collect();
        let start = match self.cursor {
            Some(c) => ids.iter().position(|&o| o > c).unwrap_or(0),
            None => 0,
        };
        for k in 0..ids.len() {
            let id = ids[(start + k) % ids.len()];
            if let Some(frame) = self.objects.get_mut(&id).expect("known id").next_frame() {
                self.cursor = Some(id);
                return Some(frame);
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hts_types::Tag;

    #[test]
    fn objects_are_independent_registers() {
        let mut s = MultiObjectServer::new(ServerId(0), 1, Config::default());
        s.on_client_write(ObjectId(1), ClientId(0), RequestId(1), Value::from_u64(10));
        s.on_client_write(ObjectId(2), ClientId(0), RequestId(2), Value::from_u64(20));
        assert_eq!(s.object_count(), 2);
        assert_eq!(
            s.object(ObjectId(1)).unwrap().stored().1,
            &Value::from_u64(10)
        );
        assert_eq!(
            s.object(ObjectId(2)).unwrap().stored().1,
            &Value::from_u64(20)
        );
    }

    #[test]
    fn ring_slots_rotate_across_objects() {
        let mut s = MultiObjectServer::new(ServerId(0), 3, Config::default());
        // Queue one write in each of three objects.
        for o in 1..=3u32 {
            s.on_client_write(
                ObjectId(o),
                ClientId(0),
                RequestId(u64::from(o)),
                Value::from_u64(u64::from(o)),
            );
        }
        let mut seen = Vec::new();
        while let Some(frame) = s.next_frame() {
            seen.push(frame.object);
            if seen.len() > 10 {
                break;
            }
        }
        assert_eq!(seen, vec![ObjectId(1), ObjectId(2), ObjectId(3)]);
        assert!(s.has_ring_work() || !seen.is_empty());
    }

    #[test]
    fn late_objects_inherit_crash_knowledge() {
        let mut s = MultiObjectServer::new(ServerId(0), 3, Config::default());
        s.on_server_crashed(ServerId(1));
        // Object created after the crash still skips s1.
        s.on_client_write(ObjectId(9), ClientId(0), RequestId(1), Value::from_u64(1));
        let core = s.object(ObjectId(9)).unwrap();
        assert_eq!(core.successor(), Some(ServerId(2)));
        assert_eq!(s.successor(), Some(ServerId(2)));
    }

    #[test]
    fn frames_route_to_their_object() {
        let mut s = MultiObjectServer::new(ServerId(1), 3, Config::default());
        let frame = RingFrame::pre_write(ObjectId(4), Tag::new(1, ServerId(0)), Value::from_u64(4));
        s.on_frame(frame);
        assert!(s.has_ring_work());
        let out = s.next_frame().unwrap();
        assert_eq!(out.object, ObjectId(4));
        assert_eq!(s.object(ObjectId(4)).unwrap().pending().len(), 1);
    }
}
