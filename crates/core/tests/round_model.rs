//! The production `ServerCore` on the paper's synchronous round model:
//! §4's analytical claims as executable assertions.

use std::cell::RefCell;
use std::rc::Rc;

use hts_core::{Config, RoundClient, RoundClientStats, RoundServer};
use hts_sim::round::RoundSim;
use hts_sim::NetworkId;
use hts_types::{ClientId, Message, NodeId, ServerId};

struct Net {
    sim: RoundSim<Message>,
    ring: NetworkId,
    client: NetworkId,
    n: u16,
}

fn ring_of(n: u16) -> Net {
    let mut sim: RoundSim<Message> = RoundSim::new();
    let ring = sim.add_network();
    let client = sim.add_network();
    for i in 0..n {
        let id = NodeId::Server(ServerId(i));
        sim.add_node(
            id,
            Box::new(RoundServer::new(
                ServerId(i),
                n,
                Config::default(),
                ring,
                client,
            )),
        );
        sim.attach(id, ring);
        sim.attach(id, client);
    }
    Net {
        sim,
        ring,
        client,
        n,
    }
}

fn add_client(
    net: &mut Net,
    id: u32,
    preferred: u16,
    reads: bool,
    limit: Option<u64>,
) -> Rc<RefCell<RoundClientStats>> {
    let cid = ClientId(id);
    let (client, stats) =
        RoundClient::new(cid, net.n, ServerId(preferred), reads, limit, net.client);
    net.sim.add_node(NodeId::Client(cid), Box::new(client));
    net.sim.attach(NodeId::Client(cid), net.client);
    let _ = net.ring;
    stats
}

#[test]
fn isolated_read_takes_two_rounds() {
    for n in [2u16, 5, 8] {
        let mut net = ring_of(n);
        let stats = add_client(&mut net, 0, 0, true, Some(1));
        net.sim.run_rounds(10);
        let s = stats.borrow();
        assert_eq!(s.completed, 1);
        assert_eq!(s.latencies, vec![2], "read latency at n={n}");
    }
}

#[test]
fn isolated_write_takes_2n_plus_2_rounds() {
    for n in [2u16, 3, 5, 8] {
        let mut net = ring_of(n);
        let stats = add_client(&mut net, 0, 0, false, Some(1));
        net.sim.run_rounds(8 + 4 * u64::from(n));
        let s = stats.borrow();
        assert_eq!(s.completed, 1, "write completed at n={n}");
        assert_eq!(
            s.latencies,
            vec![u64::from(2 * n + 2)],
            "write latency at n={n}"
        );
    }
}

#[test]
fn saturated_write_throughput_is_one_per_round() {
    let n = 4u16;
    let mut net = ring_of(n);
    let mut stats = Vec::new();
    for i in 0..n {
        for k in 0..3u32 {
            stats.push(add_client(&mut net, u32::from(i) * 10 + k, i, false, None));
        }
    }
    let warm = 100u64;
    let window = 400u64;
    net.sim.run_rounds(warm);
    let before: u64 = stats.iter().map(|s| s.borrow().completed).sum();
    net.sim.run_rounds(window);
    let after: u64 = stats.iter().map(|s| s.borrow().completed).sum();
    let per_round = (after - before) as f64 / window as f64;
    assert!(
        (0.95..=1.05).contains(&per_round),
        "write throughput {per_round:.3} ops/round (paper: 1)"
    );
}

#[test]
fn saturated_read_throughput_is_n_per_round() {
    for n in [2u16, 4, 6] {
        let mut net = ring_of(n);
        let mut stats = Vec::new();
        for i in 0..n {
            for k in 0..2u32 {
                stats.push(add_client(&mut net, u32::from(i) * 10 + k, i, true, None));
            }
        }
        let warm = 50u64;
        let window = 200u64;
        net.sim.run_rounds(warm);
        let before: u64 = stats.iter().map(|s| s.borrow().completed).sum();
        net.sim.run_rounds(window);
        let after: u64 = stats.iter().map(|s| s.borrow().completed).sum();
        let per_round = (after - before) as f64 / window as f64;
        assert!(
            (f64::from(n) * 0.95..=f64::from(n) * 1.05).contains(&per_round),
            "read throughput {per_round:.2} ops/round at n={n} (paper: {n})"
        );
    }
}

#[test]
fn mixed_load_on_separate_networks_achieves_both_bounds() {
    // The dual-NIC round model serves 1 write/round AND n reads/round
    // simultaneously — the §4.2 argument for the separate client network.
    let n = 3u16;
    let mut net = ring_of(n);
    let mut readers = Vec::new();
    let mut writers = Vec::new();
    for i in 0..n {
        // Enough outstanding writes to fill the ~2n+2-round pipeline.
        readers.push(add_client(&mut net, u32::from(i) * 10, i, true, None));
        readers.push(add_client(&mut net, u32::from(i) * 10 + 1, i, true, None));
        for k in 2..6u32 {
            writers.push(add_client(&mut net, u32::from(i) * 10 + k, i, false, None));
        }
    }
    let warm = 100u64;
    let window = 400u64;
    net.sim.run_rounds(warm);
    let (r0, w0): (u64, u64) = (
        readers.iter().map(|s| s.borrow().completed).sum(),
        writers.iter().map(|s| s.borrow().completed).sum(),
    );
    net.sim.run_rounds(window);
    let reads = readers.iter().map(|s| s.borrow().completed).sum::<u64>() - r0;
    let writes = writers.iter().map(|s| s.borrow().completed).sum::<u64>() - w0;
    let read_rate = reads as f64 / window as f64;
    let write_rate = writes as f64 / window as f64;
    assert!(
        write_rate > 0.9,
        "writes should sustain ~1/round, got {write_rate:.2}"
    );
    // With two outstanding reads per server, blocked reads are
    // latency-bound (each waits for the pending write's commit, several
    // rounds under saturation) — full n/round read saturation needs many
    // outstanding reads, exactly the packet-model chart-3 lesson. The
    // claim asserted here is liveness and non-starvation: reads keep
    // completing at a steady rate despite saturated writers.
    assert!(
        read_rate > f64::from(n) * 0.1,
        "reads should keep flowing under write load, got {read_rate:.2}/round"
    );
}

#[test]
fn round_model_crash_recovery_completes_writes() {
    let n = 3u16;
    let mut net = ring_of(n);
    let stats = add_client(&mut net, 0, 0, false, Some(5));
    // Crash s1 mid-run: the ring splices and writes keep completing.
    net.sim.crash_at_round(NodeId::Server(ServerId(1)), 12);
    net.sim.run_rounds(200);
    assert_eq!(stats.borrow().completed, 5, "writes survive the crash");
}
