//! Crash-**recovery** protocol tests: a server restarts from its
//! persisted commits, rejoins the ring through the announcement
//! circulation, resyncs from its new predecessor and serves again —
//! all driven by hand-delivering frames, no I/O.

use std::collections::BTreeMap;

use hts_core::{Action, Config, Durability, MultiObjectServer};
use hts_types::{ClientId, ObjectId, RequestId, ServerId, Tag, Value};

/// A hand-driven ring of multi-object servers. `None` = crashed.
struct Ring {
    servers: Vec<Option<MultiObjectServer>>,
    /// Modeled per-server WAL: commits drained after every event.
    logs: Vec<BTreeMap<ObjectId, (Tag, Value)>>,
}

impl Ring {
    fn new(n: u16, config: Config) -> Ring {
        Ring {
            servers: (0..n)
                .map(|i| Some(MultiObjectServer::new(ServerId(i), n, config.clone())))
                .collect(),
            logs: (0..n).map(|_| BTreeMap::new()).collect(),
        }
    }

    fn server(&mut self, s: u16) -> &mut MultiObjectServer {
        self.servers[usize::from(s)].as_mut().expect("server alive")
    }

    fn persist(&mut self, s: u16) {
        let commits = self.server(s).drain_commits();
        for (object, tag, value) in commits {
            let entry = self.logs[usize::from(s)]
                .entry(object)
                .or_insert((tag, value.clone()));
            if entry.0 < tag {
                *entry = (tag, value);
            }
        }
    }

    /// Delivers frames until the ring quiesces, collecting all actions.
    fn drive(&mut self) -> Vec<Action> {
        let mut actions = Vec::new();
        loop {
            let mut progressed = false;
            for i in 0..self.servers.len() {
                let Some(server) = self.servers[i].as_mut() else {
                    continue;
                };
                let Some(successor) = server.successor() else {
                    continue;
                };
                let Some(frame) = server.next_frame() else {
                    continue;
                };
                progressed = true;
                self.persist(i as u16);
                if let Some(dest) = self.servers[successor.index()].as_mut() {
                    actions.extend(dest.on_frame(frame));
                    self.persist(successor.0);
                }
            }
            if !progressed {
                return actions;
            }
        }
    }

    fn crash(&mut self, s: u16) -> Vec<Action> {
        self.servers[usize::from(s)] = None;
        let mut actions = Vec::new();
        for server in self.servers.iter_mut().flatten() {
            actions.extend(server.on_server_crashed(ServerId(s)));
        }
        actions
    }

    /// Boots a fresh instance of `s` from its modeled WAL and announces
    /// the rejoin.
    fn restart(&mut self, s: u16, config: Config) {
        let n = self.servers.len() as u16;
        let mut server = MultiObjectServer::new(ServerId(s), n, config);
        server.restore_state(
            self.logs[usize::from(s)]
                .iter()
                .map(|(object, (tag, value))| (*object, *tag, value.clone())),
        );
        server.begin_rejoin();
        self.servers[usize::from(s)] = Some(server);
    }
}

fn durable_config() -> Config {
    Config {
        durability: Durability::SyncAlways,
        ..Config::default()
    }
}

fn write(ring: &mut Ring, via: u16, req: u64, value: Value) {
    let actions =
        ring.server(via)
            .on_client_write(ObjectId::SINGLE, ClientId(0), RequestId(req), value);
    ring.persist(via);
    let mut acks: Vec<Action> = actions;
    acks.extend(ring.drive());
    assert!(
        acks.iter()
            .any(|a| matches!(a, Action::WriteAck { request, .. } if *request == RequestId(req))),
        "write {req} not acknowledged"
    );
}

fn read_value(actions: &[Action], req: u64) -> Option<Value> {
    actions.iter().find_map(|a| match a {
        Action::ReadReply { request, value, .. } if *request == RequestId(req) => {
            Some(value.clone())
        }
        _ => None,
    })
}

#[test]
fn commits_reach_the_modeled_log_on_every_server() {
    let mut ring = Ring::new(3, durable_config());
    write(&mut ring, 0, 1, Value::from_u64(11));
    for s in 0..3 {
        let log = &ring.logs[s];
        assert_eq!(
            log.get(&ObjectId::SINGLE).map(|(_, v)| v.clone()),
            Some(Value::from_u64(11)),
            "server {s} log"
        );
    }
}

#[test]
fn restarted_server_resyncs_and_serves_missed_writes() {
    let mut ring = Ring::new(3, durable_config());
    write(&mut ring, 0, 1, Value::from_u64(1));

    ring.crash(1);
    ring.drive();
    // s1 misses this write entirely.
    write(&mut ring, 0, 2, Value::from_u64(2));

    ring.restart(1, durable_config());
    assert!(ring.server(1).is_syncing());
    // Restored state is the pre-crash value — reads must NOT see it yet.
    let immediate = ring
        .server(1)
        .on_client_read(ObjectId::SINGLE, ClientId(9), RequestId(10));
    assert!(immediate.is_empty(), "stale read served during resync");

    // Announcement circulates, predecessor re-sends state, sync completes.
    let actions = ring.drive();
    assert!(!ring.server(1).is_syncing(), "rejoin never completed");
    assert_eq!(
        read_value(&actions, 10),
        Some(Value::from_u64(2)),
        "queued read must see the missed write after resync"
    );

    // The rejoined server participates in new writes again.
    write(&mut ring, 1, 3, Value::from_u64(3));
    for s in [0u16, 1, 2] {
        let got = ring.server(s).on_client_read(
            ObjectId::SINGLE,
            ClientId(5),
            RequestId(20 + u64::from(s)),
        );
        let mut all = got;
        all.extend(ring.drive());
        assert_eq!(
            read_value(&all, 20 + u64::from(s)),
            Some(Value::from_u64(3)),
            "server {s} after rejoin"
        );
    }
}

#[test]
fn writes_issued_during_resync_wait_for_fresh_tags() {
    let mut ring = Ring::new(3, durable_config());
    write(&mut ring, 0, 1, Value::from_u64(1));
    ring.crash(1);
    ring.drive();
    write(&mut ring, 0, 2, Value::from_u64(2));

    ring.restart(1, durable_config());
    // A write lands on the rejoiner mid-resync: it must be held (no tag
    // minted from stale state) and complete after sync.
    let pre = ring.server(1).on_client_write(
        ObjectId::SINGLE,
        ClientId(0),
        RequestId(30),
        Value::from_u64(30),
    );
    assert!(pre.is_empty());
    let actions = ring.drive();
    assert!(actions
        .iter()
        .any(|a| matches!(a, Action::WriteAck { request, .. } if *request == RequestId(30))));
    // Its tag ordered after the write committed during the downtime.
    let read = ring
        .server(2)
        .on_client_read(ObjectId::SINGLE, ClientId(1), RequestId(31));
    let mut all = read;
    all.extend(ring.drive());
    assert_eq!(read_value(&all, 31), Some(Value::from_u64(30)));
}

#[test]
fn syncing_lone_survivor_holds_reads_until_a_peer_returns() {
    // The restored log of a mid-resync rejoiner may miss writes that
    // were acknowledged while it was down — writes that still exist in
    // the crashed peers' logs. A lone survivor in that state must NOT
    // serve (linearizability over availability): reads stay queued
    // until a peer rejoins and the resync completes against its log.
    let mut ring = Ring::new(3, durable_config());
    write(&mut ring, 0, 1, Value::from_u64(7));
    ring.crash(1);
    ring.drive();

    ring.restart(1, durable_config());
    let queued = ring
        .server(1)
        .on_client_read(ObjectId::SINGLE, ClientId(2), RequestId(40));
    assert!(queued.is_empty());

    // Before the announcement can circulate, everyone else dies.
    let mut actions = Vec::new();
    for s in [0u16, 2] {
        ring.servers[usize::from(s)] = None;
        for server in ring.servers.iter_mut().flatten() {
            actions.extend(server.on_server_crashed(ServerId(s)));
        }
    }
    actions.extend(ring.drive());
    // Lone, still syncing: the queued read must NOT be answered from the
    // possibly-stale log.
    assert!(ring.server(1).is_syncing());
    assert_eq!(
        read_value(&actions, 40),
        None,
        "served while resyncing alone"
    );

    // s0 comes back from its log: the pair resyncs against each other's
    // logs (cold-start rule) and the held read finally answers.
    ring.restart(0, durable_config());
    let actions = ring.drive();
    assert!(!ring.server(1).is_syncing());
    assert!(!ring.server(0).is_syncing());
    assert_eq!(read_value(&actions, 40), Some(Value::from_u64(7)));
}

#[test]
fn export_restore_roundtrip_covers_all_objects() {
    let mut server = MultiObjectServer::new(ServerId(0), 1, durable_config());
    for o in 1..=4u32 {
        server.on_client_write(
            ObjectId(o),
            ClientId(0),
            RequestId(u64::from(o)),
            Value::from_u64(u64::from(o) * 100),
        );
    }
    let state = server.export_state();
    assert_eq!(state.len(), 4);

    let mut restored = MultiObjectServer::new(ServerId(0), 1, durable_config());
    restored.restore_state(state);
    for o in 1..=4u32 {
        assert_eq!(
            restored.object(ObjectId(o)).unwrap().stored().1,
            &Value::from_u64(u64::from(o) * 100)
        );
    }
    // Restores are not re-logged as commits.
    assert!(restored.drain_commits().is_empty());
}

#[test]
fn volatile_config_logs_nothing() {
    let mut ring = Ring::new(3, Config::default());
    write(&mut ring, 0, 1, Value::from_u64(5));
    assert!(ring.logs.iter().all(BTreeMap::is_empty));
}

#[test]
fn overlapping_restarts_converge_on_the_survivors_state() {
    // The review scenario: s0 and s1 both die; lone survivor s2 commits
    // a write w neither log contains; then both restart concurrently.
    // A rejoiner whose recovery source is itself still resyncing must
    // not certify its sync off the stale stream (the announcement comes
    // back flagged and it re-announces) — after quiescence every server
    // serves w.
    let mut ring = Ring::new(3, durable_config());
    write(&mut ring, 0, 1, Value::from_u64(1));
    ring.crash(0);
    ring.crash(1);
    ring.drive();
    // Lone survivor commits w; only s2's log has it.
    write(&mut ring, 2, 2, Value::from_u64(2));

    ring.restart(0, durable_config());
    ring.restart(1, durable_config());
    let actions = ring.drive();
    let _ = actions;
    assert!(!ring.server(0).is_syncing(), "s0 never finished resync");
    assert!(!ring.server(1).is_syncing(), "s1 never finished resync");
    for s in [0u16, 1, 2] {
        let got = ring.server(s).on_client_read(
            ObjectId::SINGLE,
            ClientId(7),
            RequestId(50 + u64::from(s)),
        );
        let mut all = got;
        all.extend(ring.drive());
        assert_eq!(
            read_value(&all, 50 + u64::from(s)),
            Some(Value::from_u64(2)),
            "server {s} must serve the survivor's write after overlapping restarts"
        );
    }
}

#[test]
fn whole_cluster_cold_restart_serves_log_state_without_livelock() {
    // Every server restarts at once: all are resyncing, so every rejoin
    // certificate is "stale" — but the all_syncing flag survives the
    // full circulation, proving the logs are collectively authoritative,
    // and everyone finishes instead of re-announcing forever.
    let mut ring = Ring::new(3, durable_config());
    write(&mut ring, 0, 1, Value::from_u64(9));
    for s in 0..3 {
        ring.servers[s] = None;
    }
    for s in 0..3u16 {
        ring.restart(s, durable_config());
    }
    ring.drive();
    for s in 0..3u16 {
        assert!(!ring.server(s).is_syncing(), "s{s} livelocked in resync");
        let got = ring.server(s).on_client_read(
            ObjectId::SINGLE,
            ClientId(8),
            RequestId(60 + u64::from(s)),
        );
        let mut all = got;
        all.extend(ring.drive());
        assert_eq!(
            read_value(&all, 60 + u64::from(s)),
            Some(Value::from_u64(9)),
            "server {s} after cold restart"
        );
    }
}

#[test]
fn announcement_for_a_recrashed_server_is_purged() {
    // s1 restarts but dies again before its announcement finishes
    // circulating: queued copies must be dropped, not forwarded —
    // forwarding would resurrect a dead server in everyone's ring view.
    let mut ring = Ring::new(3, durable_config());
    write(&mut ring, 0, 1, Value::from_u64(4));
    ring.crash(1);
    ring.drive();
    ring.restart(1, durable_config());
    // Pull s1's announcement and deliver it to s2 only, then kill s1
    // again before s2 forwards.
    let frame = ring.server(1).next_frame().expect("announcement frame");
    let rejoin = frame.rejoin.expect("carries the announcement");
    assert_eq!(rejoin.server, ServerId(1));
    ring.server(2).on_frame(frame);
    ring.crash(1);
    ring.drive();
    // s2 must not have resurrected s1: its successor skips it.
    assert_eq!(
        ring.server(2).successor(),
        Some(ServerId(0)),
        "stale announcement resurrected a re-crashed server"
    );
    // And the ring still works.
    write(&mut ring, 0, 2, Value::from_u64(5));
}

#[test]
fn commit_notice_overtaking_its_recovery_copy_carries_the_value() {
    // While s1 streams recovery state to a rejoining s2, a write that
    // commits concurrently forwards its notice tag-only in steady state.
    // If that notice overtakes the (value-carrying) recovery copy of its
    // own pre-write — fairness across origins allows it — the rejoiner
    // would be told to commit a value it has never seen. The notice must
    // carry the value while the recovery copy is still queued.
    use hts_core::ServerCore;
    use hts_types::{PreWrite, RingFrame, Tag, WriteNotice};

    let mut s1 = ServerCore::new(ServerId(1), 3, ObjectId::SINGLE, durable_config());
    // A foreign pre-write arrives and is forwarded: it is now pending.
    let tag = Tag::new(1, ServerId(0));
    s1.on_frame(RingFrame {
        object: ObjectId::SINGLE,
        pre_write: Some(PreWrite {
            tag,
            value: Value::from_u64(77),
            recovery: false,
        }),
        write: None,
        rejoin: None,
    });
    assert!(s1.next_frame().is_some(), "forwarded the pre-write");

    // s2 bounces: on rejoin, s1 (its new predecessor) queues recovery
    // copies of everything pending.
    s1.on_server_crashed(ServerId(2));
    s1.on_server_rejoined(ServerId(2));
    assert!(s1.has_recovery_backlog());

    // The commit notice for the pending tag arrives before the recovery
    // copy drains: the forwarded notice must carry the value.
    s1.on_frame(RingFrame {
        object: ObjectId::SINGLE,
        pre_write: None,
        write: Some(WriteNotice { tag, value: None }),
        rejoin: None,
    });
    let mut saw_commit_notice = false;
    while let Some(frame) = s1.next_frame() {
        if let Some(notice) = &frame.write {
            if notice.tag == tag {
                saw_commit_notice = true;
                assert_eq!(
                    notice.value,
                    Some(Value::from_u64(77)),
                    "tag-only notice would overtake the rejoiner's recovery copy"
                );
            }
        }
    }
    assert!(saw_commit_notice);
}

#[test]
fn commit_notice_resolves_from_a_queued_unforwarded_pre_write() {
    // After a splice-and-rejoin, a commit's recovery circulation can
    // bypass a server entirely: the commit notice then arrives while the
    // matching pre-write still sits in the forward queue (the pending
    // cache only fills at forward time, paper line 71). The notice must
    // resolve the value from the queue instead of silently skipping the
    // apply (debug builds assert).
    use hts_core::ServerCore;
    use hts_types::{PreWrite, RingFrame, Tag, WriteNotice};

    let mut s2 = ServerCore::new(ServerId(2), 3, ObjectId::SINGLE, durable_config());
    let tag = Tag::new(3, ServerId(1));
    // Pre-write arrives and queues for forwarding; the TX slot has not
    // fired yet, so it is not in the pending cache.
    s2.on_frame(RingFrame {
        object: ObjectId::SINGLE,
        pre_write: Some(PreWrite {
            tag,
            value: Value::from_u64(33),
            recovery: true,
        }),
        write: None,
        rejoin: None,
    });
    assert!(s2.pending().is_empty());
    // The tag-only commit notice overtakes the forward slot.
    s2.on_frame(RingFrame {
        object: ObjectId::SINGLE,
        pre_write: None,
        write: Some(WriteNotice { tag, value: None }),
        rejoin: None,
    });
    let (stored_tag, stored_value) = s2.stored();
    assert_eq!(stored_tag, tag);
    assert_eq!(stored_value, &Value::from_u64(33));
    // The stale queue entry is dropped by the late guard, not re-sent
    // as a pre-write of an already-committed tag... except recovery
    // copies, which deliberately re-circulate; just confirm no panic
    // and no stale value survives.
    while s2.next_frame().is_some() {}
}

#[test]
fn own_pre_write_returning_to_a_restarted_origin_commits() {
    // Origin O crashes with its own pre-write mid-circulation and
    // restarts before anyone detects the crash (no splice, no orphan
    // adoption). When the pre-write completes its circle and returns to
    // the new incarnation, the outstanding entry is gone — but the tag
    // is pending at every peer, so dropping it would block readers
    // ring-wide. It must commit instead, with a value-carrying notice.
    use hts_core::ServerCore;
    use hts_types::{PreWrite, RingFrame, Tag};

    // Incarnation 1 initiates a write.
    let mut o1 = ServerCore::new(ServerId(1), 3, ObjectId::SINGLE, durable_config());
    o1.on_client_write(ClientId(0), RequestId(1), Value::from_u64(42));
    let frame = o1.next_frame().expect("pre-write initiated");
    let tag = frame.pre_write.as_ref().expect("pre-write").tag;
    assert_eq!(tag, Tag::new(1, ServerId(1)));

    // Incarnation 2 boots with empty state (nothing committed yet) and
    // receives its own returning pre-write.
    let mut o2 = ServerCore::new(ServerId(1), 3, ObjectId::SINGLE, durable_config());
    o2.on_frame(RingFrame {
        object: ObjectId::SINGLE,
        pre_write: Some(PreWrite {
            tag,
            value: Value::from_u64(42),
            recovery: false,
        }),
        write: None,
        rejoin: None,
    });
    let (stored_tag, stored_value) = o2.stored();
    assert_eq!(stored_tag, tag, "orphaned own pre-write was dropped");
    assert_eq!(stored_value, &Value::from_u64(42));
    // The commit notice circulates value-carrying so peers (and any
    // resyncing rejoiner) can resolve it.
    let out = o2.next_frame().expect("commit notice");
    let notice = out.write.expect("notice");
    assert_eq!(notice.tag, tag);
    assert_eq!(notice.value, Some(Value::from_u64(42)));
}
