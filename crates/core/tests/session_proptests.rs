//! Property tests for the pipelined [`SessionCore`]: across an arbitrary
//! in-flight window and an adversarial delivery schedule — replies out of
//! order, duplicated, stale (never issued or already completed), timers
//! firing in any interleaving, servers reported down and up — every
//! operation completes **exactly once**, retry state stays **per
//! request**, and the window invariant never breaks.

use std::collections::{HashMap, HashSet};

use hts_core::SessionCore;
use hts_types::{ClientId, Message, ObjectId, RequestId, ServerId, Value};
use proptest::prelude::*;

const N: u16 = 4;

#[derive(Debug, Clone)]
enum Event {
    /// Start a read (`true`) or write (`false`) if the window has room.
    Begin(bool),
    /// Deliver the correct reply for the `i`-th issued request (mod
    /// issued count) — possibly already completed, making it a duplicate.
    Reply(usize),
    /// Deliver a reply for a request id never issued by this session.
    ForeignReply(u64),
    /// Fire the retry timer for the `i`-th issued request (mod issued
    /// count) — stale if it already completed.
    Timeout(usize),
    /// Failure detector reports server `s % N` down.
    Down(u16),
    /// Transport reports server `s % N` healthy again.
    Up(u16),
}

fn arb_event() -> impl Strategy<Value = Event> {
    // (The vendored proptest has no weighted prop_oneof; duplicate the
    // hot arms so begins and replies dominate the schedule.)
    prop_oneof![
        any::<bool>().prop_map(Event::Begin),
        any::<bool>().prop_map(Event::Begin),
        any::<bool>().prop_map(Event::Begin),
        (0usize..64).prop_map(Event::Reply),
        (0usize..64).prop_map(Event::Reply),
        (0usize..64).prop_map(Event::Reply),
        (0u64..10_000).prop_map(Event::ForeignReply),
        (0usize..64).prop_map(Event::Timeout),
        (0usize..64).prop_map(Event::Timeout),
        (0u16..N).prop_map(Event::Down),
        (0u16..N).prop_map(Event::Up),
    ]
}

/// The reply a server would send for `request` as issued (reads answer
/// with a recognizable value).
fn reply_for(request: RequestId, is_read: bool) -> Message {
    if is_read {
        Message::ReadAck {
            object: ObjectId::SINGLE,
            request,
            value: Value::from_u64(request.0),
        }
    } else {
        Message::WriteAck {
            object: ObjectId::SINGLE,
            request,
        }
    }
}

proptest! {
    #[test]
    fn completions_are_exactly_once_and_retries_independent(
        window in 1usize..=8,
        events in prop::collection::vec(arb_event(), 1..120),
    ) {
        let mut s = SessionCore::new(ClientId(1), ObjectId::SINGLE, N, ServerId(0), window);
        let mut issued: Vec<(RequestId, bool)> = Vec::new();
        let mut completed: HashSet<RequestId> = HashSet::new();

        for event in events.clone() {
            match event {
                Event::Begin(is_read) => {
                    if !s.has_capacity() {
                        continue;
                    }
                    let (request, server, msg) = if is_read {
                        s.begin_read()
                    } else {
                        s.begin_write(Value::from_u64(7))
                    };
                    prop_assert!(server.0 < N);
                    match (&msg, is_read) {
                        (Message::ReadReq { request: r, .. }, true)
                        | (Message::WriteReq { request: r, .. }, false) => {
                            prop_assert_eq!(*r, request);
                        }
                        other => prop_assert!(false, "wrong message kind: {:?}", other),
                    }
                    prop_assert!(s.is_inflight(request));
                    issued.push((request, is_read));
                }
                Event::Reply(i) => {
                    if issued.is_empty() {
                        continue;
                    }
                    let (request, is_read) = issued[i % issued.len()];
                    let was_inflight = s.is_inflight(request);
                    let done = s.on_reply(&reply_for(request, is_read));
                    if was_inflight {
                        // First delivery: completes, exactly once.
                        let done = done.expect("in-flight reply completes");
                        prop_assert_eq!(done.request, request);
                        if is_read {
                            prop_assert_eq!(done.value, Some(Value::from_u64(request.0)));
                        } else {
                            prop_assert_eq!(done.value, None);
                        }
                        prop_assert!(completed.insert(request), "double completion");
                    } else {
                        // Duplicate or aborted: swallowed.
                        prop_assert!(done.is_none(), "stale reply completed twice");
                    }
                }
                Event::ForeignReply(raw) => {
                    // Ids are issued from 1 upward; shift foreign ids out
                    // of the issued range.
                    let foreign = RequestId(1_000_000 + raw);
                    prop_assert!(s.on_reply(&reply_for(foreign, true)).is_none());
                }
                Event::Timeout(i) => {
                    if issued.is_empty() {
                        continue;
                    }
                    let (request, _) = issued[i % issued.len()];
                    let others: HashMap<RequestId, ServerId> = s
                        .inflight_requests()
                        .filter(|r| *r != request)
                        .map(|r| (r, s.server_of(r).expect("in flight")))
                        .collect();
                    let resend = s.on_timeout(request);
                    if completed.contains(&request) {
                        prop_assert!(resend.is_none(), "completed request retried");
                    } else {
                        let (server, msg) = resend.expect("in-flight retry");
                        prop_assert_eq!(s.server_of(request), Some(server));
                        match msg {
                            Message::ReadReq { request: r, .. }
                            | Message::WriteReq { request: r, .. } => {
                                prop_assert_eq!(r, request, "retry keeps the request id");
                            }
                            other => prop_assert!(false, "bad retry message: {:?}", other),
                        }
                    }
                    // Retry independence: no other request moved.
                    for (other, server) in others {
                        prop_assert_eq!(s.server_of(other), Some(server));
                    }
                }
                Event::Down(raw) => {
                    let dead = ServerId(raw % N);
                    let resends = s.on_server_down(dead);
                    for (request, server, _) in resends {
                        prop_assert!(!completed.contains(&request));
                        prop_assert_ne!(server, dead, "re-sent straight back to the corpse");
                        prop_assert_eq!(s.server_of(request), Some(server));
                    }
                }
                Event::Up(raw) => s.on_server_up(ServerId(raw % N)),
            }
            // Window invariant holds at every step.
            prop_assert!(s.in_flight() <= window);
            let inflight_count = issued
                .iter()
                .filter(|(r, _)| !completed.contains(r))
                .count();
            prop_assert_eq!(s.in_flight(), inflight_count);
        }

        // Drain: every still-open request completes exactly once, in an
        // arbitrary (here: reverse-issue) order.
        for &(request, is_read) in issued.iter().rev() {
            if completed.contains(&request) {
                continue;
            }
            let done = s.on_reply(&reply_for(request, is_read));
            prop_assert!(done.is_some());
            completed.insert(request);
        }
        prop_assert_eq!(s.in_flight(), 0);
        prop_assert_eq!(completed.len(), issued.len());
    }

    #[test]
    fn routing_always_targets_a_valid_server(
        window in 1usize..=8,
        deaths in prop::collection::vec(0u16..N, 0..8),
    ) {
        // Whatever subset of servers is suspected (even all of them),
        // launches and retries must keep naming valid ring members.
        let mut s = SessionCore::new(ClientId(2), ObjectId::SINGLE, N, ServerId(1), window);
        for d in deaths.clone() {
            s.on_server_down(ServerId(d % N));
        }
        let (request, server, _) = s.begin_read();
        prop_assert!(server.0 < N);
        for _ in 0..usize::from(N) + 1 {
            let (server, _) = s.on_timeout(request).expect("still in flight");
            prop_assert!(server.0 < N);
        }
    }
}
