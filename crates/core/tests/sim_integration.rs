//! Full-stack integration tests: protocol cores on the packet simulator,
//! closed-loop clients, recorded histories checked for linearizability.

use std::cell::RefCell;
use std::rc::Rc;

use hts_core::{Config, Durability, OpMix, SimClient, SimServer, WorkloadConfig};
use hts_lincheck::{check_conditions, check_exhaustive_bounded, History, Outcome};
use hts_sim::packet::{NetworkConfig, PacketSim};
use hts_sim::{DiskConfig, Nanos};
use hts_types::{ClientId, Message, NodeId, ServerId};

struct Cluster {
    sim: PacketSim<Message>,
    history: Rc<RefCell<History>>,
    client_stats: Vec<Rc<RefCell<hts_core::ClientStats>>>,
}

/// Builds `n` servers (dual-homed: ring + client networks) plus
/// `clients_per_server` clients pinned round-robin, every client running
/// the same workload.
fn cluster(
    seed: u64,
    n: u16,
    clients_per_server: u32,
    workload: WorkloadConfig,
    config: Config,
) -> Cluster {
    let mut sim = PacketSim::new(seed);
    let mut net_cfg = NetworkConfig::fast_ethernet();
    // Small payloads in tests: shrink delays so runs are quick.
    net_cfg.proc_delay = Nanos::from_micros(5);
    net_cfg.proc_jitter = Nanos::from_micros(2);
    let ring_net = sim.add_network(net_cfg.clone());
    let client_net = sim.add_network(net_cfg);
    let history = Rc::new(RefCell::new(History::new()));
    for i in 0..n {
        let id = NodeId::Server(ServerId(i));
        let mut server = SimServer::new(ServerId(i), n, config.clone(), ring_net, client_net);
        if config.durability.is_persistent() {
            server = server.with_disk(DiskConfig::nvme_ssd());
        }
        sim.add_node(id, Box::new(server));
        sim.attach(id, ring_net);
        sim.attach(id, client_net);
    }
    let mut client_stats = Vec::new();
    for c in 0..(u32::from(n) * clients_per_server) {
        let id = NodeId::Client(ClientId(c));
        let preferred = ServerId((c % u32::from(n)) as u16);
        let (client, stats) = SimClient::new(
            ClientId(c),
            n,
            preferred,
            workload.clone(),
            client_net,
            Some(Rc::clone(&history)),
        );
        sim.add_node(id, Box::new(client));
        sim.attach(id, client_net);
        client_stats.push(stats);
    }
    Cluster {
        sim,
        history,
        client_stats,
    }
}

fn total_completed(cluster: &Cluster) -> (u64, u64) {
    cluster
        .client_stats
        .iter()
        .map(|s| {
            let s = s.borrow();
            (s.writes_done, s.reads_done)
        })
        .fold((0, 0), |(w, r), (dw, dr)| (w + dw, r + dr))
}

fn assert_linearizable(cluster: &Cluster) {
    let history = cluster.history.borrow();
    let violations = check_conditions(&history);
    assert!(
        violations.is_empty(),
        "atomicity violations: {violations:?}\n{history}"
    );
    if history.len() <= 60 {
        let outcome = check_exhaustive_bounded(&history, 5_000_000);
        assert!(
            outcome != Outcome::NotLinearizable("".into())
                && !matches!(outcome, Outcome::NotLinearizable(_)),
            "exhaustive checker rejected: {outcome:?}\n{history}"
        );
    }
}

#[test]
fn mixed_workload_is_linearizable() {
    let workload = WorkloadConfig {
        mix: OpMix::Mixed { read_percent: 60 },
        value_size: 256,
        op_limit: Some(8),
        start_delay: Nanos::ZERO,
        timeout: Nanos::from_millis(500),
        window: 1,
    };
    let mut c = cluster(11, 3, 2, workload, Config::default());
    c.sim.run_to_quiescence();
    let (w, r) = total_completed(&c);
    assert_eq!(w + r, 6 * 8, "every client finished its ops");
    assert_linearizable(&c);
}

#[test]
fn write_heavy_contention_is_linearizable() {
    let workload = WorkloadConfig {
        mix: OpMix::WriteOnly,
        value_size: 128,
        op_limit: Some(10),
        start_delay: Nanos::ZERO,
        timeout: Nanos::from_millis(500),
        window: 1,
    };
    let mut c = cluster(13, 4, 2, workload, Config::default());
    c.sim.run_to_quiescence();
    let (w, _) = total_completed(&c);
    assert_eq!(w, 8 * 10);
    assert_linearizable(&c);
    // Ring sanity: servers converge on one stored value.
    // (Indirect check: conditions found no violations, and all clients done.)
}

#[test]
fn read_only_load_never_blocks() {
    let workload = WorkloadConfig {
        mix: OpMix::ReadOnly,
        value_size: 256,
        op_limit: Some(20),
        start_delay: Nanos::ZERO,
        timeout: Nanos::from_millis(500),
        window: 1,
    };
    let mut c = cluster(17, 3, 2, workload, Config::default());
    c.sim.run_to_quiescence();
    let (_, r) = total_completed(&c);
    assert_eq!(r, 6 * 20);
    // Reads without writes are all immediate bottom-reads.
    let history = c.history.borrow();
    assert!(history
        .records()
        .iter()
        .all(|rec| rec.op.value().is_bottom()));
}

#[test]
fn server_crash_mid_run_preserves_atomicity_and_liveness() {
    let workload = WorkloadConfig {
        mix: OpMix::Mixed { read_percent: 50 },
        value_size: 128,
        op_limit: Some(12),
        start_delay: Nanos::ZERO,
        timeout: Nanos::from_millis(5),
        window: 1,
    };
    let mut c = cluster(19, 3, 2, workload, Config::default());
    // Kill s1 while traffic is in flight.
    c.sim
        .crash_at(NodeId::Server(ServerId(1)), Nanos::from_millis(2));
    c.sim.run_to_quiescence();
    let (w, r) = total_completed(&c);
    assert_eq!(w + r, 6 * 12, "clients retried through the crash");
    let history = c.history.borrow();
    let violations = check_conditions(&history);
    assert!(violations.is_empty(), "{violations:?}\n{history}");
}

#[test]
fn cascading_crashes_down_to_one_server() {
    let workload = WorkloadConfig {
        mix: OpMix::Mixed { read_percent: 50 },
        value_size: 128,
        op_limit: Some(10),
        start_delay: Nanos::ZERO,
        timeout: Nanos::from_millis(5),
        window: 1,
    };
    let mut c = cluster(23, 3, 1, workload, Config::default());
    c.sim
        .crash_at(NodeId::Server(ServerId(0)), Nanos::from_millis(2));
    c.sim
        .crash_at(NodeId::Server(ServerId(2)), Nanos::from_millis(4));
    c.sim.run_to_quiescence();
    let (w, r) = total_completed(&c);
    assert_eq!(w + r, 3 * 10, "solo survivor still serves everyone");
    let history = c.history.borrow();
    let violations = check_conditions(&history);
    assert!(violations.is_empty(), "{violations:?}\n{history}");
}

#[test]
fn crash_restart_mid_run_preserves_atomicity_and_liveness() {
    let workload = WorkloadConfig {
        mix: OpMix::Mixed { read_percent: 50 },
        value_size: 128,
        op_limit: Some(14),
        start_delay: Nanos::ZERO,
        timeout: Nanos::from_millis(5),
        window: 1,
    };
    let config = Config {
        durability: Durability::SyncAlways,
        ..Config::default()
    };
    let mut c = cluster(37, 3, 2, workload, config);
    // s1 dies at 2 ms and reboots from its modeled log at 8 ms: the ring
    // splices it out, then splices it back in via the rejoin circuit.
    c.sim
        .crash_at(NodeId::Server(ServerId(1)), Nanos::from_millis(2));
    c.sim
        .restart_at(NodeId::Server(ServerId(1)), Nanos::from_millis(8));
    c.sim.run_to_quiescence();
    let (w, r) = total_completed(&c);
    assert_eq!(w + r, 6 * 14, "clients survived crash and restart");
    let history = c.history.borrow();
    let violations = check_conditions(&history);
    assert!(violations.is_empty(), "{violations:?}\n{history}");
}

#[test]
fn repeated_crash_restart_cycles_stay_linearizable() {
    let workload = WorkloadConfig {
        mix: OpMix::Mixed { read_percent: 40 },
        value_size: 128,
        op_limit: Some(16),
        start_delay: Nanos::ZERO,
        timeout: Nanos::from_millis(5),
        window: 1,
    };
    let config = Config {
        durability: Durability::Buffered,
        ..Config::default()
    };
    let mut c = cluster(41, 3, 2, workload, config);
    // The same server bounces twice; a different one bounces in between.
    c.sim
        .crash_at(NodeId::Server(ServerId(2)), Nanos::from_millis(2));
    c.sim
        .restart_at(NodeId::Server(ServerId(2)), Nanos::from_millis(6));
    c.sim
        .crash_at(NodeId::Server(ServerId(0)), Nanos::from_millis(10));
    c.sim
        .restart_at(NodeId::Server(ServerId(0)), Nanos::from_millis(14));
    c.sim
        .crash_at(NodeId::Server(ServerId(2)), Nanos::from_millis(18));
    c.sim
        .restart_at(NodeId::Server(ServerId(2)), Nanos::from_millis(22));
    c.sim.run_to_quiescence();
    let (w, r) = total_completed(&c);
    assert_eq!(w + r, 6 * 16, "clients survived every bounce");
    let history = c.history.borrow();
    let violations = check_conditions(&history);
    assert!(violations.is_empty(), "{violations:?}\n{history}");
}

#[test]
fn determinism_same_seed_same_history() {
    let run = |seed| {
        let workload = WorkloadConfig {
            mix: OpMix::Mixed { read_percent: 40 },
            value_size: 64,
            op_limit: Some(6),
            start_delay: Nanos::ZERO,
            timeout: Nanos::from_millis(500),
            window: 1,
        };
        let mut c = cluster(seed, 3, 2, workload, Config::default());
        c.sim.run_to_quiescence();
        let h = c.history.borrow();
        (h.len(), format!("{h}"), c.sim.events_processed())
    };
    assert_eq!(run(42), run(42));
    // Different seeds usually differ (jitter reorders deliveries).
    assert_ne!(run(42).2, run(43).2);
}

#[test]
fn fast_path_reads_remain_linearizable() {
    let workload = WorkloadConfig {
        mix: OpMix::Mixed { read_percent: 70 },
        value_size: 128,
        op_limit: Some(10),
        start_delay: Nanos::ZERO,
        timeout: Nanos::from_millis(500),
        window: 1,
    };
    let config = Config {
        read_fast_path: true,
        ..Config::default()
    };
    let mut c = cluster(29, 3, 2, workload, config);
    c.sim.run_to_quiescence();
    let (w, r) = total_completed(&c);
    assert_eq!(w + r, 6 * 10);
    assert_linearizable(&c);
}

#[test]
fn write_carries_value_remains_linearizable() {
    let workload = WorkloadConfig {
        mix: OpMix::Mixed { read_percent: 30 },
        value_size: 128,
        op_limit: Some(8),
        start_delay: Nanos::ZERO,
        timeout: Nanos::from_millis(500),
        window: 1,
    };
    let config = Config {
        write_carries_value: true,
        ..Config::default()
    };
    let mut c = cluster(31, 3, 2, workload, config);
    c.sim.run_to_quiescence();
    let (w, r) = total_completed(&c);
    assert_eq!(w + r, 6 * 8);
    assert_linearizable(&c);
}

#[test]
fn pipelined_window_stays_linearizable() {
    // Open-loop clients: each keeps 6 operations in flight concurrently
    // over its one channel. Completions land out of order; the merged
    // history must still be atomic and every issued op must finish.
    let workload = WorkloadConfig {
        mix: OpMix::Mixed { read_percent: 50 },
        value_size: 256,
        op_limit: Some(18),
        start_delay: Nanos::ZERO,
        timeout: Nanos::from_millis(500),
        window: 6,
    };
    let mut c = cluster(33, 3, 2, workload, Config::default());
    c.sim.run_to_quiescence();
    let (w, r) = total_completed(&c);
    assert_eq!(w + r, 6 * 18, "every pipelined op completed exactly once");
    assert_linearizable(&c);
}

#[test]
fn pipelined_window_survives_crash_mid_flight() {
    // A server dies while every client's window is full: the stranded
    // requests re-send independently and the run stays atomic.
    let workload = WorkloadConfig {
        mix: OpMix::Mixed { read_percent: 40 },
        value_size: 128,
        op_limit: Some(12),
        start_delay: Nanos::ZERO,
        timeout: Nanos::from_millis(200),
        window: 8,
    };
    let mut c = cluster(35, 3, 2, workload, Config::default());
    c.sim
        .crash_at(NodeId::Server(ServerId(1)), Nanos::from_millis(1));
    c.sim.run_to_quiescence();
    let (w, r) = total_completed(&c);
    assert_eq!(w + r, 6 * 12, "no pipelined op lost to the crash");
    assert_linearizable(&c);
}

#[test]
fn pipelined_and_sequential_complete_the_same_ops() {
    // The window is a concurrency knob, not a semantics knob: both runs
    // complete every op and both histories are linearizable (schedules
    // differ — pipelining genuinely overlaps operations).
    for window in [1usize, 8] {
        let workload = WorkloadConfig {
            mix: OpMix::WriteOnly,
            value_size: 64,
            op_limit: Some(16),
            start_delay: Nanos::ZERO,
            timeout: Nanos::from_millis(500),
            window,
        };
        let mut c = cluster(37, 3, 2, workload, Config::default());
        c.sim.run_to_quiescence();
        let (w, _) = total_completed(&c);
        assert_eq!(w, 6 * 16, "window {window}");
        assert_linearizable(&c);
    }
}
