//! End-to-end protocol tests driving `ServerCore` rings by hand.
//!
//! A tiny deterministic driver delivers ring frames one at a time, so tests
//! can interleave reads, writes and crashes at exact protocol steps —
//! including dropping frames that were in flight to a crashed server, the
//! failure mode the paper's recovery rule (§3, lines 85–92) exists for.

use std::collections::VecDeque;

use hts_core::{Action, Config, ServerCore};
use hts_lincheck::{check_witnessed, History, Outcome};
use hts_types::{ClientId, ObjectId, RequestId, RingFrame, ServerId, Tag, Value};

fn val(n: u64) -> Value {
    Value::from_u64(n)
}

/// Deterministic single-threaded ring driver.
struct Driver {
    cores: Vec<Option<ServerCore>>,
    /// Frames in flight: (destination, frame). FIFO.
    inflight: VecDeque<(ServerId, RingFrame)>,
    /// Collected client-visible actions: (server, action).
    actions: Vec<(ServerId, Action)>,
}

impl Driver {
    fn new(n: u16, config: Config) -> Self {
        Driver {
            cores: (0..n)
                .map(|i| {
                    Some(ServerCore::new(
                        ServerId(i),
                        n,
                        ObjectId::SINGLE,
                        config.clone(),
                    ))
                })
                .collect(),
            inflight: VecDeque::new(),
            actions: Vec::new(),
        }
    }

    fn core(&self, i: u16) -> &ServerCore {
        self.cores[usize::from(i)].as_ref().expect("core alive")
    }

    fn core_mut(&mut self, i: u16) -> &mut ServerCore {
        self.cores[usize::from(i)].as_mut().expect("core alive")
    }

    fn write(&mut self, server: u16, client: u32, request: u64, value: Value) {
        let acts =
            self.core_mut(server)
                .on_client_write(ClientId(client), RequestId(request), value);
        self.collect(server, acts);
    }

    fn read(&mut self, server: u16, client: u32, request: u64) {
        let acts = self
            .core_mut(server)
            .on_client_read(ClientId(client), RequestId(request));
        self.collect(server, acts);
    }

    fn collect(&mut self, server: u16, acts: Vec<Action>) {
        for a in acts {
            self.actions.push((ServerId(server), a));
        }
    }

    /// Every alive server offers one frame (if it has one).
    fn pump_sends(&mut self) -> usize {
        let mut sent = 0;
        for i in 0..self.cores.len() {
            let Some(core) = self.cores[i].as_mut() else {
                continue;
            };
            let Some(successor) = core.successor() else {
                continue;
            };
            if let Some(frame) = core.next_frame() {
                self.inflight.push_back((successor, frame));
                sent += 1;
            }
        }
        sent
    }

    /// Delivers the oldest in-flight frame (dropped if its destination
    /// crashed). Returns false if nothing was in flight.
    fn deliver_one(&mut self) -> bool {
        let Some((dst, frame)) = self.inflight.pop_front() else {
            return false;
        };
        if let Some(core) = self.cores[dst.index()].as_mut() {
            let acts = core.on_frame(frame);
            self.collect(dst.0, acts);
        }
        true
    }

    /// Runs pump/deliver to quiescence.
    fn run(&mut self) {
        loop {
            let sent = self.pump_sends();
            let delivered = self.deliver_one();
            if sent == 0 && !delivered && self.inflight.is_empty() {
                break;
            }
        }
    }

    /// Crashes a server: in-flight frames to it are lost; survivors get
    /// the failure-detector callback.
    fn crash(&mut self, s: u16) {
        self.cores[usize::from(s)] = None;
        // Frames already in flight to the dead server are dropped at
        // delivery (deliver_one checks). Notify survivors:
        for i in 0..self.cores.len() {
            if let Some(core) = self.cores[i].as_mut() {
                let acts = core.on_server_crashed(ServerId(s));
                self.collect(i as u16, acts);
            }
        }
    }

    fn acks(&self) -> Vec<(ServerId, ClientId, RequestId)> {
        self.actions
            .iter()
            .filter_map(|(s, a)| match a {
                Action::WriteAck {
                    client, request, ..
                } => Some((*s, *client, *request)),
                _ => None,
            })
            .collect()
    }

    fn reads(&self) -> Vec<(ServerId, RequestId, Value, Tag)> {
        self.actions
            .iter()
            .filter_map(|(s, a)| match a {
                Action::ReadReply {
                    request,
                    value,
                    tag,
                    ..
                } => Some((*s, *request, value.clone(), *tag)),
                _ => None,
            })
            .collect()
    }

    fn assert_all_store(&self, value: &Value) {
        for core in self.cores.iter().flatten() {
            assert_eq!(core.stored().1, value, "at {}", core.me());
        }
    }
}

#[test]
fn single_write_completes_everywhere_with_one_ack() {
    let mut d = Driver::new(3, Config::default());
    d.write(0, 0, 1, val(42));
    d.run();
    assert_eq!(d.acks(), vec![(ServerId(0), ClientId(0), RequestId(1))]);
    d.assert_all_store(&val(42));
    // No pending leftovers, no blocked reads anywhere.
    for i in 0..3 {
        assert!(d.core(i).pending().is_empty(), "pending at s{i}");
        assert_eq!(d.core(i).waiting_reads(), 0);
    }
}

#[test]
fn read_of_initial_value_is_immediate() {
    let mut d = Driver::new(3, Config::default());
    d.read(1, 0, 1);
    let reads = d.reads();
    assert_eq!(reads.len(), 1);
    assert!(reads[0].2.is_bottom());
    assert_eq!(reads[0].3, Tag::ZERO);
}

#[test]
fn read_blocks_on_pending_prewrite_until_commit() {
    let mut d = Driver::new(3, Config::default());
    d.write(0, 0, 1, val(7));
    // Initiate + circulate the pre-write only (3 sends: s0 initiates,
    // s1 forwards, s2 forwards; 3 deliveries).
    for _ in 0..3 {
        d.pump_sends();
        d.deliver_one();
    }
    // s1 forwarded the pre-write: it is pending there; a read must block.
    assert!(d.core(1).pending().contains(Tag::new(1, ServerId(0))));
    d.read(1, 9, 100);
    assert_eq!(d.reads().len(), 0);
    assert_eq!(d.core(1).waiting_reads(), 1);
    // The origin received its own pre-write back and already applied it:
    // a read at s0 is immediate and returns the new value.
    d.read(0, 8, 200);
    let reads = d.reads();
    assert_eq!(reads.len(), 1);
    assert_eq!(reads[0].2, val(7));
    // Finish the write phase: the blocked read unblocks with the value.
    d.run();
    let reads = d.reads();
    assert_eq!(reads.len(), 2);
    let blocked = reads.iter().find(|r| r.1 == RequestId(100)).unwrap();
    assert_eq!(blocked.2, val(7));
    assert_eq!(d.core(1).waiting_reads(), 0);
}

#[test]
fn unforwarded_prewrite_does_not_block_reads() {
    let mut d = Driver::new(3, Config::default());
    d.write(0, 0, 1, val(7));
    // s0 initiates; deliver the pre-write to s1 but do NOT let s1 forward.
    d.pump_sends();
    d.deliver_one();
    // s1 received but has not forwarded: not pending yet (paper line 71 —
    // pending is added at forward time), so reads stay immediate and
    // return the old value, which is linearizable (the write has not
    // completed its announcement).
    assert!(d.core(1).pending().is_empty());
    d.read(1, 9, 100);
    let reads = d.reads();
    assert_eq!(reads.len(), 1);
    assert!(reads[0].2.is_bottom());
}

#[test]
fn concurrent_writes_converge_to_highest_tag() {
    let mut d = Driver::new(3, Config::default());
    d.write(0, 0, 1, val(100));
    d.write(1, 1, 2, val(200));
    d.run();
    // Both complete...
    let acks = d.acks();
    assert_eq!(acks.len(), 2);
    // ...and all servers agree on the lexicographically-highest tag's
    // value: both writes get ts=1, so origin breaks the tie -> s1 wins.
    d.assert_all_store(&val(200));
    let (tag, _) = d.core(0).stored();
    assert_eq!(tag, Tag::new(1, ServerId(1)));
}

#[test]
fn interleaved_writes_from_all_servers_all_complete() {
    let mut d = Driver::new(4, Config::default());
    let mut req = 0;
    for round in 0..5 {
        for s in 0..4u16 {
            req += 1;
            d.write(s, u32::from(s), req, val(1000 + round * 10 + u64::from(s)));
        }
    }
    d.run();
    assert_eq!(d.acks().len(), 20, "every write acked exactly once");
    // All servers converge.
    let stored = d.core(0).stored().1.clone();
    d.assert_all_store(&stored);
    for i in 0..4 {
        assert!(d.core(i).pending().is_empty());
    }
}

#[test]
fn fairness_interleaves_local_and_forwarded_traffic() {
    let mut d = Driver::new(2, Config::default());
    for i in 0..10 {
        d.write(0, 0, i + 1, val(100 + i));
        d.write(1, 1, 101 + i, val(200 + i));
    }
    d.run();
    assert_eq!(d.acks().len(), 20);
    let s0 = d.core(0).stats().clone();
    let s1 = d.core(1).stats().clone();
    assert_eq!(s0.writes_initiated, 10);
    assert_eq!(s1.writes_initiated, 10);
    assert_eq!(s0.prewrites_forwarded, 10);
    assert_eq!(s1.prewrites_forwarded, 10);
}

#[test]
fn piggyback_bundles_notice_with_prewrite() {
    let mut d = Driver::new(2, Config::default());
    // First write completes its pre-write turn, queueing a notice at s0;
    // a second write arrives: the next frame must carry both.
    d.write(0, 0, 1, val(1));
    // s0 sends pre_write(1) -> s1 forwards -> back at s0.
    d.pump_sends();
    d.deliver_one();
    d.pump_sends();
    d.deliver_one();
    // Now s0 holds a write notice for tag 1; queue a second local write.
    d.write(0, 0, 2, val(2));
    let core = d.core_mut(0);
    let frame = core.next_frame().expect("frame with both phases");
    assert!(frame.pre_write.is_some(), "new pre-write rides the slot");
    assert!(frame.write.is_some(), "notice piggybacks (paper §4.2)");
    // Steady-state notices are tag-only.
    assert_eq!(frame.write.unwrap().value, None);
}

#[test]
fn write_carries_value_ablation_sends_values_twice() {
    let config = Config {
        write_carries_value: true,
        ..Config::default()
    };
    let mut d = Driver::new(2, config);
    d.write(0, 0, 1, val(5));
    d.pump_sends(); // pre_write out
    d.deliver_one(); // s1 forwards
    d.pump_sends();
    d.deliver_one(); // back at s0 -> notice queued
    let frame = d.core_mut(0).next_frame().expect("notice frame");
    assert_eq!(
        frame.write.expect("write notice").value,
        Some(val(5)),
        "ablation A1 carries the value in the commit"
    );
}

#[test]
fn read_fast_path_skips_blocking_when_stored_dominates() {
    let config = Config {
        read_fast_path: true,
        ..Config::default()
    };
    let mut d = Driver::new(2, config);
    // Complete one write fully.
    d.write(0, 0, 1, val(1));
    d.run();
    // Now make a *lower-tagged* scenario impossible; instead pend a new
    // higher write and check the plain path still blocks...
    d.write(1, 1, 2, val(2));
    for _ in 0..2 {
        d.pump_sends();
        d.deliver_one();
    }
    // s0 forwarded pre_write(2,s1): pending; stored tag is (1,s0) < (2,s1):
    // fast path does not apply; read blocks.
    d.read(0, 9, 50);
    assert_eq!(d.core(0).waiting_reads(), 1);
    d.run();
    // After commit, pending clears. Queue another pre-write from s1 but
    // this time let the *write* notice arrive first elsewhere... simpler:
    // no pending at all -> immediate (fast path equals plain path there).
    d.read(0, 9, 51);
    assert!(d.reads().iter().any(|r| r.1 == RequestId(51)));
}

#[test]
fn successor_crash_mid_prewrite_is_recovered_by_retransmission() {
    let mut d = Driver::new(3, Config::default());
    d.write(0, 0, 1, val(77));
    // s0 initiates: pre_write in flight to s1.
    d.pump_sends();
    d.deliver_one(); // s1 queues it
    d.pump_sends(); // s1 forwards: frame in flight to s2
                    // s2 dies with the frame in flight: the frame is lost.
    d.crash(2);
    assert!(d.core(1).stats().recoveries >= 1, "s1 spliced the ring");
    // Recovery: s1 re-sends its pending pre-writes to its new successor
    // (s0); the write completes on the 2-ring.
    d.run();
    assert_eq!(d.acks(), vec![(ServerId(0), ClientId(0), RequestId(1))]);
    assert_eq!(d.core(0).stored().1, &val(77));
    assert_eq!(d.core(1).stored().1, &val(77));
    assert!(d.core(0).pending().is_empty());
    assert!(d.core(1).pending().is_empty());
}

#[test]
fn origin_crash_orphans_are_adopted_and_unblock_readers() {
    let mut d = Driver::new(3, Config::default());
    d.write(0, 0, 1, val(55));
    // Let the pre-write circulate fully: s0 -> s1 -> s2 -> s0.
    for _ in 0..3 {
        d.pump_sends();
        d.deliver_one();
    }
    // s0 has its notice queued but dies before sending it. s1 and s2
    // still carry tag (1,s0) pending.
    let tag = Tag::new(1, ServerId(0));
    assert!(d.core(1).pending().contains(tag));
    assert!(d.core(2).pending().contains(tag));
    // A read blocks at s2.
    d.read(2, 9, 100);
    assert_eq!(d.core(2).waiting_reads(), 1);
    d.crash(0);
    // s1 is the adopter (first alive successor of s0).
    assert!(d.core(1).stats().adoptions >= 1);
    d.run();
    // The adopted write committed under its original tag everywhere.
    assert_eq!(d.core(1).stored(), (tag, &val(55)));
    assert_eq!(d.core(2).stored(), (tag, &val(55)));
    assert!(d.core(1).pending().is_empty());
    assert!(d.core(2).pending().is_empty());
    // And the blocked reader got the adopted value.
    let reads = d.reads();
    assert_eq!(reads.len(), 1);
    assert_eq!(reads[0].2, val(55));
}

#[test]
fn without_adoption_orphaned_readers_stay_blocked() {
    let config = Config {
        adopt_orphans: false,
        ..Config::default()
    };
    let mut d = Driver::new(3, config);
    d.write(0, 0, 1, val(55));
    for _ in 0..3 {
        d.pump_sends();
        d.deliver_one();
    }
    d.read(2, 9, 100);
    d.crash(0);
    d.run();
    // Liveness loss the adoption rule exists to prevent: the reader waits
    // forever (until some future write subsumes the orphan).
    assert_eq!(d.core(2).waiting_reads(), 1);
    assert_eq!(d.reads().len(), 0);
}

#[test]
fn orphan_subsumed_by_later_write_unblocks_without_adoption() {
    let config = Config {
        adopt_orphans: false,
        ..Config::default()
    };
    let mut d = Driver::new(3, config);
    d.write(0, 0, 1, val(55));
    for _ in 0..3 {
        d.pump_sends();
        d.deliver_one();
    }
    d.read(2, 9, 100);
    d.crash(0);
    d.run();
    assert_eq!(d.core(2).waiting_reads(), 1);
    // A fresh write through s1 subsumes the orphan and releases the read.
    d.write(1, 1, 2, val(66));
    d.run();
    let reads = d.reads();
    assert_eq!(reads.len(), 1);
    assert_eq!(reads[0].2, val(66), "reader gets the newer committed value");
    assert!(d.core(2).pending().is_empty());
}

#[test]
fn cascade_to_single_survivor_completes_everything() {
    let mut d = Driver::new(3, Config::default());
    d.write(0, 0, 1, val(1));
    for _ in 0..2 {
        d.pump_sends();
        d.deliver_one();
    }
    d.read(1, 9, 100); // blocks at s1 (pre-write pending there)
    assert_eq!(d.core(1).waiting_reads(), 1);
    d.crash(0);
    d.crash(2);
    // s1 alone: everything in flight completes locally.
    assert_eq!(d.core(1).waiting_reads(), 0);
    let reads = d.reads();
    assert_eq!(reads.len(), 1);
    assert_eq!(reads[0].2, val(1), "orphaned pre-write committed locally");
    // New ops work immediately.
    d.write(1, 1, 2, val(2));
    d.read(1, 1, 3);
    assert_eq!(d.acks().len(), 1);
    assert_eq!(d.reads().len(), 2);
}

#[test]
fn recovery_retransmission_does_not_double_ack() {
    let mut d = Driver::new(4, Config::default());
    d.write(0, 0, 1, val(9));
    d.run();
    assert_eq!(d.acks().len(), 1);
    // Crash s2: s1 re-sends its (empty) pending + stored write. The
    // retransmitted committed write circulates but acks nothing twice.
    d.crash(2);
    d.run();
    assert_eq!(d.acks().len(), 1);
    d.assert_all_store(&val(9));
}

#[test]
fn subsumption_acks_overtaken_writes() {
    // s0's write is cut by a crash during its write phase; a later write
    // from s1 subsumes it, and s0 must still ack its client.
    let mut d = Driver::new(3, Config::default());
    d.write(0, 0, 1, val(10));
    // Full pre-write turn for tag (1,s0).
    for _ in 0..3 {
        d.pump_sends();
        d.deliver_one();
    }
    // s0 emits write notice; deliver to s1 (applies) but the forward to s2
    // is lost with s2's crash.
    d.pump_sends(); // notice -> s1
    d.deliver_one();
    d.pump_sends(); // s1 forwards notice -> s2 (in flight)
    d.crash(2); // frame lost
                // s1 (predecessor of s2) retransmits its stored write (tag (1,s0)!) to
                // its new successor s0 — s0 recognizes its own tag and acks.
    d.run();
    assert_eq!(d.acks(), vec![(ServerId(0), ClientId(0), RequestId(1))]);
    assert_eq!(d.core(0).stored().1, &val(10));
    assert_eq!(d.core(1).stored().1, &val(10));
}

#[test]
fn witnessed_history_from_driver_run_is_linearizable() {
    // Record a small mixed run into a History with tag witnesses taken
    // from the ReadReply actions and write tags from the stored state.
    let mut d = Driver::new(3, Config::default());
    let mut h = History::new();
    let mut t = 0u64;
    let mut tick = || {
        t += 10;
        t
    };

    // w1: value 1 via s0.
    let w1 = h.invoke_write(ClientId(0), val(1), tick());
    d.write(0, 0, 1, val(1));
    d.run();
    h.complete_write(w1, tick());
    h.set_witness(w1, Tag::new(1, ServerId(0)));

    // r1 at s2.
    let r1 = h.invoke_read(ClientId(1), tick());
    d.read(2, 1, 2);
    let got = d.reads().last().unwrap().clone();
    h.complete_read(r1, got.2.clone(), tick());
    h.set_witness(r1, got.3);

    // w2 concurrent-ish: value 2 via s1.
    let w2 = h.invoke_write(ClientId(2), val(2), tick());
    d.write(1, 2, 3, val(2));
    d.run();
    h.complete_write(w2, tick());
    h.set_witness(w2, Tag::new(2, ServerId(1)));

    // r2 at s0 sees the newest value.
    let r2 = h.invoke_read(ClientId(1), tick());
    d.read(0, 1, 4);
    let got = d.reads().last().unwrap().clone();
    h.complete_read(r2, got.2.clone(), tick());
    h.set_witness(r2, got.3);
    assert_eq!(got.2, val(2));

    assert_eq!(check_witnessed(&h), Outcome::Linearizable);
}

#[test]
fn figure2_walkthrough_scenario() {
    // The paper's Figure 2, scripted: 5 servers; s1 writes v2 while s3 and
    // s5 serve readers. (Paper numbering s1..s5 = our s0..s4.)
    let mut d = Driver::new(5, Config::default());
    // Panel 1: W(v2) arrives at s0; pre_write(v2) starts circulating.
    d.write(0, 0, 1, val(2));
    // Deliver pre-write hops s0->s1->s2 and let s2 forward so it pends.
    for _ in 0..3 {
        d.pump_sends();
        d.deliver_one();
    }
    // s2 (paper's s3) forwarded the pre-write: its reader must wait...
    d.read(2, 10, 100);
    assert_eq!(d.core(2).waiting_reads(), 1, "s3 must wait (panel 1)");
    // ...whereas s4 (paper's s5) has not seen it: replies v1 directly.
    d.read(4, 11, 101);
    let reads = d.reads();
    assert_eq!(reads.len(), 1);
    assert!(reads[0].2.is_bottom(), "s5 replies the old value directly");
    // Panel 2: the pre-write finishes its turn; s0 starts the write phase.
    for _ in 0..2 {
        d.pump_sends();
        d.deliver_one();
    }
    // Write notice reaches s1 then s2: s3's reader unblocks with v2.
    d.pump_sends();
    d.deliver_one();
    d.pump_sends();
    d.deliver_one();
    let reads = d.reads();
    assert_eq!(reads.len(), 2, "s3's reader answered (panel 2)");
    assert_eq!(reads[1].2, val(2));
    // Panel 3: the notice completes the turn; s0 acks the writer, and a
    // new reader at s4 (which now knows v2 committed) gets v2 immediately.
    d.run();
    assert_eq!(d.acks().len(), 1, "W(v2): ok (panel 3)");
    d.read(4, 11, 102);
    let reads = d.reads();
    assert_eq!(reads.last().unwrap().2, val(2));
}

#[test]
fn server_core_drain_frames_matches_sequential_next_frame() {
    // The per-core batch scheduler (used by single-object embedders)
    // must mirror `MultiObjectServer::drain_frames`: identical frame
    // sequence to repeated `next_frame()` pulls, caps respected, and a
    // zero byte budget still releases one frame.
    let build = || {
        let mut core = ServerCore::new(ServerId(1), 3, ObjectId::SINGLE, Config::default());
        for ts in 1..=4u64 {
            core.on_frame(RingFrame::pre_write(
                ObjectId::SINGLE,
                Tag::new(ts, ServerId(0)),
                val(ts),
            ));
        }
        core.on_client_write(ClientId(7), RequestId(1), val(100));
        core
    };

    let mut batched = build();
    let mut sequential = build();
    let drained = batched.drain_frames(16, usize::MAX);
    let mut one_at_a_time = Vec::new();
    while let Some(frame) = sequential.next_frame() {
        one_at_a_time.push(frame);
    }
    assert!(drained.len() >= 5, "expected real traffic, got {drained:?}");
    assert_eq!(drained, one_at_a_time);
    assert!(!batched.has_ring_work());

    // Caps: frame cap, zero-byte budget (first frame always ships),
    // and a zero frame cap clamping to one.
    let mut capped = build();
    assert_eq!(capped.drain_frames(2, usize::MAX).len(), 2);
    assert_eq!(capped.drain_frames(16, 0).len(), 1);
    assert_eq!(capped.drain_frames(0, usize::MAX).len(), 1);
}
