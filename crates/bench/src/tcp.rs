//! Real-socket load harness: drives a live [`Cluster`] (the `hts-net`
//! TCP runtime — actual threads, actual sockets, actual codec work) with
//! closed-loop blocking clients, so the zero-copy decode path and the
//! reader-thread read fast path are exercised for real. The packet-model
//! harness in [`harness`](crate::harness) never touches the wire codec;
//! this one is nothing but the wire.
//!
//! Windowing mirrors the simulated harness: a warm-up phase (connections
//! settle, caches fill), then a timed measurement window during which
//! each worker records completed operations and their wall-clock
//! latencies, then shutdown. Server-side observables (fast-path hit
//! counters, process CPU) are isolated per run by snapshot diffs of the
//! process-global metrics registry taken at the window edges.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use hts_core::Config;
use hts_net::{Client, Cluster, Session};
use hts_types::{ObjectId, ServerId, Value};

/// Parameters of one TCP-runtime run.
pub struct TcpParams {
    /// Servers in the ring.
    pub n: u16,
    /// Closed-loop writer clients (spread round-robin across servers).
    pub writers: u32,
    /// Closed-loop reader clients (spread round-robin across servers).
    pub readers: u32,
    /// Payload bytes per write.
    pub value_size: usize,
    /// Settling time before the measurement window.
    pub warmup: Duration,
    /// The measurement window.
    pub measure: Duration,
    /// Protocol configuration under test.
    pub config: Config,
    /// Operations each worker keeps in flight. `1` is the sequential
    /// [`Client`]; anything wider drives a pipelined [`Session`] (one
    /// socket per server, `window` concurrent ops), which is how a
    /// high-connection-count workload is expressed: many workers, each a
    /// session.
    pub window: usize,
    /// One register per worker instead of a shared one, so multi-lane
    /// servers spread the load across their ring lanes.
    pub distinct_objects: bool,
}

impl Default for TcpParams {
    fn default() -> TcpParams {
        TcpParams {
            n: 3,
            writers: 0,
            readers: 0,
            value_size: 64,
            warmup: Duration::from_millis(100),
            measure: Duration::from_millis(250),
            config: Config::default(),
            window: 1,
            distinct_objects: false,
        }
    }
}

/// What one TCP run measured.
pub struct TcpMeasurement {
    /// Writes completed inside the measurement window.
    pub writes: u64,
    /// Reads completed inside the measurement window.
    pub reads: u64,
    /// Client write payload throughput (Mbit/s) over the window.
    pub write_mbps: f64,
    /// Client read payload throughput (Mbit/s) over the window.
    pub read_mbps: f64,
    /// Per-write wall-clock latencies (nanoseconds), window only.
    pub write_lat_nanos: Vec<u64>,
    /// Per-read wall-clock latencies (nanoseconds), window only.
    pub read_lat_nanos: Vec<u64>,
    /// Reads answered on the connection's reader thread (window delta of
    /// `hts_net_read_fastpath_hits_total`; 0 with metrics off).
    pub fastpath_hits: u64,
    /// Reads that fell back to the lane event loop (window delta).
    pub fastpath_fallbacks: u64,
    /// Whole-process CPU microseconds per completed operation over the
    /// window (`NaN` where unsupported).
    pub cpu_us_per_op: f64,
    /// Server-side OS threads per node, sampled at the end of the
    /// measurement window (`hts_net_threads` gauge / `n`; 0 with metrics
    /// off). The reactor backend's whole point: `lanes + 1` regardless
    /// of connection count, where the threaded backend grows with every
    /// client and ring peer.
    pub threads_per_node: f64,
}

const WARMUP: u8 = 0;
const MEASURE: u8 = 1;
const DONE: u8 = 2;

/// Runs one closed-loop load against a freshly launched TCP cluster.
///
/// # Panics
///
/// Panics on launch/connect/op failures — a bench run with a dead
/// cluster has no meaningful numbers to report.
pub fn run_tcp(params: &TcpParams) -> TcpMeasurement {
    let cluster = Cluster::launch_with(params.n, params.config.clone()).expect("launch cluster");
    let addrs = cluster.addrs();
    let phase = Arc::new(AtomicU8::new(WARMUP));
    let object = ObjectId(1);

    let spawn_worker = |id: u32, is_writer: bool| {
        let addrs = addrs.clone();
        let phase = Arc::clone(&phase);
        let value_size = params.value_size;
        let n = params.n;
        let window = params.window.max(1);
        let object = if params.distinct_objects {
            ObjectId(id)
        } else {
            object
        };
        std::thread::spawn(move || {
            let preferred = ServerId((id % u32::from(n)) as u16);
            let value = Value::filled(0x42, value_size);
            let mut ops = 0u64;
            let mut lats = Vec::new();
            if window == 1 {
                let mut client = Client::connect_preferring(id, addrs, preferred).expect("connect");
                client.set_timeout(Duration::from_secs(2));
                loop {
                    match phase.load(Ordering::Relaxed) {
                        DONE => return (ops, lats),
                        current => {
                            let t0 = Instant::now();
                            if is_writer {
                                client.write_to(object, value.clone()).expect("write");
                            } else {
                                client.read_from(object).expect("read");
                            }
                            if current == MEASURE {
                                ops += 1;
                                lats.push(t0.elapsed().as_nanos() as u64);
                            }
                        }
                    }
                }
            }
            // Pipelined worker: one session, `window` ops in flight
            // (fill the window, then complete-oldest/issue-one).
            let mut session =
                Session::connect_preferring(id, addrs, preferred, window).expect("connect");
            session.set_timeout(Duration::from_secs(2));
            let mut in_flight: VecDeque<(hts_types::RequestId, Instant)> =
                VecDeque::with_capacity(window);
            loop {
                let current = phase.load(Ordering::Relaxed);
                if current == DONE {
                    for (request, _) in in_flight.drain(..) {
                        let _ = session.wait(request);
                    }
                    return (ops, lats);
                }
                while in_flight.len() < window {
                    let request = if is_writer {
                        session
                            .begin_write_to(object, value.clone())
                            .expect("begin_write")
                    } else {
                        session.begin_read_from(object).expect("begin_read")
                    };
                    in_flight.push_back((request, Instant::now()));
                }
                let (request, t0) = in_flight.pop_front().expect("window is full");
                session.wait(request).expect("wait");
                if current == MEASURE {
                    ops += 1;
                    lats.push(t0.elapsed().as_nanos() as u64);
                }
            }
        })
    };

    let writers: Vec<_> = (0..params.writers)
        .map(|w| spawn_worker(w + 1, true))
        .collect();
    let readers: Vec<_> = (0..params.readers)
        .map(|r| spawn_worker(1_000 + r, false))
        .collect();

    std::thread::sleep(params.warmup);
    let hits0 = hts_metrics::counter("hts_net_read_fastpath_hits_total").get();
    let falls0 = hts_metrics::counter("hts_net_read_fastpath_fallbacks_total").get();
    let cpu0 = hts_metrics::process_cpu_nanos();
    phase.store(MEASURE, Ordering::SeqCst);
    std::thread::sleep(params.measure);
    // Sampled mid-run, while every connection is up: the steady-state
    // server-side thread census this load actually costs.
    let server_threads = hts_metrics::gauge("hts_net_threads").get().max(0) as f64;
    phase.store(DONE, Ordering::SeqCst);
    let hits = hts_metrics::counter("hts_net_read_fastpath_hits_total").get() - hits0;
    let falls = hts_metrics::counter("hts_net_read_fastpath_fallbacks_total").get() - falls0;
    let cpu1 = hts_metrics::process_cpu_nanos();

    let mut writes = 0u64;
    let mut reads = 0u64;
    let mut write_lat_nanos = Vec::new();
    let mut read_lat_nanos = Vec::new();
    for worker in writers {
        let (ops, lats) = worker.join().expect("writer thread");
        writes += ops;
        write_lat_nanos.extend(lats);
    }
    for worker in readers {
        let (ops, lats) = worker.join().expect("reader thread");
        reads += ops;
        read_lat_nanos.extend(lats);
    }
    cluster.shutdown();

    let secs = params.measure.as_secs_f64();
    let mbps = |ops: u64| ops as f64 * params.value_size as f64 * 8.0 / secs / 1e6;
    let total_ops = writes + reads;
    let cpu_us_per_op = match (cpu0, cpu1) {
        (Some(before), Some(after)) if total_ops > 0 => {
            after.saturating_sub(before) as f64 / total_ops as f64 / 1e3
        }
        _ => f64::NAN,
    };
    TcpMeasurement {
        writes,
        reads,
        write_mbps: mbps(writes),
        read_mbps: mbps(reads),
        write_lat_nanos,
        read_lat_nanos,
        fastpath_hits: hits,
        fastpath_fallbacks: falls,
        cpu_us_per_op,
        threads_per_node: server_threads / f64::from(params.n),
    }
}
