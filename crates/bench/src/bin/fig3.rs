//! Reproduces **Figure 3**: the paper's four throughput charts on the
//! packet-level cluster simulator (100 Mbit/s fast ethernet, 64 KiB
//! requests, closed-loop clients pinned per server).
//!
//! 1. read throughput, no contention, separate networks (linear, ≈90·n);
//! 2. write throughput, no contention (flat, ≈80);
//! 3. read & write under contention, separate networks (read linear with a
//!    small penalty, write flat);
//! 4. read & write under contention, one shared network (both roughly
//!    halved, write flat, read still linear).

use hts_bench::{run_ring, Params};
use hts_sim::Nanos;

fn params(n: u16) -> Params {
    Params {
        n,
        value_size: 64 * 1024,
        warmup: Nanos::from_millis(500),
        measure: Nanos::from_secs(2),
        ..Params::default()
    }
}

fn main() {
    println!("# Figure 3 — ring storage throughput (Mbit/s of client payload)");
    println!();

    println!("## chart 1: read throughput, no contention (2 readers/server)");
    println!();
    println!("| servers | total read Mbit/s | per server |");
    println!("|---|---|---|");
    for n in 2..=8 {
        let m = run_ring(&Params {
            readers_per_server: 2,
            writers_per_server: 0,
            ..params(n)
        });
        println!(
            "| {n} | {:.1} | {:.1} |",
            m.read_mbps,
            m.read_mbps / f64::from(n)
        );
    }
    println!();
    println!("paper: linear, ≈90 Mbit/s per server.");
    println!();

    println!("## chart 2: write throughput, no contention (4 writers/server)");
    println!();
    println!("| servers | total write Mbit/s |");
    println!("|---|---|");
    for n in 2..=8 {
        let m = run_ring(&Params {
            readers_per_server: 0,
            writers_per_server: 4,
            ..params(n)
        });
        println!("| {n} | {:.1} |", m.write_mbps);
    }
    println!();
    println!("paper: ≈80 Mbit/s, flat from 2 to 8 servers.");
    println!();

    println!("## chart 3: contention, separate networks (a reader and a writer machine");
    println!("## per server, each emulating many parallel clients, as in §5)");
    println!();
    println!("| servers | total read Mbit/s | total write Mbit/s |");
    println!("|---|---|---|");
    for n in 2..=8 {
        // Blocked reads wait ≈ the write pipeline depth; saturating the
        // read path needs enough outstanding reads per server (the paper's
        // client machines "emulate multiple clients" for the same reason).
        let m = run_ring(&Params {
            readers_per_server: 32,
            writers_per_server: 4,
            ..params(n)
        });
        println!("| {n} | {:.1} | {:.1} |", m.read_mbps, m.write_mbps);
    }
    println!();
    println!("paper: write stays ≈80; read stays linear with ≈15% penalty vs chart 1.");
    println!();

    println!("## chart 4: contention, single shared network");
    println!();
    println!("| servers | total read Mbit/s | total write Mbit/s |");
    println!("|---|---|---|");
    for n in 2..=8 {
        let m = run_ring(&Params {
            readers_per_server: 32,
            writers_per_server: 4,
            shared_network: true,
            ..params(n)
        });
        println!("| {n} | {:.1} | {:.1} |", m.read_mbps, m.write_mbps);
    }
    println!();
    println!("paper: write ≈45 flat; read ≈31 Mbit/s per additional server.");
}
