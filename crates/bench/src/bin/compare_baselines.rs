//! Measures the comparisons the paper makes analytically (§1, §4.2): the
//! ring algorithm against the majority-quorum register (ABD), chain
//! replication, and a total-order-broadcast register, all on identical
//! hardware models and workloads.

use hts_bench::{run_abd, run_chain, run_ring, run_tob, Measurement, Params, Protocol};
use hts_sim::Nanos;

fn params(n: u16, readers: u32, writers: u32) -> Params {
    Params {
        n,
        readers_per_server: readers,
        writers_per_server: writers,
        value_size: 64 * 1024,
        warmup: Nanos::from_millis(500),
        measure: Nanos::from_secs(2),
        ..Params::default()
    }
}

fn run(protocol: Protocol, p: &Params) -> Measurement {
    match protocol {
        Protocol::Ring => run_ring(p),
        Protocol::Abd => run_abd(p),
        Protocol::Chain => run_chain(p),
        Protocol::Tob => run_tob(p),
    }
}

fn main() {
    let protocols = [
        Protocol::Ring,
        Protocol::Abd,
        Protocol::Chain,
        Protocol::Tob,
    ];

    println!("# Baseline comparison (64 KiB values)");
    println!();
    println!("## read-only load (2 readers/server): who scales with servers?");
    println!();
    println!("| protocol | n=2 | n=4 | n=8 | scaling (8 vs 2) |");
    println!("|---|---|---|---|---|");
    for proto in protocols {
        let m2 = run(proto, &params(2, 2, 0));
        let m4 = run(proto, &params(4, 2, 0));
        let m8 = run(proto, &params(8, 2, 0));
        println!(
            "| {proto} | {:.0} | {:.0} | {:.0} | {:.1}x |",
            m2.read_mbps,
            m4.read_mbps,
            m8.read_mbps,
            m8.read_mbps / m2.read_mbps
        );
    }
    println!();
    println!("paper's claim: only the ring's local reads scale linearly; quorum reads");
    println!("cannot (Naor–Wool), chain reads are tail-bound, TOB orders reads on the");
    println!("ring. note: with 64 KiB payloads TOB's tiny ordering messages barely");
    println!("load the ring, so its read *bandwidth* also scales here; its ordering");
    println!("cost is per-operation — see the small-value section below and Fig. 1.");
    println!();

    println!("## ordered reads cost ring slots: read ops/s at 1 KiB values (4 readers/server)");
    println!();
    println!("| protocol | n=4 reads/s | n=8 reads/s |");
    println!("|---|---|---|");
    for proto in [Protocol::Ring, Protocol::Tob] {
        let mut row = Vec::new();
        for n in [4u16, 8] {
            let m = run(
                proto,
                &Params {
                    value_size: 1024,
                    readers_per_server: 4,
                    ..params(n, 4, 0)
                },
            );
            row.push(m.reads as f64 / 2.0);
        }
        println!("| {proto} | {:.0} | {:.0} |", row[0], row[1]);
    }
    println!();
    println!("expected: ring reads are local (scale with client NICs); TOB reads each");
    println!("consume two ring turns, capping aggregate ops/s at the ring slot rate.");
    println!();

    println!("## write-only load (4 writers/server)");
    println!();
    println!("| protocol | n=2 | n=4 | n=8 |");
    println!("|---|---|---|---|");
    for proto in protocols {
        let m2 = run(proto, &params(2, 0, 4));
        let m4 = run(proto, &params(4, 0, 4));
        let m8 = run(proto, &params(8, 0, 4));
        println!(
            "| {proto} | {:.0} | {:.0} | {:.0} |",
            m2.write_mbps, m4.write_mbps, m8.write_mbps
        );
    }
    println!();
    println!("## mixed load (2 readers + 2 writers per server), n=4");
    println!();
    println!("| protocol | read Mbit/s | write Mbit/s | read ms | write ms |");
    println!("|---|---|---|---|---|");
    for proto in protocols {
        let m = run(proto, &params(4, 2, 2));
        println!(
            "| {proto} | {:.0} | {:.0} | {:.1} | {:.1} |",
            m.read_mbps, m.write_mbps, m.read_latency_ms, m.write_latency_ms
        );
    }
}
