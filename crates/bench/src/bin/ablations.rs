//! Ablations of the design choices DESIGN.md calls out:
//!
//! * **A1 — tag-only commits (piggyback)**: carrying the value again in
//!   the `write` ring message makes every payload cross every link twice,
//!   halving write throughput (this is why the optimization is load-bearing
//!   for the paper's 81 Mbit/s claim).
//! * **A2 — read fast path**: letting reads return when the stored tag
//!   already dominates all pending pre-writes cuts blocked-read latency
//!   under write contention (the paper always waits).
//! * **A3 — fairness rule**: replacing the `nb_msg` rule with local-first
//!   or forward-first priorities starves ring traffic or local clients.

use hts_bench::{run_ring, Params};
use hts_core::{Config, FairnessMode};
use hts_sim::Nanos;

fn base(n: u16) -> Params {
    Params {
        n,
        readers_per_server: 0,
        writers_per_server: 4,
        value_size: 64 * 1024,
        warmup: Nanos::from_millis(500),
        measure: Nanos::from_secs(2),
        ..Params::default()
    }
}

fn main() {
    println!("# Ablations (n = 4, 64 KiB values)");
    println!();

    println!("## A1 — write messages: tag-only vs value-carrying");
    println!();
    println!("| variant | write Mbit/s |");
    println!("|---|---|");
    let m = run_ring(&base(4));
    println!("| tag-only commits (paper) | {:.1} |", m.write_mbps);
    let m = run_ring(&Params {
        config: Config {
            write_carries_value: true,
            ..Config::default()
        },
        ..base(4)
    });
    println!("| value-carrying commits   | {:.1} |", m.write_mbps);
    println!();
    println!("expected: the value-carrying variant roughly halves write throughput.");
    println!();

    println!("## A2 — read fast path under write contention (2R+2W per server)");
    println!();
    println!("| variant | read Mbit/s | mean read latency (ms) |");
    println!("|---|---|---|");
    for (label, fast) in [("block on pending (paper)", false), ("fast path", true)] {
        let m = run_ring(&Params {
            readers_per_server: 2,
            writers_per_server: 2,
            config: Config {
                read_fast_path: fast,
                ..Config::default()
            },
            ..base(4)
        });
        println!(
            "| {label} | {:.1} | {:.2} |",
            m.read_mbps, m.read_latency_ms
        );
    }
    println!();
    println!("expected: nearly identical — under write saturation a pending pre-write");
    println!("almost always outranks the stored tag, so the fast path rarely fires;");
    println!("this is evidence the paper's always-block rule costs little.");
    println!();

    println!("## A3 — fairness rule (write-only saturation)");
    println!();
    println!("| scheduling | write Mbit/s | writes completed | mean write latency (ms) |");
    println!("|---|---|---|---|");
    for (label, mode) in [
        ("nb_msg fairness (paper)", FairnessMode::Fair),
        ("local-first", FairnessMode::LocalFirst),
        ("forward-first", FairnessMode::ForwardFirst),
    ] {
        let m = run_ring(&Params {
            config: Config {
                fairness: mode,
                ..Config::default()
            },
            ..base(4)
        });
        println!(
            "| {label} | {:.1} | {} | {:.1} |",
            m.write_mbps, m.writes, m.write_latency_ms
        );
    }
    println!();
    println!("expected: the nb_msg rule completes the most writes at the lowest");
    println!("latency; forward-first visibly starves local initiations. (True");
    println!("local-first starvation needs unbounded client arrival; closed-loop");
    println!("writers bound the damage.)");
}
