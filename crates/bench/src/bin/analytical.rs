//! Validates the paper's **§4 analytical claims** by running the very same
//! `ServerCore` on the synchronous round model of §2:
//!
//! * read latency = 2 rounds;
//! * write latency = 2N + 2 rounds;
//! * saturated write throughput = 1 op/round (any `n`);
//! * saturated read throughput = `n` ops/round.

use std::cell::RefCell;
use std::rc::Rc;

use hts_core::{Config, RoundClient, RoundClientStats, RoundServer};
use hts_sim::round::RoundSim;
use hts_types::{ClientId, Message, NodeId, ServerId};

struct Run {
    stats: Vec<Rc<RefCell<RoundClientStats>>>,
    sim: RoundSim<Message>,
}

/// One lone client against an otherwise idle ring (isolated latency).
fn build_single(n: u16, reads: bool, op_limit: Option<u64>) -> Run {
    let mut run = build(n, 0, 0, op_limit);
    let id = ClientId(10_000);
    let client_net = hts_sim::NetworkId(1);
    let (client, s) = RoundClient::new(id, n, ServerId(0), reads, op_limit, client_net);
    run.sim.add_node(NodeId::Client(id), Box::new(client));
    run.sim.attach(NodeId::Client(id), client_net);
    run.stats.push(s);
    run
}

fn build(n: u16, readers_per_server: u32, writers_per_server: u32, op_limit: Option<u64>) -> Run {
    let mut sim: RoundSim<Message> = RoundSim::new();
    let ring_net = sim.add_network();
    let client_net = sim.add_network();
    for i in 0..n {
        let id = NodeId::Server(ServerId(i));
        sim.add_node(
            id,
            Box::new(RoundServer::new(
                ServerId(i),
                n,
                Config::default(),
                ring_net,
                client_net,
            )),
        );
        sim.attach(id, ring_net);
        sim.attach(id, client_net);
    }
    let mut stats = Vec::new();
    let mut next = 0u32;
    for i in 0..n {
        for k in 0..(readers_per_server + writers_per_server) {
            let id = ClientId(next);
            next += 1;
            let reads = k < readers_per_server;
            let (client, s) = RoundClient::new(id, n, ServerId(i), reads, op_limit, client_net);
            sim.add_node(NodeId::Client(id), Box::new(client));
            sim.attach(NodeId::Client(id), client_net);
            stats.push(s);
        }
    }
    Run { stats, sim }
}

fn completed(run: &Run) -> u64 {
    run.stats.iter().map(|s| s.borrow().completed).sum()
}

fn mean_latency(run: &Run) -> f64 {
    let (sum, count) = run.stats.iter().fold((0u64, 0u64), |(s, c), stat| {
        let stat = stat.borrow();
        (s + stat.latency_rounds_total, c + stat.completed)
    });
    if count == 0 {
        f64::NAN
    } else {
        sum as f64 / count as f64
    }
}

fn main() {
    println!("# §4 analytical model — measured on the round simulator");
    println!();
    println!("| n | read latency (rounds) | write latency (rounds) | paper write = 2N+2 | write tput (ops/round) | read tput (ops/round) |");
    println!("|---|---|---|---|---|---|");
    for n in 2..=8u16 {
        // Isolated latencies: one lone client, one op.
        let mut r = build_single(n, true, Some(1));
        r.sim.run_rounds(16 + 4 * u64::from(n));
        let read_lat = mean_latency(&r);

        let mut w = build_single(n, false, Some(1));
        w.sim.run_rounds(16 + 4 * u64::from(n));
        let write_lat = mean_latency(&w);

        // Saturated throughput, measured over a window after warm-up.
        let rounds = 600u64;
        let warm = 120u64;
        let mut wt = build(n, 0, 4, None);
        wt.sim.run_rounds(warm);
        let w0 = completed(&wt);
        wt.sim.run_rounds(rounds);
        let write_tput = (completed(&wt) - w0) as f64 / rounds as f64;

        let mut rt = build(n, 2, 0, None);
        rt.sim.run_rounds(warm);
        let r0 = completed(&rt);
        rt.sim.run_rounds(rounds);
        let read_tput = (completed(&rt) - r0) as f64 / rounds as f64;

        println!(
            "| {n} | {read_lat:.0} | {write_lat:.0} | {} | {write_tput:.2} | {read_tput:.2} |",
            2 * n + 2
        );
    }
    println!();
    println!("paper: read latency 2; write latency 2N+2; write throughput 1; read throughput n.");
}
