//! Reproduces **Figure 4**: unloaded read/write latency against the number
//! of servers. The ring makes write latency linear in `n` (two full ring
//! turns); read latency is a single client↔server round trip and stays
//! flat.

use hts_bench::latency_ring;

fn main() {
    println!("# Figure 4 — unloaded operation latency (64 KiB requests)");
    println!();
    println!("| servers | read latency (ms) | write latency (ms) |");
    println!("|---|---|---|");
    for n in 2..=8 {
        let (read_ms, write_ms) = latency_ring(n, 64 * 1024, 11);
        println!("| {n} | {read_ms:.2} | {write_ms:.2} |");
    }
    println!();
    println!("paper: read flat (a few ms); write grows linearly to ≈60 ms at 8 servers.");
}
