//! Failure-handling timelines (no figure in the paper; §3's mechanism
//! plus this repo's crash-**recovery** extension):
//!
//! 1. **Crash-stop** — the paper's model: run a mixed workload, crash
//!    servers mid-run for good, report per-interval throughput and check
//!    the history stays atomic.
//! 2. **Crash-restart** — the `hts-wal` extension: a durable server is
//!    killed and rebooted from its log; a probe client pinned to it
//!    measures the end-to-end recovery time (replay + ring rejoin +
//!    resync) as the latency of the first read served by the restarted
//!    server.
//! 3. **Fsync ablation** — write throughput under `Durability::Volatile`
//!    vs `Buffered` (OS page cache) vs `SyncAlways` (ack-after-fsync on
//!    a modeled NVMe disk).
//!
//! Emits `BENCH_recovery.json` with all three result sets.

use std::cell::RefCell;
use std::rc::Rc;

use hts_bench::report::{json_f64, json_string_array, latency_object, write_report};
use hts_bench::{run_ring, Params};
use hts_core::{ClientStats, Config, Durability, OpMix, SimClient, SimServer, WorkloadConfig};
use hts_lincheck::{check_conditions, History};
use hts_sim::packet::{NetworkConfig, PacketSim};
use hts_sim::{DiskConfig, Nanos};
use hts_types::{ClientId, Message, NodeId, ServerId};

const VALUE_SIZE: usize = 16 * 1024;

struct Timeline {
    /// (window start s, window end s, ops completed, retries so far).
    windows: Vec<(f64, f64, u64, u64)>,
    atomic: bool,
    /// Rendered atomicity violations (empty when atomic).
    violations: Vec<String>,
    recorded_ops: usize,
    read_latencies: Vec<u64>,
    write_latencies: Vec<u64>,
    /// Crash-restart only: seconds from restart to the first read served
    /// by the restarted server.
    recovery_seconds: Option<f64>,
}

struct Cluster {
    sim: PacketSim<Message>,
    history: Rc<RefCell<History>>,
    stats: Vec<Rc<RefCell<ClientStats>>>,
    client_net: hts_sim::NetworkId,
}

fn build(n: u16, seed: u64, config: Config, disk: Option<DiskConfig>) -> Cluster {
    let mut sim = PacketSim::new(seed);
    let ring_net = sim.add_network(NetworkConfig::fast_ethernet());
    let client_net = sim.add_network(NetworkConfig::fast_ethernet());
    for i in 0..n {
        let id = NodeId::Server(ServerId(i));
        let mut server = SimServer::new(ServerId(i), n, config.clone(), ring_net, client_net);
        if let Some(disk) = disk {
            server = server.with_disk(disk);
        }
        sim.add_node(id, Box::new(server));
        sim.attach(id, ring_net);
        sim.attach(id, client_net);
    }
    let history = Rc::new(RefCell::new(History::new()));
    let mut stats = Vec::new();
    for c in 0..u32::from(n) * 2 {
        let id = ClientId(c);
        let workload = WorkloadConfig {
            mix: OpMix::Mixed { read_percent: 50 },
            value_size: VALUE_SIZE,
            op_limit: None,
            start_delay: Nanos::ZERO,
            timeout: Nanos::from_millis(120),
            window: 1,
        };
        let (client, s) = SimClient::new(
            id,
            n,
            ServerId((c % u32::from(n)) as u16),
            workload,
            client_net,
            Some(Rc::clone(&history)),
        );
        sim.add_node(NodeId::Client(id), Box::new(client));
        sim.attach(NodeId::Client(id), client_net);
        stats.push(s);
    }
    Cluster {
        sim,
        history,
        stats,
        client_net,
    }
}

fn total_ops(stats: &[Rc<RefCell<ClientStats>>]) -> u64 {
    stats
        .iter()
        .map(|s| {
            let s = s.borrow();
            s.writes_done + s.reads_done
        })
        .sum()
}

fn total_retries(stats: &[Rc<RefCell<ClientStats>>]) -> u64 {
    stats.iter().map(|s| s.borrow().retries).sum()
}

fn collect_timeline(
    mut cluster: Cluster,
    total_windows: u64,
    // (probe stats, restart instant, probe start instant)
    recovery_probe: Option<(Rc<RefCell<ClientStats>>, Nanos, Nanos)>,
) -> Timeline {
    let bin = Nanos::from_millis(250);
    let mut windows = Vec::new();
    let mut last_total = 0u64;
    for w in 0..total_windows {
        cluster.sim.run_until(Nanos(bin.as_nanos() * (w + 1)));
        let total = total_ops(&cluster.stats);
        windows.push((
            w as f64 * 0.25,
            (w + 1) as f64 * 0.25,
            total - last_total,
            total_retries(&cluster.stats),
        ));
        last_total = total;
    }
    // Recovery time = (probe start − restart) + the probe read's own
    // latency: the read is issued to the restarted server right after the
    // reboot and queues there until replay + rejoin + resync complete.
    let recovery_seconds = recovery_probe.map(|(probe_stats, restarted_at, probe_start)| {
        let deadline = cluster.sim.now() + Nanos::from_secs(5);
        while probe_stats.borrow().reads_done == 0 && cluster.sim.now() < deadline {
            let next = cluster.sim.now() + Nanos::from_millis(1);
            cluster.sim.run_until(next);
        }
        let stats = probe_stats.borrow();
        match stats.read_latencies.first() {
            Some(&latency) => {
                (probe_start.saturating_sub(restarted_at) + Nanos(latency)).as_secs_f64()
            }
            None => f64::NAN,
        }
    });

    let history = cluster.history.borrow();
    let violations: Vec<String> = check_conditions(&history)
        .into_iter()
        .map(|v| format!("{v:?}"))
        .collect();
    let mut read_latencies = Vec::new();
    let mut write_latencies = Vec::new();
    for s in &cluster.stats {
        let s = s.borrow();
        read_latencies.extend_from_slice(&s.read_latencies);
        write_latencies.extend_from_slice(&s.write_latencies);
    }
    Timeline {
        windows,
        atomic: violations.is_empty(),
        violations,
        recorded_ops: history.len(),
        read_latencies,
        write_latencies,
        recovery_seconds,
    }
}

fn print_timeline(title: &str, timeline: &Timeline) {
    println!("## {title}");
    println!();
    println!("| window (s) | ops completed | ops/s | retries so far |");
    println!("|---|---|---|---|");
    for (start, end, ops, retries) in &timeline.windows {
        println!(
            "| {start:.2}–{end:.2} | {ops} | {:.0} | {retries} |",
            *ops as f64 / 0.25
        );
    }
    println!();
    println!(
        "atomicity check over {} recorded operations: {}",
        timeline.recorded_ops,
        if timeline.atomic {
            "no violations".to_string()
        } else {
            format!("VIOLATIONS: {:?}", timeline.violations)
        }
    );
    println!();
}

fn windows_json(timeline: &Timeline) -> String {
    let rows: Vec<String> = timeline
        .windows
        .iter()
        .map(|(start, end, ops, retries)| {
            format!(
                r#"{{"start_s": {}, "end_s": {}, "ops": {ops}, "ops_per_s": {}, "retries_cum": {retries}}}"#,
                json_f64(*start),
                json_f64(*end),
                json_f64(*ops as f64 / 0.25),
            )
        })
        .collect();
    format!("[{}]", rows.join(", "))
}

/// Scenario 1 — the paper's crash-stop: 4 servers, s1 dies at 1.0 s and
/// s3 at 2.0 s, both forever.
fn crash_stop() -> Timeline {
    let mut cluster = build(4, 21, Config::default(), None);
    cluster
        .sim
        .crash_at(NodeId::Server(ServerId(1)), Nanos::from_secs(1));
    cluster
        .sim
        .crash_at(NodeId::Server(ServerId(3)), Nanos::from_secs(2));
    collect_timeline(cluster, 12, None)
}

/// Scenario 2 — crash-restart: 3 durable servers, s1 dies at 1.0 s and
/// reboots from its modeled WAL at 2.0 s. A probe client pinned to s1
/// starts reading right after the reboot; its first completed read marks
/// the end of replay + rejoin + resync.
fn crash_restart() -> Timeline {
    let config = Config {
        durability: Durability::SyncAlways,
        ..Config::default()
    };
    let mut cluster = build(3, 23, config, Some(DiskConfig::nvme_ssd()));
    let crash_at = Nanos::from_secs(1);
    let restart_at = Nanos::from_secs(2);
    cluster.sim.crash_at(NodeId::Server(ServerId(1)), crash_at);
    cluster
        .sim
        .restart_at(NodeId::Server(ServerId(1)), restart_at);

    // The probe: read-only, pinned to s1, starts just after the reboot,
    // with a timeout long enough that it never rotates to another server.
    let probe_id = ClientId(9_000);
    let probe_start = restart_at + Nanos::from_millis(1);
    let probe_workload = WorkloadConfig {
        mix: OpMix::ReadOnly,
        value_size: VALUE_SIZE,
        op_limit: Some(1),
        start_delay: probe_start,
        timeout: Nanos::from_secs(30),
        window: 1,
    };
    let client_net = cluster.client_net;
    let (probe, probe_stats) = SimClient::new(
        probe_id,
        3,
        ServerId(1),
        probe_workload,
        client_net,
        Some(Rc::clone(&cluster.history)),
    );
    cluster
        .sim
        .add_node(NodeId::Client(probe_id), Box::new(probe));
    cluster.sim.attach(NodeId::Client(probe_id), client_net);

    collect_timeline(cluster, 12, Some((probe_stats, restart_at, probe_start)))
}

/// Scenario 3 — fsync ablation: saturated writers under each durability
/// setting. Returns (volatile, buffered, sync_always) write Mbit/s.
fn fsync_ablation() -> (f64, f64, f64) {
    let run = |durability: Durability| -> f64 {
        let params = Params {
            n: 3,
            readers_per_server: 0,
            writers_per_server: 2,
            value_size: VALUE_SIZE,
            warmup: Nanos::from_millis(300),
            measure: Nanos::from_secs(1),
            config: Config {
                durability,
                ..Config::default()
            },
            ..Params::default()
        };
        run_ring(&params).write_mbps
    };
    (
        run(Durability::Volatile),
        run(Durability::Buffered),
        run(Durability::SyncAlways),
    )
}

fn main() {
    println!("# Recovery timelines — crash-stop vs crash-restart");
    println!();

    let stop = crash_stop();
    print_timeline(
        "Crash-stop (paper model): 4 servers, s1 dies @1.0s, s3 dies @2.0s",
        &stop,
    );
    println!("expected: each crash costs a brief stall (detection + client retries)");
    println!("inside one window; throughput then recovers — and rises, because a");
    println!("shorter ring commits writes in fewer hops.");
    println!();

    let restart = crash_restart();
    print_timeline(
        "Crash-restart (hts-wal): 3 durable servers, s1 dies @1.0s, reboots @2.0s",
        &restart,
    );
    if let Some(rec) = restart.recovery_seconds {
        println!("recovery time (restart → first read served by the rebooted server): {rec:.4} s");
    }
    println!("expected: the bounce costs two stalls (crash, rejoin-resync); after");
    println!("resync the ring is back to 3 servers and full read capacity.");
    println!();

    let (volatile, buffered, always) = fsync_ablation();
    let overhead = |x: f64| (1.0 - x / volatile) * 100.0;
    println!("## Fsync ablation — saturated 16 KiB writes, 3 servers, NVMe-class disk");
    println!();
    println!("| durability | write Mbit/s | overhead vs volatile |");
    println!("|---|---|---|");
    println!("| Volatile (crash-stop) | {volatile:.1} | — |");
    println!(
        "| Buffered (page cache) | {buffered:.1} | {:.1}% |",
        overhead(buffered)
    );
    println!(
        "| SyncAlways (ack-after-fsync) | {always:.1} | {:.1}% |",
        overhead(always)
    );

    let mut stop_reads = stop.read_latencies.clone();
    let mut stop_writes = stop.write_latencies.clone();
    let mut restart_reads = restart.read_latencies.clone();
    let mut restart_writes = restart.write_latencies.clone();
    let body = format!(
        r#"{{
  "figure": "recovery",
  "value_size_bytes": {VALUE_SIZE},
  "crash_stop": {{
    "servers": 4,
    "crashes_s": [1.0, 2.0],
    "atomic": {},
    "violations": {},
    "recorded_ops": {},
    "read_latency": {},
    "write_latency": {},
    "windows": {}
  }},
  "crash_restart": {{
    "servers": 3,
    "durability": "SyncAlways",
    "crash_s": 1.0,
    "restart_s": 2.0,
    "recovery_seconds": {},
    "atomic": {},
    "violations": {},
    "recorded_ops": {},
    "read_latency": {},
    "write_latency": {},
    "windows": {}
  }},
  "fsync_ablation": {{
    "volatile_write_mbps": {},
    "buffered_write_mbps": {},
    "sync_always_write_mbps": {},
    "sync_always_overhead_pct": {}
  }}
}}
"#,
        stop.atomic,
        json_string_array(&stop.violations),
        stop.recorded_ops,
        latency_object(&mut stop_reads),
        latency_object(&mut stop_writes),
        windows_json(&stop),
        json_f64(restart.recovery_seconds.unwrap_or(f64::NAN)),
        restart.atomic,
        json_string_array(&restart.violations),
        restart.recorded_ops,
        latency_object(&mut restart_reads),
        latency_object(&mut restart_writes),
        windows_json(&restart),
        json_f64(volatile),
        json_f64(buffered),
        json_f64(always),
        json_f64(overhead(always)),
    );
    match write_report("recovery", &body) {
        Ok(path) => println!("\nwrote {}", path.display()),
        Err(e) => eprintln!("could not write BENCH_recovery.json: {e}"),
    }
}
