//! Failure-handling timeline (no figure in the paper, §3's mechanism):
//! run a mixed workload, crash servers mid-run, and report per-interval
//! throughput plus the invariant checks — every client operation still
//! completes, and the history stays atomic.

use std::cell::RefCell;
use std::rc::Rc;

use hts_core::{ClientStats, Config, OpMix, SimClient, SimServer, WorkloadConfig};
use hts_lincheck::{check_conditions, History};
use hts_sim::packet::{NetworkConfig, PacketSim};
use hts_sim::Nanos;
use hts_types::{ClientId, NodeId, ServerId};

fn main() {
    let n: u16 = 4;
    let value_size = 16 * 1024;
    let mut sim = PacketSim::new(21);
    let ring_net = sim.add_network(NetworkConfig::fast_ethernet());
    let client_net = sim.add_network(NetworkConfig::fast_ethernet());
    for i in 0..n {
        let id = NodeId::Server(ServerId(i));
        sim.add_node(
            id,
            Box::new(SimServer::new(
                ServerId(i),
                n,
                Config::default(),
                ring_net,
                client_net,
            )),
        );
        sim.attach(id, ring_net);
        sim.attach(id, client_net);
    }
    let history = Rc::new(RefCell::new(History::new()));
    let mut stats: Vec<Rc<RefCell<ClientStats>>> = Vec::new();
    for c in 0..u32::from(n) * 2 {
        let id = ClientId(c);
        let workload = WorkloadConfig {
            mix: OpMix::Mixed { read_percent: 50 },
            value_size,
            op_limit: None,
            start_delay: Nanos::ZERO,
            timeout: Nanos::from_millis(120),
        };
        let (client, s) = SimClient::new(
            id,
            n,
            ServerId((c % u32::from(n)) as u16),
            workload,
            client_net,
            Some(Rc::clone(&history)),
        );
        sim.add_node(NodeId::Client(id), Box::new(client));
        sim.attach(NodeId::Client(id), client_net);
        stats.push(s);
    }

    // Crash s1 at 1.0s and s3 at 2.0s: the 4-ring shrinks to 2.
    sim.crash_at(NodeId::Server(ServerId(1)), Nanos::from_secs(1));
    sim.crash_at(NodeId::Server(ServerId(3)), Nanos::from_secs(2));

    println!("# Recovery timeline — 4 servers, crash s1@1.0s and s3@2.0s");
    println!();
    println!("| window (s) | ops completed | ops/s | retries so far |");
    println!("|---|---|---|---|");
    let bin = Nanos::from_millis(250);
    let total_windows = 12;
    let mut last_total = 0u64;
    for w in 0..total_windows {
        sim.run_until(Nanos(bin.as_nanos() * (w + 1)));
        let total: u64 = stats
            .iter()
            .map(|s| {
                let s = s.borrow();
                s.writes_done + s.reads_done
            })
            .sum();
        let retries: u64 = stats.iter().map(|s| s.borrow().retries).sum();
        let done = total - last_total;
        last_total = total;
        println!(
            "| {:.2}–{:.2} | {done} | {:.0} | {retries} |",
            w as f64 * 0.25,
            (w + 1) as f64 * 0.25,
            done as f64 / 0.25
        );
    }

    let h = history.borrow();
    let violations = check_conditions(&h);
    println!();
    println!(
        "atomicity check over {} recorded operations: {}",
        h.len(),
        if violations.is_empty() {
            "no violations".to_string()
        } else {
            format!("VIOLATIONS: {violations:?}")
        }
    );
    println!("expected: each crash costs a brief stall (detection + client retries,");
    println!("visible in the retry counter) inside one window; throughput then");
    println!("recovers — and rises, because a shorter ring commits writes in fewer");
    println!("hops. The history must stay linearizable throughout.");
}
