//! Reproduces **Figure 1**: the motivating throughput comparison between a
//! quorum-based read protocol (Algorithm A) and a local-read protocol
//! (Algorithm B) in the paper's synchronous round model. Both are tuned to
//! the same isolated latency (4 rounds); their steady-state throughputs
//! differ threefold.
//!
//! Also emits `BENCH_fig1.json`: the round-model numbers, a packet-model
//! baseline of the real ring protocol (read/write payload throughput and
//! p50/p99 latencies), a **batching ablation** (ring batch cap 1 vs 8
//! vs 64 on a saturated small-value write workload), a **lane ablation**
//! (1 vs 2 vs 4 parallel ring lanes on the saturated multi-object write
//! workload) and a **pipelining ablation** (client session window 1 vs 8
//! vs 64 at a fixed small client count) so the performance trajectory of
//! future changes can be diffed mechanically.
//!
//! Pass `--smoke` for a seconds-long CI run: identical report shape,
//! tiny measurement windows.

use hts_baselines::fig1::run_fig1;
use hts_bench::report::{json_f64, latency_object, write_report};
use hts_bench::{run_ring_detailed, Params};
use hts_core::BatchConfig;
use hts_sim::Nanos;

/// One batching-ablation row: the ring under a saturated small-value
/// write workload at a given frame cap.
struct AblationRow {
    max_frames: usize,
    writes: u64,
    write_mbps: f64,
    latency_json: String,
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let (rounds, warmup, measure) = if smoke {
        (100, Nanos::from_millis(50), Nanos::from_millis(100))
    } else {
        (1000, Nanos::from_millis(300), Nanos::from_secs(1))
    };

    println!("# Figure 1 — quorum (A) vs local-read (B), round model, 3 servers");
    println!();
    println!("| algorithm | isolated latency (rounds) | steady-state throughput (reads/round) |");
    println!("|---|---|---|");

    // Isolated latency: one client, one op.
    let (_, lat_a) = run_fig1(true, 3, 1, 12);
    let (_, lat_b) = run_fig1(false, 3, 1, 12);

    // Saturated throughput: 4 clients/server keep the pipeline full.
    let (done_a, _) = run_fig1(true, 3, 4, rounds);
    let (done_b, _) = run_fig1(false, 3, 4, rounds);

    let tput_a = done_a as f64 / rounds as f64;
    let tput_b = done_b as f64 / rounds as f64;
    println!("| A (majority quorum) | {lat_a:.0} | {tput_a:.2} |");
    println!("| B (local read)      | {lat_b:.0} | {tput_b:.2} |");
    println!();
    println!("paper: A and B share the 4-round latency; A sustains 1 read/round, B sustains 3.");

    // Packet-model baseline of the real ring: the reference numbers the
    // perf trajectory diffs against.
    let params = Params {
        n: 4,
        readers_per_server: 2,
        writers_per_server: 1,
        value_size: 64 * 1024,
        warmup,
        measure,
        ..Params::default()
    };
    let (m, mut read_lat, mut write_lat) = run_ring_detailed(&params);
    println!();
    println!(
        "ring baseline (packet model, n={}, 64 KiB): reads {:.1} Mbit/s, writes {:.1} Mbit/s",
        params.n, m.read_mbps, m.write_mbps
    );

    // Batching ablation: a saturated small-value write workload, where
    // the per-frame wire overhead the RingBatch coalescing removes is
    // the bottleneck. Cap 1 is the unbatched runtime; 8 is near the
    // sweet spot; 64 shows the head-of-line cost of over-batching while
    // still beating frame-at-a-time.
    let ablation_value_size = 64usize;
    let ablation_writers = 32u32;
    println!();
    println!(
        "## Batching ablation (ring, n=4, {ablation_writers} writers/server, \
         {ablation_value_size} B values)"
    );
    println!();
    println!("| batch cap (frames) | writes completed | write Mbit/s | p50 ms | p99 ms |");
    println!("|---|---|---|---|---|");
    let mut ablation = Vec::new();
    for max_frames in [1usize, 8, 64] {
        let config = hts_core::Config {
            batching: BatchConfig::with_max_frames(max_frames),
            ..hts_core::Config::default()
        };
        let ab_params = Params {
            n: 4,
            readers_per_server: 0,
            writers_per_server: ablation_writers,
            value_size: ablation_value_size,
            warmup,
            measure,
            config,
            ..Params::default()
        };
        let (am, _, mut ab_write_lat) = run_ring_detailed(&ab_params);
        println!(
            "| {max_frames} | {} | {:.2} | {:.2} | {:.2} |",
            am.writes,
            am.write_mbps,
            hts_bench::percentile_ms(&mut ab_write_lat, 50.0),
            hts_bench::percentile_ms(&mut ab_write_lat, 99.0),
        );
        ablation.push(AblationRow {
            max_frames,
            writes: am.writes,
            write_mbps: am.write_mbps,
            latency_json: latency_object(&mut ab_write_lat),
        });
    }
    let cap1 = ablation.first().expect("cap-1 row");
    let cap64 = ablation.last().expect("cap-64 row");
    println!();
    println!(
        "batching speedup (cap 64 vs cap 1): {:.2}x on ring write throughput",
        cap64.write_mbps / cap1.write_mbps
    );

    // Lane ablation: the same saturated small-value write pressure, but
    // multi-object (one register per writer) so the load partitions
    // across R parallel ring lanes. One lane is today's single-ring
    // runtime; each extra lane adds an independent ring pipeline, so
    // write throughput scales until the client network binds.
    println!();
    println!(
        "## Lane ablation (ring, n=4, {ablation_writers} writers/server, \
         {ablation_value_size} B values, one object per writer)"
    );
    println!();
    println!("| ring lanes | writes completed | write Mbit/s | p50 ms | p99 ms |");
    println!("|---|---|---|---|---|");
    let mut lane_ablation = Vec::new();
    for lanes in [1u16, 2, 4] {
        let config = hts_core::Config {
            lanes,
            ..hts_core::Config::default()
        };
        let lane_params = Params {
            n: 4,
            readers_per_server: 0,
            writers_per_server: ablation_writers,
            value_size: ablation_value_size,
            warmup,
            measure,
            distinct_objects: true,
            config,
            ..Params::default()
        };
        let (lm, _, mut lane_write_lat) = run_ring_detailed(&lane_params);
        println!(
            "| {lanes} | {} | {:.2} | {:.2} | {:.2} |",
            lm.writes,
            lm.write_mbps,
            hts_bench::percentile_ms(&mut lane_write_lat, 50.0),
            hts_bench::percentile_ms(&mut lane_write_lat, 99.0),
        );
        lane_ablation.push(AblationRow {
            max_frames: usize::from(lanes), // reused row shape: the knob value
            writes: lm.writes,
            write_mbps: lm.write_mbps,
            latency_json: latency_object(&mut lane_write_lat),
        });
    }
    let lanes1 = lane_ablation.first().expect("1-lane row");
    let lanes4 = lane_ablation.last().expect("4-lane row");
    println!();
    println!(
        "lane speedup (4 lanes vs 1): {:.2}x on multi-object write throughput",
        lanes4.write_mbps / lanes1.write_mbps
    );

    // Pipelining ablation: the same saturated small-value write pressure,
    // but produced by a FIXED, small client count (one writer per server
    // — one thread each, in a real deployment) whose session window is
    // the only knob. At window 1 this is the closed-loop thread-bound
    // regime; wider windows multiplex more in-flight operations per
    // connection, so measured throughput becomes protocol-bound instead
    // of thread-count-bound.
    let pipeline_writers = 1u32;
    println!();
    println!(
        "## Pipelining ablation (ring, n=4, {pipeline_writers} writer/server, \
         {ablation_value_size} B values, window 1/8/64)"
    );
    println!();
    println!("| session window | writes completed | write Mbit/s | p50 ms | p99 ms |");
    println!("|---|---|---|---|---|");
    let mut pipeline_ablation = Vec::new();
    for window in [1usize, 8, 64] {
        let win_params = Params {
            n: 4,
            readers_per_server: 0,
            writers_per_server: pipeline_writers,
            value_size: ablation_value_size,
            warmup,
            measure,
            client_window: window,
            ..Params::default()
        };
        let (wm, _, mut win_write_lat) = run_ring_detailed(&win_params);
        println!(
            "| {window} | {} | {:.2} | {:.2} | {:.2} |",
            wm.writes,
            wm.write_mbps,
            hts_bench::percentile_ms(&mut win_write_lat, 50.0),
            hts_bench::percentile_ms(&mut win_write_lat, 99.0),
        );
        pipeline_ablation.push(AblationRow {
            max_frames: window, // reused row shape: the knob value
            writes: wm.writes,
            write_mbps: wm.write_mbps,
            latency_json: latency_object(&mut win_write_lat),
        });
    }
    let window1 = pipeline_ablation.first().expect("window-1 row");
    let window8 = &pipeline_ablation[1];
    let window64 = pipeline_ablation.last().expect("window-64 row");
    println!();
    println!(
        "pipelining speedup at equal thread count: {:.2}x (window 8 vs 1), {:.2}x (window 64 vs 1)",
        window8.write_mbps / window1.write_mbps,
        window64.write_mbps / window1.write_mbps
    );

    let ablation_rows: Vec<String> = ablation
        .iter()
        .map(|row| {
            format!(
                r#"    {{"max_frames": {}, "writes_completed": {}, "write_throughput_mbps": {}, "write_latency": {}}}"#,
                row.max_frames,
                row.writes,
                json_f64(row.write_mbps),
                row.latency_json,
            )
        })
        .collect();
    let lane_rows: Vec<String> = lane_ablation
        .iter()
        .map(|row| {
            format!(
                r#"    {{"lanes": {}, "writes_completed": {}, "write_throughput_mbps": {}, "write_latency": {}}}"#,
                row.max_frames,
                row.writes,
                json_f64(row.write_mbps),
                row.latency_json,
            )
        })
        .collect();
    let pipeline_rows: Vec<String> = pipeline_ablation
        .iter()
        .map(|row| {
            format!(
                r#"    {{"window": {}, "writes_completed": {}, "write_throughput_mbps": {}, "write_latency": {}}}"#,
                row.max_frames,
                row.writes,
                json_f64(row.write_mbps),
                row.latency_json,
            )
        })
        .collect();

    let body = format!(
        r#"{{
  "figure": "fig1",
  "smoke": {},
  "round_model": {{
    "servers": 3,
    "algorithm_a": {{"latency_rounds": {}, "throughput_reads_per_round": {}}},
    "algorithm_b": {{"latency_rounds": {}, "throughput_reads_per_round": {}}}
  }},
  "ring_packet_model": {{
    "n": {},
    "value_size_bytes": {},
    "readers_per_server": {},
    "writers_per_server": {},
    "measure_seconds": {},
    "read_throughput_mbps": {},
    "write_throughput_mbps": {},
    "reads_completed": {},
    "writes_completed": {},
    "read_latency": {},
    "write_latency": {}
  }},
  "batching_ablation": {{
    "n": 4,
    "value_size_bytes": {},
    "writers_per_server": {},
    "measure_seconds": {},
    "rows": [
{}
    ]
  }},
  "lane_ablation": {{
    "n": 4,
    "value_size_bytes": {},
    "writers_per_server": {},
    "distinct_objects": true,
    "measure_seconds": {},
    "rows": [
{}
    ]
  }},
  "pipelining_ablation": {{
    "n": 4,
    "value_size_bytes": {},
    "writers_per_server": {},
    "measure_seconds": {},
    "rows": [
{}
    ]
  }}
}}
"#,
        smoke,
        json_f64(lat_a),
        json_f64(tput_a),
        json_f64(lat_b),
        json_f64(tput_b),
        params.n,
        params.value_size,
        params.readers_per_server,
        params.writers_per_server,
        json_f64(params.measure.as_secs_f64()),
        json_f64(m.read_mbps),
        json_f64(m.write_mbps),
        m.reads,
        m.writes,
        latency_object(&mut read_lat),
        latency_object(&mut write_lat),
        ablation_value_size,
        ablation_writers,
        json_f64(measure.as_secs_f64()),
        ablation_rows.join(",\n"),
        ablation_value_size,
        ablation_writers,
        json_f64(measure.as_secs_f64()),
        lane_rows.join(",\n"),
        ablation_value_size,
        pipeline_writers,
        json_f64(measure.as_secs_f64()),
        pipeline_rows.join(",\n"),
    );
    match write_report("fig1", &body) {
        Ok(path) => println!("wrote {}", path.display()),
        Err(e) => eprintln!("could not write BENCH_fig1.json: {e}"),
    }
    assert!(
        smoke || cap64.write_mbps > cap1.write_mbps,
        "batching regression: cap 64 ({:.2} Mbit/s) must beat cap 1 ({:.2} Mbit/s)",
        cap64.write_mbps,
        cap1.write_mbps
    );
    assert!(
        smoke || lanes4.write_mbps > lanes1.write_mbps,
        "lane-scaling regression: 4 lanes ({:.2} Mbit/s) must beat 1 lane ({:.2} Mbit/s)",
        lanes4.write_mbps,
        lanes1.write_mbps
    );
    assert!(
        smoke || window8.write_mbps > window1.write_mbps,
        "pipelining regression: window 8 ({:.2} Mbit/s) must beat window 1 ({:.2} Mbit/s) at \
         equal thread count",
        window8.write_mbps,
        window1.write_mbps
    );
}
