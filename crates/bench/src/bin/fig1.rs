//! Reproduces **Figure 1**: the motivating throughput comparison between a
//! quorum-based read protocol (Algorithm A) and a local-read protocol
//! (Algorithm B) in the paper's synchronous round model. Both are tuned to
//! the same isolated latency (4 rounds); their steady-state throughputs
//! differ threefold.
//!
//! Also emits `BENCH_fig1.json`: the round-model numbers, a packet-model
//! baseline of the real ring protocol (read/write payload throughput and
//! p50/p99 latencies), a **batching ablation** (ring batch cap 1 vs 8
//! vs 64 on a saturated small-value write workload), a **lane ablation**
//! (1 vs 2 vs 4 parallel ring lanes on the saturated multi-object write
//! workload), a **pipelining ablation** (client session window 1 vs 8
//! vs 64 at a fixed small client count) and three **TCP-runtime
//! ablations** over real sockets — zero-copy inbound decode off vs on
//! under saturated 64 KiB writes, the reader-thread read fast path
//! off vs on under a read-heavy 64 KiB mix, and the epoll **reactor
//! backend** vs the thread-per-connection baseline (saturated 64 B,
//! saturated 64 KiB, and 64 sessions × window 8, with a measured
//! threads-per-node column) — so the performance trajectory of future
//! changes can be diffed mechanically.
//!
//! Pass `--smoke` for a seconds-long CI run: identical report shape,
//! tiny measurement windows.

use std::time::Duration;

use hts_baselines::fig1::run_fig1;
use hts_bench::report::{histogram_latency_object, json_f64, latency_object, write_report};
use hts_bench::{run_ring_detailed, run_tcp, Params, TcpMeasurement, TcpParams};
use hts_core::BatchConfig;
use hts_metrics::HistogramSnapshot;
use hts_sim::Nanos;

/// One batching-ablation row: the ring under a saturated small-value
/// write workload at a given frame cap.
struct AblationRow {
    max_frames: usize,
    writes: u64,
    write_mbps: f64,
    latency_json: String,
    server: ServerWindow,
}

/// Opens a window over the server-side observables of one run: the
/// `hts_sim_server_*_nanos` ack-latency histograms (the process-global
/// metrics registry is cumulative across the runs in this binary, so each
/// run is isolated by a snapshot diff) plus the real CPU this process
/// burns. Metrics-off builds see empty snapshots and render `null`s.
struct ServerProbe {
    write0: HistogramSnapshot,
    read0: HistogramSnapshot,
    cpu0: Option<u64>,
}

/// One run's server-side window: ack-latency distributions (virtual
/// nanos, same clock as the client latencies) and real CPU per completed
/// operation (whole-process, whole-run — warmup and simulator machinery
/// included, so it is a trend column, not a microbenchmark).
struct ServerWindow {
    write: HistogramSnapshot,
    read: HistogramSnapshot,
    cpu_us_per_op: f64,
}

impl ServerProbe {
    fn begin() -> ServerProbe {
        ServerProbe {
            write0: hts_metrics::histogram("hts_sim_server_write_nanos").snapshot(),
            read0: hts_metrics::histogram("hts_sim_server_read_nanos").snapshot(),
            cpu0: hts_metrics::process_cpu_nanos(),
        }
    }

    /// Closes the window; `ops` is the run's completed operation count
    /// (measurement window), over which the CPU delta is apportioned.
    fn end(self, ops: u64) -> ServerWindow {
        let cpu_us_per_op = match (self.cpu0, hts_metrics::process_cpu_nanos()) {
            (Some(before), Some(after)) if ops > 0 => {
                after.saturating_sub(before) as f64 / ops as f64 / 1e3
            }
            _ => f64::NAN,
        };
        ServerWindow {
            write: hts_metrics::histogram("hts_sim_server_write_nanos")
                .snapshot()
                .since(&self.write0),
            read: hts_metrics::histogram("hts_sim_server_read_nanos")
                .snapshot()
                .since(&self.read0),
            cpu_us_per_op,
        }
    }
}

/// A histogram quantile of nanosecond samples, in ms (`NaN` when empty).
fn quantile_ms(q: Option<u64>) -> f64 {
    q.map_or(f64::NAN, |n| n as f64 / 1e6)
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let (rounds, warmup, measure) = if smoke {
        (100, Nanos::from_millis(50), Nanos::from_millis(100))
    } else {
        (1000, Nanos::from_millis(300), Nanos::from_secs(1))
    };

    println!("# Figure 1 — quorum (A) vs local-read (B), round model, 3 servers");
    println!();
    println!("| algorithm | isolated latency (rounds) | steady-state throughput (reads/round) |");
    println!("|---|---|---|");

    // Isolated latency: one client, one op.
    let (_, lat_a) = run_fig1(true, 3, 1, 12);
    let (_, lat_b) = run_fig1(false, 3, 1, 12);

    // Saturated throughput: 4 clients/server keep the pipeline full.
    let (done_a, _) = run_fig1(true, 3, 4, rounds);
    let (done_b, _) = run_fig1(false, 3, 4, rounds);

    let tput_a = done_a as f64 / rounds as f64;
    let tput_b = done_b as f64 / rounds as f64;
    println!("| A (majority quorum) | {lat_a:.0} | {tput_a:.2} |");
    println!("| B (local read)      | {lat_b:.0} | {tput_b:.2} |");
    println!();
    println!("paper: A and B share the 4-round latency; A sustains 1 read/round, B sustains 3.");

    // Packet-model baseline of the real ring: the reference numbers the
    // perf trajectory diffs against.
    let params = Params {
        n: 4,
        readers_per_server: 2,
        writers_per_server: 1,
        value_size: 64 * 1024,
        warmup,
        measure,
        ..Params::default()
    };
    let probe = ServerProbe::begin();
    let (m, mut read_lat, mut write_lat) = run_ring_detailed(&params);
    let baseline_server = probe.end(m.reads + m.writes);
    println!();
    println!(
        "ring baseline (packet model, n={}, 64 KiB): reads {:.1} Mbit/s, writes {:.1} Mbit/s",
        params.n, m.read_mbps, m.write_mbps
    );
    println!(
        "  server-side ack latency: write p50 {:.2} / p99 {:.2} ms, read p50 {:.2} / p99 {:.2} ms; \
         cpu {:.1} us/op",
        quantile_ms(baseline_server.write.p50()),
        quantile_ms(baseline_server.write.p99()),
        quantile_ms(baseline_server.read.p50()),
        quantile_ms(baseline_server.read.p99()),
        baseline_server.cpu_us_per_op,
    );

    // Batching ablation: a saturated small-value write workload, where
    // the per-frame wire overhead the RingBatch coalescing removes is
    // the bottleneck. Cap 1 is the unbatched runtime; 8 is near the
    // sweet spot; 64 shows the head-of-line cost of over-batching while
    // still beating frame-at-a-time.
    let ablation_value_size = 64usize;
    let ablation_writers = 32u32;
    println!();
    println!(
        "## Batching ablation (ring, n=4, {ablation_writers} writers/server, \
         {ablation_value_size} B values)"
    );
    println!();
    println!(
        "| batch cap (frames) | writes completed | write Mbit/s | p50 ms | p99 ms | \
         srv p50 ms | srv p99 ms | cpu us/op |"
    );
    println!("|---|---|---|---|---|---|---|---|");
    let mut ablation = Vec::new();
    for max_frames in [1usize, 8, 64] {
        let config = hts_core::Config {
            batching: BatchConfig::with_max_frames(max_frames),
            ..hts_core::Config::default()
        };
        let ab_params = Params {
            n: 4,
            readers_per_server: 0,
            writers_per_server: ablation_writers,
            value_size: ablation_value_size,
            warmup,
            measure,
            config,
            ..Params::default()
        };
        let ab_probe = ServerProbe::begin();
        let (am, _, mut ab_write_lat) = run_ring_detailed(&ab_params);
        let server = ab_probe.end(am.writes);
        println!(
            "| {max_frames} | {} | {:.2} | {:.2} | {:.2} | {:.2} | {:.2} | {:.1} |",
            am.writes,
            am.write_mbps,
            hts_bench::percentile_ms(&mut ab_write_lat, 50.0),
            hts_bench::percentile_ms(&mut ab_write_lat, 99.0),
            quantile_ms(server.write.p50()),
            quantile_ms(server.write.p99()),
            server.cpu_us_per_op,
        );
        ablation.push(AblationRow {
            max_frames,
            writes: am.writes,
            write_mbps: am.write_mbps,
            latency_json: latency_object(&mut ab_write_lat),
            server,
        });
    }
    let cap1 = ablation.first().expect("cap-1 row");
    let cap64 = ablation.last().expect("cap-64 row");
    println!();
    println!(
        "batching speedup (cap 64 vs cap 1): {:.2}x on ring write throughput",
        cap64.write_mbps / cap1.write_mbps
    );

    // Lane ablation: the same saturated small-value write pressure, but
    // multi-object (one register per writer) so the load partitions
    // across R parallel ring lanes. One lane is today's single-ring
    // runtime; each extra lane adds an independent ring pipeline, so
    // write throughput scales until the client network binds.
    println!();
    println!(
        "## Lane ablation (ring, n=4, {ablation_writers} writers/server, \
         {ablation_value_size} B values, one object per writer)"
    );
    println!();
    println!(
        "| ring lanes | writes completed | write Mbit/s | p50 ms | p99 ms | \
         srv p50 ms | srv p99 ms | cpu us/op |"
    );
    println!("|---|---|---|---|---|---|---|---|");
    let mut lane_ablation = Vec::new();
    for lanes in [1u16, 2, 4] {
        let config = hts_core::Config {
            lanes,
            ..hts_core::Config::default()
        };
        let lane_params = Params {
            n: 4,
            readers_per_server: 0,
            writers_per_server: ablation_writers,
            value_size: ablation_value_size,
            warmup,
            measure,
            distinct_objects: true,
            config,
            ..Params::default()
        };
        let lane_probe = ServerProbe::begin();
        let (lm, _, mut lane_write_lat) = run_ring_detailed(&lane_params);
        let server = lane_probe.end(lm.writes);
        println!(
            "| {lanes} | {} | {:.2} | {:.2} | {:.2} | {:.2} | {:.2} | {:.1} |",
            lm.writes,
            lm.write_mbps,
            hts_bench::percentile_ms(&mut lane_write_lat, 50.0),
            hts_bench::percentile_ms(&mut lane_write_lat, 99.0),
            quantile_ms(server.write.p50()),
            quantile_ms(server.write.p99()),
            server.cpu_us_per_op,
        );
        lane_ablation.push(AblationRow {
            max_frames: usize::from(lanes), // reused row shape: the knob value
            writes: lm.writes,
            write_mbps: lm.write_mbps,
            latency_json: latency_object(&mut lane_write_lat),
            server,
        });
    }
    let lanes1 = lane_ablation.first().expect("1-lane row");
    let lanes4 = lane_ablation.last().expect("4-lane row");
    println!();
    println!(
        "lane speedup (4 lanes vs 1): {:.2}x on multi-object write throughput",
        lanes4.write_mbps / lanes1.write_mbps
    );

    // Pipelining ablation: the same saturated small-value write pressure,
    // but produced by a FIXED, small client count (one writer per server
    // — one thread each, in a real deployment) whose session window is
    // the only knob. At window 1 this is the closed-loop thread-bound
    // regime; wider windows multiplex more in-flight operations per
    // connection, so measured throughput becomes protocol-bound instead
    // of thread-count-bound.
    let pipeline_writers = 1u32;
    println!();
    println!(
        "## Pipelining ablation (ring, n=4, {pipeline_writers} writer/server, \
         {ablation_value_size} B values, window 1/8/64)"
    );
    println!();
    println!(
        "| session window | writes completed | write Mbit/s | p50 ms | p99 ms | \
         srv p50 ms | srv p99 ms | cpu us/op |"
    );
    println!("|---|---|---|---|---|---|---|---|");
    let mut pipeline_ablation = Vec::new();
    for window in [1usize, 8, 64] {
        let win_params = Params {
            n: 4,
            readers_per_server: 0,
            writers_per_server: pipeline_writers,
            value_size: ablation_value_size,
            warmup,
            measure,
            client_window: window,
            ..Params::default()
        };
        let win_probe = ServerProbe::begin();
        let (wm, _, mut win_write_lat) = run_ring_detailed(&win_params);
        let server = win_probe.end(wm.writes);
        println!(
            "| {window} | {} | {:.2} | {:.2} | {:.2} | {:.2} | {:.2} | {:.1} |",
            wm.writes,
            wm.write_mbps,
            hts_bench::percentile_ms(&mut win_write_lat, 50.0),
            hts_bench::percentile_ms(&mut win_write_lat, 99.0),
            quantile_ms(server.write.p50()),
            quantile_ms(server.write.p99()),
            server.cpu_us_per_op,
        );
        pipeline_ablation.push(AblationRow {
            max_frames: window, // reused row shape: the knob value
            writes: wm.writes,
            write_mbps: wm.write_mbps,
            latency_json: latency_object(&mut win_write_lat),
            server,
        });
    }
    let window1 = pipeline_ablation.first().expect("window-1 row");
    let window8 = &pipeline_ablation[1];
    let window64 = pipeline_ablation.last().expect("window-64 row");
    println!();
    println!(
        "pipelining speedup at equal thread count: {:.2}x (window 8 vs 1), {:.2}x (window 64 vs 1)",
        window8.write_mbps / window1.write_mbps,
        window64.write_mbps / window1.write_mbps
    );

    // TCP-runtime ablations: everything above runs in the packet model,
    // which never touches the wire codec — these two run the real
    // threaded TCP runtime on localhost, so the zero-copy decode path
    // and the reader-thread read fast path are measured where they
    // exist. Windows are short (sockets, not simulated time).
    let (tcp_warmup, tcp_measure) = if smoke {
        (Duration::from_millis(100), Duration::from_millis(250))
    } else {
        (Duration::from_millis(500), Duration::from_secs(2))
    };
    let tcp_value_size = 64 * 1024usize;

    /// One TCP ablation row: the run's measurement plus rendered
    /// latency JSON and the window's server-side ring-write histogram.
    struct TcpRow {
        knob: bool,
        m: TcpMeasurement,
        write_latency_json: String,
        read_latency_json: String,
        write_p50_ms: f64,
        write_p99_ms: f64,
        read_p50_ms: f64,
        read_p99_ms: f64,
        ring_write: HistogramSnapshot,
    }
    let run_tcp_row = |knob: bool, params: TcpParams| {
        let ring_write0 = hts_metrics::histogram("hts_net_ring_write_nanos").snapshot();
        let mut m = run_tcp(&params);
        let ring_write = hts_metrics::histogram("hts_net_ring_write_nanos")
            .snapshot()
            .since(&ring_write0);
        TcpRow {
            knob,
            write_latency_json: latency_object(&mut m.write_lat_nanos),
            read_latency_json: latency_object(&mut m.read_lat_nanos),
            write_p50_ms: hts_bench::percentile_ms(&mut m.write_lat_nanos, 50.0),
            write_p99_ms: hts_bench::percentile_ms(&mut m.write_lat_nanos, 99.0),
            read_p50_ms: hts_bench::percentile_ms(&mut m.read_lat_nanos, 50.0),
            read_p99_ms: hts_bench::percentile_ms(&mut m.read_lat_nanos, 99.0),
            ring_write,
            m,
        }
    };

    let tcp_writers = 12u32;
    println!();
    println!(
        "## Zero-copy decode ablation (TCP runtime, n=3, {tcp_writers} writers, 64 KiB values)"
    );
    println!();
    println!(
        "| zero_copy | writes completed | write Mbit/s | p50 ms | p99 ms | \
         srv ring-write p99 ms | cpu us/op |"
    );
    println!("|---|---|---|---|---|---|---|");
    let mut zero_copy_rows = Vec::new();
    for zero_copy in [false, true] {
        let row = run_tcp_row(
            zero_copy,
            TcpParams {
                n: 3,
                writers: tcp_writers,
                readers: 0,
                value_size: tcp_value_size,
                warmup: tcp_warmup,
                measure: tcp_measure,
                config: hts_core::Config {
                    zero_copy,
                    ..hts_core::Config::default()
                },
                ..TcpParams::default()
            },
        );
        println!(
            "| {} | {} | {:.2} | {:.2} | {:.2} | {:.3} | {:.1} |",
            row.knob,
            row.m.writes,
            row.m.write_mbps,
            row.write_p50_ms,
            row.write_p99_ms,
            quantile_ms(row.ring_write.p99()),
            row.m.cpu_us_per_op,
        );
        zero_copy_rows.push(row);
    }
    let zc_off = zero_copy_rows.first().expect("zero_copy=false row");
    let zc_on = zero_copy_rows.last().expect("zero_copy=true row");
    println!();
    println!(
        "zero-copy speedup on saturated 64 KiB writes: {:.2}x",
        zc_on.m.write_mbps / zc_off.m.write_mbps
    );

    let tcp_readers = 8u32;
    println!();
    println!(
        "## Read fast path ablation (TCP runtime, n=3, 1 writer + {tcp_readers} readers, \
         64 KiB values)"
    );
    println!();
    println!(
        "| read_fast_path | reads completed | read Mbit/s | p50 ms | p99 ms | \
         fast-path hits | fallbacks | cpu us/op |"
    );
    println!("|---|---|---|---|---|---|---|---|");
    let mut fastpath_rows = Vec::new();
    for read_fast_path in [false, true] {
        let row = run_tcp_row(
            read_fast_path,
            TcpParams {
                n: 3,
                writers: 1,
                readers: tcp_readers,
                value_size: tcp_value_size,
                warmup: tcp_warmup,
                measure: tcp_measure,
                config: hts_core::Config {
                    read_fast_path,
                    ..hts_core::Config::default()
                },
                ..TcpParams::default()
            },
        );
        println!(
            "| {} | {} | {:.2} | {:.2} | {:.2} | {} | {} | {:.1} |",
            row.knob,
            row.m.reads,
            row.m.read_mbps,
            row.read_p50_ms,
            row.read_p99_ms,
            row.m.fastpath_hits,
            row.m.fastpath_fallbacks,
            row.m.cpu_us_per_op,
        );
        fastpath_rows.push(row);
    }
    let fp_off = fastpath_rows.first().expect("read_fast_path=false row");
    let fp_on = fastpath_rows.last().expect("read_fast_path=true row");
    println!();
    println!(
        "read fast path speedup on the read-heavy 64 KiB mix: {:.2}x",
        fp_on.m.read_mbps / fp_off.m.read_mbps
    );

    // Reactor ablation: the identical protocol over the two `hts-net`
    // backends — readiness-driven per-lane reactors (`Config::reactor`,
    // the Linux default) vs the thread-per-connection baseline. Three
    // workloads: saturated small writes (syscall/context-switch bound,
    // where the reactor's coalescing and thread economy pay), saturated
    // 64 KiB writes (byte bound, both backends should push similar
    // Mbit/s), and a high-connection-count row (64 pipelined sessions ×
    // window 8) where the threaded backend's 2-threads-per-connection
    // tax is the headline: the reactor serves it all on lanes + 1
    // threads per node.
    let reactor_lanes = 4u16;
    let reactor_available =
        cfg!(target_os = "linux") && std::env::var_os("HTS_REACTOR").is_none_or(|v| v != "0");
    struct ReactorRow {
        reactor: bool,
        workload: &'static str,
        ops: u64,
        mbps: f64,
        p50_ms: f64,
        p99_ms: f64,
        latency_json: String,
        cpu_us_per_op: f64,
        threads_per_node: f64,
    }
    println!();
    println!(
        "## Reactor ablation (TCP runtime, n=3, lanes={reactor_lanes}, threaded vs epoll reactor)"
    );
    println!();
    println!(
        "| workload | reactor | ops completed | Mbit/s | p50 ms | p99 ms | cpu us/op | \
         threads/node |"
    );
    println!("|---|---|---|---|---|---|---|---|");
    let mut reactor_rows: Vec<ReactorRow> = Vec::new();
    for (workload, writers, value_size, window) in [
        ("write_64b_saturated", 32u32, 64usize, 1usize),
        ("write_64kib_saturated", 12, 64 * 1024, 1),
        ("sessions_64_window_8", 64, 64, 8),
    ] {
        for reactor in [false, true] {
            let mut m = run_tcp(&TcpParams {
                n: 3,
                writers,
                readers: 0,
                value_size,
                warmup: tcp_warmup,
                measure: tcp_measure,
                window,
                distinct_objects: true,
                config: hts_core::Config {
                    lanes: reactor_lanes,
                    reactor,
                    ..hts_core::Config::default()
                },
            });
            let row = ReactorRow {
                reactor,
                workload,
                ops: m.writes,
                mbps: m.write_mbps,
                p50_ms: hts_bench::percentile_ms(&mut m.write_lat_nanos, 50.0),
                p99_ms: hts_bench::percentile_ms(&mut m.write_lat_nanos, 99.0),
                latency_json: latency_object(&mut m.write_lat_nanos),
                cpu_us_per_op: m.cpu_us_per_op,
                threads_per_node: m.threads_per_node,
            };
            println!(
                "| {workload} | {} | {} | {:.2} | {:.3} | {:.3} | {:.1} | {:.1} |",
                row.reactor,
                row.ops,
                row.mbps,
                row.p50_ms,
                row.p99_ms,
                row.cpu_us_per_op,
                row.threads_per_node,
            );
            reactor_rows.push(row);
        }
    }

    let ablation_row_json = |knob: &str, row: &AblationRow| {
        format!(
            r#"    {{"{knob}": {}, "writes_completed": {}, "write_throughput_mbps": {}, "write_latency": {}, "server_write_latency": {}, "cpu_us_per_op": {}}}"#,
            row.max_frames,
            row.writes,
            json_f64(row.write_mbps),
            row.latency_json,
            histogram_latency_object(&row.server.write),
            json_f64(row.server.cpu_us_per_op),
        )
    };
    let ablation_rows: Vec<String> = ablation
        .iter()
        .map(|row| ablation_row_json("max_frames", row))
        .collect();
    let lane_rows: Vec<String> = lane_ablation
        .iter()
        .map(|row| ablation_row_json("lanes", row))
        .collect();
    let pipeline_rows: Vec<String> = pipeline_ablation
        .iter()
        .map(|row| ablation_row_json("window", row))
        .collect();
    let zero_copy_json: Vec<String> = zero_copy_rows
        .iter()
        .map(|row| {
            format!(
                r#"    {{"zero_copy": {}, "writes_completed": {}, "write_throughput_mbps": {}, "write_latency": {}, "server_ring_write_latency": {}, "cpu_us_per_op": {}}}"#,
                row.knob,
                row.m.writes,
                json_f64(row.m.write_mbps),
                row.write_latency_json,
                histogram_latency_object(&row.ring_write),
                json_f64(row.m.cpu_us_per_op),
            )
        })
        .collect();
    let reactor_json: Vec<String> = reactor_rows
        .iter()
        .map(|row| {
            format!(
                r#"    {{"workload": "{}", "reactor": {}, "ops_completed": {}, "throughput_mbps": {}, "latency": {}, "cpu_us_per_op": {}, "threads_per_node": {}}}"#,
                row.workload,
                row.reactor,
                row.ops,
                json_f64(row.mbps),
                row.latency_json,
                json_f64(row.cpu_us_per_op),
                json_f64(row.threads_per_node),
            )
        })
        .collect();
    let fastpath_json: Vec<String> = fastpath_rows
        .iter()
        .map(|row| {
            format!(
                r#"    {{"read_fast_path": {}, "reads_completed": {}, "read_throughput_mbps": {}, "read_latency": {}, "fastpath_hits": {}, "fastpath_fallbacks": {}, "cpu_us_per_op": {}}}"#,
                row.knob,
                row.m.reads,
                json_f64(row.m.read_mbps),
                row.read_latency_json,
                row.m.fastpath_hits,
                row.m.fastpath_fallbacks,
                json_f64(row.m.cpu_us_per_op),
            )
        })
        .collect();

    let body = format!(
        r#"{{
  "figure": "fig1",
  "smoke": {},
  "round_model": {{
    "servers": 3,
    "algorithm_a": {{"latency_rounds": {}, "throughput_reads_per_round": {}}},
    "algorithm_b": {{"latency_rounds": {}, "throughput_reads_per_round": {}}}
  }},
  "ring_packet_model": {{
    "n": {},
    "value_size_bytes": {},
    "readers_per_server": {},
    "writers_per_server": {},
    "measure_seconds": {},
    "read_throughput_mbps": {},
    "write_throughput_mbps": {},
    "reads_completed": {},
    "writes_completed": {},
    "read_latency": {},
    "write_latency": {},
    "server_write_latency": {},
    "server_read_latency": {},
    "cpu_us_per_op": {}
  }},
  "batching_ablation": {{
    "n": 4,
    "value_size_bytes": {},
    "writers_per_server": {},
    "measure_seconds": {},
    "rows": [
{}
    ]
  }},
  "lane_ablation": {{
    "n": 4,
    "value_size_bytes": {},
    "writers_per_server": {},
    "distinct_objects": true,
    "measure_seconds": {},
    "rows": [
{}
    ]
  }},
  "pipelining_ablation": {{
    "n": 4,
    "value_size_bytes": {},
    "writers_per_server": {},
    "measure_seconds": {},
    "rows": [
{}
    ]
  }},
  "tcp_zero_copy_ablation": {{
    "n": 3,
    "value_size_bytes": {},
    "writers": {},
    "measure_seconds": {},
    "rows": [
{}
    ]
  }},
  "tcp_read_fastpath_ablation": {{
    "n": 3,
    "value_size_bytes": {},
    "writers": 1,
    "readers": {},
    "measure_seconds": {},
    "rows": [
{}
    ]
  }},
  "tcp_reactor_ablation": {{
    "n": 3,
    "lanes": {},
    "reactor_available": {},
    "measure_seconds": {},
    "rows": [
{}
    ]
  }}
}}
"#,
        smoke,
        json_f64(lat_a),
        json_f64(tput_a),
        json_f64(lat_b),
        json_f64(tput_b),
        params.n,
        params.value_size,
        params.readers_per_server,
        params.writers_per_server,
        json_f64(params.measure.as_secs_f64()),
        json_f64(m.read_mbps),
        json_f64(m.write_mbps),
        m.reads,
        m.writes,
        latency_object(&mut read_lat),
        latency_object(&mut write_lat),
        histogram_latency_object(&baseline_server.write),
        histogram_latency_object(&baseline_server.read),
        json_f64(baseline_server.cpu_us_per_op),
        ablation_value_size,
        ablation_writers,
        json_f64(measure.as_secs_f64()),
        ablation_rows.join(",\n"),
        ablation_value_size,
        ablation_writers,
        json_f64(measure.as_secs_f64()),
        lane_rows.join(",\n"),
        ablation_value_size,
        pipeline_writers,
        json_f64(measure.as_secs_f64()),
        pipeline_rows.join(",\n"),
        tcp_value_size,
        tcp_writers,
        json_f64(tcp_measure.as_secs_f64()),
        zero_copy_json.join(",\n"),
        tcp_value_size,
        tcp_readers,
        json_f64(tcp_measure.as_secs_f64()),
        fastpath_json.join(",\n"),
        reactor_lanes,
        reactor_available,
        json_f64(tcp_measure.as_secs_f64()),
        reactor_json.join(",\n"),
    );
    match write_report("fig1", &body) {
        Ok(path) => println!("wrote {}", path.display()),
        Err(e) => eprintln!("could not write BENCH_fig1.json: {e}"),
    }
    assert!(
        smoke || cap64.write_mbps > cap1.write_mbps,
        "batching regression: cap 64 ({:.2} Mbit/s) must beat cap 1 ({:.2} Mbit/s)",
        cap64.write_mbps,
        cap1.write_mbps
    );
    assert!(
        smoke || lanes4.write_mbps > lanes1.write_mbps,
        "lane-scaling regression: 4 lanes ({:.2} Mbit/s) must beat 1 lane ({:.2} Mbit/s)",
        lanes4.write_mbps,
        lanes1.write_mbps
    );
    assert!(
        smoke || window8.write_mbps > window1.write_mbps,
        "pipelining regression: window 8 ({:.2} Mbit/s) must beat window 1 ({:.2} Mbit/s) at \
         equal thread count",
        window8.write_mbps,
        window1.write_mbps
    );
    // Zero-copy's honest win on a localhost closed loop is CPU per op
    // (the removed allocations, zeroing and memcpys), not throughput —
    // loopback sockets are latency-bound here, so Mbit/s only gets a
    // generous no-regression guard while the CPU column must improve.
    // (NaN = platform without CPU accounting: direction unknowable.)
    assert!(
        smoke || zc_on.m.cpu_us_per_op.is_nan() || zc_on.m.cpu_us_per_op < zc_off.m.cpu_us_per_op,
        "zero-copy regression: zero_copy=true ({:.1} us/op) must burn less CPU than the \
         copying baseline ({:.1} us/op) on saturated 64 KiB writes",
        zc_on.m.cpu_us_per_op,
        zc_off.m.cpu_us_per_op
    );
    assert!(
        smoke || zc_on.m.write_mbps > 0.85 * zc_off.m.write_mbps,
        "zero-copy regression: zero_copy=true ({:.2} Mbit/s) fell more than 15% below the \
         copying baseline ({:.2} Mbit/s)",
        zc_on.m.write_mbps,
        zc_off.m.write_mbps
    );
    // Same story as zero-copy: on a loopback closed loop the honest win
    // of answering reads on the reader thread is the skipped event-loop
    // hop — CPU per op — while Mbit/s is latency-/scheduler-bound and
    // only gets a no-regression guard.
    assert!(
        smoke || fp_on.m.cpu_us_per_op.is_nan() || fp_on.m.cpu_us_per_op < fp_off.m.cpu_us_per_op,
        "read-fast-path regression: read_fast_path=true ({:.1} us/op) must burn less CPU \
         than the event-loop-only baseline ({:.1} us/op) on the read-heavy 64 KiB mix",
        fp_on.m.cpu_us_per_op,
        fp_off.m.cpu_us_per_op
    );
    assert!(
        smoke || fp_on.m.read_mbps > 0.85 * fp_off.m.read_mbps,
        "read-fast-path regression: read_fast_path=true ({:.2} Mbit/s) fell more than 15% \
         below the event-loop-only baseline ({:.2} Mbit/s)",
        fp_on.m.read_mbps,
        fp_off.m.read_mbps
    );
    // The reader-thread shortcut must actually fire when enabled and
    // must stay completely out of the way when disabled — dead (or
    // undead) counters mean the net layer stopped honouring the knob.
    // Metrics off compiles the counters to no-ops.
    if cfg!(feature = "metrics") {
        assert!(
            fp_on.m.fastpath_hits > 0,
            "read_fast_path=true run recorded zero reader-thread fast-path hits"
        );
        assert!(
            fp_off.m.fastpath_hits == 0 && fp_off.m.fastpath_fallbacks == 0,
            "read_fast_path=false run still consulted the reader-thread shortcut \
             ({} hits, {} fallbacks)",
            fp_off.m.fastpath_hits,
            fp_off.m.fastpath_fallbacks
        );
    }
    // The server-side columns must carry real samples whenever metrics are
    // compiled in — smoke mode included, so CI catches silently-dead
    // instrumentation. (Metrics off: snapshots are empty by construction.)
    if cfg!(feature = "metrics") {
        assert!(
            baseline_server.write.count() > 0 && baseline_server.read.count() > 0,
            "server-side ack-latency histograms are empty: the \
             hts_sim_server_*_nanos instrumentation went dead"
        );
        for row in ablation
            .iter()
            .chain(&lane_ablation)
            .chain(&pipeline_ablation)
        {
            assert!(
                row.server.write.count() > 0,
                "ablation row (knob {}) has an empty server-side write histogram",
                row.max_frames
            );
        }
        if cfg!(target_os = "linux") {
            assert!(
                baseline_server.cpu_us_per_op.is_finite(),
                "cpu_us_per_op must be measurable on linux"
            );
        }
    }
    // Reactor ablation invariants. Smoke included: every row must carry
    // a real thread census (the CI gate for silently-dead
    // instrumentation); the performance directions are asserted on full
    // runs only.
    if cfg!(feature = "metrics") {
        for row in &reactor_rows {
            assert!(
                row.threads_per_node.is_finite() && row.threads_per_node > 0.0,
                "reactor ablation row ({}, reactor={}) has no thread census",
                row.workload,
                row.reactor
            );
        }
        if reactor_available {
            let find = |workload: &str, reactor: bool| {
                reactor_rows
                    .iter()
                    .find(|r| r.workload == workload && r.reactor == reactor)
                    .expect("ablation row exists")
            };
            // The tentpole's headline: a reactor node under 64 sessions
            // runs on exactly lanes + 1 threads; the threaded backend
            // needs several times that for the same load.
            let sessions_on = find("sessions_64_window_8", true);
            let sessions_off = find("sessions_64_window_8", false);
            assert!(
                (sessions_on.threads_per_node - f64::from(reactor_lanes + 1)).abs() < 0.51,
                "reactor threads-per-node is {:.1}, expected lanes + 1 = {}",
                sessions_on.threads_per_node,
                reactor_lanes + 1
            );
            assert!(
                smoke || sessions_off.threads_per_node >= 3.0 * sessions_on.threads_per_node,
                "threaded backend ran 64 sessions on only {:.1} threads/node (reactor: {:.1}) — \
                 the ablation no longer demonstrates the thread economy",
                sessions_off.threads_per_node,
                sessions_on.threads_per_node
            );
            let small_on = find("write_64b_saturated", true);
            let small_off = find("write_64b_saturated", false);
            assert!(
                smoke
                    || small_on.cpu_us_per_op.is_nan()
                    || small_on.cpu_us_per_op < small_off.cpu_us_per_op,
                "reactor regression: reactor=true ({:.1} us/op) must burn less CPU than the \
                 threaded backend ({:.1} us/op) on saturated 64 B writes",
                small_on.cpu_us_per_op,
                small_off.cpu_us_per_op
            );
        }
    }
}
