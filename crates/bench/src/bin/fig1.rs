//! Reproduces **Figure 1**: the motivating throughput comparison between a
//! quorum-based read protocol (Algorithm A) and a local-read protocol
//! (Algorithm B) in the paper's synchronous round model. Both are tuned to
//! the same isolated latency (4 rounds); their steady-state throughputs
//! differ threefold.
//!
//! Also emits `BENCH_fig1.json`: the round-model numbers plus a
//! packet-model baseline of the real ring protocol (read/write payload
//! throughput and p50/p99 latencies), so the performance trajectory of
//! future changes can be diffed mechanically.

use hts_baselines::fig1::run_fig1;
use hts_bench::report::{json_f64, latency_object, write_report};
use hts_bench::{run_ring_detailed, Params};
use hts_sim::Nanos;

fn main() {
    println!("# Figure 1 — quorum (A) vs local-read (B), round model, 3 servers");
    println!();
    println!("| algorithm | isolated latency (rounds) | steady-state throughput (reads/round) |");
    println!("|---|---|---|");

    // Isolated latency: one client, one op.
    let (_, lat_a) = run_fig1(true, 3, 1, 12);
    let (_, lat_b) = run_fig1(false, 3, 1, 12);

    // Saturated throughput: 4 clients/server keep the pipeline full.
    let rounds = 1000;
    let (done_a, _) = run_fig1(true, 3, 4, rounds);
    let (done_b, _) = run_fig1(false, 3, 4, rounds);

    let tput_a = done_a as f64 / rounds as f64;
    let tput_b = done_b as f64 / rounds as f64;
    println!("| A (majority quorum) | {lat_a:.0} | {tput_a:.2} |");
    println!("| B (local read)      | {lat_b:.0} | {tput_b:.2} |");
    println!();
    println!("paper: A and B share the 4-round latency; A sustains 1 read/round, B sustains 3.");

    // Packet-model baseline of the real ring: the reference numbers the
    // perf trajectory diffs against.
    let params = Params {
        n: 4,
        readers_per_server: 2,
        writers_per_server: 1,
        value_size: 64 * 1024,
        warmup: Nanos::from_millis(300),
        measure: Nanos::from_secs(1),
        ..Params::default()
    };
    let (m, mut read_lat, mut write_lat) = run_ring_detailed(&params);
    println!();
    println!(
        "ring baseline (packet model, n={}, 64 KiB): reads {:.1} Mbit/s, writes {:.1} Mbit/s",
        params.n, m.read_mbps, m.write_mbps
    );

    let body = format!(
        r#"{{
  "figure": "fig1",
  "round_model": {{
    "servers": 3,
    "algorithm_a": {{"latency_rounds": {}, "throughput_reads_per_round": {}}},
    "algorithm_b": {{"latency_rounds": {}, "throughput_reads_per_round": {}}}
  }},
  "ring_packet_model": {{
    "n": {},
    "value_size_bytes": {},
    "readers_per_server": {},
    "writers_per_server": {},
    "measure_seconds": {},
    "read_throughput_mbps": {},
    "write_throughput_mbps": {},
    "reads_completed": {},
    "writes_completed": {},
    "read_latency": {},
    "write_latency": {}
  }}
}}
"#,
        json_f64(lat_a),
        json_f64(tput_a),
        json_f64(lat_b),
        json_f64(tput_b),
        params.n,
        params.value_size,
        params.readers_per_server,
        params.writers_per_server,
        json_f64(params.measure.as_secs_f64()),
        json_f64(m.read_mbps),
        json_f64(m.write_mbps),
        m.reads,
        m.writes,
        latency_object(&mut read_lat),
        latency_object(&mut write_lat),
    );
    match write_report("fig1", &body) {
        Ok(path) => println!("wrote {}", path.display()),
        Err(e) => eprintln!("could not write BENCH_fig1.json: {e}"),
    }
}
