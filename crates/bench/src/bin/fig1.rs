//! Reproduces **Figure 1**: the motivating throughput comparison between a
//! quorum-based read protocol (Algorithm A) and a local-read protocol
//! (Algorithm B) in the paper's synchronous round model. Both are tuned to
//! the same isolated latency (4 rounds); their steady-state throughputs
//! differ threefold.

use hts_baselines::fig1::run_fig1;

fn main() {
    println!("# Figure 1 — quorum (A) vs local-read (B), round model, 3 servers");
    println!();
    println!("| algorithm | isolated latency (rounds) | steady-state throughput (reads/round) |");
    println!("|---|---|---|");

    // Isolated latency: one client, one op.
    let (_, lat_a) = run_fig1(true, 3, 1, 12);
    let (_, lat_b) = run_fig1(false, 3, 1, 12);

    // Saturated throughput: 4 clients/server keep the pipeline full.
    let rounds = 1000;
    let (done_a, _) = run_fig1(true, 3, 4, rounds);
    let (done_b, _) = run_fig1(false, 3, 4, rounds);

    println!(
        "| A (majority quorum) | {lat_a:.0} | {:.2} |",
        done_a as f64 / rounds as f64
    );
    println!(
        "| B (local read)      | {lat_b:.0} | {:.2} |",
        done_b as f64 / rounds as f64
    );
    println!();
    println!(
        "paper: A and B share the 4-round latency; A sustains 1 read/round, B sustains 3."
    );
}
