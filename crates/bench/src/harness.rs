//! Cluster builders and measurement windows.

use std::cell::RefCell;
use std::fmt;
use std::rc::Rc;

use hts_baselines::abd::{AbdClient, AbdServer};
use hts_baselines::chain::{ChainClient, ChainServer};
use hts_baselines::tob::{TobClient, TobServer};
use hts_core::{ClientStats, Config, OpMix, SimClient, SimServer, WorkloadConfig};
use hts_sim::packet::{NetworkConfig, PacketSim};
use hts_sim::{DiskConfig, Nanos, Wire};
use hts_types::{ClientId, NodeId, ObjectId, ServerId};

/// Which protocol a run exercises.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Protocol {
    /// The paper's ring algorithm.
    Ring,
    /// Majority-quorum ABD.
    Abd,
    /// Chain replication.
    Chain,
    /// Total-order-broadcast register.
    Tob,
}

impl fmt::Display for Protocol {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Protocol::Ring => "ring",
            Protocol::Abd => "abd",
            Protocol::Chain => "chain",
            Protocol::Tob => "tob",
        })
    }
}

/// One throughput experiment's parameters.
#[derive(Debug, Clone)]
pub struct Params {
    /// Ring size.
    pub n: u16,
    /// Closed-loop read-only clients per server.
    pub readers_per_server: u32,
    /// Closed-loop write-only clients per server.
    pub writers_per_server: u32,
    /// Payload bytes per value (the paper's requests; 64 KiB default).
    pub value_size: usize,
    /// Single network for clients and servers (Figure 3's bottom chart)
    /// instead of the dual-network cluster.
    pub shared_network: bool,
    /// Virtual warm-up excluded from measurement.
    pub warmup: Nanos,
    /// Virtual measurement window.
    pub measure: Nanos,
    /// Determinism seed.
    pub seed: u64,
    /// Give every client its own register object (`ObjectId(client)`)
    /// instead of the shared single register — the multi-object workload
    /// that spreads load across parallel ring lanes
    /// ([`Config::lanes`](hts_core::Config)). Ring only.
    pub distinct_objects: bool,
    /// Pipeline window per workload client (default 1 = the paper's
    /// closed-loop clients). Larger windows multiplex that many
    /// concurrent operations over each client's channel — open-loop load
    /// without adding clients (threads, in a real deployment). Ring only;
    /// the preloader always runs at window 1.
    pub client_window: usize,
    /// Protocol options (ring only). `config.lanes > 1` gives every
    /// server that many independent ring NICs (the simulated analogue of
    /// the TCP runtime's per-lane connections); requires a dual-network
    /// cluster (`shared_network: false`).
    pub config: Config,
}

impl Default for Params {
    fn default() -> Self {
        Params {
            n: 4,
            readers_per_server: 2,
            writers_per_server: 0,
            value_size: 64 * 1024,
            shared_network: false,
            warmup: Nanos::from_millis(400),
            measure: Nanos::from_secs(2),
            seed: 7,
            distinct_objects: false,
            client_window: 1,
            config: Config::default(),
        }
    }
}

/// The outcome of one windowed run.
#[derive(Debug, Clone, Default)]
pub struct Measurement {
    /// Ring size.
    pub n: u16,
    /// Aggregate read payload throughput (Mbit/s).
    pub read_mbps: f64,
    /// Aggregate write payload throughput (Mbit/s).
    pub write_mbps: f64,
    /// Mean read latency (ms) within the window.
    pub read_latency_ms: f64,
    /// Mean write latency (ms) within the window.
    pub write_latency_ms: f64,
    /// Reads completed in the window.
    pub reads: u64,
    /// Writes completed in the window.
    pub writes: u64,
}

/// Snapshot of cumulative counters for window deltas.
#[derive(Clone, Default)]
struct Snap {
    writes_done: u64,
    reads_done: u64,
    write_bytes: u64,
    read_bytes: u64,
    write_lat_len: usize,
    read_lat_len: usize,
}

fn snap(stats: &[Rc<RefCell<ClientStats>>]) -> Vec<Snap> {
    stats
        .iter()
        .map(|s| {
            let s = s.borrow();
            Snap {
                writes_done: s.writes_done,
                reads_done: s.reads_done,
                write_bytes: s.write_payload_bytes,
                read_bytes: s.read_payload_bytes,
                write_lat_len: s.write_latencies.len(),
                read_lat_len: s.read_latencies.len(),
            }
        })
        .collect()
}

fn window_measurement(
    n: u16,
    stats: &[Rc<RefCell<ClientStats>>],
    start: &[Snap],
    window: Nanos,
) -> Measurement {
    let secs = window.as_secs_f64();
    let mut m = Measurement {
        n,
        ..Measurement::default()
    };
    let mut read_lat_sum = 0u128;
    let mut read_lat_n = 0u64;
    let mut write_lat_sum = 0u128;
    let mut write_lat_n = 0u64;
    for (s, s0) in stats.iter().zip(start) {
        let s = s.borrow();
        m.reads += s.reads_done - s0.reads_done;
        m.writes += s.writes_done - s0.writes_done;
        m.read_mbps += (s.read_payload_bytes - s0.read_bytes) as f64 * 8.0 / secs / 1e6;
        m.write_mbps += (s.write_payload_bytes - s0.write_bytes) as f64 * 8.0 / secs / 1e6;
        for &l in &s.read_latencies[s0.read_lat_len..] {
            read_lat_sum += u128::from(l);
            read_lat_n += 1;
        }
        for &l in &s.write_latencies[s0.write_lat_len..] {
            write_lat_sum += u128::from(l);
            write_lat_n += 1;
        }
    }
    if read_lat_n > 0 {
        m.read_latency_ms = read_lat_sum as f64 / read_lat_n as f64 / 1e6;
    }
    if write_lat_n > 0 {
        m.write_latency_ms = write_lat_sum as f64 / write_lat_n as f64 / 1e6;
    }
    m
}

fn run_window<M: Wire + fmt::Debug>(
    sim: &mut PacketSim<M>,
    stats: &[Rc<RefCell<ClientStats>>],
    n: u16,
    warmup: Nanos,
    measure: Nanos,
) -> Measurement {
    sim.run_until(warmup);
    let start = snap(stats);
    sim.run_until(warmup + measure);
    window_measurement(n, stats, &start, measure)
}

fn reader_workload(p: &Params) -> WorkloadConfig {
    WorkloadConfig {
        mix: OpMix::ReadOnly,
        value_size: p.value_size,
        op_limit: None,
        start_delay: Nanos::ZERO,
        timeout: Nanos::from_secs(30),
        window: p.client_window.max(1),
    }
}

fn writer_workload(p: &Params) -> WorkloadConfig {
    WorkloadConfig {
        mix: OpMix::WriteOnly,
        value_size: p.value_size,
        op_limit: None,
        start_delay: Nanos::ZERO,
        timeout: Nanos::from_secs(30),
        window: p.client_window.max(1),
    }
}

/// One value must exist before read-only load (the paper's read
/// experiments measure full-size replies): a single preloading writer.
fn preload_workload(p: &Params) -> WorkloadConfig {
    WorkloadConfig {
        mix: OpMix::WriteOnly,
        value_size: p.value_size,
        op_limit: Some(1),
        start_delay: Nanos::ZERO,
        timeout: Nanos::from_secs(30),
        window: 1,
    }
}

/// Client id reserved for the preloader (workload clients count up from 0).
const PRELOADER: ClientId = ClientId(u32::MAX);

/// Runs the paper's algorithm under `params` and returns the windowed
/// measurement. This is the engine behind Figure 3 (all four charts).
/// A persistent [`Config::durability`](hts_core::Config) attaches an
/// NVMe-class modeled disk to every server (durability ablations).
pub fn run_ring(params: &Params) -> Measurement {
    let (mut sim, stats) = build_ring(params);
    run_window(&mut sim, &stats, params.n, params.warmup, params.measure)
}

/// [`run_ring`] plus the raw per-operation latencies of the measurement
/// window, for percentile reporting.
pub fn run_ring_detailed(params: &Params) -> (Measurement, Vec<u64>, Vec<u64>) {
    let (mut sim, stats) = build_ring(params);
    sim.run_until(params.warmup);
    let start = snap(&stats);
    sim.run_until(params.warmup + params.measure);
    let measurement = window_measurement(params.n, &stats, &start, params.measure);
    let mut read_latencies = Vec::new();
    let mut write_latencies = Vec::new();
    for (s, s0) in stats.iter().zip(&start) {
        let s = s.borrow();
        read_latencies.extend_from_slice(&s.read_latencies[s0.read_lat_len..]);
        write_latencies.extend_from_slice(&s.write_latencies[s0.write_lat_len..]);
    }
    (measurement, read_latencies, write_latencies)
}

fn build_ring(params: &Params) -> (PacketSim<hts_types::Message>, Vec<Rc<RefCell<ClientStats>>>) {
    let mut sim = PacketSim::new(params.seed);
    let lanes = params.config.lanes.max(1);
    assert!(
        lanes == 1 || !params.shared_network,
        "the shared-network experiment supports a single lane only"
    );
    let ring_nets: Vec<_> = (0..lanes)
        .map(|_| sim.add_network(NetworkConfig::fast_ethernet()))
        .collect();
    let client_net = if params.shared_network {
        ring_nets[0]
    } else {
        sim.add_network(NetworkConfig::fast_ethernet())
    };
    for i in 0..params.n {
        let id = NodeId::Server(ServerId(i));
        let mut server = SimServer::with_ring_lanes(
            ServerId(i),
            params.n,
            params.config.clone(),
            ring_nets.clone(),
            client_net,
        );
        if params.config.durability.is_persistent() {
            server = server.with_disk(DiskConfig::nvme_ssd());
        }
        sim.add_node(id, Box::new(server));
        for ring_net in &ring_nets {
            sim.attach(id, *ring_net);
        }
        if !params.shared_network {
            sim.attach(id, client_net);
        }
    }
    // Each client's target object: the shared single register, or — for
    // the multi-object lane workloads — its own.
    let object_of = |client: ClientId| {
        if params.distinct_objects {
            ObjectId(client.0)
        } else {
            ObjectId::SINGLE
        }
    };
    let mut stats = Vec::new();
    let (pre, _pre_stats) = SimClient::new(
        PRELOADER,
        params.n,
        ServerId(0),
        preload_workload(params),
        client_net,
        None,
    );
    sim.add_node(NodeId::Client(PRELOADER), Box::new(pre));
    sim.attach(NodeId::Client(PRELOADER), client_net);
    let mut next_client = 0u32;
    for i in 0..params.n {
        for _ in 0..params.readers_per_server {
            let id = ClientId(next_client);
            next_client += 1;
            let (c, s) = SimClient::new_for_object(
                id,
                object_of(id),
                params.n,
                ServerId(i),
                reader_workload(params),
                client_net,
                None,
            );
            sim.add_node(NodeId::Client(id), Box::new(c));
            sim.attach(NodeId::Client(id), client_net);
            stats.push(s);
        }
        for _ in 0..params.writers_per_server {
            let id = ClientId(next_client);
            next_client += 1;
            let (c, s) = SimClient::new_for_object(
                id,
                object_of(id),
                params.n,
                ServerId(i),
                writer_workload(params),
                client_net,
                None,
            );
            sim.add_node(NodeId::Client(id), Box::new(c));
            sim.attach(NodeId::Client(id), client_net);
            stats.push(s);
        }
    }
    (sim, stats)
}

/// Isolated (unloaded) mean latencies for Figure 4: one reader and one
/// writer client taking turns being the only load.
pub fn latency_ring(n: u16, value_size: usize, seed: u64) -> (f64, f64) {
    let one = |writers: u32, readers: u32| -> Measurement {
        let params = Params {
            n,
            readers_per_server: 0,
            writers_per_server: 0,
            value_size,
            warmup: Nanos::from_millis(100),
            measure: Nanos::from_secs(2),
            seed,
            ..Params::default()
        };
        let mut sim = PacketSim::new(params.seed);
        let ring_net = sim.add_network(NetworkConfig::fast_ethernet());
        let client_net = sim.add_network(NetworkConfig::fast_ethernet());
        for i in 0..n {
            let id = NodeId::Server(ServerId(i));
            sim.add_node(
                id,
                Box::new(SimServer::new(
                    ServerId(i),
                    n,
                    params.config.clone(),
                    ring_net,
                    client_net,
                )),
            );
            sim.attach(id, ring_net);
            sim.attach(id, client_net);
        }
        let (pre, _pre_stats) = SimClient::new(
            PRELOADER,
            n,
            ServerId(0),
            preload_workload(&params),
            client_net,
            None,
        );
        sim.add_node(NodeId::Client(PRELOADER), Box::new(pre));
        sim.attach(NodeId::Client(PRELOADER), client_net);
        let mut stats = Vec::new();
        for c in 0..(readers + writers) {
            let id = ClientId(c);
            let workload = if c < readers {
                reader_workload(&params)
            } else {
                writer_workload(&params)
            };
            let (client, s) = SimClient::new(id, n, ServerId(0), workload, client_net, None);
            sim.add_node(NodeId::Client(id), Box::new(client));
            sim.attach(NodeId::Client(id), client_net);
            stats.push(s);
        }
        run_window(&mut sim, &stats, n, params.warmup, params.measure)
    };
    let reads = one(0, 1);
    let writes = one(1, 0);
    (reads.read_latency_ms, writes.write_latency_ms)
}

/// Runs the ABD baseline under `params` (single network: ABD has no
/// server-to-server traffic).
pub fn run_abd(params: &Params) -> Measurement {
    let mut sim = PacketSim::new(params.seed);
    let net = sim.add_network(NetworkConfig::fast_ethernet());
    for i in 0..params.n {
        let id = NodeId::Server(ServerId(i));
        sim.add_node(id, Box::new(AbdServer::new(net)));
        sim.attach(id, net);
    }
    let mut stats = Vec::new();
    let (pre, _pre_stats) =
        AbdClient::new(PRELOADER, params.n, preload_workload(params), net, None);
    sim.add_node(NodeId::Client(PRELOADER), Box::new(pre));
    sim.attach(NodeId::Client(PRELOADER), net);
    let total_clients =
        u32::from(params.n) * (params.readers_per_server + params.writers_per_server);
    for c in 0..total_clients {
        let readers = u32::from(params.n) * params.readers_per_server;
        let workload = if c < readers {
            reader_workload(params)
        } else {
            writer_workload(params)
        };
        let id = ClientId(c);
        let (client, s) = AbdClient::new(id, params.n, workload, net, None);
        sim.add_node(NodeId::Client(id), Box::new(client));
        sim.attach(NodeId::Client(id), net);
        stats.push(s);
    }
    run_window(&mut sim, &stats, params.n, params.warmup, params.measure)
}

/// Runs the chain-replication baseline under `params`.
pub fn run_chain(params: &Params) -> Measurement {
    let mut sim = PacketSim::new(params.seed);
    let server_net = sim.add_network(NetworkConfig::fast_ethernet());
    let client_net = if params.shared_network {
        server_net
    } else {
        sim.add_network(NetworkConfig::fast_ethernet())
    };
    for i in 0..params.n {
        let id = NodeId::Server(ServerId(i));
        sim.add_node(
            id,
            Box::new(ChainServer::new(
                ServerId(i),
                params.n,
                server_net,
                client_net,
            )),
        );
        sim.attach(id, server_net);
        if !params.shared_network {
            sim.attach(id, client_net);
        }
    }
    let mut stats = Vec::new();
    let (pre, _pre_stats) = ChainClient::new(
        PRELOADER,
        params.n,
        preload_workload(params),
        client_net,
        None,
    );
    sim.add_node(NodeId::Client(PRELOADER), Box::new(pre));
    sim.attach(NodeId::Client(PRELOADER), client_net);
    let readers = u32::from(params.n) * params.readers_per_server;
    let writers = u32::from(params.n) * params.writers_per_server;
    for c in 0..(readers + writers) {
        let workload = if c < readers {
            reader_workload(params)
        } else {
            writer_workload(params)
        };
        let id = ClientId(c);
        let (client, s) = ChainClient::new(id, params.n, workload, client_net, None);
        sim.add_node(NodeId::Client(id), Box::new(client));
        sim.attach(NodeId::Client(id), client_net);
        stats.push(s);
    }
    run_window(&mut sim, &stats, params.n, params.warmup, params.measure)
}

/// Runs the total-order-broadcast baseline under `params`.
pub fn run_tob(params: &Params) -> Measurement {
    let mut sim = PacketSim::new(params.seed);
    let ring_net = sim.add_network(NetworkConfig::fast_ethernet());
    let client_net = if params.shared_network {
        ring_net
    } else {
        sim.add_network(NetworkConfig::fast_ethernet())
    };
    for i in 0..params.n {
        let id = NodeId::Server(ServerId(i));
        sim.add_node(
            id,
            Box::new(TobServer::new(ServerId(i), params.n, ring_net, client_net)),
        );
        sim.attach(id, ring_net);
        if !params.shared_network {
            sim.attach(id, client_net);
        }
    }
    let mut stats = Vec::new();
    let (pre, _pre_stats) = TobClient::new(
        PRELOADER,
        ServerId(0),
        preload_workload(params),
        client_net,
        None,
    );
    sim.add_node(NodeId::Client(PRELOADER), Box::new(pre));
    sim.attach(NodeId::Client(PRELOADER), client_net);
    let mut next = 0u32;
    for i in 0..params.n {
        for k in 0..(params.readers_per_server + params.writers_per_server) {
            let workload = if k < params.readers_per_server {
                reader_workload(params)
            } else {
                writer_workload(params)
            };
            let id = ClientId(next);
            next += 1;
            let (client, s) = TobClient::new(id, ServerId(i), workload, client_net, None);
            sim.add_node(NodeId::Client(id), Box::new(client));
            sim.attach(NodeId::Client(id), client_net);
            stats.push(s);
        }
    }
    run_window(&mut sim, &stats, params.n, params.warmup, params.measure)
}

/// Renders a markdown-style table row.
pub fn row(cells: &[String]) -> String {
    format!("| {} |", cells.join(" | "))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick(n: u16, readers: u32, writers: u32) -> Params {
        Params {
            n,
            readers_per_server: readers,
            writers_per_server: writers,
            value_size: 16 * 1024,
            warmup: Nanos::from_millis(100),
            measure: Nanos::from_millis(400),
            ..Params::default()
        }
    }

    #[test]
    fn ring_read_throughput_scales_linearly() {
        let m3 = run_ring(&quick(3, 2, 0));
        let m6 = run_ring(&quick(6, 2, 0));
        assert!(m3.read_mbps > 200.0, "3 servers: {:.0}", m3.read_mbps);
        let ratio = m6.read_mbps / m3.read_mbps;
        assert!(
            (1.7..=2.3).contains(&ratio),
            "doubling servers should double reads: {ratio:.2}"
        );
    }

    #[test]
    fn ring_write_throughput_is_flat() {
        let m3 = run_ring(&quick(3, 0, 3));
        let m6 = run_ring(&quick(6, 0, 3));
        let ratio = m6.write_mbps / m3.write_mbps;
        assert!(
            (0.8..=1.2).contains(&ratio),
            "write throughput should not scale: {:.1} vs {:.1}",
            m3.write_mbps,
            m6.write_mbps
        );
    }

    #[test]
    fn abd_read_throughput_does_not_scale() {
        let m3 = run_abd(&quick(3, 2, 0));
        let m6 = run_abd(&quick(6, 2, 0));
        let ratio = m6.read_mbps / m3.read_mbps;
        assert!(
            ratio < 1.5,
            "quorum reads must not scale linearly: {ratio:.2}"
        );
    }

    #[test]
    fn chain_reads_are_tail_bound() {
        let m3 = run_chain(&quick(3, 2, 0));
        let m6 = run_chain(&quick(6, 2, 0));
        let ratio = m6.read_mbps / m3.read_mbps;
        assert!(ratio < 1.3, "tail-bound reads: {ratio:.2}");
    }

    #[test]
    fn latency_shapes_match_figure_4() {
        let (r3, w3) = latency_ring(3, 16 * 1024, 5);
        let (r6, w6) = latency_ring(6, 16 * 1024, 5);
        // Reads flat, writes linear in n.
        assert!((r6 / r3) < 1.3, "read latency grows: {r3:.2} -> {r6:.2}");
        assert!(
            (1.5..=2.6).contains(&(w6 / w3)),
            "write latency should ≈ double: {w3:.2} -> {w6:.2}"
        );
    }
}
