//! Benchmark harness regenerating every table and figure of the paper.
//!
//! Each binary in `src/bin/` prints the rows/series of one paper artifact
//! (see DESIGN.md §5 for the experiment index); the [`harness`] module
//! holds the shared machinery: simulated cluster builders for the ring
//! protocol and every baseline, warm-up/measure windowing, and throughput
//! (Mbit/s of client payload, as the paper reports) and latency
//! extraction.
//!
//! Quick orientation:
//!
//! | binary | paper artifact |
//! |---|---|
//! | `fig1` | Figure 1 — quorum vs local-read throughput (round model) |
//! | `fig3` | Figure 3 — all four throughput charts |
//! | `fig4` | Figure 4 — read/write latency vs servers |
//! | `analytical` | §4 — round-model latency & throughput claims |
//! | `compare_baselines` | ring vs ABD vs chain vs TOB |
//! | `ablations` | A1 piggyback, A2 fast-path reads, A3 fairness |
//! | `recovery` | throughput timeline across server crashes |
//!
//! Reduced-size versions of the same runs are registered as Criterion
//! benches (`cargo bench`).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod harness;
pub mod report;
pub mod tcp;

pub use harness::{
    latency_ring, run_abd, run_chain, run_ring, run_ring_detailed, run_tob, Measurement, Params,
    Protocol,
};
pub use report::{
    histogram_latency_object, json_f64, json_string, json_string_array, latency_object,
    percentile_ms, write_report,
};
pub use tcp::{run_tcp, TcpMeasurement, TcpParams};
