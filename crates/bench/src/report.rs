//! Machine-readable benchmark artifacts (`BENCH_<name>.json`).
//!
//! Every figure binary prints a human table to stdout **and** drops a
//! JSON file next to the working directory, so successive PRs can diff
//! performance numbers mechanically. The build environment is offline
//! (no serde_json), so emission is a few formatting helpers — the
//! schemas are flat on purpose.

use std::io;
use std::path::PathBuf;

use hts_metrics::HistogramSnapshot;

/// Formats an `f64` for JSON: finite numbers with enough precision to
/// diff, non-finite as `null`.
pub fn json_f64(x: f64) -> String {
    if x.is_finite() {
        format!("{x:.6}")
    } else {
        "null".to_string()
    }
}

/// A JSON string literal with the characters that matter escaped.
pub fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// A JSON array of string literals.
pub fn json_string_array(items: &[String]) -> String {
    let rendered: Vec<String> = items.iter().map(|s| json_string(s)).collect();
    format!("[{}]", rendered.join(", "))
}

/// The `p`-th percentile (0–100) of a latency sample in nanoseconds,
/// returned in milliseconds. Sorts in place; `NaN` for an empty sample.
pub fn percentile_ms(latencies: &mut [u64], p: f64) -> f64 {
    if latencies.is_empty() {
        return f64::NAN;
    }
    latencies.sort_unstable();
    let rank = ((p / 100.0) * (latencies.len() - 1) as f64).round() as usize;
    latencies[rank.min(latencies.len() - 1)] as f64 / 1e6
}

/// A JSON object for one latency sample: count, mean, p50, p99 (ms).
pub fn latency_object(latencies: &mut [u64]) -> String {
    let count = latencies.len();
    let mean = if count == 0 {
        f64::NAN
    } else {
        latencies.iter().map(|&l| l as f64).sum::<f64>() / count as f64 / 1e6
    };
    format!(
        r#"{{"count": {count}, "mean_ms": {}, "p50_ms": {}, "p99_ms": {}}}"#,
        json_f64(mean),
        json_f64(percentile_ms(latencies, 50.0)),
        json_f64(percentile_ms(latencies, 99.0)),
    )
}

/// A JSON object for a latency histogram snapshot of nanosecond samples
/// (e.g. a server-side `hts_sim_server_write_nanos` window): count, mean,
/// p50, p99, p99.9 in ms. Quantiles render `null` when the snapshot is
/// empty — including every metrics-off build, where snapshots have no
/// samples by construction.
pub fn histogram_latency_object(snap: &HistogramSnapshot) -> String {
    let to_ms = |v: Option<u64>| json_f64(v.map_or(f64::NAN, |n| n as f64 / 1e6));
    format!(
        r#"{{"count": {}, "mean_ms": {}, "p50_ms": {}, "p99_ms": {}, "p999_ms": {}}}"#,
        snap.count(),
        json_f64(snap.mean().map_or(f64::NAN, |m| m / 1e6)),
        to_ms(snap.p50()),
        to_ms(snap.p99()),
        to_ms(snap.p999()),
    )
}

/// Writes `BENCH_<name>.json` into the current directory and returns the
/// path.
///
/// # Errors
///
/// Propagates the file-write failure.
pub fn write_report(name: &str, body: &str) -> io::Result<PathBuf> {
    let path = PathBuf::from(format!("BENCH_{name}.json"));
    std::fs::write(&path, body)?;
    Ok(path)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentiles_pick_expected_ranks() {
        let mut sample: Vec<u64> = (1..=100).map(|i| i * 1_000_000).collect();
        assert!((percentile_ms(&mut sample, 50.0) - 50.0).abs() <= 1.0);
        assert!((percentile_ms(&mut sample, 99.0) - 99.0).abs() <= 1.0);
        assert!(percentile_ms(&mut [], 50.0).is_nan());
    }

    #[test]
    fn strings_escape_cleanly() {
        assert_eq!(json_string("a\"b\\c\nd"), r#""a\"b\\c\nd""#);
        assert_eq!(
            json_string_array(&["x".to_string(), "y".to_string()]),
            r#"["x", "y"]"#
        );
        assert_eq!(json_string_array(&[]), "[]");
    }

    #[test]
    fn histogram_latency_object_renders_quantiles_or_null() {
        let h = hts_metrics::Histogram::new();
        for _ in 0..100 {
            h.record(2_000_000); // 2 ms
        }
        let obj = histogram_latency_object(&h.snapshot());
        assert!(obj.starts_with('{') && obj.ends_with('}'));
        assert!(obj.contains("\"p999_ms\""));
        if cfg!(feature = "metrics") {
            assert!(obj.contains("\"count\": 100"));
        }
        // Empty snapshots (and every metrics-off build) render null.
        let empty = histogram_latency_object(&HistogramSnapshot::empty());
        assert!(empty.contains("\"count\": 0"));
        assert!(empty.contains("null"));
    }

    #[test]
    fn latency_object_is_valid_flat_json() {
        let mut sample = vec![1_000_000, 2_000_000, 3_000_000];
        let obj = latency_object(&mut sample);
        assert!(obj.starts_with('{') && obj.ends_with('}'));
        assert!(obj.contains("\"p99_ms\""));
        // Empty samples render null, not NaN (NaN is invalid JSON).
        assert!(latency_object(&mut []).contains("null"));
    }
}
