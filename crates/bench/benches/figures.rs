//! Criterion wrappers around reduced-size versions of every figure run.
//!
//! `cargo bench` measures the wall-clock cost of regenerating each paper
//! artifact on the deterministic simulator (the artifacts themselves are
//! printed by the `hts-bench` binaries — see README). Windows are shrunk
//! so the whole suite completes in minutes; the simulated *shapes* are
//! asserted in `hts-bench`'s unit tests instead.

use criterion::{criterion_group, criterion_main, Criterion};
use hts_baselines::fig1::run_fig1;
use hts_bench::{latency_ring, run_abd, run_chain, run_ring, run_tob, Params};
use hts_core::{Config, FairnessMode};
use hts_sim::Nanos;
use std::hint::black_box;

fn quick(n: u16, readers: u32, writers: u32) -> Params {
    Params {
        n,
        readers_per_server: readers,
        writers_per_server: writers,
        value_size: 16 * 1024,
        warmup: Nanos::from_millis(100),
        measure: Nanos::from_millis(300),
        ..Params::default()
    }
}

fn bench_fig1(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig1");
    g.sample_size(20);
    g.bench_function("algorithm_a_quorum", |b| {
        b.iter(|| black_box(run_fig1(true, 3, 4, 300)))
    });
    g.bench_function("algorithm_b_local", |b| {
        b.iter(|| black_box(run_fig1(false, 3, 4, 300)))
    });
    g.finish();
}

fn bench_fig3(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig3");
    g.sample_size(10);
    g.bench_function("chart1_reads_n4", |b| {
        b.iter(|| black_box(run_ring(&quick(4, 2, 0))))
    });
    g.bench_function("chart2_writes_n4", |b| {
        b.iter(|| black_box(run_ring(&quick(4, 0, 4))))
    });
    g.bench_function("chart3_contention_n4", |b| {
        b.iter(|| black_box(run_ring(&quick(4, 2, 4))))
    });
    g.bench_function("chart4_shared_net_n4", |b| {
        b.iter(|| {
            black_box(run_ring(&Params {
                shared_network: true,
                ..quick(4, 2, 4)
            }))
        })
    });
    g.finish();
}

fn bench_fig4(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig4");
    g.sample_size(10);
    g.bench_function("latency_n4", |b| {
        b.iter(|| black_box(latency_ring(4, 16 * 1024, 3)))
    });
    g.finish();
}

fn bench_baselines(c: &mut Criterion) {
    let mut g = c.benchmark_group("compare_baselines");
    g.sample_size(10);
    g.bench_function("abd_reads_n4", |b| {
        b.iter(|| black_box(run_abd(&quick(4, 2, 0))))
    });
    g.bench_function("chain_reads_n4", |b| {
        b.iter(|| black_box(run_chain(&quick(4, 2, 0))))
    });
    g.bench_function("tob_reads_n4", |b| {
        b.iter(|| black_box(run_tob(&quick(4, 2, 0))))
    });
    g.finish();
}

fn bench_ablations(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablations");
    g.sample_size(10);
    g.bench_function("a1_value_carrying_writes", |b| {
        b.iter(|| {
            black_box(run_ring(&Params {
                config: Config {
                    write_carries_value: true,
                    ..Config::default()
                },
                ..quick(4, 0, 4)
            }))
        })
    });
    g.bench_function("a2_fast_path_reads", |b| {
        b.iter(|| {
            black_box(run_ring(&Params {
                config: Config {
                    read_fast_path: true,
                    ..Config::default()
                },
                ..quick(4, 2, 2)
            }))
        })
    });
    g.bench_function("a3_forward_first", |b| {
        b.iter(|| {
            black_box(run_ring(&Params {
                config: Config {
                    fairness: FairnessMode::ForwardFirst,
                    ..Config::default()
                },
                ..quick(4, 0, 4)
            }))
        })
    });
    g.finish();
}

criterion_group!(
    figures,
    bench_fig1,
    bench_fig3,
    bench_fig4,
    bench_baselines,
    bench_ablations
);
criterion_main!(figures);
