//! The two toy read protocols of the paper's Figure 1, in the round model.
//!
//! Three servers serve read requests. **Algorithm A** is majority-based:
//! the contacted server must consult one other server (2-of-3 quorum)
//! before replying; under full load the three servers complete **1 read
//! per round** in aggregate. **Algorithm B** answers locally; to make the
//! comparison about *throughput*, it artificially delays its reply so both
//! algorithms have the same isolated **latency of 4 rounds** — yet B
//! completes **3 reads per round** under load. `hts-bench --bin fig1`
//! reproduces the figure's two claims from these processes.

use std::cell::RefCell;
use std::collections::VecDeque;
use std::rc::Rc;

use hts_sim::packet::NetworkId;
use hts_sim::round::{RoundCtx, RoundProcess};
use hts_types::{ClientId, NodeId, RequestId, ServerId};

/// Messages of both Figure-1 protocols.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Fig1Msg {
    /// Client → server: a read request.
    Request {
        /// Correlation id.
        request: RequestId,
    },
    /// Server → quorum partner: consult (Algorithm A only).
    Consult {
        /// Correlation id.
        request: RequestId,
        /// The client waiting for the final reply.
        client: ClientId,
    },
    /// Partner → server: consultation answer (Algorithm A only).
    ConsultReply {
        /// Correlation id.
        request: RequestId,
        /// The client waiting for the final reply.
        client: ClientId,
    },
    /// Server → client: the read's answer.
    Reply {
        /// Correlation id.
        request: RequestId,
    },
}

/// An Algorithm-A (quorum) server: every read costs a consult round trip
/// with the next server in the ring.
pub struct QuorumServer {
    me: ServerId,
    n: u16,
    net: NetworkId,
    outbox: VecDeque<(NodeId, Fig1Msg)>,
}

impl QuorumServer {
    /// Creates quorum server `me` of `n` on `net`.
    pub fn new(me: ServerId, n: u16, net: NetworkId) -> Self {
        QuorumServer {
            me,
            n,
            net,
            outbox: VecDeque::new(),
        }
    }

    fn partner(&self) -> NodeId {
        NodeId::Server(ServerId((self.me.0 + 1) % self.n))
    }
}

impl RoundProcess<Fig1Msg> for QuorumServer {
    fn on_round(&mut self, ctx: &mut RoundCtx<'_, Fig1Msg>, _round: u64) {
        if let Some((from, msg)) = ctx.take_incoming(self.net) {
            match msg {
                Fig1Msg::Request { request } => {
                    if let Some(client) = from.as_client() {
                        self.outbox
                            .push_back((self.partner(), Fig1Msg::Consult { request, client }));
                    }
                }
                Fig1Msg::Consult { request, client } => {
                    self.outbox
                        .push_back((from, Fig1Msg::ConsultReply { request, client }));
                }
                Fig1Msg::ConsultReply { request, client } => {
                    self.outbox
                        .push_back((NodeId::Client(client), Fig1Msg::Reply { request }));
                }
                Fig1Msg::Reply { .. } => {}
            }
        }
        if let Some((to, msg)) = self.outbox.pop_front() {
            ctx.send(self.net, &[to], msg);
        }
    }
}

/// An Algorithm-B (local-read) server: replies from local state, with an
/// artificial 2-round delay so its isolated latency matches Algorithm A's
/// 4 rounds (as drawn in the paper's figure).
pub struct LocalServer {
    net: NetworkId,
    /// Matched delay in rounds before a reply may leave (2 = Fig. 1).
    delay: u64,
    outbox: VecDeque<(u64, NodeId, Fig1Msg)>, // (ready_round, to, msg)
}

impl LocalServer {
    /// Creates a local-read server with the figure's 2-round delay.
    pub fn new(net: NetworkId) -> Self {
        LocalServer {
            net,
            delay: 2,
            outbox: VecDeque::new(),
        }
    }

    /// Creates a local-read server replying immediately (latency 2).
    pub fn without_delay(net: NetworkId) -> Self {
        LocalServer {
            net,
            delay: 0,
            outbox: VecDeque::new(),
        }
    }
}

impl RoundProcess<Fig1Msg> for LocalServer {
    fn on_round(&mut self, ctx: &mut RoundCtx<'_, Fig1Msg>, round: u64) {
        if let Some((from, Fig1Msg::Request { request })) = ctx.take_incoming(self.net) {
            self.outbox
                .push_back((round + self.delay, from, Fig1Msg::Reply { request }));
        }
        if let Some((ready, _, _)) = self.outbox.front() {
            if *ready <= round {
                let (_, to, msg) = self.outbox.pop_front().expect("non-empty");
                ctx.send(self.net, &[to], msg);
            }
        }
    }
}

/// Shared counters of a Figure-1 client.
#[derive(Debug, Clone, Default)]
pub struct Fig1Stats {
    /// Completed reads.
    pub completed: u64,
    /// Latency of each read in rounds.
    pub latencies: Vec<u64>,
}

/// A closed-loop Figure-1 read client.
pub struct Fig1Client {
    id: ClientId,
    server: ServerId,
    net: NetworkId,
    next_request: u64,
    issue_round: u64,
    busy: bool,
    limit: Option<u64>,
    stats: Rc<RefCell<Fig1Stats>>,
}

impl Fig1Client {
    /// Creates a client of `server`, issuing up to `limit` reads.
    pub fn new(
        id: ClientId,
        server: ServerId,
        limit: Option<u64>,
        net: NetworkId,
    ) -> (Self, Rc<RefCell<Fig1Stats>>) {
        let stats = Rc::new(RefCell::new(Fig1Stats::default()));
        (
            Fig1Client {
                id,
                server,
                net,
                next_request: 0,
                issue_round: 0,
                busy: false,
                limit,
                stats: Rc::clone(&stats),
            },
            stats,
        )
    }
}

impl RoundProcess<Fig1Msg> for Fig1Client {
    fn on_round(&mut self, ctx: &mut RoundCtx<'_, Fig1Msg>, round: u64) {
        if let Some((_, Fig1Msg::Reply { request })) = ctx.take_incoming(self.net) {
            if self.busy && request == RequestId(self.next_request) {
                self.busy = false;
                let mut stats = self.stats.borrow_mut();
                stats.completed += 1;
                stats.latencies.push(round - self.issue_round);
            }
        }
        let completed = self.stats.borrow().completed;
        if self.busy || self.limit.is_some_and(|l| completed >= l) {
            return;
        }
        self.next_request += 1;
        self.busy = true;
        self.issue_round = round;
        let _ = self.id;
        ctx.send(
            self.net,
            &[NodeId::Server(self.server)],
            Fig1Msg::Request {
                request: RequestId(self.next_request),
            },
        );
    }
}

/// Runs one Figure-1 configuration: `n` servers of the given algorithm,
/// `clients_per_server` closed-loop readers, for `rounds` rounds. Returns
/// `(total completed, mean latency in rounds)`.
pub fn run_fig1(quorum: bool, n: u16, clients_per_server: u32, rounds: u64) -> (u64, f64) {
    use hts_sim::round::RoundSim;

    let mut sim: RoundSim<Fig1Msg> = RoundSim::new();
    let net = sim.add_network();
    for i in 0..n {
        let id = NodeId::Server(ServerId(i));
        let proc: Box<dyn RoundProcess<Fig1Msg>> = if quorum {
            Box::new(QuorumServer::new(ServerId(i), n, net))
        } else {
            Box::new(LocalServer::new(net))
        };
        sim.add_node(id, proc);
        sim.attach(id, net);
    }
    let mut stats = Vec::new();
    for c in 0..(u32::from(n) * clients_per_server) {
        let id = NodeId::Client(ClientId(c));
        let (client, s) =
            Fig1Client::new(ClientId(c), ServerId((c % u32::from(n)) as u16), None, net);
        sim.add_node(id, Box::new(client));
        sim.attach(id, net);
        stats.push(s);
    }
    sim.run_rounds(rounds);
    let mut completed = 0;
    let mut latency_sum = 0u64;
    let mut latency_n = 0u64;
    for s in &stats {
        let s = s.borrow();
        completed += s.completed;
        latency_sum += s.latencies.iter().sum::<u64>();
        latency_n += s.latencies.len() as u64;
    }
    let mean_latency = if latency_n == 0 {
        0.0
    } else {
        latency_sum as f64 / latency_n as f64
    };
    (completed, mean_latency)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn isolated_latencies_match_figure_1() {
        // One client, one op: A takes 4 rounds, B (delayed) takes 4 too.
        let (a_done, a_lat) = {
            use hts_sim::round::RoundSim;
            let mut sim: RoundSim<Fig1Msg> = RoundSim::new();
            let net = sim.add_network();
            for i in 0..3u16 {
                let id = NodeId::Server(ServerId(i));
                sim.add_node(id, Box::new(QuorumServer::new(ServerId(i), 3, net)));
                sim.attach(id, net);
            }
            let cid = NodeId::Client(ClientId(0));
            let (client, stats) = Fig1Client::new(ClientId(0), ServerId(0), Some(1), net);
            sim.add_node(cid, Box::new(client));
            sim.attach(cid, net);
            sim.run_rounds(12);
            let s = stats.borrow();
            (s.completed, s.latencies[0])
        };
        assert_eq!((a_done, a_lat), (1, 4));

        let (b_done, b_lat) = {
            use hts_sim::round::RoundSim;
            let mut sim: RoundSim<Fig1Msg> = RoundSim::new();
            let net = sim.add_network();
            for i in 0..3u16 {
                let id = NodeId::Server(ServerId(i));
                sim.add_node(id, Box::new(LocalServer::new(net)));
                sim.attach(id, net);
            }
            let cid = NodeId::Client(ClientId(0));
            let (client, stats) = Fig1Client::new(ClientId(0), ServerId(0), Some(1), net);
            sim.add_node(cid, Box::new(client));
            sim.attach(cid, net);
            sim.run_rounds(12);
            let s = stats.borrow();
            (s.completed, s.latencies[0])
        };
        assert_eq!((b_done, b_lat), (1, 4), "B is latency-matched to A");
    }

    #[test]
    fn throughput_gap_is_threefold() {
        // Four clients per server keep the 4-round pipeline full.
        let rounds = 200;
        let (a, _) = run_fig1(true, 3, 4, rounds);
        let (b, _) = run_fig1(false, 3, 4, rounds);
        let a_rate = a as f64 / rounds as f64;
        let b_rate = b as f64 / rounds as f64;
        assert!(
            (0.8..=1.1).contains(&a_rate),
            "algorithm A ≈ 1 op/round, got {a_rate}"
        );
        assert!(
            (2.5..=3.1).contains(&b_rate),
            "algorithm B ≈ 3 ops/round, got {b_rate}"
        );
    }
}
