//! The majority-quorum atomic register (ABD / Lynch–Shvartsman).
//!
//! Multi-writer multi-reader variant:
//!
//! * **write(v)** — phase 1: query a majority for their highest tag;
//!   phase 2: send `⟨update, (max_ts+1, writer), v⟩` to all, wait for a
//!   majority of acks.
//! * **read()** — phase 1: query a majority for `(tag, value)`; pick the
//!   maximum; phase 2: *write back* that pair to a majority (required for
//!   atomicity — without it the read-inversion anomaly appears), then
//!   return the value.
//!
//! Servers never talk to each other; all cost is client↔server fan-out.
//! Tolerates `⌈n/2⌉ − 1` server crashes. The throughput problem the paper
//! targets is visible in the message pattern: every read moves the value
//! over `⌈(n+1)/2⌉` server NICs (query responses) plus the write-back, so
//! adding servers does not add read capacity.

use std::cell::RefCell;
use std::rc::Rc;

use hts_core::{ClientStats, OpMix, WorkloadConfig};
use hts_lincheck::{History, OpId};
use hts_sim::packet::{Ctx, NetworkId, Process, TimerId};
use hts_sim::{Nanos, Wire};
use hts_types::{ClientId, NodeId, RequestId, ServerId, Tag, Value};

/// ABD wire messages.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AbdMsg {
    /// Client → server: report your `(tag, value)` (read phase 1).
    Query {
        /// Correlation id.
        request: RequestId,
    },
    /// Server → client: phase-1 response with the full pair.
    QueryResp {
        /// Correlation id.
        request: RequestId,
        /// Server's current tag.
        tag: Tag,
        /// Server's current value.
        value: Value,
    },
    /// Client → server: report your tag only (write phase 1).
    TagQuery {
        /// Correlation id.
        request: RequestId,
    },
    /// Server → client: phase-1 response for writes (no value).
    TagResp {
        /// Correlation id.
        request: RequestId,
        /// Server's current tag.
        tag: Tag,
    },
    /// Client → server: adopt `(tag, value)` if newer (phase 2 of both
    /// operations; for reads this is the write-back).
    Update {
        /// Correlation id.
        request: RequestId,
        /// Tag to adopt.
        tag: Tag,
        /// Value to adopt.
        value: Value,
    },
    /// Server → client: phase-2 ack.
    UpdateAck {
        /// Correlation id.
        request: RequestId,
    },
}

impl Wire for AbdMsg {
    fn wire_size(&self) -> usize {
        // Mirrors the hts codec cost model: 1 discriminant + 8 request +
        // (10 tag) + (4 + len value).
        match self {
            AbdMsg::Query { .. } | AbdMsg::TagQuery { .. } => 1 + 8,
            AbdMsg::TagResp { .. } => 1 + 8 + 10,
            AbdMsg::UpdateAck { .. } => 1 + 8,
            AbdMsg::QueryResp { value, .. } | AbdMsg::Update { value, .. } => {
                1 + 8 + 10 + 4 + value.len()
            }
        }
    }
}

/// An ABD server: a passive `(tag, value)` store.
pub struct AbdServer {
    tag: Tag,
    value: Value,
    client_net: NetworkId,
}

impl AbdServer {
    /// Creates a server answering on `client_net`.
    pub fn new(client_net: NetworkId) -> Self {
        AbdServer {
            tag: Tag::ZERO,
            value: Value::bottom(),
            client_net,
        }
    }

    /// Current stored pair (tests).
    pub fn stored(&self) -> (Tag, &Value) {
        (self.tag, &self.value)
    }
}

impl Process<AbdMsg> for AbdServer {
    fn on_message(&mut self, ctx: &mut Ctx<'_, AbdMsg>, from: NodeId, msg: AbdMsg) {
        let reply = match msg {
            AbdMsg::Query { request } => AbdMsg::QueryResp {
                request,
                tag: self.tag,
                value: self.value.clone(),
            },
            AbdMsg::TagQuery { request } => AbdMsg::TagResp {
                request,
                tag: self.tag,
            },
            AbdMsg::Update {
                request,
                tag,
                value,
            } => {
                if tag > self.tag {
                    self.tag = tag;
                    self.value = value;
                }
                AbdMsg::UpdateAck { request }
            }
            // Responses are client-bound; ignore if misrouted.
            _ => return,
        };
        ctx.send(self.client_net, from, reply);
    }
}

enum OpPhase {
    /// Write phase 1: collecting tags.
    WriteQuery { responses: Vec<Tag>, value: Value },
    /// Write phase 2: collecting update acks.
    WriteUpdate { acks: usize },
    /// Read phase 1: collecting (tag, value) pairs.
    ReadQuery { responses: Vec<(Tag, Value)> },
    /// Read phase 2 (write-back): collecting acks; `value` is returned.
    ReadBack { acks: usize, value: Value },
}

struct CurrentOp {
    request: RequestId,
    phase: OpPhase,
    issued: Nanos,
    op_id: Option<OpId>,
    is_read: bool,
}

/// A closed-loop ABD client (same workload semantics as
/// [`hts_core::SimClient`]).
pub struct AbdClient {
    id: ClientId,
    n: u16,
    client_net: NetworkId,
    workload: WorkloadConfig,
    stats: Rc<RefCell<ClientStats>>,
    history: Option<Rc<RefCell<History>>>,
    current: Option<CurrentOp>,
    next_request: u64,
    value_seq: u64,
    done: bool,
    kick: Option<TimerId>,
}

impl AbdClient {
    /// Creates a client of `n` ABD servers.
    pub fn new(
        id: ClientId,
        n: u16,
        workload: WorkloadConfig,
        client_net: NetworkId,
        history: Option<Rc<RefCell<History>>>,
    ) -> (Self, Rc<RefCell<ClientStats>>) {
        let stats = Rc::new(RefCell::new(ClientStats::default()));
        (
            AbdClient {
                id,
                n,
                client_net,
                workload,
                stats: Rc::clone(&stats),
                history,
                current: None,
                next_request: 0,
                value_seq: 0,
                done: false,
                kick: None,
            },
            stats,
        )
    }

    fn majority(&self) -> usize {
        usize::from(self.n) / 2 + 1
    }

    fn broadcast(&self, ctx: &mut Ctx<'_, AbdMsg>, msg: &AbdMsg) {
        for i in 0..self.n {
            ctx.send(self.client_net, NodeId::Server(ServerId(i)), msg.clone());
        }
    }

    fn issue_next(&mut self, ctx: &mut Ctx<'_, AbdMsg>) {
        if self.done || self.current.is_some() {
            return;
        }
        let total = {
            let s = self.stats.borrow();
            s.writes_done + s.reads_done
        };
        if let Some(limit) = self.workload.op_limit {
            if total >= limit {
                self.done = true;
                return;
            }
        }
        let read = match self.workload.mix {
            OpMix::ReadOnly => true,
            OpMix::WriteOnly => false,
            OpMix::Mixed { read_percent } => ctx.rand_below(100) < u64::from(read_percent),
        };
        self.next_request += 1;
        let request = RequestId(self.next_request);
        let now = ctx.now();
        if read {
            let op_id = self
                .history
                .as_ref()
                .map(|h| h.borrow_mut().invoke_read(self.id, now.as_nanos()));
            self.current = Some(CurrentOp {
                request,
                phase: OpPhase::ReadQuery {
                    responses: Vec::new(),
                },
                issued: now,
                op_id,
                is_read: true,
            });
            self.broadcast(ctx, &AbdMsg::Query { request });
        } else {
            self.value_seq += 1;
            let value = hts_core::unique_value(self.id, self.value_seq, self.workload.value_size);
            let op_id = self.history.as_ref().map(|h| {
                h.borrow_mut()
                    .invoke_write(self.id, value.clone(), now.as_nanos())
            });
            self.current = Some(CurrentOp {
                request,
                phase: OpPhase::WriteQuery {
                    responses: Vec::new(),
                    value,
                },
                issued: now,
                op_id,
                is_read: false,
            });
            self.broadcast(ctx, &AbdMsg::TagQuery { request });
        }
    }

    fn finish(&mut self, ctx: &mut Ctx<'_, AbdMsg>, read_value: Option<Value>) {
        let op = self.current.take().expect("finishing without op");
        let now = ctx.now();
        let latency = now.saturating_sub(op.issued);
        {
            let mut stats = self.stats.borrow_mut();
            if op.is_read {
                let v = read_value.as_ref().expect("read value");
                stats.reads_done += 1;
                stats.read_payload_bytes += v.len() as u64;
                stats.read_latency_total += latency;
                stats.read_latencies.push(latency.as_nanos());
            } else {
                stats.writes_done += 1;
                stats.write_payload_bytes += self.workload.value_size as u64;
                stats.write_latency_total += latency;
                stats.write_latencies.push(latency.as_nanos());
            }
        }
        if let (Some(h), Some(id)) = (&self.history, op.op_id) {
            let mut h = h.borrow_mut();
            match read_value {
                Some(v) => h.complete_read(id, v, now.as_nanos()),
                None => h.complete_write(id, now.as_nanos()),
            }
        }
        self.issue_next(ctx);
    }
}

impl Process<AbdMsg> for AbdClient {
    fn on_start(&mut self, ctx: &mut Ctx<'_, AbdMsg>) {
        if self.workload.start_delay == Nanos::ZERO {
            self.issue_next(ctx);
        } else {
            self.kick = Some(ctx.set_timer(self.workload.start_delay));
        }
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_, AbdMsg>, timer: TimerId) {
        if self.kick == Some(timer) {
            self.kick = None;
            self.issue_next(ctx);
        }
    }

    fn on_message(&mut self, ctx: &mut Ctx<'_, AbdMsg>, _from: NodeId, msg: AbdMsg) {
        let majority = self.majority();
        let Some(op) = self.current.as_mut() else {
            return;
        };
        match (msg, &mut op.phase) {
            (AbdMsg::TagResp { request, tag }, OpPhase::WriteQuery { responses, value })
                if request == op.request =>
            {
                responses.push(tag);
                if responses.len() == majority {
                    let max_ts = responses.iter().map(|t| t.ts).max().unwrap_or(0);
                    // Writer identity breaks ties; clients map into the
                    // tag's origin field (documented narrowing).
                    let tag = Tag::new(max_ts + 1, ServerId(self.id.0 as u16));
                    let value = value.clone();
                    let request = op.request;
                    op.phase = OpPhase::WriteUpdate { acks: 0 };
                    self.broadcast(
                        ctx,
                        &AbdMsg::Update {
                            request,
                            tag,
                            value,
                        },
                    );
                }
            }
            (AbdMsg::UpdateAck { request }, OpPhase::WriteUpdate { acks })
                if request == op.request =>
            {
                *acks += 1;
                if *acks == majority {
                    self.finish(ctx, None);
                }
            }
            (
                AbdMsg::QueryResp {
                    request,
                    tag,
                    value,
                },
                OpPhase::ReadQuery { responses },
            ) if request == op.request => {
                responses.push((tag, value));
                if responses.len() == majority {
                    let (tag, value) = responses
                        .iter()
                        .max_by_key(|(t, _)| *t)
                        .cloned()
                        .expect("majority responses");
                    let request = op.request;
                    op.phase = OpPhase::ReadBack {
                        acks: 0,
                        value: value.clone(),
                    };
                    // Write-back: required for atomicity.
                    self.broadcast(
                        ctx,
                        &AbdMsg::Update {
                            request,
                            tag,
                            value,
                        },
                    );
                }
            }
            (AbdMsg::UpdateAck { request }, OpPhase::ReadBack { acks, .. })
                if request == op.request =>
            {
                *acks += 1;
                if *acks == majority {
                    let value = match &op.phase {
                        OpPhase::ReadBack { value, .. } => value.clone(),
                        _ => unreachable!(),
                    };
                    self.finish(ctx, Some(value));
                }
            }
            _ => {} // stale/extra responses beyond the majority
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hts_lincheck::check_conditions;
    use hts_sim::packet::{NetworkConfig, PacketSim};

    fn run_cluster(
        seed: u64,
        n: u16,
        clients: u32,
        mix: OpMix,
        ops: u64,
    ) -> (Vec<Rc<RefCell<ClientStats>>>, Rc<RefCell<History>>) {
        let mut sim = PacketSim::new(seed);
        let net = sim.add_network(NetworkConfig::fast_ethernet());
        let history = Rc::new(RefCell::new(History::new()));
        for i in 0..n {
            let id = NodeId::Server(ServerId(i));
            sim.add_node(id, Box::new(AbdServer::new(net)));
            sim.attach(id, net);
        }
        let mut all = Vec::new();
        for c in 0..clients {
            let id = NodeId::Client(ClientId(c));
            let workload = WorkloadConfig {
                mix,
                value_size: 64,
                op_limit: Some(ops),
                start_delay: Nanos::ZERO,
                timeout: Nanos::from_millis(500),
                window: 1,
            };
            let (client, stats) =
                AbdClient::new(ClientId(c), n, workload, net, Some(Rc::clone(&history)));
            sim.add_node(id, Box::new(client));
            sim.attach(id, net);
            all.push(stats);
        }
        sim.run_to_quiescence();
        (all, history)
    }

    #[test]
    fn sequential_write_then_read() {
        let (stats, history) = run_cluster(1, 3, 1, OpMix::Mixed { read_percent: 50 }, 10);
        let s = stats[0].borrow();
        assert_eq!(s.writes_done + s.reads_done, 10);
        let h = history.borrow();
        assert!(check_conditions(&h).is_empty(), "{h}");
    }

    #[test]
    fn concurrent_clients_remain_atomic() {
        let (stats, history) = run_cluster(7, 3, 4, OpMix::Mixed { read_percent: 60 }, 8);
        let done: u64 = stats
            .iter()
            .map(|s| {
                let s = s.borrow();
                s.writes_done + s.reads_done
            })
            .sum();
        assert_eq!(done, 32);
        let h = history.borrow();
        let violations = check_conditions(&h);
        assert!(violations.is_empty(), "{violations:?}\n{h}");
    }

    #[test]
    fn tolerates_minority_crash() {
        let mut sim = PacketSim::new(3);
        let net = sim.add_network(NetworkConfig::fast_ethernet());
        for i in 0..3u16 {
            let id = NodeId::Server(ServerId(i));
            sim.add_node(id, Box::new(AbdServer::new(net)));
            sim.attach(id, net);
        }
        let workload = WorkloadConfig {
            mix: OpMix::Mixed { read_percent: 50 },
            value_size: 64,
            op_limit: Some(10),
            start_delay: Nanos::ZERO,
            timeout: Nanos::from_millis(500),
            window: 1,
        };
        let (client, stats) = AbdClient::new(ClientId(0), 3, workload, net, None);
        let cid = NodeId::Client(ClientId(0));
        sim.add_node(cid, Box::new(client));
        sim.attach(cid, net);
        sim.crash_at(NodeId::Server(ServerId(2)), Nanos::from_micros(500));
        sim.run_to_quiescence();
        let s = stats.borrow();
        assert_eq!(s.writes_done + s.reads_done, 10, "majority still answers");
    }

    #[test]
    fn wire_sizes_match_shape() {
        assert!(
            AbdMsg::Query {
                request: RequestId(1)
            }
            .wire_size()
                < 16
        );
        let update = AbdMsg::Update {
            request: RequestId(1),
            tag: Tag::new(1, ServerId(0)),
            value: Value::filled(0, 1000),
        };
        assert!(update.wire_size() > 1000);
    }
}
