//! Chain replication (van Renesse & Schneider, OSDI 2004) as an atomic
//! register.
//!
//! Servers form a chain `s0 (head) → … → s_{n-1} (tail)`. A write enters
//! at the head, which orders it and streams it down the chain; the tail
//! acknowledges the client. Reads go **only to the tail**, which answers
//! locally. Updates crossing each link once gives chain replication the
//! same per-link write economy as the paper's ring — the paper's §1 credit
//! — but the single read server means read throughput does not scale,
//! which is the comparison `hts-bench` measures.
//!
//! Evaluated crash-free (chain repair is out of scope, as in the paper's
//! experiments).

use std::cell::RefCell;
use std::rc::Rc;

use hts_core::{ClientStats, WorkloadConfig};
use hts_lincheck::History;
use hts_sim::packet::{Ctx, NetworkId, Process, TimerId};
use hts_sim::{Nanos, Wire};
use hts_types::{ClientId, NodeId, RequestId, ServerId, Value};

use crate::common::LoopState;

/// Chain replication wire messages.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ChainMsg {
    /// Client → head.
    WriteReq {
        /// Correlation id.
        request: RequestId,
        /// Value to write.
        value: Value,
    },
    /// Server → successor: ordered update streaming down the chain.
    Update {
        /// Head-assigned sequence number.
        seq: u64,
        /// The value.
        value: Value,
        /// Originating client (for the tail's ack).
        client: ClientId,
        /// Client's correlation id.
        request: RequestId,
    },
    /// Tail → client.
    WriteAck {
        /// Correlation id.
        request: RequestId,
    },
    /// Client → tail.
    ReadReq {
        /// Correlation id.
        request: RequestId,
    },
    /// Tail → client.
    ReadAck {
        /// Correlation id.
        request: RequestId,
        /// The value read.
        value: Value,
    },
}

impl Wire for ChainMsg {
    fn wire_size(&self) -> usize {
        match self {
            ChainMsg::WriteReq { value, .. } => 1 + 8 + 4 + value.len(),
            ChainMsg::Update { value, .. } => 1 + 8 + 4 + 8 + 4 + value.len(),
            ChainMsg::WriteAck { .. } | ChainMsg::ReadReq { .. } => 1 + 8,
            ChainMsg::ReadAck { value, .. } => 1 + 8 + 4 + value.len(),
        }
    }
}

/// One chain server.
pub struct ChainServer {
    me: ServerId,
    n: u16,
    seq: u64,
    value: Value,
    server_net: NetworkId,
    client_net: NetworkId,
}

impl ChainServer {
    /// Creates chain position `me` of `n`.
    pub fn new(me: ServerId, n: u16, server_net: NetworkId, client_net: NetworkId) -> Self {
        ChainServer {
            me,
            n,
            seq: 0,
            value: Value::bottom(),
            server_net,
            client_net,
        }
    }

    fn is_head(&self) -> bool {
        self.me.0 == 0
    }

    fn is_tail(&self) -> bool {
        self.me.0 + 1 == self.n
    }

    fn apply_and_forward(
        &mut self,
        ctx: &mut Ctx<'_, ChainMsg>,
        seq: u64,
        value: Value,
        client: ClientId,
        request: RequestId,
    ) {
        self.seq = seq;
        self.value = value.clone();
        if self.is_tail() {
            ctx.send(
                self.client_net,
                NodeId::Client(client),
                ChainMsg::WriteAck { request },
            );
        } else {
            ctx.send(
                self.server_net,
                NodeId::Server(ServerId(self.me.0 + 1)),
                ChainMsg::Update {
                    seq,
                    value,
                    client,
                    request,
                },
            );
        }
    }
}

impl Process<ChainMsg> for ChainServer {
    fn on_message(&mut self, ctx: &mut Ctx<'_, ChainMsg>, from: NodeId, msg: ChainMsg) {
        match msg {
            ChainMsg::WriteReq { request, value } => {
                if let (true, Some(client)) = (self.is_head(), from.as_client()) {
                    let seq = self.seq + 1;
                    self.apply_and_forward(ctx, seq, value, client, request);
                }
            }
            ChainMsg::Update {
                seq,
                value,
                client,
                request,
            } => self.apply_and_forward(ctx, seq, value, client, request),
            ChainMsg::ReadReq { request } => {
                if let (true, Some(client)) = (self.is_tail(), from.as_client()) {
                    ctx.send(
                        self.client_net,
                        NodeId::Client(client),
                        ChainMsg::ReadAck {
                            request,
                            value: self.value.clone(),
                        },
                    );
                }
            }
            _ => {}
        }
    }
}

/// A closed-loop chain-replication client: writes to the head, reads from
/// the tail.
pub struct ChainClient {
    state: LoopState,
    n: u16,
    client_net: NetworkId,
    kick: Option<TimerId>,
}

impl ChainClient {
    /// Creates a client of an `n`-server chain.
    pub fn new(
        id: ClientId,
        n: u16,
        workload: WorkloadConfig,
        client_net: NetworkId,
        history: Option<Rc<RefCell<History>>>,
    ) -> (Self, Rc<RefCell<ClientStats>>) {
        let (state, stats) = LoopState::new(id, workload, history);
        (
            ChainClient {
                state,
                n,
                client_net,
                kick: None,
            },
            stats,
        )
    }

    fn issue_next(&mut self, ctx: &mut Ctx<'_, ChainMsg>) {
        let rand = ctx.rand_below(100);
        let Some(issue) = self.state.next_op(ctx.now(), rand) else {
            return;
        };
        if issue.is_read {
            let tail = NodeId::Server(ServerId(self.n - 1));
            ctx.send(
                self.client_net,
                tail,
                ChainMsg::ReadReq {
                    request: issue.request,
                },
            );
        } else {
            let head = NodeId::Server(ServerId(0));
            ctx.send(
                self.client_net,
                head,
                ChainMsg::WriteReq {
                    request: issue.request,
                    value: issue.value.expect("write value"),
                },
            );
        }
    }
}

impl Process<ChainMsg> for ChainClient {
    fn on_start(&mut self, ctx: &mut Ctx<'_, ChainMsg>) {
        if self.state.workload.start_delay == Nanos::ZERO {
            self.issue_next(ctx);
        } else {
            self.kick = Some(ctx.set_timer(self.state.workload.start_delay));
        }
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_, ChainMsg>, timer: TimerId) {
        if self.kick == Some(timer) {
            self.kick = None;
            self.issue_next(ctx);
        }
    }

    fn on_message(&mut self, ctx: &mut Ctx<'_, ChainMsg>, _from: NodeId, msg: ChainMsg) {
        let done = match msg {
            ChainMsg::WriteAck { request } if self.state.matches(request) => Some(None),
            ChainMsg::ReadAck { request, value } if self.state.matches(request) => {
                Some(Some(value))
            }
            _ => None,
        };
        if let Some(read_value) = done {
            self.state.complete(ctx.now(), read_value);
            self.issue_next(ctx);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hts_core::OpMix;
    use hts_lincheck::check_conditions;
    use hts_sim::packet::{NetworkConfig, PacketSim};

    fn run(seed: u64, n: u16, clients: u32, ops: u64) -> (u64, Rc<RefCell<History>>) {
        let mut sim = PacketSim::new(seed);
        let server_net = sim.add_network(NetworkConfig::fast_ethernet());
        let client_net = sim.add_network(NetworkConfig::fast_ethernet());
        let history = Rc::new(RefCell::new(History::new()));
        for i in 0..n {
            let id = NodeId::Server(ServerId(i));
            sim.add_node(
                id,
                Box::new(ChainServer::new(ServerId(i), n, server_net, client_net)),
            );
            sim.attach(id, server_net);
            sim.attach(id, client_net);
        }
        let mut stats = Vec::new();
        for c in 0..clients {
            let id = NodeId::Client(ClientId(c));
            let workload = WorkloadConfig {
                mix: OpMix::Mixed { read_percent: 50 },
                value_size: 64,
                op_limit: Some(ops),
                start_delay: Nanos::ZERO,
                timeout: Nanos::from_millis(500),
                window: 1,
            };
            let (client, s) = ChainClient::new(
                ClientId(c),
                n,
                workload,
                client_net,
                Some(Rc::clone(&history)),
            );
            sim.add_node(id, Box::new(client));
            sim.attach(id, client_net);
            stats.push(s);
        }
        sim.run_to_quiescence();
        let done = stats
            .iter()
            .map(|s| {
                let s = s.borrow();
                s.writes_done + s.reads_done
            })
            .sum();
        (done, history)
    }

    #[test]
    fn all_ops_complete_and_stay_atomic() {
        let (done, history) = run(5, 3, 4, 10);
        assert_eq!(done, 40);
        let h = history.borrow();
        let violations = check_conditions(&h);
        assert!(violations.is_empty(), "{violations:?}\n{h}");
    }

    #[test]
    fn single_server_chain_works() {
        let (done, history) = run(9, 1, 2, 5);
        assert_eq!(done, 10);
        assert!(check_conditions(&history.borrow()).is_empty());
    }
}
