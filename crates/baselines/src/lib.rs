//! Baseline atomic-storage protocols the paper argues against.
//!
//! The paper's case for its ring design rests on comparisons with three
//! families of algorithms; this crate implements a representative of each,
//! on the same simulator and with the same closed-loop clients as the ring
//! protocol, so the benches in `hts-bench` can measure the comparison the
//! paper only argues analytically:
//!
//! * [`abd`] — the classic majority-quorum register (Attiya–Bar-Noy–Dolev
//!   [4], multi-writer variant per Lynch–Shvartsman [24]). Reads and
//!   writes each contact a majority; every operation costs `Θ(n)` messages
//!   and, crucially, the *values* cross Θ(n) links per read, so throughput
//!   does not scale with servers ([25], cited in §4.2).
//! * [`chain`] — chain replication (van Renesse–Schneider [28]): writes
//!   stream down a chain (high write throughput, like the ring), but all
//!   reads are served by the single tail — read throughput is flat.
//! * [`tob`] — a total-order-broadcast register on the same ring transport
//!   (the modular approach of [15] discussed in §1): *reads are ordered
//!   too*, so they consume ring slots and read throughput collapses to the
//!   broadcast throughput (≈1/round) instead of scaling with `n`.
//! * [`fig1`] — the two toy read protocols of the paper's Figure 1 in the
//!   round model (quorum "Algorithm A" vs local-read "Algorithm B").
//!
//! All baselines are evaluated crash-free (as in the paper's Figure 3/4
//! experiments); ABD additionally tolerates minority crashes by
//! construction.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod abd;
pub mod chain;
mod common;
pub mod fig1;
pub mod tob;
