//! A total-order-broadcast register on the ring transport.
//!
//! The modular design the paper's §1 considers and rejects: implement the
//! register by totally ordering **all** operations — including reads —
//! with a ring-based total order broadcast (the authors' own LCR-style
//! primitive [15] is the throughput-optimal representative). Each
//! operation is announced around the ring, then committed with a second
//! turn, exactly like the storage algorithm's writes — so writes perform
//! identically, but *reads now consume ring slots too*: aggregate
//! throughput is capped at the broadcast's ≈1 op/round instead of reads
//! scaling with `n`. That is the measured trade-off in `hts-bench`.
//!
//! Ordering note: operations are applied in commit-circulation order,
//! which a single-ring token structure makes consistent across servers in
//! the crash-free runs benchmarked here (recovery is out of scope).

use std::cell::RefCell;
use std::collections::{BTreeMap, HashMap, VecDeque};
use std::rc::Rc;

use hts_core::{ClientStats, WorkloadConfig};
use hts_lincheck::History;
use hts_sim::packet::{Ctx, NetworkId, Process, TimerId};
use hts_sim::{Nanos, Wire};
use hts_types::{ClientId, NodeId, RequestId, ServerId, Tag, Value};

use crate::common::LoopState;

/// A totally-ordered operation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TobOp {
    /// Order tag (assigned by the origin server).
    pub tag: Tag,
    /// `Some(value)` for writes, `None` for reads.
    pub value: Option<Value>,
}

/// One ring hop of TOB traffic: at most one announcement plus one commit.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TobFrame {
    /// A new operation circulating for the first turn.
    pub announce: Option<TobOp>,
    /// A committed tag circulating for the second turn.
    pub commit: Option<Tag>,
}

/// TOB wire messages.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TobMsg {
    /// Client → server: write.
    WriteReq {
        /// Correlation id.
        request: RequestId,
        /// Value to write.
        value: Value,
    },
    /// Client → server: read (totally ordered like a write!).
    ReadReq {
        /// Correlation id.
        request: RequestId,
    },
    /// Server → client: write done.
    WriteAck {
        /// Correlation id.
        request: RequestId,
    },
    /// Server → client: read result.
    ReadAck {
        /// Correlation id.
        request: RequestId,
        /// Value read.
        value: Value,
    },
    /// Server → ring successor.
    Ring(TobFrame),
}

impl Wire for TobMsg {
    fn wire_size(&self) -> usize {
        match self {
            TobMsg::WriteReq { value, .. } => 1 + 8 + 4 + value.len(),
            TobMsg::ReadReq { .. } | TobMsg::WriteAck { .. } => 1 + 8,
            TobMsg::ReadAck { value, .. } => 1 + 8 + 4 + value.len(),
            TobMsg::Ring(frame) => {
                let a = frame.announce.as_ref().map_or(0, |op| {
                    10 + 1 + op.value.as_ref().map_or(0, |v| 4 + v.len())
                });
                let c = frame.commit.map_or(0, |_| 10);
                1 + 1 + a + 1 + c
            }
        }
    }
}

/// A TOB ring server.
pub struct TobServer {
    me: ServerId,
    n: u16,
    ring_net: NetworkId,
    client_net: NetworkId,
    next_ts: u64,
    /// Announced-but-uncommitted ops (the op cache for tag-only commits).
    announced: BTreeMap<Tag, Option<Value>>,
    /// Latest committed write.
    stored: (Tag, Value),
    /// My clients' ops awaiting commit.
    local: HashMap<Tag, (ClientId, RequestId, bool)>,
    /// Announcements waiting to be forwarded; alternates with local queue.
    forward_queue: VecDeque<TobOp>,
    local_queue: VecDeque<(ClientId, RequestId, Option<Value>)>,
    commit_queue: VecDeque<Tag>,
    prefer_local: bool,
    /// Per-origin commit watermark (duplicate suppression).
    committed_seen: HashMap<ServerId, u64>,
}

impl TobServer {
    /// Creates TOB server `me` of `n`.
    pub fn new(me: ServerId, n: u16, ring_net: NetworkId, client_net: NetworkId) -> Self {
        TobServer {
            me,
            n,
            ring_net,
            client_net,
            next_ts: 0,
            announced: BTreeMap::new(),
            stored: (Tag::ZERO, Value::bottom()),
            local: HashMap::new(),
            forward_queue: VecDeque::new(),
            local_queue: VecDeque::new(),
            commit_queue: VecDeque::new(),
            prefer_local: true,
            committed_seen: HashMap::new(),
        }
    }

    fn successor(&self) -> NodeId {
        NodeId::Server(ServerId((self.me.0 + 1) % self.n))
    }

    fn pump(&mut self, ctx: &mut Ctx<'_, TobMsg>) {
        if !ctx.tx_is_idle(self.ring_net) {
            return;
        }
        let mut frame = TobFrame {
            announce: None,
            commit: None,
        };
        // Alternate local announcements and forwarded ones (fairness-lite).
        let local_first = self.prefer_local && !self.local_queue.is_empty();
        let forward_available = !self.forward_queue.is_empty();
        if local_first || (!forward_available && !self.local_queue.is_empty()) {
            let (client, request, value) = self.local_queue.pop_front().expect("non-empty");
            self.next_ts = self.next_ts.max(self.stored.0.ts) + 1;
            let tag = Tag::new(self.next_ts, self.me);
            let is_read = value.is_none();
            self.local.insert(tag, (client, request, is_read));
            self.announced.insert(tag, value.clone());
            frame.announce = Some(TobOp { tag, value });
            self.prefer_local = false;
        } else if let Some(op) = self.forward_queue.pop_front() {
            frame.announce = Some(op);
            self.prefer_local = true;
        }
        if let Some(tag) = self.commit_queue.pop_front() {
            frame.commit = Some(tag);
        }
        if frame.announce.is_some() || frame.commit.is_some() {
            ctx.send(self.ring_net, self.successor(), TobMsg::Ring(frame));
        }
    }

    fn process_commit(&mut self, ctx: &mut Ctx<'_, TobMsg>, tag: Tag) {
        let mine = tag.origin == self.me;
        if !mine {
            let seen = self.committed_seen.entry(tag.origin).or_insert(0);
            if *seen >= tag.ts {
                return;
            }
            *seen = tag.ts;
        }
        if let Some(Some(v)) = self.announced.remove(&tag) {
            if tag > self.stored.0 {
                self.stored = (tag, v);
            }
        }
        if mine {
            if let Some((client, request, is_read)) = self.local.remove(&tag) {
                let reply = if is_read {
                    TobMsg::ReadAck {
                        request,
                        value: self.stored.1.clone(),
                    }
                } else {
                    TobMsg::WriteAck { request }
                };
                ctx.send(self.client_net, NodeId::Client(client), reply);
            }
        } else {
            self.commit_queue.push_back(tag);
        }
    }
}

impl Process<TobMsg> for TobServer {
    fn on_message(&mut self, ctx: &mut Ctx<'_, TobMsg>, from: NodeId, msg: TobMsg) {
        match msg {
            TobMsg::WriteReq { request, value } => {
                if let Some(client) = from.as_client() {
                    self.local_queue.push_back((client, request, Some(value)));
                }
            }
            TobMsg::ReadReq { request } => {
                if let Some(client) = from.as_client() {
                    self.local_queue.push_back((client, request, None));
                }
            }
            TobMsg::Ring(frame) => {
                if let Some(tag) = frame.commit {
                    self.process_commit(ctx, tag);
                }
                if let Some(op) = frame.announce {
                    if op.tag.origin == self.me {
                        // Announcement completed its turn: commit it.
                        self.commit_queue.push_back(op.tag);
                    } else {
                        // Cache at *receipt*: the commit may arrive while
                        // the announce still waits in the forward queue.
                        self.announced.insert(op.tag, op.value.clone());
                        self.forward_queue.push_back(op);
                    }
                }
            }
            _ => {}
        }
        self.pump(ctx);
    }

    fn on_tx_idle(&mut self, ctx: &mut Ctx<'_, TobMsg>, net: NetworkId) {
        if net == self.ring_net {
            self.pump(ctx);
        }
    }
}

/// A closed-loop TOB client.
pub struct TobClient {
    state: LoopState,
    preferred: ServerId,
    client_net: NetworkId,
    kick: Option<TimerId>,
}

impl TobClient {
    /// Creates a client pinned to `preferred`.
    pub fn new(
        id: ClientId,
        preferred: ServerId,
        workload: WorkloadConfig,
        client_net: NetworkId,
        history: Option<Rc<RefCell<History>>>,
    ) -> (Self, Rc<RefCell<ClientStats>>) {
        let (state, stats) = LoopState::new(id, workload, history);
        (
            TobClient {
                state,
                preferred,
                client_net,
                kick: None,
            },
            stats,
        )
    }

    fn issue_next(&mut self, ctx: &mut Ctx<'_, TobMsg>) {
        let rand = ctx.rand_below(100);
        let Some(issue) = self.state.next_op(ctx.now(), rand) else {
            return;
        };
        let msg = if issue.is_read {
            TobMsg::ReadReq {
                request: issue.request,
            }
        } else {
            TobMsg::WriteReq {
                request: issue.request,
                value: issue.value.expect("write value"),
            }
        };
        ctx.send(self.client_net, NodeId::Server(self.preferred), msg);
    }
}

impl Process<TobMsg> for TobClient {
    fn on_start(&mut self, ctx: &mut Ctx<'_, TobMsg>) {
        if self.state.workload.start_delay == Nanos::ZERO {
            self.issue_next(ctx);
        } else {
            self.kick = Some(ctx.set_timer(self.state.workload.start_delay));
        }
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_, TobMsg>, timer: TimerId) {
        if self.kick == Some(timer) {
            self.kick = None;
            self.issue_next(ctx);
        }
    }

    fn on_message(&mut self, ctx: &mut Ctx<'_, TobMsg>, _from: NodeId, msg: TobMsg) {
        let done = match msg {
            TobMsg::WriteAck { request } if self.state.matches(request) => Some(None),
            TobMsg::ReadAck { request, value } if self.state.matches(request) => Some(Some(value)),
            _ => None,
        };
        if let Some(read_value) = done {
            self.state.complete(ctx.now(), read_value);
            self.issue_next(ctx);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hts_core::OpMix;
    use hts_lincheck::check_conditions;
    use hts_sim::packet::{NetworkConfig, PacketSim};

    fn run(seed: u64, n: u16, clients: u32, ops: u64, mix: OpMix) -> (u64, Rc<RefCell<History>>) {
        let mut sim = PacketSim::new(seed);
        let ring_net = sim.add_network(NetworkConfig::fast_ethernet());
        let client_net = sim.add_network(NetworkConfig::fast_ethernet());
        let history = Rc::new(RefCell::new(History::new()));
        for i in 0..n {
            let id = NodeId::Server(ServerId(i));
            sim.add_node(
                id,
                Box::new(TobServer::new(ServerId(i), n, ring_net, client_net)),
            );
            sim.attach(id, ring_net);
            sim.attach(id, client_net);
        }
        let mut stats = Vec::new();
        for c in 0..clients {
            let id = NodeId::Client(ClientId(c));
            let workload = WorkloadConfig {
                mix,
                value_size: 64,
                op_limit: Some(ops),
                start_delay: Nanos::ZERO,
                timeout: Nanos::from_millis(500),
                window: 1,
            };
            let (client, s) = TobClient::new(
                ClientId(c),
                ServerId((c % u32::from(n)) as u16),
                workload,
                client_net,
                Some(Rc::clone(&history)),
            );
            sim.add_node(id, Box::new(client));
            sim.attach(id, client_net);
            stats.push(s);
        }
        sim.run_to_quiescence();
        let done = stats
            .iter()
            .map(|s| {
                let s = s.borrow();
                s.writes_done + s.reads_done
            })
            .sum();
        (done, history)
    }

    #[test]
    fn ordered_ops_complete_and_stay_atomic() {
        let (done, history) = run(3, 3, 3, 8, OpMix::Mixed { read_percent: 50 });
        assert_eq!(done, 24);
        let h = history.borrow();
        let violations = check_conditions(&h);
        assert!(violations.is_empty(), "{violations:?}\n{h}");
    }

    #[test]
    fn reads_travel_the_ring() {
        // With a read-only workload the ring still carries traffic — the
        // defining cost of the TOB approach.
        let (done, _) = run(5, 3, 2, 5, OpMix::ReadOnly);
        assert_eq!(done, 10);
    }
}
