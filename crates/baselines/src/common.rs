//! Shared closed-loop bookkeeping for baseline clients.

use std::cell::RefCell;
use std::rc::Rc;

use hts_core::{ClientStats, OpMix, WorkloadConfig};
use hts_lincheck::{History, OpId};
use hts_sim::Nanos;
use hts_types::{ClientId, RequestId, Value};

/// What the loop decided to issue next.
pub(crate) struct Issue {
    pub request: RequestId,
    pub is_read: bool,
    /// The unique value for writes.
    pub value: Option<Value>,
}

/// Workload pacing, stats and history recording shared by every baseline
/// client; the protocol-specific clients own the actual phases.
pub(crate) struct LoopState {
    pub id: ClientId,
    pub workload: WorkloadConfig,
    pub stats: Rc<RefCell<ClientStats>>,
    pub history: Option<Rc<RefCell<History>>>,
    current: Option<(RequestId, Option<OpId>, Nanos, bool)>,
    next_request: u64,
    value_seq: u64,
    done: bool,
}

impl LoopState {
    pub fn new(
        id: ClientId,
        workload: WorkloadConfig,
        history: Option<Rc<RefCell<History>>>,
    ) -> (Self, Rc<RefCell<ClientStats>>) {
        let stats = Rc::new(RefCell::new(ClientStats::default()));
        (
            LoopState {
                id,
                workload,
                stats: Rc::clone(&stats),
                history,
                current: None,
                next_request: 0,
                value_seq: 0,
                done: false,
            },
            stats,
        )
    }

    /// Decides the next operation (or `None` when at the op limit or
    /// busy). `rand100` must be a sample in `0..100`.
    pub fn next_op(&mut self, now: Nanos, rand100: u64) -> Option<Issue> {
        if self.done || self.current.is_some() {
            return None;
        }
        let total = {
            let s = self.stats.borrow();
            s.writes_done + s.reads_done
        };
        if let Some(limit) = self.workload.op_limit {
            if total >= limit {
                self.done = true;
                return None;
            }
        }
        let is_read = match self.workload.mix {
            OpMix::ReadOnly => true,
            OpMix::WriteOnly => false,
            OpMix::Mixed { read_percent } => rand100 < u64::from(read_percent),
        };
        self.next_request += 1;
        let request = RequestId(self.next_request);
        let (value, op_id) = if is_read {
            let op_id = self
                .history
                .as_ref()
                .map(|h| h.borrow_mut().invoke_read(self.id, now.as_nanos()));
            (None, op_id)
        } else {
            self.value_seq += 1;
            let value = hts_core::unique_value(self.id, self.value_seq, self.workload.value_size);
            let op_id = self.history.as_ref().map(|h| {
                h.borrow_mut()
                    .invoke_write(self.id, value.clone(), now.as_nanos())
            });
            (Some(value), op_id)
        };
        self.current = Some((request, op_id, now, is_read));
        Some(Issue {
            request,
            is_read,
            value,
        })
    }

    /// Whether `request` is the in-flight one.
    pub fn matches(&self, request: RequestId) -> bool {
        self.current.map(|(r, _, _, _)| r) == Some(request)
    }

    /// Records completion; `read_value` is `Some` for reads.
    pub fn complete(&mut self, now: Nanos, read_value: Option<Value>) {
        let (_, op_id, issued, is_read) = self.current.take().expect("no op in flight");
        let latency = now.saturating_sub(issued);
        {
            let mut stats = self.stats.borrow_mut();
            if is_read {
                let v = read_value.as_ref().expect("read returns a value");
                stats.reads_done += 1;
                stats.read_payload_bytes += v.len() as u64;
                stats.read_latency_total += latency;
                stats.read_latencies.push(latency.as_nanos());
            } else {
                stats.writes_done += 1;
                stats.write_payload_bytes += self.workload.value_size as u64;
                stats.write_latency_total += latency;
                stats.write_latencies.push(latency.as_nanos());
            }
        }
        if let (Some(h), Some(id)) = (&self.history, op_id) {
            let mut h = h.borrow_mut();
            match read_value {
                Some(v) => h.complete_read(id, v, now.as_nanos()),
                None => h.complete_write(id, now.as_nanos()),
            }
        }
    }
}
