//! Protocol messages.
//!
//! Two families:
//!
//! * **client ↔ server** requests and replies ([`Message::WriteReq`],
//!   [`Message::ReadReq`], [`Message::WriteAck`], [`Message::ReadAck`]) —
//!   these travel on the client network;
//! * **server → server** ring traffic ([`Message::Ring`]) — a [`RingFrame`]
//!   forwarded from each server to its ring successor only.
//!
//! A ring frame carries at most one value-bearing [`PreWrite`] and at most
//! one [`WriteNotice`]. In steady state a write notice is **tag-only**: the
//! value was already disseminated by the matching pre-write and every server
//! holds it in its pending cache, so re-sending it would double the ring's
//! bandwidth cost (see DESIGN.md §4.3). Recovery retransmissions and the
//! `write_carries_value` ablation set [`WriteNotice::value`] to `Some`.

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::{ObjectId, RequestId, ServerId, Tag, Value};

/// The first phase of a write: announces `value` under `tag` to every
/// server as the frame circulates the ring (paper lines 25, 29–40).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct PreWrite {
    /// The write's tag; `tag.origin` is the server that initiated the write.
    pub tag: Tag,
    /// The value being written.
    pub value: Value,
    /// Set on re-circulations started by crash recovery: receivers forward
    /// a recovery pre-write even if they have already seen the tag (the
    /// surrogate originator needs it to complete a full ring turn), and the
    /// designated adopter of a crashed origin consumes it.
    pub recovery: bool,
}

/// The second phase of a write: commits the pre-written `tag` (paper lines
/// 38, 41–52). Tag-only in steady state; carries the value again only in
/// recovery retransmissions (or under the `write_carries_value` ablation).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct WriteNotice {
    /// The tag being committed; `tag.origin` identifies the initiating
    /// server, which terminates the circulation (paper line 49).
    pub tag: Tag,
    /// The committed value, when carried explicitly. `None` means "resolve
    /// from the pending cache populated by the matching [`PreWrite`]".
    pub value: Option<Value>,
}

/// One hop of ring traffic: everything a server transmits to its successor
/// in a single protocol step.
///
/// # Examples
///
/// ```
/// use hts_types::{ObjectId, PreWrite, RingFrame, ServerId, Tag, Value, WriteNotice};
///
/// let frame = RingFrame {
///     object: ObjectId::SINGLE,
///     pre_write: Some(PreWrite {
///         tag: Tag::new(1, ServerId(0)),
///         value: Value::from_u64(7),
///         recovery: false,
///     }),
///     write: Some(WriteNotice { tag: Tag::new(1, ServerId(2)), value: None }),
///     rejoin: None,
/// };
/// assert!(!frame.is_empty());
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct RingFrame {
    /// The register object this frame belongs to.
    pub object: ObjectId,
    /// Optional first-phase message.
    pub pre_write: Option<PreWrite>,
    /// Optional second-phase message.
    pub write: Option<WriteNotice>,
    /// Optional crash-**recovery** announcement: "server `s` restarted
    /// and is back in the ring". Initiated by the restarted server
    /// itself and forwarded hop by hop until it returns to `s`; each
    /// receiver marks `s` alive, and the server whose successor becomes
    /// `s` re-sends its state first (FIFO links), so the announcement's
    /// return doubles as the rejoiner's sync-complete marker (see
    /// [`Rejoin`] for the flags guarding overlapping restarts).
    pub rejoin: Option<Rejoin>,
}

/// A crash-recovery rejoin announcement (see [`RingFrame::rejoin`]).
///
/// The two flags make the announcement's return a *trustworthy*
/// sync-complete certificate even when restarts overlap:
///
/// * `stale_source` — set by the hop that becomes the rejoiner's
///   predecessor (the one whose recovery stream the certificate vouches
///   for) when that hop is **itself still resyncing**: its stream may
///   miss writes committed during their overlapping downtime, so the
///   rejoiner must not finish on this circuit and re-announces instead.
/// * `all_syncing` — ANDed with "this hop is resyncing" at every
///   forwarder. When it survives as `true`, *every* alive server is
///   restarting (a cold start of the whole cluster): the recovery logs
///   are collectively authoritative, there is no fresher state to wait
///   for, and the rejoiner may finish despite a `stale_source` — this
///   is what keeps overlapping cold restarts from livelocking.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Rejoin {
    /// The restarted server.
    pub server: ServerId,
    /// The new predecessor was itself mid-resync when it forwarded.
    pub stale_source: bool,
    /// Every hop so far (including the rejoiner) was mid-resync.
    pub all_syncing: bool,
}

impl Rejoin {
    /// A fresh announcement as the restarted `server` itself issues it.
    pub fn announce(server: ServerId) -> Self {
        Rejoin {
            server,
            stale_source: false,
            all_syncing: true,
        }
    }
}

impl RingFrame {
    /// A frame carrying only a pre-write.
    pub fn pre_write(object: ObjectId, tag: Tag, value: Value) -> Self {
        RingFrame {
            object,
            pre_write: Some(PreWrite {
                tag,
                value,
                recovery: false,
            }),
            write: None,
            rejoin: None,
        }
    }

    /// A frame carrying only a (tag-only) write notice.
    pub fn write(object: ObjectId, tag: Tag) -> Self {
        RingFrame {
            object,
            pre_write: None,
            write: Some(WriteNotice { tag, value: None }),
            rejoin: None,
        }
    }

    /// A frame carrying a write notice with an explicit value (used by
    /// recovery retransmission and the `write_carries_value` ablation).
    pub fn write_with_value(object: ObjectId, tag: Tag, value: Value) -> Self {
        RingFrame {
            object,
            pre_write: None,
            write: Some(WriteNotice {
                tag,
                value: Some(value),
            }),
            rejoin: None,
        }
    }

    /// A frame carrying only a rejoin announcement (sent by a restarted
    /// server entering the ring, or forwarded standalone; piggybacks on
    /// regular frames when there is concurrent traffic).
    pub fn announce_rejoin(rejoin: Rejoin) -> Self {
        RingFrame {
            object: ObjectId::SINGLE,
            pre_write: None,
            write: None,
            rejoin: Some(rejoin),
        }
    }

    /// Returns `true` if the frame carries nothing (never sent).
    pub fn is_empty(&self) -> bool {
        self.pre_write.is_none() && self.write.is_none() && self.rejoin.is_none()
    }
}

/// Every message exchanged in the system.
///
/// See the [module documentation](self) for the two message families and
/// [`crate::codec`] for the wire format.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum Message {
    /// Client → server: write `value` (paper line 2).
    WriteReq {
        /// Target register object.
        object: ObjectId,
        /// Client-chosen correlation id.
        request: RequestId,
        /// The value to write.
        value: Value,
    },
    /// Client → server: read the register (paper line 7).
    ReadReq {
        /// Target register object.
        object: ObjectId,
        /// Client-chosen correlation id.
        request: RequestId,
    },
    /// Server → client: the write completed (paper line 50).
    WriteAck {
        /// Register object of the completed write.
        object: ObjectId,
        /// Correlation id of the completed request.
        request: RequestId,
    },
    /// Server → client: the read's result (paper lines 78, 82).
    ReadAck {
        /// Register object of the read.
        object: ObjectId,
        /// Correlation id of the read request.
        request: RequestId,
        /// The value read.
        value: Value,
    },
    /// Server → ring successor: protocol traffic.
    Ring(RingFrame),
    /// Server → ring successor: several [`RingFrame`]s coalesced into one
    /// wire message. Frames are ordered oldest-first and must be applied
    /// in that order — the batch is a transparent framing optimization,
    /// not a semantic unit, so per-link FIFO (which the rejoin/resync
    /// protocol depends on) is exactly preserved. The outbound writer in
    /// `hts-net` and the simulator's `SimServer` build batches whenever
    /// more than one frame is ready for the same link; a single ready
    /// frame still travels as [`Message::Ring`].
    RingBatch(Vec<RingFrame>),
    /// Client → server: dump the server's metrics registry (observability
    /// side channel; never touches register state).
    StatsRequest {
        /// Client-chosen correlation id.
        request: RequestId,
    },
    /// Server → client: the metrics registry in Prometheus-style text
    /// exposition, answering a [`Message::StatsRequest`]. The payload
    /// rides in a [`Value`] so the codec's length-prefixed byte-slab
    /// machinery applies unchanged; servers built without the `metrics`
    /// feature answer with an empty payload.
    StatsReply {
        /// Correlation id of the answered request.
        request: RequestId,
        /// UTF-8 exposition text.
        text: Value,
    },
}

impl Message {
    /// The register object this message concerns. For a batch this is the
    /// first frame's object (a batch can span objects; routing happens
    /// per frame, so this accessor is informational only there).
    pub fn object(&self) -> ObjectId {
        match self {
            Message::WriteReq { object, .. }
            | Message::ReadReq { object, .. }
            | Message::WriteAck { object, .. }
            | Message::ReadAck { object, .. } => *object,
            Message::Ring(frame) => frame.object,
            Message::RingBatch(frames) => frames.first().map_or(ObjectId::SINGLE, |f| f.object),
            // Stats traffic is register-agnostic; report the default
            // object so object-keyed routing (lane demux) has a home.
            Message::StatsRequest { .. } | Message::StatsReply { .. } => ObjectId::SINGLE,
        }
    }

    /// Returns `true` for server→server ring traffic.
    pub fn is_ring(&self) -> bool {
        matches!(self, Message::Ring(_) | Message::RingBatch(_))
    }
}

impl fmt::Display for Message {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Message::WriteReq {
                object,
                request,
                value,
            } => write!(f, "write_req({object},{request},{} bytes)", value.len()),
            Message::ReadReq { object, request } => write!(f, "read_req({object},{request})"),
            Message::WriteAck { object, request } => write!(f, "write_ack({object},{request})"),
            Message::ReadAck {
                object,
                request,
                value,
            } => write!(f, "read_ack({object},{request},{} bytes)", value.len()),
            Message::Ring(frame) => fmt_frame(f, frame),
            Message::RingBatch(frames) => {
                write!(f, "ring_batch[{}]", frames.len())?;
                if let Some(first) = frames.first() {
                    f.write_str("{")?;
                    fmt_frame(f, first)?;
                    if frames.len() > 1 {
                        f.write_str(", ..")?;
                    }
                    f.write_str("}")?;
                }
                Ok(())
            }
            Message::StatsRequest { request } => write!(f, "stats_req({request})"),
            Message::StatsReply { request, text } => {
                write!(f, "stats_reply({request},{} bytes)", text.len())
            }
        }
    }
}

/// Renders one ring frame for [`Message`]'s `Display` impl.
fn fmt_frame(f: &mut fmt::Formatter<'_>, frame: &RingFrame) -> fmt::Result {
    write!(f, "ring({}", frame.object)?;
    if let Some(pw) = &frame.pre_write {
        write!(f, ", pre_write{}", pw.tag)?;
    }
    if let Some(w) = &frame.write {
        write!(
            f,
            ", write{}{}",
            w.tag,
            if w.value.is_some() { "+v" } else { "" }
        )?;
    }
    if let Some(r) = frame.rejoin {
        write!(
            f,
            ", rejoin({}{}{})",
            r.server,
            if r.stale_source { ",stale" } else { "" },
            if r.all_syncing { ",cold" } else { "" }
        )?;
    }
    f.write_str(")")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ServerId;

    fn tag() -> Tag {
        Tag::new(3, ServerId(1))
    }

    #[test]
    fn frame_constructors() {
        let f = RingFrame::pre_write(ObjectId(1), tag(), Value::from_u64(9));
        assert!(f.pre_write.is_some() && f.write.is_none() && !f.is_empty());

        let g = RingFrame::write(ObjectId(1), tag());
        assert!(g.pre_write.is_none());
        assert_eq!(g.write.as_ref().unwrap().value, None);

        let h = RingFrame::write_with_value(ObjectId(1), tag(), Value::from_u64(9));
        assert!(h.write.as_ref().unwrap().value.is_some());

        let empty = RingFrame {
            object: ObjectId(1),
            pre_write: None,
            write: None,
            rejoin: None,
        };
        assert!(empty.is_empty());

        let announce = RingFrame::announce_rejoin(Rejoin::announce(ServerId(2)));
        assert!(!announce.is_empty());
        let r = announce.rejoin.unwrap();
        assert_eq!(r.server, ServerId(2));
        assert!(!r.stale_source);
        assert!(r.all_syncing);
    }

    #[test]
    fn batch_display_and_accessors() {
        let empty = Message::RingBatch(Vec::new());
        assert_eq!(empty.to_string(), "ring_batch[0]");
        assert_eq!(empty.object(), ObjectId::SINGLE);
        assert!(empty.is_ring());

        let batch = Message::RingBatch(vec![
            RingFrame::write(ObjectId(3), tag()),
            RingFrame::write(ObjectId(4), tag()),
        ]);
        assert_eq!(batch.object(), ObjectId(3));
        assert_eq!(
            batch.to_string(),
            "ring_batch[2]{ring(obj3, write[3,s1]), ..}"
        );
    }

    #[test]
    fn message_object_accessor() {
        let m = Message::ReadReq {
            object: ObjectId(7),
            request: RequestId(1),
        };
        assert_eq!(m.object(), ObjectId(7));
        assert!(!m.is_ring());

        let r = Message::Ring(RingFrame::write(ObjectId(8), tag()));
        assert_eq!(r.object(), ObjectId(8));
        assert!(r.is_ring());
    }

    #[test]
    fn display_is_compact() {
        let m = Message::WriteReq {
            object: ObjectId(0),
            request: RequestId(5),
            value: Value::filled(0, 100),
        };
        assert_eq!(m.to_string(), "write_req(obj0,r5,100 bytes)");

        let r = Message::Ring(RingFrame {
            object: ObjectId(0),
            pre_write: Some(PreWrite {
                tag: tag(),
                value: Value::bottom(),
                recovery: false,
            }),
            write: Some(WriteNotice {
                tag: tag(),
                value: Some(Value::bottom()),
            }),
            rejoin: Some(Rejoin {
                server: ServerId(2),
                stale_source: true,
                all_syncing: false,
            }),
        });
        assert_eq!(
            r.to_string(),
            "ring(obj0, pre_write[3,s1], write[3,s1]+v, rejoin(s2,stale))"
        );
    }
}
