//! Compact binary wire codec for [`Message`].
//!
//! The format is a hand-rolled, length-prefixed binary encoding: one
//! discriminant byte followed by fixed-width big-endian fields; values are
//! `u32`-length-prefixed byte strings; options are a one-byte presence flag.
//! It is deliberately trivial — the point is that [`wire_size`] computes the
//! exact on-wire size without allocating, which the simulator uses for
//! byte-accurate bandwidth accounting, and that the same bytes flow over the
//! real TCP transport in `hts-net`.
//!
//! # Examples
//!
//! ```
//! use hts_types::{codec, Message, ObjectId, RequestId};
//!
//! let msg = Message::ReadReq { object: ObjectId(1), request: RequestId(2) };
//! let bytes = codec::encode(&msg);
//! assert_eq!(codec::decode(&bytes)?, msg);
//! assert_eq!(bytes.len(), codec::wire_size(&msg));
//! # Ok::<(), hts_types::DecodeError>(())
//! ```

use bytes::{Buf, BufMut, Bytes, BytesMut};

use crate::{
    ClientId, DecodeError, Message, ObjectId, PreWrite, Rejoin, RequestId, RingFrame, ServerId,
    Tag, Value, WriteNotice,
};

const D_WRITE_REQ: u8 = 0x01;
const D_READ_REQ: u8 = 0x02;
const D_WRITE_ACK: u8 = 0x03;
const D_READ_ACK: u8 = 0x04;
const D_RING: u8 = 0x05;
const D_RING_BATCH: u8 = 0x06;
const D_STATS_REQ: u8 = 0x07;
const D_STATS_REPLY: u8 = 0x08;

/// Most frames one [`Message::RingBatch`] can carry (the count prefix is
/// 16-bit). Writers coalesce far below this; the cap bounds what a decoder
/// will attempt to materialize from one wire message.
pub const MAX_BATCH_FRAMES: usize = u16::MAX as usize;

const TAG_SIZE: usize = 8 + 2; // ts + origin
const OBJECT_SIZE: usize = 4;
const REQUEST_SIZE: usize = 8;
const LEN_PREFIX: usize = 4;
const FLAG_SIZE: usize = 1;

/// Encodes a message into a freshly allocated buffer.
///
/// # Panics
///
/// Panics if a contained value is longer than `u32::MAX` bytes (the length
/// prefix is 32-bit).
pub fn encode(msg: &Message) -> Bytes {
    let mut buf = BytesMut::with_capacity(wire_size(msg));
    encode_into(msg, &mut buf);
    buf.freeze()
}

/// Encodes a message by appending to `buf`.
///
/// # Panics
///
/// Panics if a contained value is longer than `u32::MAX` bytes.
pub fn encode_into(msg: &Message, buf: &mut BytesMut) {
    match msg {
        Message::WriteReq {
            object,
            request,
            value,
        } => {
            buf.put_u8(D_WRITE_REQ);
            put_object(buf, *object);
            put_request(buf, *request);
            put_value(buf, value);
        }
        Message::ReadReq { object, request } => {
            buf.put_u8(D_READ_REQ);
            put_object(buf, *object);
            put_request(buf, *request);
        }
        Message::WriteAck { object, request } => {
            buf.put_u8(D_WRITE_ACK);
            put_object(buf, *object);
            put_request(buf, *request);
        }
        Message::ReadAck {
            object,
            request,
            value,
        } => {
            buf.put_u8(D_READ_ACK);
            put_object(buf, *object);
            put_request(buf, *request);
            put_value(buf, value);
        }
        Message::Ring(frame) => encode_ring_into(frame, buf),
        Message::RingBatch(frames) => encode_ring_batch_into(frames, buf),
        Message::StatsRequest { request } => {
            buf.put_u8(D_STATS_REQ);
            put_request(buf, *request);
        }
        Message::StatsReply { request, text } => {
            buf.put_u8(D_STATS_REPLY);
            put_request(buf, *request);
            put_value(buf, text);
        }
    }
}

/// Encodes `Message::Ring(frame)` by appending to `buf`, without
/// constructing the enum — hot-path helper for transports that hold
/// frames by reference.
///
/// # Panics
///
/// Panics if a contained value is longer than `u32::MAX` bytes.
pub fn encode_ring_into(frame: &RingFrame, buf: &mut BytesMut) {
    buf.put_u8(D_RING);
    put_frame(buf, frame);
}

/// Encodes `Message::RingBatch(frames)` by appending to `buf`, without
/// constructing the enum.
///
/// # Panics
///
/// Panics if `frames.len()` exceeds [`MAX_BATCH_FRAMES`] or a contained
/// value is longer than `u32::MAX` bytes.
pub fn encode_ring_batch_into(frames: &[RingFrame], buf: &mut BytesMut) {
    buf.put_u8(D_RING_BATCH);
    let count = u16::try_from(frames.len())
        .unwrap_or_else(|_| panic!("batch of {} frames exceeds u16::MAX", frames.len()));
    buf.put_u16(count);
    for frame in frames {
        put_frame(buf, frame);
    }
}

fn put_frame(buf: &mut BytesMut, frame: &RingFrame) {
    put_object(buf, frame.object);
    match &frame.pre_write {
        None => buf.put_u8(0),
        Some(pw) => {
            buf.put_u8(1);
            put_tag(buf, pw.tag);
            buf.put_u8(u8::from(pw.recovery));
            put_value(buf, &pw.value);
        }
    }
    match &frame.write {
        None => buf.put_u8(0),
        Some(w) => {
            buf.put_u8(1);
            put_tag(buf, w.tag);
            match &w.value {
                None => buf.put_u8(0),
                Some(v) => {
                    buf.put_u8(1);
                    put_value(buf, v);
                }
            }
        }
    }
    match frame.rejoin {
        None => buf.put_u8(0),
        Some(r) => {
            buf.put_u8(1);
            buf.put_u16(r.server.0);
            buf.put_u8(u8::from(r.stale_source) | (u8::from(r.all_syncing) << 1));
        }
    }
}

/// The exact encoded size of `msg` in bytes, without encoding it.
///
/// Guaranteed equal to `encode(msg).len()` (tested exhaustively and by
/// property tests).
pub fn wire_size(msg: &Message) -> usize {
    1 + match msg {
        Message::WriteReq { value, .. } => OBJECT_SIZE + REQUEST_SIZE + LEN_PREFIX + value.len(),
        Message::ReadReq { .. } => OBJECT_SIZE + REQUEST_SIZE,
        Message::WriteAck { .. } => OBJECT_SIZE + REQUEST_SIZE,
        Message::ReadAck { value, .. } => OBJECT_SIZE + REQUEST_SIZE + LEN_PREFIX + value.len(),
        Message::Ring(frame) => frame_wire_size(frame),
        Message::RingBatch(frames) => 2 + frames.iter().map(frame_wire_size).sum::<usize>(),
        Message::StatsRequest { .. } => REQUEST_SIZE,
        Message::StatsReply { text, .. } => REQUEST_SIZE + LEN_PREFIX + text.len(),
    }
}

/// The exact encoded size of one ring frame's body (no discriminant), as
/// it appears inside [`Message::Ring`] and [`Message::RingBatch`]. Batch
/// schedulers use this to enforce byte budgets without encoding.
pub fn frame_wire_size(frame: &RingFrame) -> usize {
    let pw = match &frame.pre_write {
        None => 0,
        Some(pw) => TAG_SIZE + FLAG_SIZE + LEN_PREFIX + pw.value.len(),
    };
    let w = match &frame.write {
        None => 0,
        Some(wn) => TAG_SIZE + FLAG_SIZE + wn.value.as_ref().map_or(0, |v| LEN_PREFIX + v.len()),
    };
    let rejoin = frame.rejoin.map_or(0, |_| 2 + FLAG_SIZE);
    OBJECT_SIZE + FLAG_SIZE + pw + FLAG_SIZE + w + FLAG_SIZE + rejoin
}

/// Decodes a message from a complete buffer.
///
/// # Errors
///
/// Returns [`DecodeError`] if the buffer is truncated, carries an unknown
/// discriminant, or contains trailing bytes after the message.
pub fn decode(mut buf: &[u8]) -> Result<Message, DecodeError> {
    let msg = decode_partial(&mut buf)?;
    if !buf.is_empty() {
        return Err(DecodeError::TrailingBytes {
            remaining: buf.len(),
        });
    }
    Ok(msg)
}

/// Decodes a message from a complete refcounted buffer, materializing
/// every contained [`Value`] as a [`Bytes::slice`] **view** of `bytes`
/// instead of a copy — the zero-copy receive path. The buffer's
/// allocation stays alive for as long as any decoded value does; a
/// decode of a value-free message takes no reference, so callers may
/// reclaim the buffer (`Bytes::try_into_mut`) for the next read.
///
/// Byte-for-byte equivalent to [`decode`] (property-tested).
///
/// # Errors
///
/// As [`decode`].
pub fn decode_shared(bytes: &Bytes) -> Result<Message, DecodeError> {
    let mut buf: &[u8] = bytes;
    let msg = decode_one(&mut buf, ValueSrc::Shared(bytes))?;
    if !buf.is_empty() {
        return Err(DecodeError::TrailingBytes {
            remaining: buf.len(),
        });
    }
    Ok(msg)
}

/// Decodes one message from the front of `buf`, advancing it past the
/// consumed bytes. Useful for transports that batch several messages into
/// one segment.
///
/// # Errors
///
/// Returns [`DecodeError`] if the buffer does not start with a complete,
/// well-formed message.
pub fn decode_partial(buf: &mut &[u8]) -> Result<Message, DecodeError> {
    decode_one(buf, ValueSrc::Copied)
}

/// Where decoded [`Value`] bytes come from: copied out of the transient
/// input slice, or sliced as refcounted views of a shared buffer the
/// cursor is reading (the cursor must always be a suffix of that buffer
/// for the offset arithmetic to hold).
#[derive(Clone, Copy)]
enum ValueSrc<'a> {
    Copied,
    Shared(&'a Bytes),
}

impl ValueSrc<'_> {
    fn take(self, buf: &mut &[u8], len: usize) -> Value {
        let value = match self {
            ValueSrc::Copied => Value::from(&buf[..len]),
            ValueSrc::Shared(bytes) => {
                let off = bytes.len() - buf.len();
                Value::from(bytes.slice(off..off + len))
            }
        };
        buf.advance(len);
        value
    }
}

fn decode_one(buf: &mut &[u8], src: ValueSrc<'_>) -> Result<Message, DecodeError> {
    let disc = get_u8(buf)?;
    match disc {
        D_WRITE_REQ => Ok(Message::WriteReq {
            object: get_object(buf)?,
            request: get_request(buf)?,
            value: get_value(buf, src)?,
        }),
        D_READ_REQ => Ok(Message::ReadReq {
            object: get_object(buf)?,
            request: get_request(buf)?,
        }),
        D_WRITE_ACK => Ok(Message::WriteAck {
            object: get_object(buf)?,
            request: get_request(buf)?,
        }),
        D_READ_ACK => Ok(Message::ReadAck {
            object: get_object(buf)?,
            request: get_request(buf)?,
            value: get_value(buf, src)?,
        }),
        D_RING => Ok(Message::Ring(get_frame(buf, src)?)),
        D_RING_BATCH => {
            need(buf, 2)?;
            let count = usize::from(buf.get_u16());
            // Cap the pre-allocation: a corrupt count must not reserve
            // megabytes before the truncation error surfaces.
            let mut frames = Vec::with_capacity(count.min(1024));
            for _ in 0..count {
                frames.push(get_frame(buf, src)?);
            }
            Ok(Message::RingBatch(frames))
        }
        D_STATS_REQ => Ok(Message::StatsRequest {
            request: get_request(buf)?,
        }),
        D_STATS_REPLY => Ok(Message::StatsReply {
            request: get_request(buf)?,
            text: get_value(buf, src)?,
        }),
        other => Err(DecodeError::UnknownDiscriminant(other)),
    }
}

fn get_frame(buf: &mut &[u8], src: ValueSrc<'_>) -> Result<RingFrame, DecodeError> {
    let object = get_object(buf)?;
    let pre_write = if get_flag(buf)? {
        let tag = get_tag(buf)?;
        let recovery = get_flag(buf)?;
        let value = get_value(buf, src)?;
        Some(PreWrite {
            tag,
            value,
            recovery,
        })
    } else {
        None
    };
    let write = if get_flag(buf)? {
        let tag = get_tag(buf)?;
        let value = if get_flag(buf)? {
            Some(get_value(buf, src)?)
        } else {
            None
        };
        Some(WriteNotice { tag, value })
    } else {
        None
    };
    let rejoin = if get_flag(buf)? {
        need(buf, 3)?;
        let server = ServerId(buf.get_u16());
        let flags = buf.get_u8();
        if flags > 0b11 {
            return Err(DecodeError::BadOptionFlag(flags));
        }
        Some(Rejoin {
            server,
            stale_source: flags & 0b01 != 0,
            all_syncing: flags & 0b10 != 0,
        })
    } else {
        None
    };
    Ok(RingFrame {
        object,
        pre_write,
        write,
        rejoin,
    })
}

fn put_object(buf: &mut BytesMut, object: ObjectId) {
    buf.put_u32(object.0);
}

fn put_request(buf: &mut BytesMut, request: RequestId) {
    buf.put_u64(request.0);
}

fn put_tag(buf: &mut BytesMut, tag: Tag) {
    buf.put_u64(tag.ts);
    buf.put_u16(tag.origin.0);
}

fn put_value(buf: &mut BytesMut, value: &Value) {
    let len = u32::try_from(value.len()).expect("value length exceeds u32::MAX");
    buf.put_u32(len);
    buf.put_slice(value.as_bytes());
}

fn need(buf: &[u8], n: usize) -> Result<(), DecodeError> {
    if buf.len() < n {
        Err(DecodeError::UnexpectedEof {
            needed: n,
            remaining: buf.len(),
        })
    } else {
        Ok(())
    }
}

fn get_u8(buf: &mut &[u8]) -> Result<u8, DecodeError> {
    need(buf, 1)?;
    Ok(buf.get_u8())
}

fn get_flag(buf: &mut &[u8]) -> Result<bool, DecodeError> {
    match get_u8(buf)? {
        0 => Ok(false),
        1 => Ok(true),
        other => Err(DecodeError::BadOptionFlag(other)),
    }
}

fn get_object(buf: &mut &[u8]) -> Result<ObjectId, DecodeError> {
    need(buf, 4)?;
    Ok(ObjectId(buf.get_u32()))
}

fn get_request(buf: &mut &[u8]) -> Result<RequestId, DecodeError> {
    need(buf, 8)?;
    Ok(RequestId(buf.get_u64()))
}

fn get_tag(buf: &mut &[u8]) -> Result<Tag, DecodeError> {
    need(buf, TAG_SIZE)?;
    let ts = buf.get_u64();
    let origin = ServerId(buf.get_u16());
    Ok(Tag { ts, origin })
}

fn get_value(buf: &mut &[u8], src: ValueSrc<'_>) -> Result<Value, DecodeError> {
    need(buf, 4)?;
    let len = buf.get_u32() as usize;
    need(buf, len)?;
    Ok(src.take(buf, len))
}

/// Identifies the sender on a freshly accepted `hts-net` connection; see
/// that crate's handshake. Kept here so both ends agree on the encoding.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Hello {
    /// The peer is ring server `ServerId` (lane 0 traffic; predates the
    /// laned runtime and stays the encoding for lane 0 so a single-lane
    /// deployment is byte-identical to the pre-lane wire protocol).
    Server(ServerId),
    /// The peer is ring server `ServerId` and this connection carries
    /// lane `lane`'s ring stream (parallel ring lanes; lane ≥ 1 — lane 0
    /// uses [`Hello::Server`]).
    ServerLane(ServerId, u16),
    /// The peer is client `ClientId`.
    Client(ClientId),
}

impl Hello {
    /// Encodes the handshake (3 or 5 bytes) as a refcounted buffer, so
    /// connection setup paths hand the writer the same allocation.
    pub fn encode(self) -> Bytes {
        let mut v = BytesMut::with_capacity(5);
        match self {
            Hello::Server(s) => {
                v.put_u8(0x01);
                v.put_u16(s.0);
            }
            Hello::Client(c) => {
                v.put_u8(0x02);
                v.put_u32(c.0);
            }
            Hello::ServerLane(s, lane) => {
                v.put_u8(0x03);
                v.put_u16(s.0);
                v.put_u16(lane);
            }
        }
        v.freeze()
    }

    /// Decodes a handshake produced by [`Hello::encode`].
    ///
    /// # Errors
    ///
    /// Returns [`DecodeError`] on truncation or an unknown role byte.
    pub fn decode(mut buf: &[u8]) -> Result<Hello, DecodeError> {
        let b = &mut buf;
        match get_u8(b)? {
            0x01 => {
                need(b, 2)?;
                Ok(Hello::Server(ServerId(b.get_u16())))
            }
            0x02 => {
                need(b, 4)?;
                Ok(Hello::Client(ClientId(b.get_u32())))
            }
            0x03 => {
                need(b, 4)?;
                let server = ServerId(b.get_u16());
                Ok(Hello::ServerLane(server, b.get_u16()))
            }
            other => Err(DecodeError::UnknownDiscriminant(other)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_messages() -> Vec<Message> {
        let tag = Tag::new(5, ServerId(2));
        vec![
            Message::WriteReq {
                object: ObjectId(0),
                request: RequestId(1),
                value: Value::from_u64(77),
            },
            Message::WriteReq {
                object: ObjectId(9),
                request: RequestId(u64::MAX),
                value: Value::bottom(),
            },
            Message::ReadReq {
                object: ObjectId(3),
                request: RequestId(2),
            },
            Message::WriteAck {
                object: ObjectId(3),
                request: RequestId(2),
            },
            Message::ReadAck {
                object: ObjectId(3),
                request: RequestId(2),
                value: Value::filled(0xAB, 100),
            },
            Message::Ring(RingFrame {
                object: ObjectId(1),
                pre_write: None,
                write: None,
                rejoin: None,
            }),
            Message::Ring(RingFrame::announce_rejoin(Rejoin::announce(ServerId(5)))),
            Message::Ring(RingFrame::pre_write(ObjectId(1), tag, Value::filled(1, 33))),
            Message::Ring(RingFrame::write(ObjectId(1), tag)),
            Message::Ring(RingFrame::write_with_value(
                ObjectId(1),
                tag,
                Value::filled(2, 65_536),
            )),
            Message::Ring(RingFrame {
                object: ObjectId(2),
                pre_write: Some(PreWrite {
                    tag,
                    value: Value::from_u64(1),
                    recovery: true,
                }),
                write: Some(WriteNotice {
                    tag: Tag::new(4, ServerId(0)),
                    value: None,
                }),
                rejoin: Some(Rejoin {
                    server: ServerId(3),
                    stale_source: true,
                    all_syncing: true,
                }),
            }),
            Message::RingBatch(Vec::new()),
            Message::RingBatch(vec![
                RingFrame::pre_write(ObjectId(1), tag, Value::filled(3, 100)),
                RingFrame::write(ObjectId(2), tag),
                RingFrame::announce_rejoin(Rejoin::announce(ServerId(1))),
            ]),
            Message::StatsRequest {
                request: RequestId(11),
            },
            Message::StatsReply {
                request: RequestId(11),
                text: Value::from(b"hts_up 1\n".to_vec()),
            },
        ]
    }

    #[test]
    fn roundtrip_all_variants() {
        for msg in sample_messages() {
            let bytes = encode(&msg);
            assert_eq!(bytes.len(), wire_size(&msg), "wire_size mismatch: {msg}");
            let back = decode(&bytes).expect("decode");
            assert_eq!(back, msg);
        }
    }

    #[test]
    fn truncation_is_detected_at_every_length() {
        for msg in sample_messages() {
            let bytes = encode(&msg);
            for cut in 0..bytes.len() {
                let err = decode(&bytes[..cut]).expect_err("truncated decode must fail");
                assert!(
                    matches!(err, DecodeError::UnexpectedEof { .. }),
                    "cut={cut} gave {err:?} for {msg}"
                );
            }
        }
    }

    #[test]
    fn trailing_bytes_rejected() {
        let msg = Message::ReadReq {
            object: ObjectId(0),
            request: RequestId(1),
        };
        // Deliberate copy (`to_vec`): the test mutates the encoding,
        // which needs an owned, growable buffer.
        let mut bytes = encode(&msg).to_vec();
        bytes.push(0);
        assert_eq!(
            decode(&bytes),
            Err(DecodeError::TrailingBytes { remaining: 1 })
        );
    }

    #[test]
    fn unknown_discriminant_rejected() {
        assert_eq!(decode(&[0x7F]), Err(DecodeError::UnknownDiscriminant(0x7F)));
    }

    #[test]
    fn bad_option_flag_rejected() {
        // Ring frame with pre_write flag = 2.
        let mut bytes = vec![D_RING];
        bytes.extend_from_slice(&0u32.to_be_bytes());
        bytes.push(2);
        assert_eq!(decode(&bytes), Err(DecodeError::BadOptionFlag(2)));
    }

    #[test]
    fn decode_partial_consumes_exactly_one_message() {
        let a = Message::ReadReq {
            object: ObjectId(1),
            request: RequestId(2),
        };
        let b = Message::WriteAck {
            object: ObjectId(3),
            request: RequestId(4),
        };
        // Deliberate copy (`to_vec`): the test concatenates two
        // messages, which needs an owned, growable buffer.
        let mut bytes = encode(&a).to_vec();
        bytes.extend_from_slice(&encode(&b));
        let mut cursor = &bytes[..];
        assert_eq!(decode_partial(&mut cursor).unwrap(), a);
        assert_eq!(decode_partial(&mut cursor).unwrap(), b);
        assert!(cursor.is_empty());
    }

    #[test]
    fn max_size_batch_roundtrips() {
        // The count prefix is 16-bit: a batch of exactly MAX_BATCH_FRAMES
        // frames must encode and come back intact.
        let frame = RingFrame::write(ObjectId(7), Tag::new(9, ServerId(1)));
        let msg = Message::RingBatch(vec![frame; MAX_BATCH_FRAMES]);
        let bytes = encode(&msg);
        assert_eq!(bytes.len(), wire_size(&msg));
        assert_eq!(decode(&bytes).unwrap(), msg);
    }

    #[test]
    #[should_panic(expected = "exceeds u16::MAX")]
    fn oversized_batch_panics_at_encode() {
        let frame = RingFrame::write(ObjectId(0), Tag::new(1, ServerId(0)));
        let msg = Message::RingBatch(vec![frame; MAX_BATCH_FRAMES + 1]);
        let _ = encode(&msg);
    }

    #[test]
    fn batch_wire_size_is_sum_of_frames_plus_count() {
        let frames = vec![
            RingFrame::write(ObjectId(1), Tag::new(1, ServerId(0))),
            RingFrame::pre_write(ObjectId(2), Tag::new(2, ServerId(1)), Value::filled(1, 64)),
        ];
        let per_frame: usize = frames.iter().map(frame_wire_size).sum();
        assert_eq!(
            wire_size(&Message::RingBatch(frames.clone())),
            1 + 2 + per_frame
        );
        // A batched frame costs exactly its Ring encoding minus the
        // discriminant — coalescing never inflates the payload.
        for frame in frames {
            assert_eq!(
                frame_wire_size(&frame) + 1,
                wire_size(&Message::Ring(frame.clone()))
            );
        }
    }

    #[test]
    fn by_ref_ring_encoders_match_the_enum_path() {
        let frames = vec![
            RingFrame::pre_write(ObjectId(1), Tag::new(2, ServerId(0)), Value::filled(9, 33)),
            RingFrame::write(ObjectId(1), Tag::new(2, ServerId(0))),
        ];
        let mut by_ref = BytesMut::new();
        encode_ring_into(&frames[0], &mut by_ref);
        assert_eq!(&by_ref[..], &encode(&Message::Ring(frames[0].clone()))[..]);

        by_ref.clear();
        encode_ring_batch_into(&frames, &mut by_ref);
        assert_eq!(&by_ref[..], &encode(&Message::RingBatch(frames))[..]);
    }

    #[test]
    fn tag_only_write_is_small() {
        // The whole point of the piggyback optimization: a committed-write
        // notice must be tiny compared to the value it commits.
        let size = wire_size(&Message::Ring(RingFrame::write(
            ObjectId(0),
            Tag::new(1, ServerId(0)),
        )));
        assert!(size <= 32, "tag-only write frame is {size} bytes");
    }

    #[test]
    fn hello_roundtrip() {
        for hello in [
            Hello::Server(ServerId(3)),
            Hello::Client(ClientId(900)),
            Hello::ServerLane(ServerId(2), 3),
            Hello::ServerLane(ServerId(0), u16::MAX),
        ] {
            let bytes = hello.encode();
            assert_eq!(Hello::decode(&bytes).unwrap(), hello);
        }
        assert!(Hello::decode(&[0x09]).is_err());
        assert!(Hello::decode(&[0x01, 0x00]).is_err());
        assert!(Hello::decode(&[0x03, 0x00, 0x01]).is_err());
    }

    #[test]
    fn lane_zero_hello_is_the_legacy_server_encoding() {
        // A single-lane deployment must stay byte-identical to the
        // pre-lane wire protocol: lane 0 travels as Hello::Server.
        assert_eq!(&Hello::Server(ServerId(4)).encode()[..], [0x01, 0x00, 0x04]);
        assert_eq!(
            &Hello::ServerLane(ServerId(4), 1).encode()[..],
            [0x03, 0x00, 0x04, 0x00, 0x01]
        );
    }

    #[test]
    fn decode_shared_agrees_on_every_sample() {
        for msg in sample_messages() {
            let bytes = encode(&msg);
            assert_eq!(decode_shared(&bytes).expect("decode_shared"), msg);
            assert_eq!(
                decode_shared(&bytes).expect("decode_shared"),
                decode(&bytes).expect("decode"),
                "shared/copied divergence for {msg}"
            );
        }
    }

    #[test]
    fn decode_shared_rejects_trailing_bytes_and_truncation() {
        let msg = Message::ReadReq {
            object: ObjectId(0),
            request: RequestId(1),
        };
        // Deliberate copy: the test appends a trailing byte, which needs
        // an owned, growable buffer.
        let mut bytes = encode(&msg).to_vec();
        bytes.push(0);
        assert_eq!(
            decode_shared(&Bytes::from(bytes.clone())),
            Err(DecodeError::TrailingBytes { remaining: 1 })
        );
        bytes.truncate(3);
        assert!(matches!(
            decode_shared(&Bytes::from(bytes)),
            Err(DecodeError::UnexpectedEof { .. })
        ));
    }

    #[test]
    fn decode_shared_values_are_views_not_copies() {
        let value = Value::filled(0x5A, 64 * 1024);
        let msg = Message::WriteReq {
            object: ObjectId(7),
            request: RequestId(9),
            value,
        };
        let bytes = encode(&msg);
        let start = bytes.as_ptr() as usize;
        let end = start + bytes.len();
        match decode_shared(&bytes).expect("decode_shared") {
            Message::WriteReq { value, .. } => {
                let p = value.as_bytes().as_ptr() as usize;
                assert!(
                    p >= start && p + value.len() <= end,
                    "decoded value was copied out of the input buffer"
                );
            }
            other => panic!("decoded wrong variant: {other}"),
        }
    }

    #[test]
    fn max_size_batch_roundtrips_through_decode_shared() {
        let frame = RingFrame::write(ObjectId(7), Tag::new(9, ServerId(1)));
        let msg = Message::RingBatch(vec![frame; MAX_BATCH_FRAMES]);
        let bytes = encode(&msg);
        assert_eq!(decode_shared(&bytes).expect("decode_shared"), msg);
        // And the empty edge.
        let empty = Message::RingBatch(Vec::new());
        assert_eq!(
            decode_shared(&encode(&empty)).expect("decode_shared"),
            empty
        );
    }
}
