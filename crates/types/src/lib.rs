//! Core vocabulary types for the `hts` atomic storage system.
//!
//! This crate defines the identifiers, timestamps ("tags"), values and
//! protocol messages shared by every other crate in the workspace, together
//! with a compact binary wire codec used both by the real TCP runtime
//! (`hts-net`) and by the network simulator (`hts-sim`) for exact
//! byte-level accounting.
//!
//! The protocol implemented on top of these types is the ring-based atomic
//! storage algorithm of Guerraoui, Kostić, Levy and Quéma (*"A High
//! Throughput Atomic Storage Algorithm"*, ICDCS 2007): values are ordered by
//! a [`Tag`] (a Lamport-style timestamp with the originating server id as
//! tie-breaker), a write circulates a value-carrying [`PreWrite`] followed
//! by a tag-only [`WriteNotice`] around the server ring, and clients talk to
//! any single server with the request/reply messages in [`Message`].
//!
//! # Examples
//!
//! ```
//! use hts_types::{Message, ObjectId, RequestId, Tag, ServerId, Value, codec};
//!
//! let msg = Message::WriteReq {
//!     object: ObjectId(0),
//!     request: RequestId(42),
//!     value: Value::from_static(b"hello"),
//! };
//! let bytes = codec::encode(&msg);
//! assert_eq!(bytes.len(), codec::wire_size(&msg));
//! let back = codec::decode(&bytes)?;
//! assert_eq!(msg, back);
//!
//! // Tags order lexicographically: timestamp first, origin breaks ties.
//! assert!(Tag::new(3, ServerId(1)) < Tag::new(3, ServerId(2)));
//! assert!(Tag::new(3, ServerId(9)) < Tag::new(4, ServerId(0)));
//! # Ok::<(), hts_types::DecodeError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod codec;
mod error;
mod id;
mod message;
pub mod sync;
mod tag;
mod value;

pub use error::DecodeError;
pub use id::{ClientId, NodeId, ObjectId, ProcessRole, RequestId, ServerId};
pub use message::{Message, PreWrite, Rejoin, RingFrame, WriteNotice};
pub use tag::Tag;
pub use value::Value;
