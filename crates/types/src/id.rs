//! Identifier newtypes.
//!
//! Every participant and request in the system is named by a small, `Copy`
//! integer newtype (per C-NEWTYPE): this keeps simulator bookkeeping cheap
//! and makes it impossible to confuse, say, a server index with a client
//! handle at compile time.

use std::fmt;

use serde::{Deserialize, Serialize};

/// Identifier of a storage **server** (the paper's process `p_i`).
///
/// Servers are numbered densely `0..n` in ring order: the successor of
/// server `i` in a healthy ring of `n` servers is `(i + 1) % n`.
///
/// # Examples
///
/// ```
/// use hts_types::ServerId;
/// let s = ServerId(2);
/// assert_eq!(s.index(), 2);
/// assert_eq!(format!("{s}"), "s2");
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct ServerId(pub u16);

impl ServerId {
    /// Returns the server's ring index as a `usize`.
    pub fn index(self) -> usize {
        usize::from(self.0)
    }
}

impl fmt::Display for ServerId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "s{}", self.0)
    }
}

impl From<u16> for ServerId {
    fn from(raw: u16) -> Self {
        ServerId(raw)
    }
}

/// Identifier of a **client** process (reader or writer).
///
/// The algorithm supports an unbounded number of clients; ids only need to
/// be unique within one deployment or simulation.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct ClientId(pub u32);

impl fmt::Display for ClientId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "c{}", self.0)
    }
}

impl From<u32> for ClientId {
    fn from(raw: u32) -> Self {
        ClientId(raw)
    }
}

/// Identifier of a register **object** hosted by the ring.
///
/// A deployment multiplexes many independent atomic registers ("objects")
/// over one server ring; single-register uses pass [`ObjectId::SINGLE`].
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct ObjectId(pub u32);

impl ObjectId {
    /// The conventional object id used by single-register deployments.
    pub const SINGLE: ObjectId = ObjectId(0);
}

impl fmt::Display for ObjectId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "obj{}", self.0)
    }
}

impl From<u32> for ObjectId {
    fn from(raw: u32) -> Self {
        ObjectId(raw)
    }
}

/// Client-chosen identifier correlating a request with its reply.
///
/// Request ids must be unique per client connection; the bundled client
/// state machines allocate them from a monotone counter.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct RequestId(pub u64);

impl fmt::Display for RequestId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "r{}", self.0)
    }
}

impl From<u64> for RequestId {
    fn from(raw: u64) -> Self {
        RequestId(raw)
    }
}

/// The role a process plays in a deployment.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ProcessRole {
    /// A storage server participating in the ring.
    Server,
    /// A client issuing read/write requests.
    Client,
}

impl fmt::Display for ProcessRole {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProcessRole::Server => f.write_str("server"),
            ProcessRole::Client => f.write_str("client"),
        }
    }
}

/// A process address in a concrete deployment (simulator or TCP cluster):
/// either a ring server or a client.
///
/// Transport layers route on `NodeId`; the protocol state machines only
/// ever reason about [`ServerId`] / [`ClientId`].
///
/// # Examples
///
/// ```
/// use hts_types::{ClientId, NodeId, ServerId};
/// let a = NodeId::Server(ServerId(0));
/// let b = NodeId::Client(ClientId(7));
/// assert!(a.is_server() && !b.is_server());
/// assert_eq!(format!("{a}/{b}"), "s0/c7");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum NodeId {
    /// A ring server.
    Server(ServerId),
    /// A client.
    Client(ClientId),
}

impl NodeId {
    /// Returns `true` if this node is a ring server.
    pub fn is_server(self) -> bool {
        matches!(self, NodeId::Server(_))
    }

    /// Returns the server id, if this node is a server.
    pub fn as_server(self) -> Option<ServerId> {
        match self {
            NodeId::Server(s) => Some(s),
            NodeId::Client(_) => None,
        }
    }

    /// Returns the client id, if this node is a client.
    pub fn as_client(self) -> Option<ClientId> {
        match self {
            NodeId::Client(c) => Some(c),
            NodeId::Server(_) => None,
        }
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NodeId::Server(s) => s.fmt(f),
            NodeId::Client(c) => c.fmt(f),
        }
    }
}

impl From<ServerId> for NodeId {
    fn from(id: ServerId) -> Self {
        NodeId::Server(id)
    }
}

impl From<ClientId> for NodeId {
    fn from(id: ClientId) -> Self {
        NodeId::Client(id)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_forms() {
        assert_eq!(ServerId(3).to_string(), "s3");
        assert_eq!(ClientId(11).to_string(), "c11");
        assert_eq!(ObjectId(5).to_string(), "obj5");
        assert_eq!(RequestId(9).to_string(), "r9");
        assert_eq!(NodeId::Server(ServerId(1)).to_string(), "s1");
        assert_eq!(NodeId::Client(ClientId(2)).to_string(), "c2");
    }

    #[test]
    fn node_id_accessors() {
        let s = NodeId::from(ServerId(4));
        let c = NodeId::from(ClientId(4));
        assert_eq!(s.as_server(), Some(ServerId(4)));
        assert_eq!(s.as_client(), None);
        assert_eq!(c.as_client(), Some(ClientId(4)));
        assert_eq!(c.as_server(), None);
        assert!(s.is_server());
        assert!(!c.is_server());
    }

    #[test]
    fn server_ordering_is_by_index() {
        let mut v = vec![ServerId(2), ServerId(0), ServerId(1)];
        v.sort();
        assert_eq!(v, vec![ServerId(0), ServerId(1), ServerId(2)]);
    }

    #[test]
    fn conversion_roundtrips() {
        assert_eq!(ServerId::from(7u16), ServerId(7));
        assert_eq!(ClientId::from(8u32), ClientId(8));
        assert_eq!(ObjectId::from(9u32), ObjectId(9));
        assert_eq!(RequestId::from(10u64), RequestId(10));
        assert_eq!(ServerId(3).index(), 3);
    }
}
