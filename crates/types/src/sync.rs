//! Lock wrappers with an optional runtime lock-order race detector.
//!
//! [`DebugMutex`], [`DebugRwLock`] and [`DebugCondvar`] are drop-in
//! stand-ins for their `std::sync` counterparts, used by the runtime
//! crates (`hts-net`'s ring-writer queues foremost). Two differences:
//!
//! * **Poison recovery** — a poisoned lock is recovered with
//!   [`PoisonError::into_inner`] instead of a second panic: the thread
//!   that poisoned it already failed the test run, and the protocol
//!   state behind these locks (frame queues) stays structurally valid.
//! * **Lock-order detection** — with the `lock-order` cargo feature, every
//!   acquisition is recorded into a process-global lock-order graph keyed
//!   by lock instance, and every thread tracks the locks it holds:
//!
//!   * acquiring a lock that closes a **cycle** in the order graph (an
//!     A→B order on one path, B→A on another — a latent deadlock even if
//!     the schedule never hit it) panics with both lock names;
//!   * calling [`blocking_syscall`] — placed before the runtime's socket
//!     writes, flushes and fsyncs — panics if the thread still **holds
//!     any lock**, the "guard held across a blocking syscall" stall that
//!     PR 3 and PR 4 each fixed once by hand.
//!
//! Without the feature (the default) all tracking code compiles away;
//! the wrappers are plain newtypes over `std::sync` and
//! [`blocking_syscall`] is an empty inline function. The CI `lockorder`
//! job runs the hts-net TCP integration tests with the feature enabled;
//! see EXPERIMENTS.md.
//!
//! [`Condvar::wait`](DebugCondvar::wait) releases the lock, so the held
//! set is maintained across waits: the entry is removed for the duration
//! of the wait and re-checked (order edges included) on re-acquisition.

use std::sync::PoisonError;
use std::sync::{RwLock, RwLockReadGuard, RwLockWriteGuard};
use std::time::Duration;

/// The raw mutex/condvar layer under the Debug wrappers: plain `std`
/// (poison-recovering) by default, the `hts-mc` shims with the
/// `model-check` feature on — so `crates/mc` models can explore code
/// built on [`DebugMutex`]/[`DebugCondvar`] (the ring-writer handshake
/// foremost). `DebugRwLock` stays on `std::sync::RwLock` either way:
/// hts-mc has no rwlock shim, and no model covers one yet.
#[cfg(not(feature = "model-check"))]
mod raw {
    use std::sync::PoisonError;
    pub(super) use std::sync::{Condvar, Mutex, MutexGuard};
    use std::time::Duration;

    pub(super) fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
        m.lock().unwrap_or_else(PoisonError::into_inner)
    }

    pub(super) fn wait<'a, T>(cv: &Condvar, g: MutexGuard<'a, T>) -> MutexGuard<'a, T> {
        cv.wait(g).unwrap_or_else(PoisonError::into_inner)
    }

    pub(super) fn wait_timeout<'a, T>(
        cv: &Condvar,
        g: MutexGuard<'a, T>,
        timeout: Duration,
    ) -> (MutexGuard<'a, T>, bool) {
        match cv.wait_timeout(g, timeout) {
            Ok((g, r)) => (g, r.timed_out()),
            Err(poisoned) => {
                let (g, r) = poisoned.into_inner();
                (g, r.timed_out())
            }
        }
    }
}

#[cfg(feature = "model-check")]
mod raw {
    pub(super) use hts_mc::sync::{Condvar, Mutex, MutexGuard};
    use std::time::Duration;

    pub(super) fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
        m.lock()
    }

    pub(super) fn wait<'a, T>(cv: &Condvar, g: MutexGuard<'a, T>) -> MutexGuard<'a, T> {
        cv.wait(g)
    }

    pub(super) fn wait_timeout<'a, T>(
        cv: &Condvar,
        g: MutexGuard<'a, T>,
        timeout: Duration,
    ) -> (MutexGuard<'a, T>, bool) {
        cv.wait_timeout(g, timeout)
    }
}

#[cfg(feature = "lock-order")]
mod track {
    use std::cell::RefCell;
    use std::collections::{HashMap, HashSet};
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::{Mutex, OnceLock, PoisonError};

    static NEXT_ID: AtomicU64 = AtomicU64::new(1);

    /// A fresh instance id for a tracked lock.
    pub fn new_id() -> u64 {
        // ordering: Relaxed — a pure id allocator; uniqueness is all the
        // RMW guarantees and all the detector needs.
        NEXT_ID.fetch_add(1, Ordering::Relaxed)
    }

    #[derive(Default)]
    struct Graph {
        /// held-lock id → ids acquired while it was held.
        edges: HashMap<u64, HashSet<u64>>,
        names: HashMap<u64, &'static str>,
    }

    impl Graph {
        /// Is `to` reachable from `from` over recorded order edges?
        fn reaches(&self, from: u64, to: u64) -> bool {
            let mut stack = vec![from];
            let mut seen = HashSet::new();
            while let Some(n) = stack.pop() {
                if n == to {
                    return true;
                }
                if !seen.insert(n) {
                    continue;
                }
                if let Some(next) = self.edges.get(&n) {
                    stack.extend(next.iter().copied());
                }
            }
            false
        }
    }

    fn graph() -> &'static Mutex<Graph> {
        static GRAPH: OnceLock<Mutex<Graph>> = OnceLock::new();
        GRAPH.get_or_init(Mutex::default)
    }

    thread_local! {
        /// Locks this thread currently holds, oldest first.
        static HELD: RefCell<Vec<(u64, &'static str)>> = const { RefCell::new(Vec::new()) };
    }

    /// Records the intent to acquire (id, name): adds order edges from
    /// every held lock and panics if one of them closes a cycle.
    pub fn pre_acquire(id: u64, name: &'static str) {
        let held: Vec<(u64, &'static str)> = HELD.with(|h| h.borrow().clone());
        if held.is_empty() {
            return;
        }
        let mut g = graph().lock().unwrap_or_else(PoisonError::into_inner);
        g.names.insert(id, name);
        for (hid, hname) in &held {
            g.names.insert(*hid, hname);
            // A cycle exists if the lock being acquired already orders
            // BEFORE a lock we hold, somewhere else in the program.
            if *hid != id && g.reaches(id, *hid) {
                // lint: allow(panic): the detector's verdict IS a panic
                panic!(
                    "lock-order cycle: thread {:?} acquiring `{name}` (#{id}) while holding \
                     `{hname}` (#{hid}), but `{name}` -> ... -> `{hname}` was already \
                     established elsewhere — latent deadlock",
                    std::thread::current().id(),
                );
            }
            g.edges.entry(*hid).or_default().insert(id);
        }
    }

    /// Marks (id, name) as held by this thread.
    pub fn acquired(id: u64, name: &'static str) {
        HELD.with(|h| h.borrow_mut().push((id, name)));
    }

    /// Releases this thread's most recent hold of `id`.
    pub fn released(id: u64) {
        HELD.with(|h| {
            let mut held = h.borrow_mut();
            if let Some(pos) = held.iter().rposition(|(hid, _)| *hid == id) {
                held.remove(pos);
            }
        });
    }

    /// Panics if this thread holds any tracked lock.
    pub fn assert_unlocked(what: &str) {
        HELD.with(|h| {
            let held = h.borrow();
            if let Some((_, name)) = held.last() {
                // lint: allow(panic): the detector's verdict IS a panic
                panic!(
                    "blocking syscall `{what}` on thread {:?} with lock guard `{name}` held \
                     ({} total) — a slow peer would stall every sibling of this lock",
                    std::thread::current().id(),
                    held.len(),
                );
            }
        });
    }
}

/// Declares a blocking syscall (socket write/flush, fsync, connect) is
/// about to run on this thread. With the `lock-order` feature, panics if
/// the thread still holds any [`DebugMutex`]/[`DebugRwLock`] guard; a
/// no-op otherwise.
#[inline]
pub fn blocking_syscall(what: &str) {
    #[cfg(feature = "lock-order")]
    track::assert_unlocked(what);
    #[cfg(not(feature = "lock-order"))]
    let _ = what;
}

/// A [`Mutex`] that recovers from poisoning and participates in the
/// `lock-order` detector. See the [module docs](self).
pub struct DebugMutex<T> {
    inner: raw::Mutex<T>,
    name: &'static str,
    #[cfg(feature = "lock-order")]
    id: u64,
}

/// Guard of a [`DebugMutex`]; releases the hold record on drop.
pub struct DebugMutexGuard<'a, T> {
    // `Option` so a condvar wait can take the raw guard out without
    // running the release bookkeeping twice.
    inner: Option<raw::MutexGuard<'a, T>>,
    #[cfg(feature = "lock-order")]
    id: u64,
}

impl<T> DebugMutex<T> {
    /// Creates a named mutex (the name appears in detector panics).
    pub fn new(name: &'static str, value: T) -> Self {
        DebugMutex {
            inner: raw::Mutex::new(value),
            name,
            #[cfg(feature = "lock-order")]
            id: track::new_id(),
        }
    }

    /// The lock's diagnostic name.
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Acquires the lock, recovering from poison (see the module docs).
    pub fn lock(&self) -> DebugMutexGuard<'_, T> {
        #[cfg(feature = "lock-order")]
        track::pre_acquire(self.id, self.name);
        let guard = raw::lock(&self.inner);
        #[cfg(feature = "lock-order")]
        track::acquired(self.id, self.name);
        DebugMutexGuard {
            inner: Some(guard),
            #[cfg(feature = "lock-order")]
            id: self.id,
        }
    }
}

impl<T> std::ops::Deref for DebugMutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        // `inner` is only None inside a condvar wait, during which the
        // guard is moved into the wait and cannot be dereferenced.
        // lint: allow(panic): unobservable by construction, Deref cannot fail
        self.inner.as_ref().expect("guard not in a condvar wait")
    }
}

impl<T> std::ops::DerefMut for DebugMutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        // lint: allow(panic): unobservable by construction, DerefMut cannot fail
        self.inner.as_mut().expect("guard not in a condvar wait")
    }
}

impl<T> Drop for DebugMutexGuard<'_, T> {
    fn drop(&mut self) {
        #[cfg(feature = "lock-order")]
        if self.inner.is_some() {
            track::released(self.id);
        }
    }
}

/// A [`Condvar`] paired with [`DebugMutex`]: waits keep the detector's
/// held-set accurate (the lock is released for the wait's duration).
pub struct DebugCondvar {
    inner: raw::Condvar,
}

impl DebugCondvar {
    /// Creates a condvar.
    #[allow(clippy::new_without_default)]
    pub fn new() -> Self {
        DebugCondvar {
            inner: raw::Condvar::new(),
        }
    }

    /// Blocks until notified, releasing `guard` for the duration.
    pub fn wait<'a, T>(&self, mut guard: DebugMutexGuard<'a, T>) -> DebugMutexGuard<'a, T> {
        #[cfg(feature = "lock-order")]
        let id = guard.id;
        // lint: allow(panic): unobservable, the wait consumes the guard
        let raw_guard = guard.inner.take().expect("guard not already waiting");
        #[cfg(feature = "lock-order")]
        track::released(id);
        let raw_guard = raw::wait(&self.inner, raw_guard);
        #[cfg(feature = "lock-order")]
        track::acquired(id, "condvar re-acquire");
        guard.inner = Some(raw_guard);
        guard
    }

    /// Blocks until notified or `timeout` elapses; the boolean reports a
    /// timeout.
    pub fn wait_timeout<'a, T>(
        &self,
        mut guard: DebugMutexGuard<'a, T>,
        timeout: Duration,
    ) -> (DebugMutexGuard<'a, T>, bool) {
        #[cfg(feature = "lock-order")]
        let id = guard.id;
        // lint: allow(panic): unobservable, the wait consumes the guard
        let raw_guard = guard.inner.take().expect("guard not already waiting");
        #[cfg(feature = "lock-order")]
        track::released(id);
        let (raw_guard, timed_out) = raw::wait_timeout(&self.inner, raw_guard, timeout);
        #[cfg(feature = "lock-order")]
        track::acquired(id, "condvar re-acquire");
        guard.inner = Some(raw_guard);
        (guard, timed_out)
    }

    /// Wakes one waiter.
    pub fn notify_one(&self) {
        self.inner.notify_one();
    }

    /// Wakes every waiter.
    pub fn notify_all(&self) {
        self.inner.notify_all();
    }
}

/// An [`RwLock`] that recovers from poisoning and participates in the
/// `lock-order` detector (readers and writers share one graph node).
pub struct DebugRwLock<T> {
    inner: RwLock<T>,
    name: &'static str,
    #[cfg(feature = "lock-order")]
    id: u64,
}

/// Read guard of a [`DebugRwLock`].
pub struct DebugReadGuard<'a, T> {
    inner: RwLockReadGuard<'a, T>,
    #[cfg(feature = "lock-order")]
    id: u64,
}

/// Write guard of a [`DebugRwLock`].
pub struct DebugWriteGuard<'a, T> {
    inner: RwLockWriteGuard<'a, T>,
    #[cfg(feature = "lock-order")]
    id: u64,
}

impl<T> DebugRwLock<T> {
    /// Creates a named rwlock (the name appears in detector panics).
    pub fn new(name: &'static str, value: T) -> Self {
        DebugRwLock {
            inner: RwLock::new(value),
            name,
            #[cfg(feature = "lock-order")]
            id: track::new_id(),
        }
    }

    /// The lock's diagnostic name.
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Acquires a shared read guard.
    pub fn read(&self) -> DebugReadGuard<'_, T> {
        #[cfg(feature = "lock-order")]
        track::pre_acquire(self.id, self.name);
        let guard = self.inner.read().unwrap_or_else(PoisonError::into_inner);
        #[cfg(feature = "lock-order")]
        track::acquired(self.id, self.name);
        DebugReadGuard {
            inner: guard,
            #[cfg(feature = "lock-order")]
            id: self.id,
        }
    }

    /// Acquires the exclusive write guard.
    pub fn write(&self) -> DebugWriteGuard<'_, T> {
        #[cfg(feature = "lock-order")]
        track::pre_acquire(self.id, self.name);
        let guard = self.inner.write().unwrap_or_else(PoisonError::into_inner);
        #[cfg(feature = "lock-order")]
        track::acquired(self.id, self.name);
        DebugWriteGuard {
            inner: guard,
            #[cfg(feature = "lock-order")]
            id: self.id,
        }
    }
}

impl<T> std::ops::Deref for DebugReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T> std::ops::Deref for DebugWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T> std::ops::DerefMut for DebugWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

impl<T> Drop for DebugReadGuard<'_, T> {
    fn drop(&mut self) {
        #[cfg(feature = "lock-order")]
        track::released(self.id);
    }
}

impl<T> Drop for DebugWriteGuard<'_, T> {
    fn drop(&mut self) {
        #[cfg(feature = "lock-order")]
        track::released(self.id);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // These run in BOTH feature modes: the wrappers must behave as plain
    // locks regardless of whether tracking is compiled in.

    #[test]
    fn mutex_guards_data() {
        let m = DebugMutex::new("test.m", 1u32);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.name(), "test.m");
    }

    #[test]
    fn condvar_wait_timeout_times_out() {
        let m = DebugMutex::new("test.cv", ());
        let cv = DebugCondvar::new();
        let guard = m.lock();
        let (guard, timed_out) = cv.wait_timeout(guard, Duration::from_millis(1));
        assert!(timed_out);
        drop(guard);
    }

    #[test]
    fn condvar_wakes_a_waiter() {
        use std::sync::Arc;
        struct Shared {
            m: DebugMutex<bool>,
            cv: DebugCondvar,
        }
        let shared = Arc::new(Shared {
            m: DebugMutex::new("test.wake", false),
            cv: DebugCondvar::new(),
        });
        let other = Arc::clone(&shared);
        let t = std::thread::spawn(move || {
            let mut ready = other.m.lock();
            while !*ready {
                ready = other.cv.wait(ready);
            }
        });
        *shared.m.lock() = true;
        shared.cv.notify_all();
        t.join().expect("waiter exits");
    }

    #[test]
    fn rwlock_guards_data() {
        let l = DebugRwLock::new("test.rw", 7u32);
        assert_eq!(*l.read(), 7);
        *l.write() = 9;
        assert_eq!(*l.read(), 9);
    }

    #[test]
    fn consistent_lock_order_is_quiet() {
        // a -> b on every path: never a cycle.
        let a = DebugMutex::new("test.order.a", ());
        let b = DebugMutex::new("test.order.b", ());
        for _ in 0..3 {
            let ga = a.lock();
            let gb = b.lock();
            drop(gb);
            drop(ga);
        }
        blocking_syscall("no locks held here");
    }
}
