//! Register values.

use std::fmt;

use bytes::Bytes;
use serde::{Deserialize, Serialize};

/// An opaque register value: an immutable, cheaply-cloneable byte string.
///
/// `Value` wraps [`bytes::Bytes`], so cloning is a reference-count bump —
/// important in the simulator, where one 64 KiB payload is otherwise copied
/// once per ring hop. The empty value doubles as the initial register
/// content `⊥` (paired with [`Tag::ZERO`](crate::Tag::ZERO)).
///
/// # Examples
///
/// ```
/// use hts_types::Value;
///
/// let v = Value::from_static(b"payload");
/// assert_eq!(v.len(), 7);
/// assert_eq!(v.as_bytes(), b"payload");
///
/// let filler = Value::filled(0xAB, 1024); // benchmark payloads
/// assert_eq!(filler.len(), 1024);
///
/// let bottom = Value::bottom();
/// assert!(bottom.is_bottom());
/// ```
#[derive(Clone, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub struct Value(Bytes);

impl Value {
    /// The initial register content `⊥` (the empty byte string).
    pub fn bottom() -> Self {
        Value(Bytes::new())
    }

    /// Creates a value borrowing from static data (no allocation).
    pub fn from_static(data: &'static [u8]) -> Self {
        Value(Bytes::from_static(data))
    }

    /// Creates a value of `len` bytes, each equal to `byte`.
    ///
    /// Benchmarks use this to fabricate payloads of a given size.
    pub fn filled(byte: u8, len: usize) -> Self {
        Value(Bytes::from(vec![byte; len]))
    }

    /// Encodes a `u64` as an 8-byte big-endian value. Convenient in tests
    /// where values must be distinct and assertable.
    pub fn from_u64(n: u64) -> Self {
        Value(Bytes::copy_from_slice(&n.to_be_bytes()))
    }

    /// Decodes a value created by [`Value::from_u64`]. Returns `None` if the
    /// value is not exactly 8 bytes.
    pub fn as_u64(&self) -> Option<u64> {
        let arr: [u8; 8] = self.0.as_ref().try_into().ok()?;
        Some(u64::from_be_bytes(arr))
    }

    /// The value's length in bytes.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// Returns `true` if the value is empty.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// Returns `true` if this is the initial content `⊥` (empty).
    pub fn is_bottom(&self) -> bool {
        self.is_empty()
    }

    /// Borrows the underlying bytes.
    pub fn as_bytes(&self) -> &[u8] {
        &self.0
    }

    /// Extracts the underlying [`Bytes`] (free).
    pub fn into_bytes(self) -> Bytes {
        self.0
    }
}

impl fmt::Debug for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_bottom() {
            return f.write_str("Value(⊥)");
        }
        if let Some(n) = self.as_u64() {
            return write!(f, "Value(u64:{n})");
        }
        if self.len() <= 16 {
            write!(f, "Value({:02x?})", self.as_bytes())
        } else {
            write!(
                f,
                "Value({} bytes, {:02x?}…)",
                self.len(),
                &self.as_bytes()[..8]
            )
        }
    }
}

impl From<Vec<u8>> for Value {
    fn from(v: Vec<u8>) -> Self {
        Value(Bytes::from(v))
    }
}

impl From<Bytes> for Value {
    fn from(b: Bytes) -> Self {
        Value(b)
    }
}

impl From<&[u8]> for Value {
    fn from(s: &[u8]) -> Self {
        Value(Bytes::copy_from_slice(s))
    }
}

impl AsRef<[u8]> for Value {
    fn as_ref(&self) -> &[u8] {
        self.as_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bottom_is_empty() {
        let b = Value::bottom();
        assert!(b.is_bottom());
        assert!(b.is_empty());
        assert_eq!(b.len(), 0);
        assert_eq!(b, Value::default());
    }

    #[test]
    fn u64_roundtrip() {
        let v = Value::from_u64(0xDEAD_BEEF_0000_0001);
        assert_eq!(v.as_u64(), Some(0xDEAD_BEEF_0000_0001));
        assert_eq!(v.len(), 8);
        assert_eq!(Value::from_static(b"xyz").as_u64(), None);
    }

    #[test]
    fn filled_has_requested_size() {
        let v = Value::filled(7, 1000);
        assert_eq!(v.len(), 1000);
        assert!(v.as_bytes().iter().all(|&b| b == 7));
    }

    #[test]
    fn clone_is_shallow() {
        let v = Value::filled(1, 1 << 20);
        let w = v.clone();
        // Bytes clones share the same backing allocation.
        assert_eq!(v.as_bytes().as_ptr(), w.as_bytes().as_ptr());
    }

    #[test]
    fn conversions() {
        let v: Value = vec![1u8, 2, 3].into();
        assert_eq!(v.as_bytes(), &[1, 2, 3]);
        let w: Value = (&[4u8, 5][..]).into();
        assert_eq!(w.as_ref(), &[4, 5]);
        let b = w.clone().into_bytes();
        assert_eq!(&b[..], &[4, 5]);
    }

    #[test]
    fn debug_forms_are_nonempty() {
        assert_eq!(format!("{:?}", Value::bottom()), "Value(⊥)");
        assert!(format!("{:?}", Value::from_u64(3)).contains("u64:3"));
        assert!(!format!("{:?}", Value::filled(0, 64)).is_empty());
    }
}
