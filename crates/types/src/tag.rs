//! Write tags: Lamport-style logical timestamps with origin tie-breaking.

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::ServerId;

/// A write tag `[ts, id]` — the logical timestamp ordering all writes.
///
/// Tags compare **lexicographically**: first by logical timestamp `ts`,
/// then by the originating server id (`>lex` in the paper's pseudo-code).
/// Because each originating server increments `ts` past every timestamp it
/// has seen before issuing a new write, tags from one origin are strictly
/// monotone, and the origin component makes concurrent tags from different
/// origins comparable, yielding a total order on all writes ever issued.
///
/// [`Tag::ZERO`] is the tag of the initial value `⊥`; it is smaller than
/// every tag a real write can carry.
///
/// # Examples
///
/// ```
/// use hts_types::{ServerId, Tag};
///
/// let initial = Tag::ZERO;
/// let a = Tag::new(1, ServerId(0));
/// let b = Tag::new(1, ServerId(1)); // concurrent with `a`, loses the tie
/// let c = a.successor(ServerId(1)); // a later write that observed `a`
///
/// assert!(initial < a && a < b && b < c);
/// assert_eq!(c, Tag::new(2, ServerId(1)));
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct Tag {
    /// Logical timestamp (compared first).
    pub ts: u64,
    /// Originating server (breaks timestamp ties).
    pub origin: ServerId,
}

impl Tag {
    /// The tag of the initial register value `⊥` (timestamp 0).
    pub const ZERO: Tag = Tag {
        ts: 0,
        origin: ServerId(0),
    };

    /// Creates a tag from a timestamp and an originating server.
    pub fn new(ts: u64, origin: ServerId) -> Self {
        Tag { ts, origin }
    }

    /// The smallest tag strictly greater than `self` that server `origin`
    /// may issue: `[ts + 1, origin]`.
    ///
    /// This is the paper's line 23,
    /// `tag ← [max(highest.ts, ts) + 1, i]`, applied to a single
    /// already-maximized timestamp.
    pub fn successor(self, origin: ServerId) -> Self {
        Tag {
            ts: self.ts + 1,
            origin,
        }
    }

    /// Returns `true` for the initial-value tag.
    pub fn is_zero(self) -> bool {
        self.ts == 0
    }
}

impl fmt::Display for Tag {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{},{}]", self.ts, self.origin)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lexicographic_order() {
        // ts dominates.
        assert!(Tag::new(1, ServerId(9)) < Tag::new(2, ServerId(0)));
        // origin breaks ties.
        assert!(Tag::new(2, ServerId(0)) < Tag::new(2, ServerId(1)));
        // equality requires both.
        assert_eq!(Tag::new(2, ServerId(1)), Tag::new(2, ServerId(1)));
    }

    #[test]
    fn zero_is_minimal() {
        assert!(Tag::ZERO.is_zero());
        assert!(Tag::ZERO < Tag::new(1, ServerId(0)));
        // A zero-timestamp tag from any origin is still "zero"; the
        // protocol never issues one (successor starts at ts = 1).
        assert!(Tag::new(0, ServerId(5)).is_zero());
    }

    #[test]
    fn successor_is_strictly_greater() {
        let t = Tag::new(7, ServerId(3));
        let s = t.successor(ServerId(0));
        assert!(s > t);
        assert_eq!(s.ts, 8);
        assert_eq!(s.origin, ServerId(0));
    }

    #[test]
    fn display_form() {
        assert_eq!(Tag::new(4, ServerId(2)).to_string(), "[4,s2]");
    }

    #[test]
    fn max_picks_lexicographic_winner() {
        let a = Tag::new(3, ServerId(2));
        let b = Tag::new(3, ServerId(1));
        assert_eq!(a.max(b), a);
        assert_eq!(b.max(a), a);
    }
}
