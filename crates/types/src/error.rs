//! Error types.

use std::error::Error;
use std::fmt;

/// Failure to decode a [`Message`](crate::Message) from bytes.
///
/// Returned by [`codec::decode`](crate::codec::decode). All variants are
/// terminal: a buffer that fails to decode was corrupted or truncated by the
/// transport, never partially usable.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DecodeError {
    /// The buffer ended before a field could be read in full.
    UnexpectedEof {
        /// Bytes the field still needed.
        needed: usize,
        /// Bytes that remained in the buffer.
        remaining: usize,
    },
    /// The leading message-kind byte is not a known discriminant.
    UnknownDiscriminant(u8),
    /// An `Option` presence flag held a byte other than 0 or 1.
    BadOptionFlag(u8),
    /// Decoding finished with unconsumed bytes left over.
    TrailingBytes {
        /// Number of unconsumed bytes.
        remaining: usize,
    },
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DecodeError::UnexpectedEof { needed, remaining } => write!(
                f,
                "unexpected end of buffer: field needs {needed} bytes, {remaining} remain"
            ),
            DecodeError::UnknownDiscriminant(d) => {
                write!(f, "unknown message discriminant {d:#04x}")
            }
            DecodeError::BadOptionFlag(b) => {
                write!(f, "option presence flag must be 0 or 1, found {b}")
            }
            DecodeError::TrailingBytes { remaining } => {
                write!(f, "decoded message leaves {remaining} trailing bytes")
            }
        }
    }
}

impl Error for DecodeError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_lowercase_and_concise() {
        let samples: Vec<(DecodeError, &str)> = vec![
            (
                DecodeError::UnexpectedEof {
                    needed: 8,
                    remaining: 3,
                },
                "unexpected end of buffer: field needs 8 bytes, 3 remain",
            ),
            (
                DecodeError::UnknownDiscriminant(0xFF),
                "unknown message discriminant 0xff",
            ),
            (
                DecodeError::BadOptionFlag(9),
                "option presence flag must be 0 or 1, found 9",
            ),
            (
                DecodeError::TrailingBytes { remaining: 2 },
                "decoded message leaves 2 trailing bytes",
            ),
        ];
        for (err, want) in samples {
            assert_eq!(err.to_string(), want);
        }
    }

    #[test]
    fn is_std_error() {
        fn assert_err<E: Error + Send + Sync + 'static>() {}
        assert_err::<DecodeError>();
    }
}
