//! Tests for the `lock-order` runtime race detector.
//!
//! Only meaningful with the feature on (`cargo test -p hts-types
//! --features lock-order`); without it the wrappers are passthrough and
//! the whole file compiles to nothing.
//!
//! The detector state (order graph, thread-local held stacks) is
//! process-global, so each panicking scenario runs on its own spawned
//! thread with locks no other test touches — a cycle recorded by one
//! test must not leak into another's graph via shared lock instances.
#![cfg(feature = "lock-order")]

use std::sync::Arc;
use std::time::Duration;

use hts_types::sync::{blocking_syscall, DebugCondvar, DebugMutex, DebugRwLock};

/// Runs `f` on a fresh thread and reports whether it panicked.
fn panics(f: impl FnOnce() + Send + 'static) -> bool {
    std::thread::spawn(f).join().is_err()
}

#[test]
fn inverted_lock_order_panics() {
    assert!(panics(|| {
        let a = DebugMutex::new("t.invert.a", ());
        let b = DebugMutex::new("t.invert.b", ());
        {
            let _ga = a.lock();
            let _gb = b.lock(); // establishes a -> b
        }
        let _gb = b.lock();
        let _ga = a.lock(); // b -> a closes the cycle
    }));
}

#[test]
fn consistent_order_across_threads_is_quiet() {
    let a = Arc::new(DebugMutex::new("t.consistent.a", 0u32));
    let b = Arc::new(DebugMutex::new("t.consistent.b", 0u32));
    let handles: Vec<_> = (0..4)
        .map(|_| {
            let (a, b) = (Arc::clone(&a), Arc::clone(&b));
            std::thread::spawn(move || {
                for _ in 0..50 {
                    let mut ga = a.lock();
                    let mut gb = b.lock();
                    *ga += 1;
                    *gb += 1;
                }
            })
        })
        .collect();
    for h in handles {
        assert!(h.join().is_ok(), "same order everywhere must not panic");
    }
    assert_eq!(*a.lock(), 200);
}

#[test]
fn three_lock_cycle_panics() {
    // a -> b, b -> c recorded; acquiring a under c closes the loop
    // transitively, not through any single edge.
    assert!(panics(|| {
        let a = DebugMutex::new("t.tri.a", ());
        let b = DebugMutex::new("t.tri.b", ());
        let c = DebugMutex::new("t.tri.c", ());
        {
            let _ga = a.lock();
            let _gb = b.lock();
        }
        {
            let _gb = b.lock();
            let _gc = c.lock();
        }
        let _gc = c.lock();
        let _ga = a.lock();
    }));
}

#[test]
fn blocking_syscall_with_guard_held_panics() {
    assert!(panics(|| {
        let m = DebugMutex::new("t.sys.held", ());
        let _g = m.lock();
        blocking_syscall("fake socket write");
    }));
}

#[test]
fn blocking_syscall_after_drop_is_quiet() {
    let m = DebugMutex::new("t.sys.dropped", ());
    let g = m.lock();
    drop(g);
    blocking_syscall("fake socket write");
}

#[test]
fn condvar_wait_releases_the_hold() {
    // During a wait the mutex is unlocked, so a blocking syscall from the
    // *notifying* side while the waiter sleeps is legal — and after the
    // wait returns the hold is re-registered.
    struct Shared {
        m: DebugMutex<bool>,
        cv: DebugCondvar,
    }
    let shared = Arc::new(Shared {
        m: DebugMutex::new("t.cv.release", false),
        cv: DebugCondvar::new(),
    });
    let waiter = {
        let shared = Arc::clone(&shared);
        std::thread::spawn(move || {
            let mut ready = shared.m.lock();
            while !*ready {
                ready = shared.cv.wait(ready);
            }
            // Re-acquired: the hold must be live again.
            assert!(*ready);
            true
        })
    };
    std::thread::sleep(Duration::from_millis(20));
    *shared.m.lock() = true;
    shared.cv.notify_all();
    blocking_syscall("notify side holds nothing");
    assert!(waiter.join().expect("waiter must not panic"));
}

#[test]
fn guard_held_across_wait_timeout_then_syscall_panics() {
    assert!(panics(|| {
        let m = DebugMutex::new("t.cv.timeout", ());
        let cv = DebugCondvar::new();
        let (guard, timed_out) = cv.wait_timeout(m.lock(), Duration::from_millis(1));
        assert!(timed_out);
        // The wait returned, the guard is held again: syscall is illegal.
        let _g = guard;
        blocking_syscall("fake fsync");
    }));
}

#[test]
fn rwlock_participates_in_ordering() {
    assert!(panics(|| {
        let m = DebugMutex::new("t.rw.m", ());
        let l = DebugRwLock::new("t.rw.l", ());
        {
            let _gm = m.lock();
            let _gl = l.read(); // m -> l
        }
        let _gl = l.write();
        let _gm = m.lock(); // l -> m closes the cycle
    }));
}

#[test]
fn rwlock_guard_blocks_syscall() {
    assert!(panics(|| {
        let l = DebugRwLock::new("t.rw.sys", ());
        let _g = l.read();
        blocking_syscall("fake write under read guard");
    }));
}
