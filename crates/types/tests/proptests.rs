//! Property tests for the wire codec and tag ordering laws.

use hts_types::{
    codec, Message, ObjectId, PreWrite, Rejoin, RequestId, RingFrame, ServerId, Tag, Value,
    WriteNotice,
};
use proptest::prelude::*;

fn arb_value() -> impl Strategy<Value = Value> {
    prop::collection::vec(any::<u8>(), 0..2048).prop_map(Value::from)
}

fn arb_tag() -> impl Strategy<Value = Tag> {
    (any::<u64>(), any::<u16>()).prop_map(|(ts, origin)| Tag::new(ts, ServerId(origin)))
}

fn arb_frame() -> impl Strategy<Value = RingFrame> {
    (
        any::<u32>(),
        prop::option::of((arb_tag(), arb_value(), any::<bool>())),
        prop::option::of((arb_tag(), prop::option::of(arb_value()))),
        prop::option::of((any::<u16>(), any::<bool>(), any::<bool>())),
    )
        .prop_map(|(object, pw, w, rejoin)| RingFrame {
            object: ObjectId(object),
            pre_write: pw.map(|(tag, value, recovery)| PreWrite {
                tag,
                value,
                recovery,
            }),
            write: w.map(|(tag, value)| WriteNotice { tag, value }),
            rejoin: rejoin.map(|(server, stale_source, all_syncing)| Rejoin {
                server: ServerId(server),
                stale_source,
                all_syncing,
            }),
        })
}

fn arb_message() -> impl Strategy<Value = Message> {
    prop_oneof![
        (any::<u32>(), any::<u64>(), arb_value()).prop_map(|(o, r, value)| Message::WriteReq {
            object: ObjectId(o),
            request: RequestId(r),
            value,
        }),
        (any::<u32>(), any::<u64>()).prop_map(|(o, r)| Message::ReadReq {
            object: ObjectId(o),
            request: RequestId(r),
        }),
        (any::<u32>(), any::<u64>()).prop_map(|(o, r)| Message::WriteAck {
            object: ObjectId(o),
            request: RequestId(r),
        }),
        (any::<u32>(), any::<u64>(), arb_value()).prop_map(|(o, r, value)| Message::ReadAck {
            object: ObjectId(o),
            request: RequestId(r),
            value,
        }),
        arb_frame().prop_map(Message::Ring),
        prop::collection::vec(arb_frame(), 0..12).prop_map(Message::RingBatch),
    ]
}

/// Every value carried by `msg`, in encoding order.
fn values_of(msg: &Message) -> Vec<&Value> {
    fn frame_values<'a>(frame: &'a RingFrame, out: &mut Vec<&'a Value>) {
        if let Some(pw) = &frame.pre_write {
            out.push(&pw.value);
        }
        if let Some(w) = &frame.write {
            if let Some(v) = &w.value {
                out.push(v);
            }
        }
    }
    let mut out = Vec::new();
    match msg {
        Message::WriteReq { value, .. } | Message::ReadAck { value, .. } => out.push(value),
        Message::StatsReply { text, .. } => out.push(text),
        Message::Ring(frame) => frame_values(frame, &mut out),
        Message::RingBatch(frames) => {
            for frame in frames {
                frame_values(frame, &mut out);
            }
        }
        Message::ReadReq { .. } | Message::WriteAck { .. } | Message::StatsRequest { .. } => {}
    }
    out
}

proptest! {
    #[test]
    fn codec_roundtrip(msg in arb_message()) {
        let bytes = codec::encode(&msg);
        prop_assert_eq!(bytes.len(), codec::wire_size(&msg));
        let back = codec::decode(&bytes).unwrap();
        prop_assert_eq!(back, msg);
    }

    #[test]
    fn decode_shared_matches_decode(msg in arb_message()) {
        // The zero-copy decoder is byte-for-byte equivalent to the
        // copying one over every message variant.
        let bytes = codec::encode(&msg);
        let shared = codec::decode_shared(&bytes).unwrap();
        let copied = codec::decode(&bytes).unwrap();
        prop_assert_eq!(&shared, &copied);
        prop_assert_eq!(&shared, &msg);
    }

    #[test]
    fn decode_shared_values_alias_the_input(msg in arb_message()) {
        // Every decoded value's bytes must live INSIDE the input buffer:
        // views, not copies.
        let bytes = codec::encode(&msg);
        let start = bytes.as_ptr() as usize;
        let end = start + bytes.len();
        let decoded = codec::decode_shared(&bytes).unwrap();
        for value in values_of(&decoded) {
            let p = value.as_bytes().as_ptr() as usize;
            prop_assert!(
                p >= start && p + value.len() <= end,
                "value at {:#x}..{:#x} escapes input {:#x}..{:#x}",
                p, p + value.len(), start, end
            );
        }
    }

    #[test]
    fn decode_shared_batch_empty_and_order(frames in prop::collection::vec(arb_frame(), 0..32)) {
        // RingBatch through the shared decoder, including the empty edge;
        // the u16::MAX edge is pinned by a unit test in the codec module.
        let msg = Message::RingBatch(frames.clone());
        let bytes = codec::encode(&msg);
        match codec::decode_shared(&bytes).unwrap() {
            Message::RingBatch(back) => prop_assert_eq!(back, frames),
            other => prop_assert!(false, "decoded wrong variant: {}", other),
        }
    }

    #[test]
    fn decode_never_panics_on_garbage(bytes in prop::collection::vec(any::<u8>(), 0..512)) {
        // Any outcome is fine as long as it does not panic.
        let _ = codec::decode(&bytes);
    }

    #[test]
    fn decode_partial_stream(msgs in prop::collection::vec(arb_message(), 1..8)) {
        let mut buf = Vec::new();
        for m in &msgs {
            buf.extend_from_slice(&codec::encode(m));
        }
        let mut cursor = &buf[..];
        for m in &msgs {
            let got = codec::decode_partial(&mut cursor).unwrap();
            prop_assert_eq!(&got, m);
        }
        prop_assert!(cursor.is_empty());
    }

    #[test]
    fn batch_roundtrip_preserves_frame_order(frames in prop::collection::vec(arb_frame(), 0..32)) {
        // Includes the empty edge (0 frames); the u16::MAX edge is pinned
        // by a unit test in the codec module (too large to shrink well).
        let msg = Message::RingBatch(frames.clone());
        let bytes = codec::encode(&msg);
        prop_assert_eq!(bytes.len(), codec::wire_size(&msg));
        match codec::decode(&bytes).unwrap() {
            Message::RingBatch(back) => prop_assert_eq!(back, frames),
            other => prop_assert!(false, "decoded wrong variant: {}", other),
        }
    }

    #[test]
    fn batch_costs_no_more_than_separate_frames(frames in prop::collection::vec(arb_frame(), 1..16)) {
        // The point of RingBatch: coalescing strictly shrinks the payload
        // (one discriminant + count vs. a discriminant per frame).
        let separate: usize = frames
            .iter()
            .map(|f| codec::wire_size(&Message::Ring(f.clone())))
            .sum();
        let batched = codec::wire_size(&Message::RingBatch(frames.clone()));
        prop_assert!(batched <= separate + 2);
    }

    #[test]
    fn tag_order_is_total_and_lexicographic(a in arb_tag(), b in arb_tag()) {
        use std::cmp::Ordering;
        let expected = match a.ts.cmp(&b.ts) {
            Ordering::Equal => a.origin.cmp(&b.origin),
            other => other,
        };
        prop_assert_eq!(a.cmp(&b), expected);
        // Antisymmetry.
        prop_assert_eq!(a.cmp(&b), b.cmp(&a).reverse());
    }

    #[test]
    fn tag_successor_dominates(a in arb_tag(), origin in any::<u16>()) {
        prop_assume!(a.ts < u64::MAX);
        let s = a.successor(ServerId(origin));
        prop_assert!(s > a);
    }
}
