//! Minimal zero-dependency readiness layer for the hts TCP runtime.
//!
//! Three pieces, all free of crates.io dependencies:
//!
//! 1. **Poller** — a Linux `epoll` wrapper over direct `extern "C"`
//!    syscall bindings (`epoll_create1` / `epoll_ctl` / `epoll_wait`,
//!    no libc crate). Sockets register under a caller-chosen [`Token`];
//!    [`Poller::wait`] retries `EINTR` internally so callers only see
//!    real readiness. A [`Waker`] (an `eventfd`) lets other threads
//!    kick a sleeping reactor.
//! 2. **Nonblocking connect** — [`connect_nonblocking`] builds the
//!    `sockaddr` by hand, issues a `SOCK_NONBLOCK` `connect(2)`, and
//!    hands back a std [`TcpStream`]; the caller waits for `EPOLLOUT`
//!    and checks `take_error()` (`SO_ERROR`) to learn the verdict.
//! 3. **State machines** — [`WriteBuf`] (coalesced writes that survive
//!    `WouldBlock`/`EINTR`/partial progress) and [`FrameReader`]
//!    (u32-big-endian length-prefixed frames assembled across any
//!    number of partial reads).
//!
//! On non-Linux targets the pure state machines still compile and the
//! syscall-backed types report `Unsupported`; the net layer falls back
//! to its threaded backend there (see [`supported`]).

use std::io::{self, Read, Write};

/// Identifies a registered file descriptor in [`Poller::wait`] results.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Token(pub u64);

/// What readiness to watch for. Level-triggered by default; [`edge`]
/// opts a registration into `EPOLLET`.
///
/// [`edge`]: Interest::edge
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Interest {
    read: bool,
    write: bool,
    edge: bool,
}

impl Interest {
    /// Watch for readable (level-triggered).
    pub const READABLE: Interest = Interest {
        read: true,
        write: false,
        edge: false,
    };
    /// Watch for writable (level-triggered).
    pub const WRITABLE: Interest = Interest {
        read: false,
        write: true,
        edge: false,
    };
    /// Watch for both (level-triggered).
    pub const BOTH: Interest = Interest {
        read: true,
        write: true,
        edge: false,
    };

    /// The same interest, edge-triggered (`EPOLLET`).
    pub fn edge(self) -> Interest {
        Interest { edge: true, ..self }
    }
}

/// One readiness report from [`Poller::wait`].
#[derive(Debug, Clone, Copy)]
pub struct Event {
    token: u64,
    mask: u32,
}

impl Event {
    /// The token the fd registered under.
    pub fn token(&self) -> Token {
        Token(self.token)
    }

    /// Readable (includes peer half-close, which reads as EOF).
    pub fn readable(&self) -> bool {
        self.mask & (sys::EPOLLIN | sys::EPOLLHUP | sys::EPOLLRDHUP | sys::EPOLLERR) != 0
    }

    /// Writable (includes error — a failed nonblocking connect reports
    /// `EPOLLERR|EPOLLOUT`, and the caller learns why via `SO_ERROR`).
    pub fn writable(&self) -> bool {
        self.mask & (sys::EPOLLOUT | sys::EPOLLHUP | sys::EPOLLERR) != 0
    }

    /// Error or hangup: the fd needs attention even without I/O.
    pub fn is_error(&self) -> bool {
        self.mask & (sys::EPOLLERR | sys::EPOLLHUP) != 0
    }
}

/// Reusable buffer of readiness events for [`Poller::wait`].
pub struct Events {
    raw: Vec<sys::EpollEvent>,
    len: usize,
}

impl Events {
    /// A buffer that accepts up to `capacity` events per wait.
    pub fn with_capacity(capacity: usize) -> Events {
        Events {
            raw: vec![sys::EpollEvent::default(); capacity.max(1)],
            len: 0,
        }
    }

    /// Events reported by the last [`Poller::wait`].
    pub fn iter(&self) -> impl Iterator<Item = Event> + '_ {
        self.raw[..self.len].iter().map(|e| Event {
            token: e.data,
            mask: e.events,
        })
    }

    /// Number of events reported by the last wait.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the last wait reported nothing (timeout).
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }
}

/// Whether the syscall-backed half of this crate works on this target.
pub fn supported() -> bool {
    cfg!(target_os = "linux")
}

#[cfg(target_os = "linux")]
mod sys {
    //! Direct syscall bindings. std already links the platform C
    //! library, so these resolve against it without the libc crate.
    #![allow(unsafe_code)]

    use std::io;

    pub const EPOLLIN: u32 = 0x001;
    pub const EPOLLOUT: u32 = 0x004;
    pub const EPOLLERR: u32 = 0x008;
    pub const EPOLLHUP: u32 = 0x010;
    pub const EPOLLRDHUP: u32 = 0x2000;
    pub const EPOLLET: u32 = 1 << 31;

    pub const EPOLL_CTL_ADD: i32 = 1;
    pub const EPOLL_CTL_DEL: i32 = 2;
    pub const EPOLL_CTL_MOD: i32 = 3;

    const EPOLL_CLOEXEC: i32 = 0o2000000;
    const EFD_CLOEXEC: i32 = 0o2000000;
    const EFD_NONBLOCK: i32 = 0o4000;

    pub const SOCK_STREAM: i32 = 1;
    pub const SOCK_NONBLOCK: i32 = 0o4000;
    pub const SOCK_CLOEXEC: i32 = 0o2000000;
    pub const AF_INET: u16 = 2;
    pub const AF_INET6: u16 = 10;
    pub const EINPROGRESS: i32 = 115;
    pub const EINTR: i32 = 4;

    /// Kernel ABI for `struct epoll_event`; packed on x86-64 only,
    /// matching the kernel's per-arch layout.
    #[cfg_attr(target_arch = "x86_64", repr(C, packed))]
    #[cfg_attr(not(target_arch = "x86_64"), repr(C))]
    #[derive(Clone, Copy, Default)]
    pub struct EpollEvent {
        pub events: u32,
        pub data: u64,
    }

    extern "C" {
        fn epoll_create1(flags: i32) -> i32;
        fn epoll_ctl(epfd: i32, op: i32, fd: i32, event: *mut EpollEvent) -> i32;
        fn epoll_wait(epfd: i32, events: *mut EpollEvent, maxevents: i32, timeout_ms: i32) -> i32;
        fn eventfd(initval: u32, flags: i32) -> i32;
        fn close(fd: i32) -> i32;
        fn read(fd: i32, buf: *mut u8, count: usize) -> isize;
        fn write(fd: i32, buf: *const u8, count: usize) -> isize;
        fn socket(domain: i32, ty: i32, protocol: i32) -> i32;
        fn connect(fd: i32, addr: *const u8, len: u32) -> i32;
    }

    pub fn sys_epoll_create() -> io::Result<i32> {
        // SAFETY: epoll_create1 takes no pointers; a negative return is
        // checked and turned into the errno it set.
        let fd = unsafe { epoll_create1(EPOLL_CLOEXEC) };
        if fd < 0 {
            return Err(io::Error::last_os_error());
        }
        Ok(fd)
    }

    pub fn sys_epoll_ctl(epfd: i32, op: i32, fd: i32, events: u32, data: u64) -> io::Result<()> {
        let mut ev = EpollEvent { events, data };
        // SAFETY: `ev` is a live stack value matching the kernel ABI
        // struct; the kernel copies it before the call returns.
        let rc = unsafe { epoll_ctl(epfd, op, fd, &mut ev) };
        if rc < 0 {
            return Err(io::Error::last_os_error());
        }
        Ok(())
    }

    pub fn sys_epoll_wait(epfd: i32, buf: &mut [EpollEvent], timeout_ms: i32) -> io::Result<usize> {
        // SAFETY: `buf` is a live, writable slice and `maxevents` is its
        // exact length, so the kernel never writes out of bounds.
        let rc = unsafe { epoll_wait(epfd, buf.as_mut_ptr(), buf.len() as i32, timeout_ms) };
        if rc < 0 {
            return Err(io::Error::last_os_error());
        }
        Ok(rc as usize)
    }

    pub fn sys_eventfd() -> io::Result<i32> {
        // SAFETY: eventfd takes no pointers; negative return checked.
        let fd = unsafe { eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK) };
        if fd < 0 {
            return Err(io::Error::last_os_error());
        }
        Ok(fd)
    }

    pub fn sys_close(fd: i32) {
        // SAFETY: the caller owns `fd` and never uses it again; close
        // on an already-bad fd is harmless (EBADF ignored).
        unsafe {
            close(fd);
        }
    }

    pub fn sys_write_u64(fd: i32, v: u64) -> io::Result<()> {
        let bytes = v.to_ne_bytes();
        // SAFETY: pointer and length describe the live 8-byte array.
        let rc = unsafe { write(fd, bytes.as_ptr(), bytes.len()) };
        if rc < 0 {
            return Err(io::Error::last_os_error());
        }
        Ok(())
    }

    pub fn sys_read_u64(fd: i32) -> io::Result<u64> {
        let mut bytes = [0u8; 8];
        // SAFETY: pointer and length describe the live 8-byte array;
        // the kernel writes at most `len` bytes.
        let rc = unsafe { read(fd, bytes.as_mut_ptr(), bytes.len()) };
        if rc < 0 {
            return Err(io::Error::last_os_error());
        }
        Ok(u64::from_ne_bytes(bytes))
    }

    pub fn sys_socket(domain: u16) -> io::Result<i32> {
        // SAFETY: socket takes no pointers; negative return checked.
        let fd = unsafe { socket(domain as i32, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0) };
        if fd < 0 {
            return Err(io::Error::last_os_error());
        }
        Ok(fd)
    }

    pub fn sys_connect(fd: i32, addr: &[u8]) -> io::Result<()> {
        // SAFETY: `addr` is a live byte view of a properly laid-out
        // sockaddr_in/sockaddr_in6 and `len` is its exact size.
        let rc = unsafe { connect(fd, addr.as_ptr(), addr.len() as u32) };
        if rc < 0 {
            return Err(io::Error::last_os_error());
        }
        Ok(())
    }
}

#[cfg(target_os = "linux")]
mod poller {
    #![allow(unsafe_code)]

    use super::sys;
    use super::{Events, Interest, Token};
    use std::io;
    use std::net::{SocketAddr, TcpStream};
    use std::os::fd::{FromRawFd, RawFd};
    use std::time::{Duration, Instant};

    fn interest_mask(interest: Interest) -> u32 {
        let mut mask = sys::EPOLLRDHUP;
        if interest.read {
            mask |= sys::EPOLLIN;
        }
        if interest.write {
            mask |= sys::EPOLLOUT;
        }
        if interest.edge {
            mask |= sys::EPOLLET;
        }
        mask
    }

    /// An epoll instance. Registrations are keyed by [`Token`]; the
    /// poller never owns the registered fds (callers close them after
    /// [`Poller::deregister`]).
    pub struct Poller {
        epfd: RawFd,
    }

    impl Poller {
        /// A fresh epoll instance (`EPOLL_CLOEXEC`).
        ///
        /// # Errors
        ///
        /// The `epoll_create1` errno (fd exhaustion, mainly).
        pub fn new() -> io::Result<Poller> {
            Ok(Poller {
                epfd: sys::sys_epoll_create()?,
            })
        }

        /// Starts watching `fd` under `token`.
        ///
        /// # Errors
        ///
        /// The `epoll_ctl` errno (`EEXIST` if already registered).
        pub fn register(&self, fd: RawFd, token: Token, interest: Interest) -> io::Result<()> {
            sys::sys_epoll_ctl(
                self.epfd,
                sys::EPOLL_CTL_ADD,
                fd,
                interest_mask(interest),
                token.0,
            )
        }

        /// Changes what an already-registered `fd` is watched for.
        ///
        /// # Errors
        ///
        /// The `epoll_ctl` errno (`ENOENT` if not registered).
        pub fn reregister(&self, fd: RawFd, token: Token, interest: Interest) -> io::Result<()> {
            sys::sys_epoll_ctl(
                self.epfd,
                sys::EPOLL_CTL_MOD,
                fd,
                interest_mask(interest),
                token.0,
            )
        }

        /// Stops watching `fd`. Harmless if it was never registered (a
        /// close may already have dropped it from the interest list).
        pub fn deregister(&self, fd: RawFd) {
            let _ = sys::sys_epoll_ctl(self.epfd, sys::EPOLL_CTL_DEL, fd, 0, 0);
        }

        /// Blocks until readiness or `timeout` (None = forever),
        /// filling `events`. `EINTR` is retried internally with the
        /// remaining timeout, so a return with zero events really is a
        /// timeout.
        ///
        /// # Errors
        ///
        /// Any `epoll_wait` errno except `EINTR`.
        pub fn wait(&self, events: &mut Events, timeout: Option<Duration>) -> io::Result<usize> {
            let deadline = timeout.map(|t| Instant::now() + t);
            loop {
                let timeout_ms = match deadline {
                    None => -1,
                    Some(d) => {
                        let left = d.saturating_duration_since(Instant::now());
                        // Round up so a nonzero remainder never spins.
                        left.as_millis().min(i32::MAX as u128) as i32
                            + i32::from(left.subsec_nanos() % 1_000_000 != 0)
                    }
                };
                match sys::sys_epoll_wait(self.epfd, &mut events.raw, timeout_ms) {
                    Ok(n) => {
                        events.len = n;
                        return Ok(n);
                    }
                    Err(e) if e.raw_os_error() == Some(sys::EINTR) => {
                        if let Some(d) = deadline {
                            if Instant::now() >= d {
                                events.len = 0;
                                return Ok(0);
                            }
                        }
                    }
                    Err(e) => return Err(e),
                }
            }
        }
    }

    impl Drop for Poller {
        fn drop(&mut self) {
            sys::sys_close(self.epfd);
        }
    }

    /// Cross-thread kick for a sleeping [`Poller`]: an `eventfd`
    /// registered level-triggered readable under a caller-chosen token.
    pub struct Waker {
        fd: RawFd,
    }

    impl Waker {
        /// Creates the eventfd and registers it with `poller`.
        ///
        /// # Errors
        ///
        /// `eventfd` or `epoll_ctl` errno.
        pub fn new(poller: &Poller, token: Token) -> io::Result<Waker> {
            let fd = sys::sys_eventfd()?;
            if let Err(e) = poller.register(fd, token, Interest::READABLE) {
                sys::sys_close(fd);
                return Err(e);
            }
            Ok(Waker { fd })
        }

        /// Makes the poller's next (or current) wait return with this
        /// waker's token. Cheap and safe from any thread.
        pub fn wake(&self) {
            let _ = sys::sys_write_u64(self.fd, 1);
        }

        /// Clears the pending wakeups; call when the waker's token
        /// fires so level-triggered epoll stops reporting it.
        pub fn drain(&self) {
            let _ = sys::sys_read_u64(self.fd);
        }
    }

    impl Drop for Waker {
        fn drop(&mut self) {
            sys::sys_close(self.fd);
        }
    }

    /// Starts a nonblocking TCP connect. Returns the stream plus
    /// whether the connect already completed; when it has not, register
    /// the stream for write readiness and check `take_error()`
    /// (`SO_ERROR`) once `EPOLLOUT`/`EPOLLERR` fires.
    ///
    /// # Errors
    ///
    /// Immediate failures only (`ENETUNREACH` etc.); a refused
    /// connection usually surfaces later through `take_error`.
    pub fn connect_nonblocking(addr: SocketAddr) -> io::Result<(TcpStream, bool)> {
        let (domain, raw) = encode_sockaddr(addr);
        let fd = sys::sys_socket(domain)?;
        let pending = match sys::sys_connect(fd, &raw) {
            Ok(()) => false,
            Err(e) if e.raw_os_error() == Some(sys::EINPROGRESS) => true,
            Err(e) => {
                sys::sys_close(fd);
                return Err(e);
            }
        };
        // SAFETY: `fd` is a freshly created socket we exclusively own;
        // from_raw_fd transfers that ownership to the TcpStream.
        let stream = unsafe { TcpStream::from_raw_fd(fd) };
        Ok((stream, !pending))
    }

    /// One-shot readiness wait on a single fd, for code that mostly
    /// runs blocking but occasionally needs to pause on a nonblocking
    /// socket (e.g. a writer that hit `WouldBlock` outside a reactor).
    /// Builds a throwaway epoll instance — don't call this on a hot
    /// path; a real [`Poller`] amortizes the setup.
    ///
    /// Returns whether the fd became ready before `timeout` (None =
    /// wait forever).
    ///
    /// # Errors
    ///
    /// `epoll_create1`/`epoll_ctl`/`epoll_wait` errnos.
    pub fn wait_fd(fd: RawFd, interest: Interest, timeout: Option<Duration>) -> io::Result<bool> {
        let poller = Poller::new()?;
        poller.register(fd, Token(0), interest)?;
        let mut events = Events::with_capacity(1);
        let n = poller.wait(&mut events, timeout)?;
        Ok(n > 0)
    }

    /// Lays out a kernel-ABI `sockaddr_in`/`sockaddr_in6` by hand.
    fn encode_sockaddr(addr: SocketAddr) -> (u16, Vec<u8>) {
        match addr {
            SocketAddr::V4(v4) => {
                let mut raw = Vec::with_capacity(16);
                raw.extend_from_slice(&sys::AF_INET.to_ne_bytes());
                raw.extend_from_slice(&v4.port().to_be_bytes());
                raw.extend_from_slice(&v4.ip().octets());
                raw.extend_from_slice(&[0u8; 8]);
                (sys::AF_INET, raw)
            }
            SocketAddr::V6(v6) => {
                let mut raw = Vec::with_capacity(28);
                raw.extend_from_slice(&sys::AF_INET6.to_ne_bytes());
                raw.extend_from_slice(&v6.port().to_be_bytes());
                raw.extend_from_slice(&v6.flowinfo().to_be_bytes());
                raw.extend_from_slice(&v6.ip().octets());
                raw.extend_from_slice(&v6.scope_id().to_ne_bytes());
                (sys::AF_INET6, raw)
            }
        }
    }
}

#[cfg(target_os = "linux")]
pub use poller::{connect_nonblocking, wait_fd, Poller, Waker};

#[cfg(not(target_os = "linux"))]
mod poller_stub {
    //! Non-Linux stand-ins: everything reports `Unsupported` so the
    //! net layer can fall back to its threaded backend at runtime.
    use super::{Events, Interest, Token};
    use std::io;
    use std::net::{SocketAddr, TcpStream};
    use std::time::Duration;

    fn unsupported<T>() -> io::Result<T> {
        Err(io::Error::new(
            io::ErrorKind::Unsupported,
            "hts-poll readiness layer requires Linux epoll",
        ))
    }

    /// Unsupported on this target; see the Linux build for semantics.
    pub struct Poller {}

    impl Poller {
        /// Always `Unsupported` off Linux.
        ///
        /// # Errors
        ///
        /// Always.
        pub fn new() -> io::Result<Poller> {
            unsupported()
        }

        /// Unreachable (no `Poller` can exist off Linux).
        ///
        /// # Errors
        ///
        /// Always.
        pub fn register(&self, _fd: i32, _token: Token, _interest: Interest) -> io::Result<()> {
            unsupported()
        }

        /// Unreachable (no `Poller` can exist off Linux).
        ///
        /// # Errors
        ///
        /// Always.
        pub fn reregister(&self, _fd: i32, _token: Token, _interest: Interest) -> io::Result<()> {
            unsupported()
        }

        /// Unreachable (no `Poller` can exist off Linux).
        pub fn deregister(&self, _fd: i32) {}

        /// Unreachable (no `Poller` can exist off Linux).
        ///
        /// # Errors
        ///
        /// Always.
        pub fn wait(&self, _events: &mut Events, _timeout: Option<Duration>) -> io::Result<usize> {
            unsupported()
        }
    }

    /// Unsupported on this target; see the Linux build for semantics.
    pub struct Waker {}

    impl Waker {
        /// Always `Unsupported` off Linux.
        ///
        /// # Errors
        ///
        /// Always.
        pub fn new(_poller: &Poller, _token: Token) -> io::Result<Waker> {
            unsupported()
        }

        /// Unreachable (no `Waker` can exist off Linux).
        pub fn wake(&self) {}

        /// Unreachable (no `Waker` can exist off Linux).
        pub fn drain(&self) {}
    }

    /// Always `Unsupported` off Linux.
    ///
    /// # Errors
    ///
    /// Always.
    pub fn connect_nonblocking(_addr: SocketAddr) -> io::Result<(TcpStream, bool)> {
        unsupported()
    }

    /// Always `Unsupported` off Linux.
    ///
    /// # Errors
    ///
    /// Always.
    pub fn wait_fd(_fd: i32, _interest: Interest, _timeout: Option<Duration>) -> io::Result<bool> {
        unsupported()
    }
}

#[cfg(not(target_os = "linux"))]
pub use poller_stub::{connect_nonblocking, wait_fd, Poller, Waker};

/// Outcome of one nonblocking read attempt.
#[derive(Debug, PartialEq, Eq)]
pub enum ReadStatus {
    /// `n > 0` bytes landed in the buffer.
    Data(usize),
    /// The socket has nothing right now; wait for readiness.
    WouldBlock,
    /// Clean EOF: the peer closed.
    Eof,
}

/// One nonblocking read with the retry boilerplate folded in: `EINTR`
/// retries, `WouldBlock` and EOF become values instead of errors.
///
/// # Errors
///
/// Real socket errors only.
pub fn read_nb<R: Read>(reader: &mut R, buf: &mut [u8]) -> io::Result<ReadStatus> {
    loop {
        match reader.read(buf) {
            Ok(0) => return Ok(ReadStatus::Eof),
            Ok(n) => return Ok(ReadStatus::Data(n)),
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => return Ok(ReadStatus::WouldBlock),
            Err(e) => return Err(e),
        }
    }
}

/// Coalescing write buffer that survives partial writes: bytes queue
/// via [`push`], [`flush`] pushes as much as the socket accepts and
/// remembers its position across `WouldBlock`, retrying `EINTR`
/// internally.
///
/// [`push`]: WriteBuf::push
/// [`flush`]: WriteBuf::flush
#[derive(Default)]
pub struct WriteBuf {
    buf: Vec<u8>,
    pos: usize,
}

impl WriteBuf {
    /// An empty buffer.
    pub fn new() -> WriteBuf {
        WriteBuf::default()
    }

    /// Whether everything pushed has been flushed.
    pub fn is_empty(&self) -> bool {
        self.pos == self.buf.len()
    }

    /// Bytes still waiting for the socket.
    pub fn pending(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Queues bytes behind whatever is still unflushed, first
    /// compacting the already-written prefix so the buffer never grows
    /// past the unflushed tail plus the new bytes.
    pub fn push(&mut self, bytes: &[u8]) {
        if self.pos > 0 {
            self.buf.copy_within(self.pos.., 0);
            self.buf.truncate(self.buf.len() - self.pos);
            self.pos = 0;
        }
        self.buf.extend_from_slice(bytes);
    }

    /// Drops all pending bytes (connection abandoned).
    pub fn clear(&mut self) {
        self.buf.clear();
        self.pos = 0;
    }

    /// Writes as much as the socket accepts. `Ok(true)` means fully
    /// drained; `Ok(false)` means the socket pushed back (`WouldBlock`)
    /// and the caller should wait for write readiness. `EINTR` retries
    /// internally; partial writes advance the position.
    ///
    /// # Errors
    ///
    /// Real socket errors, plus `WriteZero` if the socket claims to
    /// accept zero bytes.
    pub fn flush<W: Write>(&mut self, writer: &mut W) -> io::Result<bool> {
        while self.pos < self.buf.len() {
            match writer.write(&self.buf[self.pos..]) {
                Ok(0) => {
                    return Err(io::Error::new(
                        io::ErrorKind::WriteZero,
                        "socket accepted zero bytes",
                    ))
                }
                Ok(n) => self.pos += n,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => return Ok(false),
                Err(e) => return Err(e),
            }
        }
        self.buf.clear();
        self.pos = 0;
        Ok(true)
    }
}

/// Result of one [`FrameReader::poll`].
#[derive(Debug, PartialEq, Eq)]
pub enum FramePoll {
    /// A complete frame body.
    Frame(Vec<u8>),
    /// Mid-frame (or no bytes at all); wait for readability.
    Pending,
    /// Clean EOF on a frame boundary.
    Closed,
}

/// Assembles u32-big-endian length-prefixed frames across any number of
/// partial nonblocking reads: header bytes accumulate one at a time if
/// need be, then the body, and only a complete body is handed out.
pub struct FrameReader {
    max_frame: usize,
    header: [u8; 4],
    filled: usize,
    body: Vec<u8>,
    in_body: bool,
}

impl FrameReader {
    /// A reader that rejects frames larger than `max_frame` bytes.
    pub fn new(max_frame: usize) -> FrameReader {
        FrameReader {
            max_frame,
            header: [0; 4],
            filled: 0,
            body: Vec::new(),
            in_body: false,
        }
    }

    /// Pulls bytes until a frame completes, the source would block, or
    /// it cleanly closes. Call in a loop to drain a readiness burst:
    /// each `Frame` may be followed by more.
    ///
    /// # Errors
    ///
    /// `InvalidData` on an oversized length prefix, `UnexpectedEof` on
    /// a mid-frame close, otherwise the socket error.
    pub fn poll<R: Read>(&mut self, reader: &mut R) -> io::Result<FramePoll> {
        loop {
            if !self.in_body {
                let n = match read_nb(reader, &mut self.header[self.filled..])? {
                    ReadStatus::Data(n) => n,
                    ReadStatus::WouldBlock => return Ok(FramePoll::Pending),
                    ReadStatus::Eof => {
                        if self.filled == 0 {
                            return Ok(FramePoll::Closed);
                        }
                        return Err(io::ErrorKind::UnexpectedEof.into());
                    }
                };
                self.filled += n;
                if self.filled < 4 {
                    continue;
                }
                let len = u32::from_be_bytes(self.header) as usize;
                if len > self.max_frame {
                    return Err(io::Error::new(
                        io::ErrorKind::InvalidData,
                        format!(
                            "frame of {len} bytes exceeds the {}-byte cap",
                            self.max_frame
                        ),
                    ));
                }
                self.body = vec![0; len];
                self.filled = 0;
                self.in_body = true;
                continue;
            }
            if self.filled < self.body.len() {
                let n = match read_nb(reader, &mut self.body[self.filled..])? {
                    ReadStatus::Data(n) => n,
                    ReadStatus::WouldBlock => return Ok(FramePoll::Pending),
                    ReadStatus::Eof => return Err(io::ErrorKind::UnexpectedEof.into()),
                };
                self.filled += n;
                if self.filled < self.body.len() {
                    continue;
                }
            }
            self.in_body = false;
            self.filled = 0;
            return Ok(FramePoll::Frame(std::mem::take(&mut self.body)));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// An io source that doles out a script of results one at a time.
    struct Script {
        steps: std::collections::VecDeque<ScriptStep>,
    }

    enum ScriptStep {
        Data(Vec<u8>),
        WouldBlock,
        Interrupt,
        Eof,
        Accept(usize),
    }

    impl Script {
        fn new(steps: Vec<ScriptStep>) -> Script {
            Script {
                steps: steps.into(),
            }
        }
    }

    impl Read for Script {
        fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
            match self.steps.pop_front() {
                Some(ScriptStep::Data(d)) => {
                    let n = d.len().min(buf.len());
                    buf[..n].copy_from_slice(&d[..n]);
                    if n < d.len() {
                        self.steps.push_front(ScriptStep::Data(d[n..].to_vec()));
                    }
                    Ok(n)
                }
                Some(ScriptStep::WouldBlock) => Err(io::ErrorKind::WouldBlock.into()),
                Some(ScriptStep::Interrupt) => Err(io::ErrorKind::Interrupted.into()),
                Some(ScriptStep::Eof) | None => Ok(0),
                Some(ScriptStep::Accept(_)) => unreachable!("write step in read script"),
            }
        }
    }

    impl Write for Script {
        fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
            match self.steps.pop_front() {
                Some(ScriptStep::Accept(n)) => Ok(n.min(buf.len())),
                Some(ScriptStep::WouldBlock) => Err(io::ErrorKind::WouldBlock.into()),
                Some(ScriptStep::Interrupt) => Err(io::ErrorKind::Interrupted.into()),
                _ => unreachable!("read step in write script"),
            }
        }
        fn flush(&mut self) -> io::Result<()> {
            Ok(())
        }
    }

    fn frame(body: &[u8]) -> Vec<u8> {
        let mut out = (body.len() as u32).to_be_bytes().to_vec();
        out.extend_from_slice(body);
        out
    }

    #[test]
    fn frame_reader_survives_byte_at_a_time_delivery() {
        let wire = frame(b"hello");
        let mut steps = Vec::new();
        for b in &wire {
            steps.push(ScriptStep::Data(vec![*b]));
            steps.push(ScriptStep::WouldBlock);
        }
        let mut src = Script::new(steps);
        let mut reader = FrameReader::new(1024);
        let mut got = None;
        for _ in 0..wire.len() * 2 {
            match reader.poll(&mut src).unwrap() {
                FramePoll::Frame(f) => {
                    got = Some(f);
                    break;
                }
                FramePoll::Pending => {}
                FramePoll::Closed => panic!("early close"),
            }
        }
        assert_eq!(got.as_deref(), Some(&b"hello"[..]));
    }

    #[test]
    fn frame_reader_drains_a_burst_and_retries_eintr() {
        let mut wire = frame(b"one");
        wire.extend_from_slice(&frame(b"two"));
        let mut src = Script::new(vec![
            ScriptStep::Interrupt,
            ScriptStep::Data(wire),
            ScriptStep::Eof,
        ]);
        let mut reader = FrameReader::new(1024);
        assert_eq!(
            reader.poll(&mut src).unwrap(),
            FramePoll::Frame(b"one".to_vec())
        );
        assert_eq!(
            reader.poll(&mut src).unwrap(),
            FramePoll::Frame(b"two".to_vec())
        );
        assert_eq!(reader.poll(&mut src).unwrap(), FramePoll::Closed);
    }

    #[test]
    fn frame_reader_reports_midframe_close_and_oversize() {
        let wire = frame(b"abc");
        let mut src = Script::new(vec![ScriptStep::Data(wire[..5].to_vec()), ScriptStep::Eof]);
        let mut reader = FrameReader::new(1024);
        assert_eq!(
            reader.poll(&mut src).unwrap_err().kind(),
            io::ErrorKind::UnexpectedEof
        );

        let mut src = Script::new(vec![ScriptStep::Data(u32::MAX.to_be_bytes().to_vec())]);
        let mut reader = FrameReader::new(1024);
        assert_eq!(
            reader.poll(&mut src).unwrap_err().kind(),
            io::ErrorKind::InvalidData
        );
    }

    #[test]
    fn write_buf_resumes_partial_writes_across_wouldblock() {
        let mut wb = WriteBuf::new();
        wb.push(b"abcdefgh");
        let mut sink = Script::new(vec![
            ScriptStep::Accept(3),
            ScriptStep::Interrupt,
            ScriptStep::WouldBlock,
        ]);
        assert!(!wb.flush(&mut sink).unwrap());
        assert_eq!(wb.pending(), 5);

        // More bytes arrive while blocked; the drained prefix compacts.
        wb.push(b"ij");
        let mut sink = Script::new(vec![ScriptStep::Accept(4), ScriptStep::Accept(64)]);
        assert!(wb.flush(&mut sink).unwrap());
        assert!(wb.is_empty());
        assert_eq!(wb.pending(), 0);
    }

    #[test]
    fn write_buf_surfaces_write_zero() {
        let mut wb = WriteBuf::new();
        wb.push(b"x");
        let mut sink = Script::new(vec![ScriptStep::Accept(0)]);
        assert_eq!(
            wb.flush(&mut sink).unwrap_err().kind(),
            io::ErrorKind::WriteZero
        );
    }

    #[cfg(target_os = "linux")]
    mod linux {
        use super::super::*;
        use std::net::{TcpListener, TcpStream};

        #[test]
        fn poller_reports_readability_and_waker_wakes() {
            let listener = TcpListener::bind("127.0.0.1:0").unwrap();
            let addr = listener.local_addr().unwrap();
            let poller = Poller::new().unwrap();
            let waker = Waker::new(&poller, Token(0)).unwrap();

            let mut client = TcpStream::connect(addr).unwrap();
            let (server, _) = listener.accept().unwrap();
            server.set_nonblocking(true).unwrap();
            poller
                .register(
                    std::os::fd::AsRawFd::as_raw_fd(&server),
                    Token(7),
                    Interest::READABLE,
                )
                .unwrap();

            // Nothing readable yet: a short wait times out.
            let mut events = Events::with_capacity(8);
            poller
                .wait(&mut events, Some(std::time::Duration::from_millis(10)))
                .unwrap();
            assert!(events.is_empty());

            client.write_all(b"ping").unwrap();
            poller
                .wait(&mut events, Some(std::time::Duration::from_secs(5)))
                .unwrap();
            assert!(events.iter().any(|e| e.token() == Token(7) && e.readable()));

            // The waker fires its own token from another thread.
            waker.wake();
            poller
                .wait(&mut events, Some(std::time::Duration::from_secs(5)))
                .unwrap();
            assert!(events.iter().any(|e| e.token() == Token(0)));
            waker.drain();
        }

        #[test]
        fn nonblocking_connect_completes_via_writability() {
            let listener = TcpListener::bind("127.0.0.1:0").unwrap();
            let addr = listener.local_addr().unwrap();
            let poller = Poller::new().unwrap();

            let (stream, done) = connect_nonblocking(addr).unwrap();
            if !done {
                poller
                    .register(
                        std::os::fd::AsRawFd::as_raw_fd(&stream),
                        Token(1),
                        Interest::WRITABLE,
                    )
                    .unwrap();
                let mut events = Events::with_capacity(8);
                poller
                    .wait(&mut events, Some(std::time::Duration::from_secs(5)))
                    .unwrap();
                assert!(events.iter().any(|e| e.token() == Token(1) && e.writable()));
            }
            assert!(stream.take_error().unwrap().is_none());
            let _ = listener.accept().unwrap();
        }

        #[test]
        fn eintr_during_epoll_wait_is_retried() {
            // epoll_wait is on the kernel's never-restarted list, so any
            // delivered signal surfaces as EINTR; the Poller must absorb
            // it and keep waiting out the timeout.
            #![allow(unsafe_code)]
            extern "C" {
                fn signal(signum: i32, handler: usize) -> usize;
                fn kill(pid: i32, sig: i32) -> i32;
                fn getpid() -> i32;
            }
            extern "C" fn noop(_: i32) {}
            const SIGUSR1: i32 = 10;
            // SAFETY: installs a no-op handler for SIGUSR1; the handler
            // is async-signal-safe (it does nothing).
            unsafe {
                signal(SIGUSR1, noop as *const () as usize);
            }
            // SAFETY: getpid takes no arguments and cannot fail.
            let pid = unsafe { getpid() };

            let poller = Poller::new().unwrap();
            let waker = std::sync::Arc::new(Waker::new(&poller, Token(0)).unwrap());
            let kicker = std::thread::spawn(move || {
                for _ in 0..20 {
                    // SAFETY: signals our own live process with a
                    // handled, no-op signal.
                    unsafe {
                        kill(pid, SIGUSR1);
                    }
                    std::thread::sleep(std::time::Duration::from_millis(1));
                }
            });

            // A wait longer than the signal barrage: it must neither
            // error out with EINTR nor return spuriously early.
            let mut events = Events::with_capacity(4);
            let start = std::time::Instant::now();
            poller
                .wait(&mut events, Some(std::time::Duration::from_millis(60)))
                .unwrap();
            assert!(events.is_empty());
            assert!(start.elapsed() >= std::time::Duration::from_millis(55));
            kicker.join().unwrap();
            drop(waker);
        }
    }
}
