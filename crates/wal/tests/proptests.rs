//! Property tests for the WAL record/segment codec and recovery.
//!
//! The central invariant: however a log is cut short or corrupted,
//! decoding yields an intact **prefix** of what was appended and never
//! panics — a torn tail costs the torn suffix, nothing more.

use std::fs;
use std::path::PathBuf;

use hts_types::{ObjectId, ServerId, Tag, Value};
use hts_wal::record::{decode_record, encode_record};
use hts_wal::segment::list_segments;
use hts_wal::{recover, FsyncPolicy, Wal, WalOptions, WalRecord};
use proptest::prelude::*;

fn arb_record() -> impl Strategy<Value = WalRecord> {
    (
        any::<u32>(),
        1..=u64::MAX,
        any::<u16>(),
        prop::collection::vec(any::<u8>(), 0..512),
    )
        .prop_map(|(object, ts, origin, value)| WalRecord {
            object: ObjectId(object),
            tag: Tag::new(ts, ServerId(origin)),
            value: Value::from(value),
        })
}

/// Encodes `records` back-to-back and returns (bytes, frame end offsets).
fn encode_all(records: &[WalRecord]) -> (Vec<u8>, Vec<usize>) {
    let mut bytes = Vec::new();
    let mut ends = Vec::new();
    for record in records {
        encode_record(&mut bytes, record);
        ends.push(bytes.len());
    }
    (bytes, ends)
}

/// Decodes until the first error, returning the recovered prefix.
fn decode_all(mut cursor: &[u8]) -> Vec<WalRecord> {
    let mut out = Vec::new();
    while !cursor.is_empty() {
        match decode_record(&mut cursor) {
            Ok(record) => out.push(record),
            Err(_) => break,
        }
    }
    out
}

proptest! {
    #[test]
    fn record_roundtrip(record in arb_record()) {
        let mut bytes = Vec::new();
        encode_record(&mut bytes, &record);
        let mut cursor = &bytes[..];
        prop_assert_eq!(decode_record(&mut cursor).unwrap(), record);
        prop_assert!(cursor.is_empty());
    }

    #[test]
    fn stream_roundtrip(records in prop::collection::vec(arb_record(), 0..12)) {
        let (bytes, _) = encode_all(&records);
        prop_assert_eq!(decode_all(&bytes), records);
    }

    #[test]
    fn truncation_recovers_exactly_the_complete_frames(
        records in prop::collection::vec(arb_record(), 1..10),
        cut_permille in 0u32..1000,
    ) {
        let (bytes, ends) = encode_all(&records);
        let cut = bytes.len() * cut_permille as usize / 1000;
        let complete = ends.iter().filter(|&&end| end <= cut).count();
        let decoded = decode_all(&bytes[..cut]);
        prop_assert_eq!(&decoded, &records[..complete]);
    }

    #[test]
    fn corruption_yields_an_intact_prefix(
        records in prop::collection::vec(arb_record(), 1..10),
        flip_permille in 0u32..1000,
        flip_bit in 0u8..8,
    ) {
        let (mut bytes, _) = encode_all(&records);
        let at = (bytes.len() - 1) * flip_permille as usize / 1000;
        bytes[at] ^= 1 << flip_bit;
        // Must not panic; whatever decodes must be a prefix of the truth.
        let decoded = decode_all(&bytes);
        prop_assert!(decoded.len() <= records.len());
        prop_assert_eq!(&decoded[..], &records[..decoded.len()]);
    }
}

fn tmp_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("hts-wal-prop-{name}-{}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    dir
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// End-to-end on real files: append, tear the active segment at an
    /// arbitrary byte, recover. Recovery stops at the first bad CRC,
    /// never panics, and reconstructs the tag-maximum of an intact
    /// prefix of the appends.
    #[test]
    fn torn_segment_recovery_is_a_clean_prefix(
        values in prop::collection::vec(0u64..1_000_000, 1..20),
        cut_permille in 0u32..1000,
    ) {
        let dir = tmp_dir("torn");
        let mut wal = Wal::open(&dir, WalOptions {
            fsync: FsyncPolicy::OsDefault,
            ..WalOptions::default()
        }).unwrap();
        let records: Vec<WalRecord> = values.iter().enumerate().map(|(i, v)| WalRecord {
            object: ObjectId(0),
            tag: Tag::new(i as u64 + 1, ServerId(0)),
            value: Value::from_u64(*v),
        }).collect();
        for record in &records {
            wal.append(record).unwrap();
        }
        drop(wal);

        let (_, path) = list_segments(&dir).unwrap().pop().unwrap();
        let bytes = fs::read(&path).unwrap();
        let cut = bytes.len() * cut_permille as usize / 1000;
        fs::write(&path, &bytes[..cut]).unwrap();

        let recovery = recover(&dir).unwrap();
        let n = recovery.records_replayed as usize;
        prop_assert!(n < records.len(), "cut strictly inside the segment loses the tail");
        // A torn flag always means replay stopped early; the converse can
        // miss (a cut exactly on a frame boundary parses cleanly).
        if recovery.torn_tail {
            prop_assert!(n < records.len());
        }
        if n > 0 {
            // Highest tag of the surviving prefix wins.
            let (tag, value) = &recovery.state[&ObjectId(0)];
            prop_assert_eq!(*tag, records[n - 1].tag);
            prop_assert_eq!(value, &records[n - 1].value);
        } else {
            prop_assert!(recovery.state.is_empty());
        }
        let _ = fs::remove_dir_all(&dir);
    }
}
