//! CRC-32 (IEEE 802.3) over record payloads.
//!
//! The WAL cannot pull in an external checksum crate (the build
//! environment is offline), so this is the textbook byte-at-a-time
//! table implementation — plenty fast for log records, and the
//! polynomial every other WAL format uses, so the files stay
//! inspectable with standard tools.

/// The reflected IEEE polynomial.
const POLY: u32 = 0xEDB8_8320;

/// 256-entry lookup table, built once at first use.
fn table() -> &'static [u32; 256] {
    static TABLE: std::sync::OnceLock<[u32; 256]> = std::sync::OnceLock::new();
    TABLE.get_or_init(|| {
        let mut table = [0u32; 256];
        for (i, entry) in table.iter_mut().enumerate() {
            let mut crc = i as u32;
            for _ in 0..8 {
                crc = if crc & 1 != 0 {
                    (crc >> 1) ^ POLY
                } else {
                    crc >> 1
                };
            }
            *entry = crc;
        }
        table
    })
}

/// The CRC-32 of `data`.
pub fn crc32(data: &[u8]) -> u32 {
    let table = table();
    let mut crc = u32::MAX;
    for &byte in data {
        crc = (crc >> 8) ^ table[usize::from((crc as u8) ^ byte)];
    }
    !crc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // The classic check value for CRC-32/ISO-HDLC.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn sensitive_to_any_flip() {
        let base = crc32(b"hello wal");
        assert_ne!(base, crc32(b"hello wam"));
        assert_ne!(base, crc32(b"hello wal "));
    }
}
