//! The CRC-framed record codec.
//!
//! Every entry in a segment (and the body of a snapshot) is one
//! **frame**: a 4-byte big-endian payload length, a 4-byte CRC-32 of the
//! payload, then the payload itself. A reader that hits a short frame or
//! a CRC mismatch knows the tail was torn by a crash and stops *cleanly*
//! — torn tails are an expected outcome, never an error or a panic.
//!
//! A committed-write payload is `object (u32) · tag.ts (u64) ·
//! tag.origin (u16) · value length (u32) · value bytes`, all big-endian
//! — the same field encodings as the wire codec in `hts-types`, so a
//! hexdump of a segment reads like a hexdump of ring traffic.

use hts_types::{ObjectId, ServerId, Tag, Value};

/// One committed write as persisted in the log.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WalRecord {
    /// The register object written.
    pub object: ObjectId,
    /// The committing tag (its origin identifies the coordinator).
    pub tag: Tag,
    /// The committed value.
    pub value: Value,
}

/// Why decoding stopped. Both variants mean "stop replaying here"; they
/// are distinguished only for diagnostics.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FrameError {
    /// The buffer ended inside a frame (torn tail).
    Truncated,
    /// The payload did not match its CRC (torn or corrupted tail).
    BadCrc,
    /// The payload decoded to nonsense (e.g. an inner length overrunning
    /// the frame).
    Malformed,
}

/// Frame header: payload length + CRC.
pub const FRAME_HEADER: usize = 8;

const RECORD_FIXED: usize = 4 + 8 + 2 + 4; // object + ts + origin + value len

/// Copies the `N`-byte field at `buf[at..]`, or `None` if the buffer is
/// too short — the panic-free slice→array step for the decoders (their
/// bounds checks make `None` unreachable, but recovery code never
/// panics on principle: a torn tail is data, not a bug).
fn field<const N: usize>(buf: &[u8], at: usize) -> Option<[u8; N]> {
    buf.get(at..at + N)?.first_chunk::<N>().copied()
}

/// Appends one CRC frame wrapping `payload` to `out`.
pub fn put_frame(out: &mut Vec<u8>, payload: &[u8]) {
    out.extend_from_slice(&(payload.len() as u32).to_be_bytes());
    out.extend_from_slice(&crate::crc::crc32(payload).to_be_bytes());
    out.extend_from_slice(payload);
}

/// Reads one CRC frame from the front of `buf`, advancing past it.
///
/// # Errors
///
/// Returns a [`FrameError`] when the buffer ends mid-frame or the CRC
/// does not match — the signal to stop replaying.
pub fn take_frame<'a>(buf: &mut &'a [u8]) -> Result<&'a [u8], FrameError> {
    if buf.len() < FRAME_HEADER {
        return Err(FrameError::Truncated);
    }
    let (Some(len), Some(crc)) = (field::<4>(buf, 0), field::<4>(buf, 4)) else {
        return Err(FrameError::Truncated);
    };
    let len = u32::from_be_bytes(len) as usize;
    let crc = u32::from_be_bytes(crc);
    let rest = &buf[FRAME_HEADER..];
    if rest.len() < len {
        return Err(FrameError::Truncated);
    }
    let payload = &rest[..len];
    if crate::crc::crc32(payload) != crc {
        return Err(FrameError::BadCrc);
    }
    *buf = &rest[len..];
    Ok(payload)
}

/// Encodes `record` as one frame appended to `out` — **borrowed-batch**
/// form: the frame is built directly in `out` (a zeroed header first,
/// then the payload — the value bytes are appended exactly **once**),
/// and the length + CRC are patched over the written range. No
/// per-record payload allocation, so a group commit of `n` records
/// fills one scratch buffer with `n` in-place frames and zero
/// intermediate copies of the values.
pub fn encode_record(out: &mut Vec<u8>, record: &WalRecord) {
    let header_at = out.len();
    out.reserve(FRAME_HEADER + RECORD_FIXED + record.value.len());
    out.extend_from_slice(&[0u8; FRAME_HEADER]);
    let payload_at = out.len();
    put_record_payload(out, record);
    let len = (out.len() - payload_at) as u32;
    let crc = crate::crc::crc32(&out[payload_at..]);
    out[header_at..header_at + 4].copy_from_slice(&len.to_be_bytes());
    out[header_at + 4..payload_at].copy_from_slice(&crc.to_be_bytes());
}

/// Appends the raw (unframed) record payload to `out` — shared with the
/// snapshot codec, which frames many records under one CRC.
pub fn put_record_payload(out: &mut Vec<u8>, record: &WalRecord) {
    out.extend_from_slice(&record.object.0.to_be_bytes());
    out.extend_from_slice(&record.tag.ts.to_be_bytes());
    out.extend_from_slice(&record.tag.origin.0.to_be_bytes());
    out.extend_from_slice(&(record.value.len() as u32).to_be_bytes());
    out.extend_from_slice(record.value.as_bytes());
}

/// Decodes one record payload from the front of `buf`, advancing it.
///
/// # Errors
///
/// Returns [`FrameError::Malformed`] when the payload is too short or
/// its inner value length overruns it.
pub fn take_record_payload(buf: &mut &[u8]) -> Result<WalRecord, FrameError> {
    if buf.len() < RECORD_FIXED {
        return Err(FrameError::Malformed);
    }
    let fields = (
        field::<4>(buf, 0),
        field::<8>(buf, 4),
        field::<2>(buf, 12),
        field::<4>(buf, 14),
    );
    let (Some(object), Some(ts), Some(origin), Some(len)) = fields else {
        return Err(FrameError::Malformed);
    };
    let object = ObjectId(u32::from_be_bytes(object));
    let ts = u64::from_be_bytes(ts);
    let origin = ServerId(u16::from_be_bytes(origin));
    let len = u32::from_be_bytes(len) as usize;
    let rest = &buf[RECORD_FIXED..];
    if rest.len() < len {
        return Err(FrameError::Malformed);
    }
    let value = Value::from(&rest[..len]);
    *buf = &rest[len..];
    Ok(WalRecord {
        object,
        tag: Tag::new(ts, origin),
        value,
    })
}

/// Decodes one framed record from the front of `buf`, advancing it.
///
/// # Errors
///
/// Propagates frame and payload errors; additionally returns
/// [`FrameError::Malformed`] if the frame carries trailing bytes after
/// the record.
pub fn decode_record(buf: &mut &[u8]) -> Result<WalRecord, FrameError> {
    let mut payload = take_frame(buf)?;
    let record = take_record_payload(&mut payload)?;
    if !payload.is_empty() {
        return Err(FrameError::Malformed);
    }
    Ok(record)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(ts: u64, len: usize) -> WalRecord {
        WalRecord {
            object: ObjectId(7),
            tag: Tag::new(ts, ServerId(2)),
            value: Value::filled(0x5A, len),
        }
    }

    #[test]
    fn roundtrip() {
        for record in [sample(1, 0), sample(9, 1), sample(u64::MAX, 4096)] {
            let mut bytes = Vec::new();
            encode_record(&mut bytes, &record);
            let mut cursor = &bytes[..];
            assert_eq!(decode_record(&mut cursor).unwrap(), record);
            assert!(cursor.is_empty());
        }
    }

    #[test]
    fn in_place_encode_matches_framed_payload() {
        // The borrowed-batch encoder must be byte-identical to framing a
        // separately built payload — the on-disk format is pinned.
        for record in [sample(1, 0), sample(9, 1), sample(u64::MAX, 4096)] {
            let mut payload = Vec::new();
            put_record_payload(&mut payload, &record);
            let mut expect = vec![0xAB; 3]; // non-empty prefix: append semantics
            put_frame(&mut expect, &payload);
            let mut in_place = vec![0xAB; 3];
            encode_record(&mut in_place, &record);
            assert_eq!(in_place, expect);
        }
    }

    #[test]
    fn truncation_at_every_cut_stops_cleanly() {
        let mut bytes = Vec::new();
        encode_record(&mut bytes, &sample(3, 100));
        for cut in 0..bytes.len() {
            let mut cursor = &bytes[..cut];
            let err = decode_record(&mut cursor).expect_err("torn frame must not decode");
            assert!(
                matches!(err, FrameError::Truncated),
                "cut={cut} gave {err:?}"
            );
        }
    }

    #[test]
    fn bit_flip_fails_crc() {
        let mut bytes = Vec::new();
        encode_record(&mut bytes, &sample(3, 100));
        let last = bytes.len() - 1;
        bytes[last] ^= 0x01;
        let mut cursor = &bytes[..];
        assert_eq!(decode_record(&mut cursor), Err(FrameError::BadCrc));
    }

    #[test]
    fn inner_overrun_is_malformed() {
        // A frame whose CRC is valid but whose inner value length lies.
        let mut payload = Vec::new();
        put_record_payload(&mut payload, &sample(1, 4));
        payload.truncate(payload.len() - 2); // drop value bytes, keep length
        let mut bytes = Vec::new();
        put_frame(&mut bytes, &payload);
        let mut cursor = &bytes[..];
        assert_eq!(decode_record(&mut cursor), Err(FrameError::Malformed));
    }
}
