//! Segment files: naming, listing, sequential reading.
//!
//! A segment is `wal-<seq>.seg`: an 8-byte magic followed by CRC-framed
//! records (see [`crate::record`]). Segments are strictly append-only
//! and never reopened for writing — a restarting server always starts a
//! fresh segment, so a torn tail can only exist in the segment that was
//! active when the process died.

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

use crate::record::{decode_record, WalRecord};

/// First 8 bytes of every segment file.
pub const SEGMENT_MAGIC: &[u8; 8] = b"HTSWAL01";

/// Fsyncs the directory itself, making file creations, renames and
/// deletions under it durable. Data-file fsyncs alone do not persist
/// the *directory entry*; without this, a power failure can forget that
/// a fully-synced segment or snapshot ever existed.
///
/// # Errors
///
/// Propagates the open/sync failure.
pub fn sync_dir(dir: &Path) -> io::Result<()> {
    fs::File::open(dir)?.sync_all()
}

/// The file name of segment `seq`.
pub fn segment_file_name(seq: u64) -> String {
    format!("wal-{seq:08}.seg")
}

/// The path of segment `seq` under `dir`.
pub fn segment_path(dir: &Path, seq: u64) -> PathBuf {
    dir.join(segment_file_name(seq))
}

/// Parses a segment file name back to its sequence number.
pub fn parse_segment_name(name: &str) -> Option<u64> {
    name.strip_prefix("wal-")?
        .strip_suffix(".seg")?
        .parse()
        .ok()
}

/// Lists the segments under `dir` in ascending sequence order. A missing
/// directory lists as empty.
///
/// # Errors
///
/// Propagates directory-read failures other than `NotFound`.
pub fn list_segments(dir: &Path) -> io::Result<Vec<(u64, PathBuf)>> {
    let entries = match fs::read_dir(dir) {
        Ok(entries) => entries,
        Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(Vec::new()),
        Err(e) => return Err(e),
    };
    let mut segments = Vec::new();
    for entry in entries {
        let entry = entry?;
        if let Some(seq) = entry.file_name().to_str().and_then(parse_segment_name) {
            segments.push((seq, entry.path()));
        }
    }
    segments.sort_unstable_by_key(|(seq, _)| *seq);
    Ok(segments)
}

/// The outcome of reading one segment.
#[derive(Debug)]
pub struct SegmentContents {
    /// Records recovered, in append order.
    pub records: Vec<WalRecord>,
    /// `true` when the segment ended in a torn or corrupt frame (replay
    /// stopped at the last valid record).
    pub torn: bool,
}

/// Reads every valid record of one segment, stopping cleanly at the
/// first torn or corrupt frame.
///
/// A file too short for its magic, or carrying the wrong magic, yields
/// zero records and counts as torn (it is a half-created segment, not an
/// error).
///
/// # Errors
///
/// Propagates I/O failures reading the file; corruption is *not* an
/// error.
pub fn read_segment(path: &Path) -> io::Result<SegmentContents> {
    let bytes = fs::read(path)?;
    if bytes.len() < SEGMENT_MAGIC.len() || &bytes[..SEGMENT_MAGIC.len()] != SEGMENT_MAGIC {
        return Ok(SegmentContents {
            records: Vec::new(),
            torn: !bytes.is_empty(),
        });
    }
    let mut cursor = &bytes[SEGMENT_MAGIC.len()..];
    let mut records = Vec::new();
    let mut torn = false;
    while !cursor.is_empty() {
        match decode_record(&mut cursor) {
            Ok(record) => records.push(record),
            Err(_) => {
                torn = true;
                break;
            }
        }
    }
    Ok(SegmentContents { records, torn })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_roundtrip_and_sort() {
        assert_eq!(segment_file_name(3), "wal-00000003.seg");
        assert_eq!(parse_segment_name("wal-00000003.seg"), Some(3));
        assert_eq!(parse_segment_name("wal-x.seg"), None);
        assert_eq!(parse_segment_name("snap-00000003.snap"), None);
        // Zero-padding keeps lexicographic = numeric order up to 10^8.
        assert!(segment_file_name(9) < segment_file_name(10));
    }

    #[test]
    fn missing_dir_lists_empty() {
        let segments = list_segments(Path::new("/nonexistent/hts-wal-test")).unwrap();
        assert!(segments.is_empty());
    }
}
