//! Durable persistence for `hts` ring servers: a segmented, CRC-framed
//! write-ahead log of committed `(object, tag, value)` writes, plus
//! snapshots, compaction and a crash-recovery reader.
//!
//! The seed reproduction implements the paper's crash-**stop** model: a
//! server that dies is spliced out of the ring forever and its state
//! lives only in RAM. This crate supplies the durability layer that
//! upgrades the system to crash-**recovery** (in the spirit of RADON's
//! repairable atomic objects): every committed write is appended here,
//! and a restarting server rebuilds its register state from snapshot +
//! log tail, then rejoins the ring through `hts-core`'s resync
//! machinery.
//!
//! Design points:
//!
//! * **Only committed writes are logged.** A `(tag, value)` pair is
//!   appended when it is *applied* — after its write notice (or the
//!   degenerate single-server commit). Pending pre-writes are never
//!   persisted: they are retransmitted by the surviving ring on splice
//!   or rejoin, which is cheaper than logging twice per write and keeps
//!   per-server persistent storage at one value per object plus the
//!   uncompacted tail (the storage-cost metric of the
//!   Storage-Optimized Data-Atomic literature).
//! * **Torn tails are expected, not errors.** Every record is CRC-32
//!   framed; recovery stops cleanly at the first bad frame of a
//!   segment. Because tags totally order writes, replay is idempotent
//!   (highest tag per object wins) and overlapping snapshots/segments
//!   are harmless.
//! * **Fsync is a policy** ([`FsyncPolicy`]): `Always` (ack-after-sync
//!   durability), `EveryN` (bounded loss window), `OsDefault` (page
//!   cache only — survives process crashes, not power loss). The
//!   recovery benchmark measures the throughput cost of each.
//!
//! # Examples
//!
//! ```
//! use hts_types::{ObjectId, ServerId, Tag, Value};
//! use hts_wal::{recover, FsyncPolicy, Wal, WalOptions, WalRecord};
//!
//! let dir = std::env::temp_dir().join(format!("hts-wal-doc-{}", std::process::id()));
//! # let _ = std::fs::remove_dir_all(&dir);
//! let options = WalOptions { fsync: FsyncPolicy::OsDefault, ..WalOptions::default() };
//! let mut wal = Wal::open(&dir, options)?;
//! wal.append(&WalRecord {
//!     object: ObjectId(0),
//!     tag: Tag::new(1, ServerId(0)),
//!     value: Value::from_static(b"durable"),
//! })?;
//! drop(wal); // crash
//!
//! let recovery = recover(&dir)?;
//! assert!(recovery.had_log);
//! assert_eq!(recovery.state[&ObjectId(0)].1.as_bytes(), b"durable");
//! # std::fs::remove_dir_all(&dir)?;
//! # Ok::<(), std::io::Error>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod crc;
mod log;
pub mod record;
mod recover;
pub mod segment;
pub mod snapshot;

pub use crc::crc32;
pub use log::{FsyncPolicy, Wal, WalOptions, WalStats};
pub use record::{FrameError, WalRecord};
pub use recover::{recover, Recovery};
