//! The append side: [`Wal`], fsync policy, rotation and compaction.

use std::fs;
use std::io::{self, Write};
use std::path::{Path, PathBuf};

use crate::record::{encode_record, WalRecord};
use crate::segment::{list_segments, segment_path, sync_dir, SEGMENT_MAGIC};
use crate::snapshot::{list_snapshots, write_snapshot};

/// When appended records reach the disk.
///
/// The policy trades write latency for the amount of acknowledged data
/// a power failure can lose; see EXPERIMENTS.md for the measured
/// throughput overhead of each setting.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum FsyncPolicy {
    /// `fsync` after every append: an acknowledged write is on stable
    /// storage before the client hears about it.
    #[default]
    Always,
    /// `fsync` once per `n` appends: bounds the loss window to `n − 1`
    /// acknowledged writes.
    EveryN(u32),
    /// Never `fsync` explicitly; the OS page cache flushes on its own
    /// schedule. Survives process crashes (the data is in kernel
    /// buffers) but not power loss.
    OsDefault,
}

/// Tuning knobs for a [`Wal`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WalOptions {
    /// Fsync policy for appends.
    pub fsync: FsyncPolicy,
    /// Size at which the active segment asks for compaction
    /// ([`Wal::wants_compaction`]).
    pub segment_bytes: u64,
}

impl Default for WalOptions {
    fn default() -> Self {
        WalOptions {
            fsync: FsyncPolicy::Always,
            segment_bytes: 8 * 1024 * 1024,
        }
    }
}

/// Cumulative log counters (inspected by benchmarks and tests).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WalStats {
    /// Records appended.
    pub appends: u64,
    /// Explicit fsyncs issued.
    pub fsyncs: u64,
    /// Segments created (including the one opened at boot).
    pub segments_created: u64,
    /// Compactions performed.
    pub compactions: u64,
    /// Multi-record [`Wal::append_batch`] calls (group commits): batches
    /// whose records shared one buffer fill and at most one fsync.
    pub group_commits: u64,
}

/// A segmented append-only log of committed writes.
///
/// Opening a `Wal` always starts a **fresh** segment (sequence one past
/// anything on disk): old segments are never reopened for writing, so a
/// torn tail can only live in the segment that was active at the crash,
/// and [`recover`](crate::recover::recover) stops cleanly there.
///
/// # Examples
///
/// ```no_run
/// use hts_types::{ObjectId, ServerId, Tag, Value};
/// use hts_wal::{recover, Wal, WalOptions, WalRecord};
///
/// let mut wal = Wal::open("/tmp/server-0-wal", WalOptions::default())?;
/// wal.append(&WalRecord {
///     object: ObjectId(0),
///     tag: Tag::new(1, ServerId(0)),
///     value: Value::from_u64(42),
/// })?;
///
/// // After a crash: rebuild the register state.
/// let recovery = recover("/tmp/server-0-wal")?;
/// assert_eq!(recovery.state.len(), 1);
/// # Ok::<(), std::io::Error>(())
/// ```
#[derive(Debug)]
pub struct Wal {
    dir: PathBuf,
    options: WalOptions,
    active: fs::File,
    active_seq: u64,
    active_bytes: u64,
    appends_since_sync: u32,
    stats: WalStats,
    scratch: Vec<u8>,
}

impl Wal {
    /// Opens (creating if needed) the log directory and starts a fresh
    /// active segment.
    ///
    /// # Errors
    ///
    /// Propagates directory creation, scan and file creation failures.
    pub fn open(dir: impl Into<PathBuf>, options: WalOptions) -> io::Result<Wal> {
        let dir = dir.into();
        fs::create_dir_all(&dir)?;
        // Sweep temp files orphaned by a crash mid-compaction (the
        // snapshot rename never happened; recovery ignores them, but
        // each one leaks a full-state snapshot of disk space).
        for entry in fs::read_dir(&dir)?.flatten() {
            if entry
                .file_name()
                .to_str()
                .is_some_and(|name| name.ends_with(".tmp"))
            {
                let _ = fs::remove_file(entry.path());
            }
        }
        let last_seq = list_segments(&dir)?
            .last()
            .map(|(seq, _)| *seq)
            .unwrap_or(0)
            .max(list_snapshots(&dir)?.last().map(|(m, _)| *m).unwrap_or(0));
        let seq = last_seq + 1;
        let mut active = fs::File::create(segment_path(&dir, seq))?;
        active.write_all(SEGMENT_MAGIC)?;
        sync_dir(&dir)?;
        Ok(Wal {
            dir,
            options,
            active,
            active_seq: seq,
            active_bytes: SEGMENT_MAGIC.len() as u64,
            appends_since_sync: 0,
            stats: WalStats {
                segments_created: 1,
                ..WalStats::default()
            },
            scratch: Vec::new(),
        })
    }

    /// The log directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The sequence number of the active segment.
    pub fn active_segment(&self) -> u64 {
        self.active_seq
    }

    /// Cumulative counters.
    pub fn stats(&self) -> WalStats {
        self.stats
    }

    fn start_segment(&mut self, seq: u64) -> io::Result<()> {
        let mut file = fs::File::create(segment_path(&self.dir, seq))?;
        file.write_all(SEGMENT_MAGIC)?;
        // Persist the directory entry: a synced data file whose creation
        // the directory forgot is unrecoverable after power loss.
        sync_dir(&self.dir)?;
        self.active = file;
        self.active_seq = seq;
        self.active_bytes = SEGMENT_MAGIC.len() as u64;
        self.appends_since_sync = 0;
        self.stats.segments_created += 1;
        Ok(())
    }

    /// Appends one committed write and applies the fsync policy.
    ///
    /// # Errors
    ///
    /// Propagates write and sync failures; an error leaves the record
    /// possibly half-written, which recovery treats as a torn tail.
    pub fn append(&mut self, record: &WalRecord) -> io::Result<()> {
        self.append_batch(std::slice::from_ref(record))
    }

    /// **Group commit**: appends a whole batch of committed writes with
    /// one buffer fill, one `write_all`, and the fsync policy applied
    /// **once** for the batch — under [`FsyncPolicy::Always`] a single
    /// fsync makes every record in the batch durable, so the runtime can
    /// still ack-after-fsync while paying the flush per batch instead of
    /// per commit. Under [`FsyncPolicy::EveryN`] the batch counts as
    /// `records.len()` appends. An empty batch is a no-op.
    ///
    /// # Errors
    ///
    /// Propagates write and sync failures; an error leaves the tail
    /// possibly torn, which recovery truncates cleanly.
    pub fn append_batch(&mut self, records: &[WalRecord]) -> io::Result<()> {
        if records.is_empty() {
            return Ok(());
        }
        let t0 = hts_metrics::now_nanos();
        self.scratch.clear();
        for record in records {
            encode_record(&mut self.scratch, record);
        }
        self.active.write_all(&self.scratch)?;
        self.active_bytes += self.scratch.len() as u64;
        self.stats.appends += records.len() as u64;
        if records.len() > 1 {
            self.stats.group_commits += 1;
        }
        self.appends_since_sync += records.len() as u32;
        match self.options.fsync {
            FsyncPolicy::Always => self.sync()?,
            FsyncPolicy::EveryN(n) => {
                if self.appends_since_sync >= n.max(1) {
                    self.sync()?;
                }
            }
            FsyncPolicy::OsDefault => {}
        }
        // The whole group commit, fsync (per policy) included: what one
        // event-loop iteration's durability actually cost.
        hts_metrics::histogram!("hts_wal_append_nanos").record(hts_metrics::now_nanos() - t0);
        hts_metrics::histogram!("hts_wal_group_commit_records").record(records.len() as u64);
        Ok(())
    }

    /// Forces appended records to stable storage regardless of policy.
    ///
    /// # Errors
    ///
    /// Propagates the `fsync` failure.
    pub fn sync(&mut self) -> io::Result<()> {
        hts_types::sync::blocking_syscall("wal fsync");
        let t0 = hts_metrics::now_nanos();
        self.active.sync_data()?;
        hts_metrics::histogram!("hts_wal_fsync_nanos").record(hts_metrics::now_nanos() - t0);
        self.stats.fsyncs += 1;
        self.appends_since_sync = 0;
        Ok(())
    }

    /// Whether the active segment has outgrown
    /// [`WalOptions::segment_bytes`] and the owner should call
    /// [`compact`](Wal::compact) with its current state.
    pub fn wants_compaction(&self) -> bool {
        self.active_bytes >= self.options.segment_bytes
    }

    /// Compacts the log: seals the active segment, durably snapshots
    /// `state`, starts a fresh segment and deletes every segment and
    /// snapshot the new snapshot supersedes.
    ///
    /// # Errors
    ///
    /// Propagates I/O failures; on error the log is still recoverable
    /// (the snapshot rename is atomic and segments are only deleted
    /// after it lands).
    pub fn compact(&mut self, state: &[WalRecord]) -> io::Result<()> {
        self.sync()?;
        let watermark = self.active_seq + 1;
        write_snapshot(&self.dir, watermark, state)?;
        self.start_segment(watermark)?;
        self.stats.compactions += 1;
        for (seq, path) in list_segments(&self.dir)? {
            if seq < watermark {
                let _ = fs::remove_file(path);
            }
        }
        for (mark, path) in list_snapshots(&self.dir)? {
            if mark < watermark {
                let _ = fs::remove_file(path);
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::recover::recover;
    use hts_types::{ObjectId, ServerId, Tag, Value};

    fn tmp_dir(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("hts-wal-log-{name}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn rec(object: u32, ts: u64, v: u64) -> WalRecord {
        WalRecord {
            object: ObjectId(object),
            tag: Tag::new(ts, ServerId(0)),
            value: Value::from_u64(v),
        }
    }

    #[test]
    fn append_then_recover() {
        let dir = tmp_dir("append");
        let mut wal = Wal::open(&dir, WalOptions::default()).unwrap();
        wal.append(&rec(1, 1, 10)).unwrap();
        wal.append(&rec(1, 2, 20)).unwrap();
        wal.append(&rec(2, 1, 30)).unwrap();
        drop(wal);
        let recovery = recover(&dir).unwrap();
        assert!(recovery.had_log);
        assert_eq!(recovery.records_replayed, 3);
        assert_eq!(
            recovery.state.get(&ObjectId(1)).unwrap().1,
            Value::from_u64(20)
        );
        assert_eq!(
            recovery.state.get(&ObjectId(2)).unwrap().1,
            Value::from_u64(30)
        );
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn reopen_starts_fresh_segment_and_keeps_history() {
        let dir = tmp_dir("reopen");
        let mut wal = Wal::open(&dir, WalOptions::default()).unwrap();
        wal.append(&rec(1, 1, 10)).unwrap();
        assert_eq!(wal.active_segment(), 1);
        drop(wal);
        let mut wal = Wal::open(&dir, WalOptions::default()).unwrap();
        assert_eq!(wal.active_segment(), 2);
        wal.append(&rec(1, 2, 20)).unwrap();
        drop(wal);
        let recovery = recover(&dir).unwrap();
        assert_eq!(recovery.records_replayed, 2);
        assert_eq!(
            recovery.state.get(&ObjectId(1)).unwrap(),
            &(Tag::new(2, ServerId(0)), Value::from_u64(20))
        );
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn compaction_prunes_segments_but_preserves_state() {
        let dir = tmp_dir("compact");
        let options = WalOptions {
            fsync: FsyncPolicy::OsDefault,
            segment_bytes: 256,
        };
        let mut wal = Wal::open(&dir, options).unwrap();
        for ts in 1..=50 {
            wal.append(&rec(1, ts, ts)).unwrap();
            if wal.wants_compaction() {
                // The owner would export its real state here.
                wal.compact(&[rec(1, ts, ts)]).unwrap();
            }
        }
        assert!(wal.stats().compactions > 0);
        drop(wal);
        let segments = list_segments(&dir).unwrap();
        assert!(
            segments.len() <= 2,
            "compaction left {} segments",
            segments.len()
        );
        let recovery = recover(&dir).unwrap();
        assert_eq!(
            recovery.state.get(&ObjectId(1)).unwrap(),
            &(Tag::new(50, ServerId(0)), Value::from_u64(50))
        );
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn group_commit_is_one_fsync_per_batch() {
        let dir = tmp_dir("group");
        let mut wal = Wal::open(&dir, WalOptions::default()).unwrap();
        let batch: Vec<WalRecord> = (1..=10).map(|ts| rec(1, ts, ts)).collect();
        wal.append_batch(&batch).unwrap();
        // SyncAlways semantics, group-commit cost: every record durable,
        // ONE fsync for the whole batch.
        assert_eq!(wal.stats().appends, 10);
        assert_eq!(wal.stats().fsyncs, 1);
        assert_eq!(wal.stats().group_commits, 1);
        // Empty batches are free.
        wal.append_batch(&[]).unwrap();
        assert_eq!(wal.stats().fsyncs, 1);
        drop(wal);
        let recovery = recover(&dir).unwrap();
        assert_eq!(recovery.records_replayed, 10);
        assert_eq!(
            recovery.state.get(&ObjectId(1)).unwrap().1,
            Value::from_u64(10)
        );
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn group_commit_counts_against_every_n() {
        let dir = tmp_dir("group-everyn");
        let options = WalOptions {
            fsync: FsyncPolicy::EveryN(8),
            ..WalOptions::default()
        };
        let mut wal = Wal::open(&dir, options).unwrap();
        let batch: Vec<WalRecord> = (1..=5).map(|ts| rec(1, ts, ts)).collect();
        wal.append_batch(&batch).unwrap(); // 5 < 8: no fsync yet
        assert_eq!(wal.stats().fsyncs, 0);
        wal.append_batch(&batch).unwrap(); // 10 >= 8: one fsync
        assert_eq!(wal.stats().fsyncs, 1);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn every_n_policy_batches_fsyncs() {
        let dir = tmp_dir("everyn");
        let options = WalOptions {
            fsync: FsyncPolicy::EveryN(8),
            ..WalOptions::default()
        };
        let mut wal = Wal::open(&dir, options).unwrap();
        for ts in 1..=16 {
            wal.append(&rec(1, ts, ts)).unwrap();
        }
        assert_eq!(wal.stats().fsyncs, 2);
        let _ = fs::remove_dir_all(&dir);
    }
}
