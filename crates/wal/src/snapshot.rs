//! State snapshots: the compaction anchor.
//!
//! A snapshot file `snap-<watermark>.snap` captures the full register
//! state at a compaction point: every `(object, tag, value)` the server
//! stored, under **one** CRC frame (a snapshot is valid in full or not
//! at all). The *watermark* is the sequence number of the first segment
//! that may contain records newer than the snapshot; segments below it
//! are deleted after the snapshot is durably on disk.
//!
//! Snapshots are written to a temp file and renamed into place, so a
//! crash mid-snapshot leaves the previous snapshot (and the segments it
//! anchors) untouched.

use std::fs;
use std::io::{self, Write};
use std::path::{Path, PathBuf};

use crate::record::{put_frame, put_record_payload, take_frame, take_record_payload, WalRecord};

/// First 8 bytes of every snapshot file.
pub const SNAPSHOT_MAGIC: &[u8; 8] = b"HTSSNAP1";

/// The file name of the snapshot anchored at `watermark`.
pub fn snapshot_file_name(watermark: u64) -> String {
    format!("snap-{watermark:08}.snap")
}

/// Parses a snapshot file name back to its watermark.
pub fn parse_snapshot_name(name: &str) -> Option<u64> {
    name.strip_prefix("snap-")?
        .strip_suffix(".snap")?
        .parse()
        .ok()
}

/// Lists the snapshots under `dir` in ascending watermark order. A
/// missing directory lists as empty.
///
/// # Errors
///
/// Propagates directory-read failures other than `NotFound`.
pub fn list_snapshots(dir: &Path) -> io::Result<Vec<(u64, PathBuf)>> {
    let entries = match fs::read_dir(dir) {
        Ok(entries) => entries,
        Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(Vec::new()),
        Err(e) => return Err(e),
    };
    let mut snapshots = Vec::new();
    for entry in entries {
        let entry = entry?;
        if let Some(mark) = entry.file_name().to_str().and_then(parse_snapshot_name) {
            snapshots.push((mark, entry.path()));
        }
    }
    snapshots.sort_unstable_by_key(|(mark, _)| *mark);
    Ok(snapshots)
}

/// Durably writes the snapshot anchored at `watermark` under `dir`
/// (temp file + fsync + rename) and returns its path.
///
/// # Errors
///
/// Propagates file creation, write, sync and rename failures.
pub fn write_snapshot(dir: &Path, watermark: u64, state: &[WalRecord]) -> io::Result<PathBuf> {
    let mut payload = Vec::new();
    payload.extend_from_slice(&watermark.to_be_bytes());
    payload.extend_from_slice(&(state.len() as u32).to_be_bytes());
    for record in state {
        put_record_payload(&mut payload, record);
    }
    let mut bytes = Vec::with_capacity(SNAPSHOT_MAGIC.len() + payload.len() + 8);
    bytes.extend_from_slice(SNAPSHOT_MAGIC);
    put_frame(&mut bytes, &payload);

    let target = dir.join(snapshot_file_name(watermark));
    let tmp = dir.join(format!("{}.tmp", snapshot_file_name(watermark)));
    {
        let mut file = fs::File::create(&tmp)?;
        file.write_all(&bytes)?;
        file.sync_data()?;
    }
    fs::rename(&tmp, &target)?;
    // Persist the rename's directory entry before the caller deletes the
    // segments this snapshot supersedes — otherwise power loss can keep
    // the deletions but forget the snapshot.
    crate::segment::sync_dir(dir)?;
    Ok(target)
}

/// Reads a snapshot, returning its watermark and records — or `None`
/// when the file is torn, corrupt or not a snapshot (an invalid snapshot
/// is simply ignored by recovery; the segments it would have replaced
/// are still on disk).
pub fn read_snapshot(path: &Path) -> Option<(u64, Vec<WalRecord>)> {
    let bytes = fs::read(path).ok()?;
    let rest = bytes.strip_prefix(SNAPSHOT_MAGIC.as_slice())?;
    let mut cursor = rest;
    let mut payload = take_frame(&mut cursor).ok()?;
    if !cursor.is_empty() || payload.len() < 12 {
        return None;
    }
    let watermark = u64::from_be_bytes(payload[0..8].try_into().ok()?);
    let count = u32::from_be_bytes(payload[8..12].try_into().ok()?);
    payload = &payload[12..];
    let mut records = Vec::with_capacity(count as usize);
    for _ in 0..count {
        records.push(take_record_payload(&mut payload).ok()?);
    }
    if !payload.is_empty() {
        return None;
    }
    Some((watermark, records))
}

#[cfg(test)]
mod tests {
    use super::*;
    use hts_types::{ObjectId, ServerId, Tag, Value};

    fn tmp_dir(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("hts-wal-snap-{name}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn sample_state() -> Vec<WalRecord> {
        (0..3)
            .map(|i| WalRecord {
                object: ObjectId(i),
                tag: Tag::new(u64::from(i) + 1, ServerId(0)),
                value: Value::from_u64(u64::from(i) * 10),
            })
            .collect()
    }

    #[test]
    fn roundtrip() {
        let dir = tmp_dir("roundtrip");
        let state = sample_state();
        let path = write_snapshot(&dir, 5, &state).unwrap();
        assert_eq!(read_snapshot(&path), Some((5, state)));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_snapshot_reads_as_none() {
        let dir = tmp_dir("corrupt");
        let path = write_snapshot(&dir, 2, &sample_state()).unwrap();
        let mut bytes = fs::read(&path).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0xFF;
        fs::write(&path, &bytes).unwrap();
        assert_eq!(read_snapshot(&path), None);
        // Truncated mid-body: also None, never a panic.
        fs::write(&path, &bytes[..bytes.len() / 2]).unwrap();
        assert_eq!(read_snapshot(&path), None);
        let _ = fs::remove_dir_all(&dir);
    }
}
